//! Baseline behaviour: Unifiable-ops schedules are semantically exact and
//! pack like GRiP on simple code; POST is semantically exact and never
//! beats GRiP on the pipelined kernels (Table 1's qualitative claim).

use grip_analysis::{Ddg, RankTable};
use grip_baselines::{post_pipeline, schedule_unifiable, PostOptions};
use grip_core::{schedule_region, GripConfig, Resources};
use grip_ir::{Graph, OpKind, Operand, ProgramBuilder};
use grip_kernels::{default_init, kernels};
use grip_percolate::Ctx;
use grip_pipeline::{perfect_pipeline, PipelineOptions};
use grip_vm::{EquivReport, Machine};

fn mixed_program(independents: usize) -> Graph {
    let mut b = ProgramBuilder::new();
    let mut regs = Vec::new();
    for i in 0..independents {
        let r = b.named_reg(&format!("c{i}"));
        b.const_i(r, i as i64);
        regs.push(r);
    }
    let mut acc = b.named_reg("acc");
    b.const_i(acc, 0);
    for (i, &r) in regs.iter().enumerate() {
        acc = b.binary(&format!("s{i}"), OpKind::IAdd, Operand::Reg(acc), Operand::Reg(r));
    }
    b.live_out(acc);
    b.finish()
}

#[test]
fn unifiable_preserves_semantics_and_respects_width() {
    for fus in [2usize, 4] {
        let g0 = mixed_program(6);
        let mut g = g0.clone();
        let ddg = Ddg::build(&g, g.entry);
        let mut ctx = Ctx::new(&g, &ddg);
        let ranks = RankTable::new(&ddg, false);
        let region = g.reachable();
        let (stats, _) = schedule_unifiable(&mut g, &mut ctx, &ranks, Resources::vliw(fus), region);
        g.validate().unwrap();
        assert!(stats.arrivals > 0);
        assert!(stats.membership_tests >= stats.arrivals);
        for n in g.reachable() {
            assert!(g.node_op_count(n) <= fus);
        }
        let mut m0 = Machine::for_graph(&g0);
        m0.run(&g0).unwrap();
        let mut m1 = Machine::for_graph(&g);
        m1.run(&g).unwrap();
        assert!(EquivReport::compare(&g0, &m0, &m1).is_equal());
    }
}

#[test]
fn unifiable_membership_walks_dominate_grip_bookkeeping() {
    // The §3.1 cost claim, in miniature: on the same input, Unifiable-ops
    // walks far more node-steps for its sets than GRiP performs hops.
    let g0 = mixed_program(10);
    let mut gu = g0.clone();
    let ddg = Ddg::build(&gu, gu.entry);
    let mut ctx = Ctx::new(&gu, &ddg);
    let ranks = RankTable::new(&ddg, false);
    let region = gu.reachable();
    let (ustats, _) = schedule_unifiable(&mut gu, &mut ctx, &ranks, Resources::vliw(4), region);

    let mut gg = g0.clone();
    let ddg2 = Ddg::build(&gg, gg.entry);
    let mut ctx2 = Ctx::new(&gg, &ddg2);
    let ranks2 = RankTable::new(&ddg2, false);
    let region2 = gg.reachable();
    let out = schedule_region(
        &mut gg,
        &mut ctx2,
        &ranks2,
        GripConfig {
            resources: Resources::vliw(4),
            gap_prevention: false,
            dce: false,
            speculation: Default::default(),
            trace: false,
        },
        region2,
    );
    assert!(
        ustats.nodes_walked > out.stats.hops,
        "unifiable walked {} nodes vs {} GRiP hops",
        ustats.nodes_walked,
        out.stats.hops
    );
}

#[test]
fn post_is_exact_and_never_beats_grip() {
    // A representative subset across dependence classes (full sweep lives
    // in the bench harness).
    let names = ["LL1", "LL3", "LL5", "LL12"];
    let n = if cfg!(debug_assertions) { 20 } else { 48 };
    for k in kernels().iter().filter(|k| names.contains(&k.name)) {
        for fus in [2usize, 4] {
            let g0 = (k.build)(n);

            let mut g_grip = g0.clone();
            let grip = perfect_pipeline(
                &mut g_grip,
                PipelineOptions {
                    unwind: 2 * fus.min(8),
                    resources: Resources::vliw(fus),
                    fold_inductions: true,
                    gap_prevention: true,
                    dce: true,
                    try_roll: false,
                },
            );

            let mut g_post = g0.clone();
            let post = post_pipeline(&mut g_post, PostOptions::vliw(2 * fus.min(8), fus));
            g_post.validate().unwrap();

            // POST stays semantically exact.
            let mut m0 = Machine::for_graph(&g0);
            default_init(&g0, &mut m0, n);
            m0.run(&g0).unwrap();
            let mut m1 = Machine::for_graph(&g_post);
            default_init(&g_post, &mut m1, n);
            m1.run(&g_post).unwrap();
            let rep = EquivReport::compare(&g0, &m0, &m1);
            assert!(rep.is_equal(), "{} fus={fus}: POST diverged: {rep:?}", k.name);

            // And never beats GRiP by more than noise (Table 1's claim is
            // GRiP >= POST everywhere).
            let (sg, sp) = (grip.speedup(), post.speedup());
            if let (Some(sg), Some(sp)) = (sg, sp) {
                assert!(
                    sg >= sp - 0.35,
                    "{} fus={fus}: POST {sp:.2} unexpectedly beats GRiP {sg:.2}",
                    k.name
                );
            }
        }
    }
}

#[test]
fn post_breaking_respects_width_on_steady_rows() {
    let k = kernels().iter().find(|k| k.name == "LL1").unwrap();
    let n = if cfg!(debug_assertions) { 20 } else { 48 };
    let mut g = (k.build)(n);
    let post = post_pipeline(&mut g, PostOptions::vliw(8, 4));
    for &row in &post.steady {
        if g.node_exists(row) {
            assert!(
                g.node_op_count(row) <= 4,
                "steady row {row} holds {} ops",
                g.node_op_count(row)
            );
        }
    }
}
