//! Baseline behaviour: Unifiable-ops schedules are semantically exact and
//! pack like GRiP on simple code; POST is semantically exact and never
//! beats GRiP on the pipelined kernels (Table 1's qualitative claim).

use grip_analysis::{Ddg, RankTable};
use grip_baselines::{post_pipeline, schedule_unifiable, PostOptions};
use grip_core::{schedule_region, GripConfig, Resources};
use grip_ir::{Graph, OpKind, Operand, ProgramBuilder};
use grip_kernels::{default_init, kernels};
use grip_percolate::Ctx;
use grip_pipeline::{perfect_pipeline, PipelineOptions};
use grip_vm::{EquivReport, Machine};

fn mixed_program(independents: usize) -> Graph {
    let mut b = ProgramBuilder::new();
    let mut regs = Vec::new();
    for i in 0..independents {
        let r = b.named_reg(&format!("c{i}"));
        b.const_i(r, i as i64);
        regs.push(r);
    }
    let mut acc = b.named_reg("acc");
    b.const_i(acc, 0);
    for (i, &r) in regs.iter().enumerate() {
        acc = b.binary(&format!("s{i}"), OpKind::IAdd, Operand::Reg(acc), Operand::Reg(r));
    }
    b.live_out(acc);
    b.finish()
}

#[test]
fn unifiable_preserves_semantics_and_respects_width() {
    for fus in [2usize, 4] {
        let g0 = mixed_program(6);
        let mut g = g0.clone();
        let ddg = Ddg::build(&g, g.entry);
        let mut ctx = Ctx::new(&g, &ddg);
        let ranks = RankTable::new(&ddg, false);
        let region = g.reachable();
        let (stats, _) = schedule_unifiable(&mut g, &mut ctx, &ranks, Resources::vliw(fus), region);
        g.validate().unwrap();
        assert!(stats.arrivals > 0);
        assert!(stats.membership_tests >= stats.arrivals);
        for n in g.reachable() {
            assert!(g.node_op_count(n) <= fus);
        }
        let mut m0 = Machine::for_graph(&g0);
        m0.run(&g0).unwrap();
        let mut m1 = Machine::for_graph(&g);
        m1.run(&g).unwrap();
        assert!(EquivReport::compare(&g0, &m0, &m1).is_equal());
    }
}

#[test]
fn unifiable_membership_walks_dominate_grip_bookkeeping() {
    // The §3.1 cost claim, in miniature: on the same input, Unifiable-ops
    // walks far more node-steps for its sets than GRiP performs hops.
    let g0 = mixed_program(10);
    let mut gu = g0.clone();
    let ddg = Ddg::build(&gu, gu.entry);
    let mut ctx = Ctx::new(&gu, &ddg);
    let ranks = RankTable::new(&ddg, false);
    let region = gu.reachable();
    let (ustats, _) = schedule_unifiable(&mut gu, &mut ctx, &ranks, Resources::vliw(4), region);

    let mut gg = g0.clone();
    let ddg2 = Ddg::build(&gg, gg.entry);
    let mut ctx2 = Ctx::new(&gg, &ddg2);
    let ranks2 = RankTable::new(&ddg2, false);
    let region2 = gg.reachable();
    let out = schedule_region(
        &mut gg,
        &mut ctx2,
        &ranks2,
        GripConfig {
            resources: Resources::vliw(4),
            gap_prevention: false,
            dce: false,
            speculation: Default::default(),
            trace: false,
        },
        region2,
    );
    assert!(
        ustats.nodes_walked > out.stats.hops,
        "unifiable walked {} nodes vs {} GRiP hops",
        ustats.nodes_walked,
        out.stats.hops
    );
}

#[test]
fn post_is_exact_and_never_beats_grip() {
    // A representative subset across dependence classes (full sweep lives
    // in the bench harness).
    let names = ["LL1", "LL3", "LL5", "LL12"];
    let n = if cfg!(debug_assertions) { 20 } else { 48 };
    for k in kernels().iter().filter(|k| names.contains(&k.name)) {
        for fus in [2usize, 4] {
            let g0 = (k.build)(n);

            let mut g_grip = g0.clone();
            let grip = perfect_pipeline(
                &mut g_grip,
                PipelineOptions {
                    unwind: 2 * fus.min(8),
                    resources: Resources::vliw(fus),
                    fold_inductions: true,
                    gap_prevention: true,
                    dce: true,
                    try_roll: false,
                    audit: false,
                },
            );

            let mut g_post = g0.clone();
            let post = post_pipeline(&mut g_post, PostOptions::vliw(2 * fus.min(8), fus));
            g_post.validate().unwrap();

            // POST stays semantically exact.
            let mut m0 = Machine::for_graph(&g0);
            default_init(&g0, &mut m0, n);
            m0.run(&g0).unwrap();
            let mut m1 = Machine::for_graph(&g_post);
            default_init(&g_post, &mut m1, n);
            m1.run(&g_post).unwrap();
            let rep = EquivReport::compare(&g0, &m0, &m1);
            assert!(rep.is_equal(), "{} fus={fus}: POST diverged: {rep:?}", k.name);

            // And never beats GRiP by more than noise (Table 1's claim is
            // GRiP >= POST everywhere).
            let (sg, sp) = (grip.speedup(), post.speedup());
            if let (Some(sg), Some(sp)) = (sg, sp) {
                assert!(
                    sg >= sp - 0.35,
                    "{} fus={fus}: POST {sp:.2} unexpectedly beats GRiP {sg:.2}",
                    k.name
                );
            }
        }
    }
}

/// Mixed-class straight-line programs with destination reuse: the reuse
/// forces renaming moves (output conflicts and move-past-read), whose
/// compensation copies issue on the ALU class — exactly the swap that
/// used to overflow ALU caps on class-capped machines.
fn mixed_class_program(seed: u64) -> Graph {
    // splitmix64, as in the prop tests.
    let mut s = seed;
    let mut next = move || {
        s = s.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let mut b = ProgramBuilder::new();
    let x = b.array("x", 16);
    let mut pool: Vec<grip_ir::RegId> = Vec::new();
    for i in 0..4 {
        let r = b.named_reg(&format!("c{i}"));
        b.const_f(r, 1.0 + i as f64);
        pool.push(r);
    }
    for i in 0..14 {
        let a = pool[(next() % pool.len() as u64) as usize];
        let c = pool[(next() % pool.len() as u64) as usize];
        // Half the ops overwrite an existing register (rename fodder),
        // half define a fresh one.
        let reuse = next() % 2 == 0;
        let kind = [OpKind::Mul, OpKind::Add, OpKind::Sub][(next() % 3) as usize];
        if reuse {
            let d = pool[(next() % pool.len() as u64) as usize];
            b.emit(grip_ir::Operation::new(kind, Some(d), vec![Operand::Reg(a), Operand::Reg(c)]));
        } else {
            let d = b.binary(&format!("t{i}"), kind, Operand::Reg(a), Operand::Reg(c));
            pool.push(d);
        }
        if next() % 4 == 0 {
            let l = b.load(&format!("l{i}"), x, Operand::Imm(grip_ir::Value::I(i)), 0);
            pool.push(l);
        }
    }
    for &r in pool.iter().rev().take(4) {
        b.live_out(r);
    }
    b.finish()
}

/// The deterministic shape of the bug: an FPU op leaves a row whose two
/// ALU slots are already taken, and the move needs a rename (its
/// destination is also written in the target row). The compensation copy
/// is a third ALU op — on `clustered` (ALU cap 2) the departed row then
/// violates the issue template. With the `copy_swap_fits` check the hop
/// is refused instead.
#[test]
fn unifiable_refuses_renames_that_overflow_the_alu_cap() {
    use grip_ir::{Operation, Tree, TreePath, Value};
    use grip_machine::MachineDesc;

    let mut g = Graph::new();
    let (q, x, y) = (g.named_reg("q"), g.named_reg("x"), g.named_reg("y"));
    let (t, p) = (g.named_reg("t"), g.named_reg("p"));
    let (r1, r2) = (g.named_reg("r1"), g.named_reg("r2"));
    // Entry row: both ALU slots taken; t is written here, so pulling the
    // Mul up forces an output-conflict rename.
    let a0 = g.add_op(Operation::new(
        OpKind::IAdd,
        Some(t),
        vec![Operand::Reg(q), Operand::Imm(Value::I(1))],
    ));
    let a1 = g.add_op(Operation::new(
        OpKind::IAdd,
        Some(p),
        vec![Operand::Reg(q), Operand::Imm(Value::I(2))],
    ));
    // Second row: two immovable ALU ops (true-dependent on p) plus the
    // movable Mul that redefines t.
    let c1 = g.add_op(Operation::new(
        OpKind::IAdd,
        Some(r1),
        vec![Operand::Reg(p), Operand::Imm(Value::I(1))],
    ));
    let c2 = g.add_op(Operation::new(
        OpKind::IAdd,
        Some(r2),
        vec![Operand::Reg(p), Operand::Imm(Value::I(2))],
    ));
    let f = g.add_op(Operation::new(OpKind::Mul, Some(t), vec![Operand::Reg(x), Operand::Reg(y)]));
    let n1 = g.add_node(Tree::Leaf { ops: vec![c1, c2, f], succ: None });
    let entry = g.entry;
    g.insert_op_at(entry, TreePath::ROOT, a0);
    g.insert_op_at(entry, TreePath::ROOT, a1);
    g.set_succ(entry, TreePath::ROOT, Some(n1));
    g.live_out = vec![t, r1, r2];
    g.validate().unwrap();

    let desc = MachineDesc::clustered();
    assert!(desc.fits(&g, entry) && desc.fits(&g, n1), "input fits the template");

    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let ranks = RankTable::new(&ddg, false);
    let region = g.reachable();
    schedule_unifiable(&mut g, &mut ctx, &ranks, Resources::machine(desc), region);
    g.validate().unwrap();
    for n in g.reachable() {
        assert!(desc.fits(&g, n), "row {n} violates the issue template after scheduling");
    }
}

/// Satellite fix: the Unifiable-ops baseline must never emit rows that
/// violate the issue template of a class-capped machine. Renaming hops
/// leave ALU compensation copies behind; without the `copy_swap_fits`
/// re-check (ported from GRiP's `hop`) those copies overflow the ALU cap.
#[test]
fn unifiable_respects_issue_templates_on_class_capped_machines() {
    use grip_machine::MachineDesc;
    for seed in 0..8u64 {
        let g0 = mixed_class_program(seed);
        g0.validate().unwrap();
        for desc in [MachineDesc::clustered(), MachineDesc::mem_bound(), MachineDesc::epic8()] {
            let mut g = g0.clone();
            let ddg = Ddg::build(&g, g.entry);
            let mut ctx = Ctx::new(&g, &ddg);
            let ranks = RankTable::new(&ddg, false);
            let region = g.reachable();
            let resources = Resources::machine(desc);
            let (_, _) = schedule_unifiable(&mut g, &mut ctx, &ranks, resources, region);
            g.validate().unwrap_or_else(|e| panic!("seed {seed} on {}: {e}", desc.name));

            // Static template check over every surviving row.
            for n in g.reachable() {
                assert!(
                    desc.fits(&g, n),
                    "seed {seed} on {}: row {n} breaks the issue template",
                    desc.name
                );
            }

            // Dynamic check plus semantic equivalence.
            let init = |m: &mut Machine| {
                m.set_array_f(grip_ir::ArrayId::new(0), &[0.5; 16]);
            };
            let mut m0 = Machine::for_graph(&g0);
            init(&mut m0);
            m0.run(&g0).unwrap();
            let mut m1 = Machine::for_graph(&g);
            init(&mut m1);
            let stats = m1
                .run_model(&g, &desc)
                .unwrap_or_else(|e| panic!("seed {seed} on {}: {e}", desc.name));
            assert_eq!(
                stats.template_violations, 0,
                "seed {seed} on {}: template violations",
                desc.name
            );
            let rep = EquivReport::compare(&g0, &m0, &m1);
            assert!(rep.is_equal(), "seed {seed} on {}: diverged: {rep:?}", desc.name);
        }
    }
}

#[test]
fn post_breaking_respects_width_on_steady_rows() {
    let k = kernels().iter().find(|k| k.name == "LL1").unwrap();
    let n = if cfg!(debug_assertions) { 20 } else { 48 };
    let mut g = (k.build)(n);
    let post = post_pipeline(&mut g, PostOptions::vliw(8, 4));
    for &row in &post.steady {
        if g.node_exists(row) {
            assert!(
                g.node_op_count(row) <= 4,
                "steady row {row} holds {} ops",
                g.node_op_count(row)
            );
        }
    }
}
