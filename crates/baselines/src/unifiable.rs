//! The Unifiable-ops scheduler (§3.1, Figure 7) — the expensive technique
//! GRiP approximates (Ebcioğlu & Nicolau, ICS'89).
//!
//! For each node, the *Unifiable-ops* set holds exactly the operations that
//! can be moved **all the way** into the node by some sequence of PS
//! transformations; scheduling fills the node from that set in ranked
//! order. Nothing ever rests in intermediate nodes, so no resource barrier
//! can form — and, equivalently, no compaction happens below the node being
//! scheduled, which maximizes every operation's travel distance. Both
//! effects are the §3.1 cost the paper measures GRiP against, and both are
//! visible in this implementation: the membership test re-walks the whole
//! path for every candidate on every pick.

use grip_analysis::RankTable;
use grip_core::Resources;
use grip_ir::{Graph, NodeId, OpId, OpKind, Operand, TreePath};
use grip_percolate::{move_cj, move_op, plan_move_cj, plan_move_op, Ctx};
use std::collections::{HashMap, HashSet};

/// Counters for the cost comparison against GRiP.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnifiableStats {
    /// Unifiable-set membership tests performed.
    pub membership_tests: u64,
    /// Nodes walked during membership tests (the dominant cost).
    pub nodes_walked: u64,
    /// Successful full migrations.
    pub arrivals: u64,
    /// Single-instruction hops executed.
    pub hops: u64,
    /// Candidate-selection rounds.
    pub picks: u64,
}

/// Unifiable-ops scheduling over `region` (topological order).
/// No gap prevention: the paper shows the technique cannot prevent gaps
/// (Figure 9); the resulting schedules do not converge for pipelining.
pub struct UnifiableSched<'g, 'a> {
    g: &'g mut Graph,
    ctx: &'g mut Ctx<'a>,
    ranks: &'g RankTable,
    resources: Resources,
    region: Vec<NodeId>,
    pos: HashMap<NodeId, usize>,
    stats: UnifiableStats,
}

impl<'g, 'a> UnifiableSched<'g, 'a> {
    /// Create a scheduler over `region`.
    pub fn new(
        g: &'g mut Graph,
        ctx: &'g mut Ctx<'a>,
        ranks: &'g RankTable,
        resources: Resources,
        region: Vec<NodeId>,
    ) -> Self {
        let pos = region.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        UnifiableSched { g, ctx, ranks, resources, region, pos, stats: UnifiableStats::default() }
    }

    /// Run the Figure 7 loop over every region node, top-down.
    pub fn run(mut self) -> (UnifiableStats, Vec<NodeId>) {
        let mut i = 0;
        while i < self.region.len() {
            let n = self.region[i];
            if !self.g.node_exists(n) {
                self.region.remove(i);
                self.reindex();
                continue;
            }
            self.schedule_node(n);
            i += 1;
        }
        // Final cleanup of emptied nodes (Unifiable-ops empties whole rows).
        let mut j = 1;
        while j < self.region.len() {
            let n = self.region[j];
            if self.g.node_exists(n)
                && self.g.node(n).tree.is_empty()
                && grip_percolate::try_delete_empty(self.g, self.ctx, n)
            {
                self.region.remove(j);
                self.reindex();
                continue;
            }
            j += 1;
        }
        (self.stats, self.region)
    }

    fn reindex(&mut self) {
        self.pos = self.region.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    }

    fn schedule_node(&mut self, n: NodeId) {
        let mut rejected: HashSet<OpId> = HashSet::new();
        loop {
            if self.resources.exhausted(self.g, n) {
                break;
            }
            self.stats.picks += 1;
            // Recompute the Unifiable-ops set: every op below n that the
            // membership oracle certifies can reach n. (The paper's point:
            // this is expensive; GRiP replaces it with the trivial
            // Moveable-ops set.)
            let mut best: Option<(grip_analysis::Priority, OpId)> = None;
            let npos = self.pos[&n];
            for idx in npos + 1..self.region.len() {
                let m = self.region[idx];
                if !self.g.node_exists(m) {
                    continue;
                }
                let mops: Vec<OpId> = self.g.node_ops(m).iter().map(|&(_, o)| o).collect();
                for op in mops {
                    if rejected.contains(&op) {
                        continue;
                    }
                    let p = self.ranks.priority(self.g, op);
                    if best.map(|(bp, _)| p < bp).unwrap_or(true) && self.is_unifiable(n, op) {
                        best = Some((p, op));
                    }
                }
            }
            let Some((_, op)) = best else { break };
            if !self.migrate_fully(n, op) {
                // The oracle over-approximated (e.g. a renaming interaction);
                // never retry this op for this node.
                rejected.insert(op);
            } else {
                self.stats.arrivals += 1;
            }
        }
    }

    /// Forward path of nodes from `n` down to `target` (region edges only).
    fn path_down(&self, n: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
        let mut parent: HashMap<NodeId, NodeId> = HashMap::new();
        let mut stack = vec![n];
        let mut seen = HashSet::new();
        while let Some(m) = stack.pop() {
            if !seen.insert(m) {
                continue;
            }
            if m == target {
                let mut path = vec![target];
                let mut cur = target;
                while let Some(&p) = parent.get(&cur) {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            let mp = self.pos.get(&m).copied()?;
            for &s in self.g.unique_successors(m) {
                if self.pos.get(&s).is_some_and(|&sp| sp > mp) && !seen.contains(&s) {
                    parent.insert(s, m);
                    stack.push(s);
                }
            }
        }
        None
    }

    /// The membership oracle: can `op` reach `n` through every node on the
    /// way, with resources available at each landing?
    fn is_unifiable(&mut self, n: NodeId, op: OpId) -> bool {
        self.stats.membership_tests += 1;
        let Some(home) = self.g.placement(op) else { return false };
        let Some(path) = self.path_down(n, home) else { return false };
        // path = [n, ..., home]; hops go home -> ... -> n.
        let o = self.g.op(op);
        let is_cj = o.kind.is_cj();
        let is_store = o.kind.is_store();
        let mut reads: Vec<Operand> = o.src.clone();
        // A cj can only start moving from the root of its node.
        if is_cj {
            match self.g.node(home).tree.position_of(op) {
                Some(p) if p.is_empty() => {}
                _ => return false,
            }
        }
        // op's position within home: a store below a branch can't leave.
        if is_store && !self.g.node(home).tree.position_of(op).is_some_and(|p| p.is_empty()) {
            return false;
        }
        for w in path.windows(2).rev() {
            let (parent, child) = (w[0], w[1]);
            self.stats.nodes_walked += 1;
            let leaf = match self.g.node(parent).tree.leaf_paths_to(child).first() {
                Some(&l) => l,
                None => return false,
            };
            // Landing under a branch makes the *next* hop speculative:
            // fatal for stores (and structurally final for cjs).
            if parent != n && !leaf.is_empty() && (is_store || is_cj) {
                return false;
            }
            // Resource space at the landing node.
            if !self.resources.has_room(self.g, parent, op) {
                return false;
            }
            // Dependences against ops committing on the landing path,
            // with forward substitution through copies.
            let mut path_ops: Vec<OpId> = Vec::new();
            self.g.node(parent).tree.walk(&mut |p, t| {
                if p.is_prefix_of(leaf) {
                    path_ops.extend_from_slice(t.ops());
                }
            });
            if o.kind.is_mem() {
                let my_orig = self.g.op(op).orig;
                for &q in &path_ops {
                    let qo = self.g.op(q);
                    if qo.kind.is_mem() && self.ctx.ddg.mem_dep(qo.orig, my_orig) {
                        return false;
                    }
                }
            }
            for slot in reads.iter_mut() {
                let mut fuel = 8;
                while let Some(rr) = slot.reg() {
                    let Some(&writer) = path_ops.iter().find(|&&q| self.g.op(q).dest == Some(rr))
                    else {
                        break;
                    };
                    let wo = self.g.op(writer);
                    if wo.kind == OpKind::Copy && fuel > 0 {
                        *slot = wo.src[0];
                        fuel -= 1;
                    } else {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Execute the hops; returns true when the op arrives in `n`.
    fn migrate_fully(&mut self, n: NodeId, op: OpId) -> bool {
        loop {
            let Some(cur) = self.g.placement(op) else { return false };
            if cur == n {
                return true;
            }
            let Some(path) = self.path_down(n, cur) else { return false };
            let parent = path[path.len() - 2];
            let leaf: TreePath = match self.g.node(parent).tree.leaf_paths_to(cur).first() {
                Some(&l) => l,
                None => return false,
            };
            let is_cj = self.g.op(op).kind.is_cj();
            let ok = if is_cj {
                plan_move_cj(self.g, self.ctx, cur, parent, op, leaf, None).is_ok()
                    && move_cj(self.g, self.ctx, cur, parent, op, leaf).is_ok()
            } else {
                // A renaming hop leaves an ALU-class compensation copy in
                // `cur` where the departing op used to sit. On a machine
                // with per-class slot caps the swap changes `cur`'s class
                // footprint, so it must itself fit the issue template —
                // the membership oracle cannot see this (renaming is a
                // transformation detail), so the hop re-checks it here,
                // exactly as GRiP's `hop` does. Without the check the
                // baseline emits template-violating rows on class-capped
                // machines.
                match plan_move_op(self.g, self.ctx, cur, parent, op, leaf, None) {
                    Ok(plan) => {
                        let fits = !plan.needs_rename
                            || self.resources.desc().copy_swap_fits(
                                self.g,
                                cur,
                                self.g.op(op).kind,
                            );
                        fits && move_op(self.g, self.ctx, cur, parent, op, leaf).is_ok()
                    }
                    Err(_) => false,
                }
            };
            if !ok {
                return false;
            }
            self.stats.hops += 1;
            // Keep the region in sync with structural edits.
            if self.g.node_exists(cur) && self.g.node(cur).tree.is_empty() {
                let _ = grip_percolate::try_delete_empty(self.g, self.ctx, cur);
                if !self.g.node_exists(cur) {
                    self.region.retain(|&m| m != cur);
                    self.reindex();
                }
            }
            // New nodes from splits/residues: append next to cur.
            let known: HashSet<NodeId> = self.region.iter().copied().collect();
            let fresh: Vec<NodeId> = self
                .g
                .node_ids()
                .filter(|m| !known.contains(m) && self.g.node_exists(*m))
                .filter(|&m| {
                    // Only track nodes that belong to the scheduled area
                    // (reachable from region nodes).
                    self.region.iter().any(|&rn| {
                        self.g.node_exists(rn) && self.g.unique_successors(rn).contains(&m)
                    })
                })
                .collect();
            if !fresh.is_empty() {
                let at = self.pos.get(&parent).map(|&p| p + 1).unwrap_or(self.region.len());
                for (i, m) in fresh.into_iter().enumerate() {
                    self.region.insert((at + i).min(self.region.len()), m);
                }
                self.reindex();
            }
        }
    }
}

/// Convenience wrapper mirroring `grip_core::schedule_region`.
pub fn schedule_unifiable(
    g: &mut Graph,
    ctx: &mut Ctx<'_>,
    ranks: &RankTable,
    resources: Resources,
    region: Vec<NodeId>,
) -> (UnifiableStats, Vec<NodeId>) {
    UnifiableSched::new(g, ctx, ranks, resources, region).run()
}
