//! # grip-baselines — the techniques GRiP is measured against
//!
//! * [`schedule_unifiable`] — the Unifiable-ops scheduler of §3.1
//!   (Figure 7): per-node sets of operations that provably migrate all the
//!   way in, recomputed on every pick. Effective but expensive, and unable
//!   to prevent the gaps of Figure 9.
//! * [`post_pipeline`] — POST (§4, [Po91]): pipeline with infinite
//!   resources first, then break over-wide instructions and re-percolate.
//!   The Table 1 comparison partner.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod post;
mod unifiable;

pub use post::{break_rows, post_pipeline, PostOptions};
pub use unifiable::{schedule_unifiable, UnifiableSched, UnifiableStats};
