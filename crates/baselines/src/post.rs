//! POST (§4, [Po91]): resource constraints as a post-processing phase.
//!
//! > "First, GRiP scheduling is applied with infinite resources to obtain a
//! > pipelined loop. Second, POST applies resource constraints by breaking
//! > apart nodes that contain too many operations and allowing further
//! > percolation to fill any nodes that have become underutilized as a
//! > result of the breaking."
//!
//! Phase 1 runs the Perfect Pipelining stack unconstrained (with unfolded
//! induction chains — the configuration under which unconstrained
//! pipelining converges to its natural one-iteration-per-instruction
//! shape, exactly the behaviour §1 ascribes to unconstrained techniques).
//! Phase 2 peels the lowest-ranked operations out of over-wide
//! instructions into spill rows below them, honouring VLIW entry-fetch
//! semantics (an op may only move down if no op remaining in the row
//! writes one of its operands — otherwise the *writer* joins the peeled
//! set), then lets a resource-constrained GRiP pass re-fill the holes.

use grip_analysis::{Ddg, RankTable};
use grip_core::{schedule_region, GripConfig, Resources};
use grip_ir::{Graph, NodeId, OpId, RegId, Tree, TreePath};
use grip_percolate::Ctx;
use grip_pipeline::{
    detect, estimate_cpi, fu_lower_bound, perfect_pipeline, steady_rows, PipelineOptions,
    PipelineReport,
};
use std::collections::HashSet;

/// Options for [`post_pipeline`].
#[derive(Clone, Copy, Debug)]
pub struct PostOptions {
    /// Unwind factor for the unconstrained phase.
    pub unwind: usize,
    /// Functional units applied in the post-pass.
    pub fus: usize,
    /// Incremental dead-code removal.
    pub dce: bool,
}

/// Run the two-phase POST pipeline on the canonical loop of `g`, in place.
/// The result reports the *post-pass* steady state.
pub fn post_pipeline(g: &mut Graph, opts: PostOptions) -> PipelineReport {
    // Phase 1: unconstrained pipelining.
    let p1 = perfect_pipeline(
        g,
        PipelineOptions {
            unwind: opts.unwind,
            resources: Resources::UNLIMITED,
            fold_inductions: false,
            gap_prevention: true,
            dce: opts.dce,
            try_roll: false,
        },
    );
    let window = p1.window;
    let mut region = p1.region;

    // Phase 2a: break over-wide instructions.
    let ddg = Ddg::build(g, g.entry);
    let mut ctx = Ctx::new(g, &ddg);
    let ranks = RankTable::new(&ddg, true);
    break_rows(g, &ranks, &mut region, opts.fus);
    ctx.refresh(g);

    // Phase 2b: constrained re-percolation fills the holes.
    let cfg = GripConfig {
        resources: Resources::vliw(opts.fus),
        gap_prevention: true,
        dce: opts.dce,
        speculation: Default::default(),
        trace: false,
    };
    let out = schedule_region(g, &mut ctx, &ranks, cfg, region);

    let steady = steady_rows(g, &out.region, window.head);
    let pattern = detect(g, &window, &steady);
    let cpi_estimate = estimate_cpi(g, &window, &steady)
        .map(|c| fu_lower_bound(g, &window, &steady, opts.fus).map_or(c, |b| c.max(b)));
    PipelineReport {
        window,
        stats: out.stats,
        region: out.region,
        steady,
        pattern,
        cpi_estimate,
        rolled: None,
    }
}

/// Split every region row holding more than `fus` ordinary operations.
/// Returns the number of spill rows created.
pub fn break_rows(
    g: &mut Graph,
    ranks: &RankTable,
    region: &mut Vec<NodeId>,
    fus: usize,
) -> usize {
    let mut created = 0;
    let mut i = 0;
    while i < region.len() {
        let row = region[i];
        if !g.node_exists(row) {
            region.remove(i);
            continue;
        }
        if g.node_op_count(row) <= fus {
            i += 1;
            continue;
        }
        // Ops by descending priority; the lowest-ranked overflow peels off.
        let mut ops: Vec<OpId> = g
            .node_ops(row)
            .into_iter()
            .map(|(_, o)| o)
            .filter(|&o| !g.op(o).kind.is_cj())
            .collect();
        ranks.sort(g, &mut ops);
        let mut peel: HashSet<OpId> = ops[fus..].iter().copied().collect();
        // Entry-fetch closure: if a peeled op reads a register written by a
        // remaining op, that writer must be peeled too (its old value would
        // otherwise be destroyed before the moved read).
        loop {
            let remaining_writes: Vec<(RegId, OpId)> = ops
                .iter()
                .filter(|o| !peel.contains(o))
                .filter_map(|&o| g.op(o).dest.map(|d| (d, o)))
                .collect();
            let mut grew = false;
            for &s in peel.clone().iter() {
                for rr in g.op(s).reads() {
                    if let Some(&(_, w)) = remaining_writes.iter().find(|&&(d, _)| d == rr) {
                        if peel.insert(w) {
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
        if peel.is_empty() || peel.len() == ops.len() && g.node_op_count(row) <= fus {
            i += 1;
            continue;
        }
        // Spill each peeled op onto every outgoing path below its guard
        // position (ops at branch positions must keep committing on all
        // their paths, so residues are duplicated per path).
        let mut spills: Vec<(TreePath, NodeId)> = Vec::new();
        for op in peel {
            let pos = match g.node(row).tree.position_of(op) {
                Some(p) => p,
                None => continue,
            };
            let leaves: Vec<(TreePath, Option<NodeId>)> = g
                .node(row)
                .tree
                .leaves()
                .into_iter()
                .filter(|&(l, _)| pos.is_prefix_of(l))
                .collect();
            g.remove_op_from(row, op);
            let mut placed_original = false;
            for (leaf, _) in leaves {
                let spill = match spills.iter().find(|&&(l, _)| l == leaf) {
                    Some(&(_, n)) => n,
                    None => {
                        let succ = match g.node(row).tree.get(leaf) {
                            Some(Tree::Leaf { succ, .. }) => *succ,
                            _ => None,
                        };
                        let n = g.add_node(Tree::leaf(succ));
                        g.set_succ(row, leaf, Some(n));
                        spills.push((leaf, n));
                        created += 1;
                        // Insert after the row, keeping region order.
                        region.insert((i + 1).min(region.len()), n);
                        n
                    }
                };
                if placed_original {
                    let dup = g.dup_op(op);
                    g.insert_op_at(spill, TreePath::ROOT, dup);
                } else {
                    g.insert_op_at(spill, TreePath::ROOT, op);
                    placed_original = true;
                }
            }
        }
        // Revisit the same row (it may still be over-wide) and then the
        // spill rows in order.
    }
    created
}
