//! POST (§4, [Po91]): resource constraints as a post-processing phase.
//!
//! > "First, GRiP scheduling is applied with infinite resources to obtain a
//! > pipelined loop. Second, POST applies resource constraints by breaking
//! > apart nodes that contain too many operations and allowing further
//! > percolation to fill any nodes that have become underutilized as a
//! > result of the breaking."
//!
//! Phase 1 runs the Perfect Pipelining stack unconstrained (with unfolded
//! induction chains — the configuration under which unconstrained
//! pipelining converges to its natural one-iteration-per-instruction
//! shape, exactly the behaviour §1 ascribes to unconstrained techniques).
//! Phase 2 peels the lowest-ranked operations out of over-wide
//! instructions into spill rows below them, honouring VLIW entry-fetch
//! semantics (an op may only move down if no op remaining in the row
//! writes one of its operands — otherwise the *writer* joins the peeled
//! set), then lets a resource-constrained GRiP pass re-fill the holes.

use grip_analysis::{Ddg, RankTable};
use grip_core::{schedule_region, GripConfig, Resources};
use grip_ir::{Graph, NodeId, OpId, RegId, Tree, TreePath};
use grip_machine::{FuClass, MachineDesc, UNCAPPED};
use grip_percolate::Ctx;
use grip_pipeline::{
    certify_window, detect, perfect_pipeline, steady_rows, PipelineOptions, PipelineReport,
};
use std::collections::HashSet;

/// Options for [`post_pipeline`].
#[derive(Clone, Copy, Debug)]
pub struct PostOptions {
    /// Unwind factor for the unconstrained phase.
    pub unwind: usize,
    /// The machine applied in the post-pass.
    pub resources: Resources,
    /// Incremental dead-code removal.
    pub dce: bool,
}

impl PostOptions {
    /// The paper's configuration: a flat `fus`-unit machine.
    pub fn vliw(unwind: usize, fus: usize) -> PostOptions {
        PostOptions { unwind, resources: Resources::vliw(fus), dce: true }
    }
}

/// Run the two-phase POST pipeline on the canonical loop of `g`, in place.
/// The result reports the *post-pass* steady state.
pub fn post_pipeline(g: &mut Graph, opts: PostOptions) -> PipelineReport {
    // Phase 1: unconstrained pipelining.
    let p1 = perfect_pipeline(
        g,
        PipelineOptions {
            unwind: opts.unwind,
            resources: Resources::UNLIMITED,
            fold_inductions: false,
            gap_prevention: true,
            dce: opts.dce,
            try_roll: false,
            audit: false,
        },
    );
    let window = p1.window;
    let mut region = p1.region;

    // Phase 2a: break instructions that violate the issue template.
    let ddg = Ddg::build(g, g.entry);
    let mut ctx = Ctx::new(g, &ddg);
    let ranks = RankTable::new(&ddg, true);
    break_rows(g, &ranks, &mut region, opts.resources.desc());
    ctx.refresh(g);

    // Phase 2b: constrained re-percolation fills the holes.
    let cfg = GripConfig {
        resources: opts.resources,
        gap_prevention: true,
        dce: opts.dce,
        speculation: Default::default(),
        trace: false,
    };
    let out = schedule_region(g, &mut ctx, &ranks, cfg, region);

    let steady = steady_rows(g, &out.region, window.head);
    let pattern = detect(g, &window, &steady);
    // The shared certify step: the phase-2 DDG was rebuilt on the broken
    // rows, so re-percolated duplicates may miss some memory pairs — the
    // prover simply proves a (still sound) weaker bound there.
    let (bounds, cpi_estimate) = certify_window(g, &window, &steady, &ddg, opts.resources.desc());
    // Both scheduling passes (phase 1 compaction, phase 2b re-percolation)
    // contribute to the pick-loop profile.
    let mut phases = p1.phases;
    phases.accumulate(&out.phases);
    PipelineReport {
        window,
        stats: out.stats,
        region: out.region,
        steady,
        pattern,
        cpi_estimate,
        rolled: None,
        // POST's phase-2 row-breaking invalidates the phase-1 window's
        // orig bookkeeping, so the GRiP auditor does not apply here.
        audit: None,
        bounds,
        phases,
    }
}

/// Split every region row whose ordinary operations violate the machine's
/// issue template (total width or any per-class slot cap). The
/// highest-ranked operations that fit the template stay; the overflow
/// peels into spill rows below. Returns the number of spill rows created.
pub fn break_rows(
    g: &mut Graph,
    ranks: &RankTable,
    region: &mut Vec<NodeId>,
    desc: &MachineDesc,
) -> usize {
    let mut created = 0;
    let mut i = 0;
    while i < region.len() {
        let row = region[i];
        if !g.node_exists(row) {
            region.remove(i);
            continue;
        }
        if desc.fits(g, row) {
            i += 1;
            continue;
        }
        // Ops by descending priority; greedily keep what the template
        // admits (for a flat machine this is exactly "the first `fus`"),
        // the rest peels off.
        let mut ops: Vec<OpId> =
            g.node_ops(row).iter().map(|&(_, o)| o).filter(|&o| !g.op(o).kind.is_cj()).collect();
        ranks.sort(g, &mut ops);
        let mut kept = 0usize;
        let mut kept_class = [0usize; FuClass::COUNT];
        let mut peel: HashSet<OpId> = HashSet::new();
        for &o in &ops {
            let c = FuClass::of(g.op(o).kind);
            let cap = desc.class_slots[c.index()];
            if kept < desc.width && (cap == UNCAPPED || kept_class[c.index()] < cap) {
                kept += 1;
                kept_class[c.index()] += 1;
            } else {
                peel.insert(o);
            }
        }
        if peel.is_empty() {
            i += 1;
            continue;
        }
        // Entry-fetch closure: if a peeled op reads a register written by a
        // remaining op, that writer must be peeled too (its old value would
        // otherwise be destroyed before the moved read).
        loop {
            let remaining_writes: Vec<(RegId, OpId)> = ops
                .iter()
                .filter(|o| !peel.contains(o))
                .filter_map(|&o| g.op(o).dest.map(|d| (d, o)))
                .collect();
            let mut grew = false;
            for &s in peel.clone().iter() {
                for rr in g.op(s).reads() {
                    if let Some(&(_, w)) = remaining_writes.iter().find(|&&(d, _)| d == rr) {
                        if peel.insert(w) {
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
        if peel.len() == ops.len() {
            // The entry-fetch closure swallowed the whole row: moving
            // everything down would recreate the identical row below and
            // never terminate. Leave the row; the simulator's template
            // check reports the residual violation.
            i += 1;
            continue;
        }
        // Spill each peeled op onto every outgoing path below its guard
        // position (ops at branch positions must keep committing on all
        // their paths, so residues are duplicated per path). Spill in rank
        // order — iterating the HashSet directly would make spill-row op
        // order (and thus Phase 2b tie-breaking) nondeterministic.
        let mut peel: Vec<OpId> = peel.into_iter().collect();
        peel.sort_unstable(); // stable id order under rank ties
        ranks.sort(g, &mut peel);
        let mut spills: Vec<(TreePath, NodeId)> = Vec::new();
        for op in peel {
            let pos = match g.node(row).tree.position_of(op) {
                Some(p) => p,
                None => continue,
            };
            let leaves: Vec<(TreePath, Option<NodeId>)> = g
                .node(row)
                .tree
                .leaves()
                .into_iter()
                .filter(|&(l, _)| pos.is_prefix_of(l))
                .collect();
            g.remove_op_from(row, op);
            let mut placed_original = false;
            for (leaf, _) in leaves {
                let spill = match spills.iter().find(|&&(l, _)| l == leaf) {
                    Some(&(_, n)) => n,
                    None => {
                        let succ = match g.node(row).tree.get(leaf) {
                            Some(Tree::Leaf { succ, .. }) => *succ,
                            _ => None,
                        };
                        let n = g.add_node(Tree::leaf(succ));
                        g.set_succ(row, leaf, Some(n));
                        spills.push((leaf, n));
                        created += 1;
                        // Insert after the row, keeping region order.
                        region.insert((i + 1).min(region.len()), n);
                        n
                    }
                };
                if placed_original {
                    let dup = g.dup_op(op);
                    g.insert_op_at(spill, TreePath::ROOT, dup);
                } else {
                    g.insert_op_at(spill, TreePath::ROOT, op);
                    placed_original = true;
                }
            }
        }
        // Revisit the same row (it may still be over-wide) and then the
        // spill rows in order.
    }
    created
}
