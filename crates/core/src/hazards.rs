//! Hazard resolution: make every emitted schedule provably stall-free.
//!
//! The simulator's scoreboard (the VM's `run_model`) stalls an
//! instruction until every register it reads has retired from its
//! producer's pipeline: a producer of latency `L` issued at cycle `t`
//! makes its destination readable at cycle `t + L`, so a consumer must
//! sit at least `L` issued instructions downstream on every execution
//! path. GRiP's in-flight `latency_blocked` guard enforces this only for
//! the op being moved, only upward, and only inside the region — hazards
//! inherited from the sequential program, hazards around the loop back
//! edge, and hazards on the exit fix-up chains all survive scheduling and
//! were previously absorbed (and billed) as interlock stalls.
//!
//! This module closes the gap with a post-pass over the *whole* reachable
//! graph:
//!
//! 1. a countdown dataflow (internal `analyze`): for every node, the
//!    per-register number of delay cycles still outstanding at its entry,
//!    computed to a fixpoint with max-merge at joins (so loop back edges
//!    are covered) and per-leaf-path gen/kill inside instruction trees
//!    (a unit-latency redefinition shadows an older in-flight producer,
//!    exactly as the scoreboard's `ready` table does);
//! 2. **padding**: empty delay rows are spliced into precisely the edges
//!    whose source still carries a positive countdown for a register the
//!    target reads, until no hazard remains;
//! 3. **backfill**: ready operations from rows below are pulled up into
//!    open slots (legality via [`grip_percolate::plan_move_op`], landing
//!    re-checked against the countdown state, renaming and speculative
//!    moves excluded), and rows that empty out are deleted — but only
//!    through the hazard-preserving [`delete_would_create_hazard`] check,
//!    because removing a row between a multi-cycle producer and its
//!    consumer shrinks their issue distance by one and can re-introduce a
//!    hazard the schedule already paid for (the re-shrink bug).
//!
//! The invariant after [`resolve_hazards`] (and the roll-side
//! [`pad_hazards`]) is hard: [`scan_hazards`] returns zero, and a
//! `run_model` simulation of the graph charges zero
//! `stall_cycles`. On a unit-latency machine every entry point returns
//! immediately and the schedule is untouched, so the paper's flat model
//! pays nothing.

use grip_ir::{Graph, NodeId, OpId, RegId, Tree, TreePath};
use grip_machine::MachineDesc;
use grip_percolate::{apply_move_op, plan_move_op, try_delete_empty_if, Ctx};
use std::collections::{HashMap, HashSet, VecDeque};

/// Per-register outstanding delay cycles at a program point.
type Countdowns = HashMap<RegId, u32>;

/// Counters describing one hazard-resolution run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HazardStats {
    /// Hazardous (producer-too-close) edges found across all rounds.
    pub hazards: u64,
    /// Empty delay rows inserted to restore producer distances.
    pub delay_rows: u64,
    /// Ready operations pulled up from below into open slots.
    pub backfilled: u64,
    /// Subset of `backfilled` that climbed more than one row (multi-hop
    /// moves past resource barriers, see [`resolve_hazards`]).
    pub multihop: u64,
    /// Rows emptied by backfill and deleted (cycles reclaimed).
    pub reclaimed_rows: u64,
}

// ----------------------------------------------------------------------
// Countdown dataflow
// ----------------------------------------------------------------------

/// Predecessor map restricted to reachable nodes.
fn reachable_preds(g: &Graph, nodes: &[NodeId]) -> HashMap<NodeId, Vec<NodeId>> {
    let mut preds: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &n in nodes {
        for &s in g.unique_successors(n) {
            preds.entry(s).or_default().push(n);
        }
    }
    preds
}

/// Max-merge of the out-states of `preds`.
fn merged_input(outs: &HashMap<NodeId, Countdowns>, preds: &[NodeId]) -> Countdowns {
    let mut input = Countdowns::new();
    for p in preds {
        if let Some(out) = outs.get(p) {
            for (&r, &c) in out {
                input.entry(r).and_modify(|v| *v = (*v).max(c)).or_insert(c);
            }
        }
    }
    input
}

/// Transfer `input` through instruction `n`: one issue cycle elapses
/// (every countdown drops by one) and each path's writes install their
/// own countdowns, killing older in-flight producers of the same
/// register on that path. Paths are merged by max, which over-approximates
/// every selectable execution.
fn transfer(g: &Graph, desc: &MachineDesc, n: NodeId, input: &Countdowns) -> Countdowns {
    let decremented: Countdowns =
        input.iter().filter_map(|(&r, &c)| (c > 1).then_some((r, c - 1))).collect();
    let tree = &g.node(n).tree;
    let mut out = Countdowns::new();
    for (leaf, _) in tree.leaves() {
        let mut path_out = decremented.clone();
        tree.walk(&mut |p, t| {
            if !p.is_prefix_of(leaf) {
                return;
            }
            for &o in t.ops() {
                let op = g.op(o);
                if let Some(d) = op.dest {
                    let l = desc.latency_of(op.kind);
                    if l > 1 {
                        path_out.insert(d, l - 1);
                    } else {
                        path_out.remove(&d);
                    }
                }
            }
        });
        for (r, c) in path_out {
            out.entry(r).and_modify(|v| *v = (*v).max(c)).or_insert(c);
        }
    }
    out
}

/// Worklist fixpoint of the countdown dataflow over `nodes` (the
/// reachable set) with its predecessor map; returns each node's
/// *out*-state. Countdowns are bounded by `max_latency - 1` and the
/// transfer is monotone, so the iteration terminates.
fn analyze(
    g: &Graph,
    desc: &MachineDesc,
    nodes: &[NodeId],
    preds: &HashMap<NodeId, Vec<NodeId>>,
) -> HashMap<NodeId, Countdowns> {
    let mut outs: HashMap<NodeId, Countdowns> = HashMap::new();
    let mut queue: VecDeque<NodeId> = nodes.iter().copied().collect();
    let mut queued: HashSet<NodeId> = nodes.iter().copied().collect();
    while let Some(n) = queue.pop_front() {
        queued.remove(&n);
        let input = merged_input(&outs, preds.get(&n).map(Vec::as_slice).unwrap_or(&[]));
        let out = transfer(g, desc, n, &input);
        if outs.get(&n) != Some(&out) {
            outs.insert(n, out);
            for &s in g.unique_successors(n) {
                if queued.insert(s) {
                    queue.push_back(s);
                }
            }
        }
    }
    outs
}

/// Registers fetched by any operation of `n` (conditional-jump sources
/// included — the scoreboard waits on them too).
fn node_reads(g: &Graph, n: NodeId) -> HashSet<RegId> {
    let mut reads = HashSet::new();
    for &(_, op) in g.node_ops(n) {
        reads.extend(g.op(op).reads());
    }
    reads
}

/// Edges whose target still reads a register before its producer retires:
/// `(pred, node, delay rows needed)`.
fn hazard_edges(g: &Graph, desc: &MachineDesc) -> Vec<(NodeId, NodeId, u32)> {
    let nodes = g.reachable();
    let preds = reachable_preds(g, &nodes);
    let outs = analyze(g, desc, &nodes, &preds);
    let mut edges = Vec::new();
    for &n in &nodes {
        let reads = node_reads(g, n);
        if reads.is_empty() {
            continue;
        }
        for &p in preds.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
            let Some(out) = outs.get(&p) else { continue };
            let k = reads.iter().filter_map(|r| out.get(r)).copied().max().unwrap_or(0);
            if k > 0 {
                edges.push((p, n, k));
            }
        }
    }
    edges
}

/// Number of hazardous reads left in the graph — the stall-freedom
/// invariant is `scan_hazards(g, desc) == 0`, which implies a model run
/// charges zero interlock stalls.
pub fn scan_hazards(g: &Graph, desc: &MachineDesc) -> usize {
    if desc.max_latency() <= 1 {
        return 0;
    }
    hazard_edges(g, desc).len()
}

// ----------------------------------------------------------------------
// Padding
// ----------------------------------------------------------------------

/// Splice `k` empty delay rows into the edge `p -> n`, keeping `region`'s
/// schedule order consistent when either endpoint belongs to it. Returns
/// the rows in execution order (topmost first).
fn insert_delays(
    g: &mut Graph,
    region: Option<&mut Vec<NodeId>>,
    p: NodeId,
    n: NodeId,
    k: u32,
) -> Vec<NodeId> {
    let mut target = n;
    let mut chain = Vec::with_capacity(k as usize);
    for _ in 0..k {
        let d = g.add_node(Tree::leaf(Some(target)));
        chain.push(d);
        target = d;
    }
    chain.reverse(); // execution order: target (topmost) .. last-before-n
    let paths = g.node(p).tree.leaf_paths_to(n);
    for lp in paths {
        g.set_succ(p, lp, Some(target));
    }
    if let Some(region) = region {
        let pos: HashMap<NodeId, usize> = region.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        let at = match (pos.get(&p), pos.get(&n)) {
            // Forward region edge: the rows run just above n.
            (Some(&ip), Some(&ni)) if ip < ni => Some(ni),
            // Back edge (or n outside the region): after the source row.
            (Some(&ip), _) => Some(ip + 1),
            (None, Some(&ni)) => Some(ni),
            (None, None) => None,
        };
        if let Some(at) = at {
            for (i, &d) in chain.iter().enumerate() {
                region.insert((at + i).min(region.len()), d);
            }
        }
    }
    chain
}

/// Pad every hazardous edge with delay rows until the countdown analysis
/// finds nothing left. One round suffices in the acyclic case; back edges
/// may need another look, so the loop re-analyzes (bounded — padding only
/// ever grows distances).
fn pad_to_fixpoint(
    g: &mut Graph,
    mut region: Option<&mut Vec<NodeId>>,
    desc: &MachineDesc,
    stats: &mut HazardStats,
) {
    let rounds = 2 * desc.max_latency().max(2);
    for _ in 0..rounds {
        let edges = hazard_edges(g, desc);
        if edges.is_empty() {
            return;
        }
        for (p, n, k) in edges {
            stats.hazards += 1;
            stats.delay_rows += u64::from(k);
            insert_delays(g, region.as_deref_mut(), p, n, k);
        }
    }
    debug_assert!(
        hazard_edges(g, desc).is_empty(),
        "hazard padding failed to converge on {}",
        desc.name
    );
}

/// Make the whole reachable graph stall-free by padding alone (no region
/// bookkeeping, no backfill). Used after loop re-rolling, whose rotation
/// rows and shortened back edge change every cross-back-edge distance.
pub fn pad_hazards(g: &mut Graph, desc: &MachineDesc) -> HazardStats {
    let mut stats = HazardStats::default();
    if desc.max_latency() <= 1 {
        return stats;
    }
    let _span = grip_obs::span!("hazards");
    pad_to_fixpoint(g, None, desc, &mut stats);
    record_hazard_counters(&stats);
    stats
}

// ----------------------------------------------------------------------
// Hazard-preserving row deletion
// ----------------------------------------------------------------------

/// Would deleting the empty row `n` re-shrink a producer→consumer issue
/// distance below the producer's latency?
///
/// A producer `a` rows above `n` (any path) with latency `L` and a
/// consumer `b` rows below are `a + b` issue slots apart *through* `n`;
/// deletion makes that `a + b - 1`, which re-introduces a hazard exactly
/// when `b <= L - a`. The scan is conservative (it ignores same-register
/// shadowing across paths), so it can only refuse a deletion that was in
/// fact safe — costing one empty row, never a stall.
pub fn delete_would_create_hazard(
    g: &Graph,
    preds: &HashMap<NodeId, Vec<NodeId>>,
    desc: &MachineDesc,
    n: NodeId,
) -> bool {
    let lmax = desc.max_latency();
    if lmax <= 1 {
        return false;
    }
    // Upward sweep: registers still in flight at n's entry, with the
    // worst-case residual countdown `L - a` over all producers and paths.
    let mut hot: Countdowns = HashMap::new();
    let mut level: Vec<NodeId> = preds.get(&n).cloned().unwrap_or_default();
    let mut seen_up: HashSet<(NodeId, u32)> = HashSet::new();
    for a in 1..lmax {
        let mut next = Vec::new();
        for &m in &level {
            if !g.node_exists(m) || !seen_up.insert((m, a)) {
                continue;
            }
            for &(_, o) in g.node_ops(m) {
                let op = g.op(o);
                if let Some(d) = op.dest {
                    let l = desc.latency_of(op.kind);
                    if l > a {
                        hot.entry(d).and_modify(|c| *c = (*c).max(l - a)).or_insert(l - a);
                    }
                }
            }
            next.extend(preds.get(&m).cloned().unwrap_or_default());
        }
        level = next;
        if level.is_empty() {
            break;
        }
    }
    if hot.is_empty() {
        return false;
    }
    let cmax = hot.values().copied().max().unwrap_or(0);
    // Downward sweep: a read of a hot register within its residual
    // countdown would land too close once n stops issuing.
    let mut level: Vec<NodeId> = g.unique_successors(n).to_vec();
    let mut seen_dn: HashSet<(NodeId, u32)> = HashSet::new();
    for b in 1..=cmax {
        let mut next = Vec::new();
        for &m in &level {
            if !g.node_exists(m) || !seen_dn.insert((m, b)) {
                continue;
            }
            for &(_, o) in g.node_ops(m) {
                for r in g.op(o).reads() {
                    if hot.get(&r).copied().unwrap_or(0) >= b {
                        return true;
                    }
                }
            }
            next.extend(g.unique_successors(m));
        }
        level = next;
        if level.is_empty() {
            break;
        }
    }
    false
}

// ----------------------------------------------------------------------
// Backfill
// ----------------------------------------------------------------------

/// Pull ready operations from each region row into open slots of the live
/// row directly above it, then hazard-safely delete rows that emptied out.
/// Only plain moves are taken (no renaming — a compensation copy would
/// read the moved op's fresh result at distance one — and no speculation),
/// every landing is re-checked against the countdown state at the target's
/// entry, and stale states stay conservative because upward producer
/// motion only ever grows producer→consumer distances.
fn backfill(
    g: &mut Graph,
    ctx: &mut Ctx<'_>,
    desc: &MachineDesc,
    region: &mut Vec<NodeId>,
    stats: &mut HazardStats,
) {
    ctx.refresh(g);
    for _pass in 0..64 {
        let nodes = g.reachable();
        let preds = reachable_preds(g, &nodes);
        let outs = analyze(g, desc, &nodes, &preds);
        let mut changed = false;
        let live: Vec<NodeId> = region.iter().copied().filter(|&m| g.node_exists(m)).collect();
        for w in live.windows(2) {
            let (u, v) = (w[0], w[1]);
            if !g.node_exists(u) || !g.node_exists(v) {
                continue;
            }
            // Exactly one entry edge into v, and it must come from u —
            // otherwise the move would clone v (node splitting) or the
            // rows are not execution-adjacent.
            let vpreds = preds.get(&v).map(Vec::as_slice).unwrap_or(&[]);
            let entry_edges: usize =
                vpreds.iter().map(|&q| g.node(q).tree.leaf_paths_to(v).len()).sum();
            if entry_edges != 1 || !vpreds.contains(&u) {
                continue;
            }
            let Some(&path) = g.node(u).tree.leaf_paths_to(v).first() else { continue };
            let in_u = merged_input(&outs, preds.get(&u).map(Vec::as_slice).unwrap_or(&[]));
            let ops: Vec<OpId> = g
                .node_ops(v)
                .iter()
                .filter(|&&(_, o)| !g.op(o).kind.is_cj())
                .map(|&(_, o)| o)
                .collect();
            for op in ops {
                if !desc.has_room(g, u, op) {
                    continue;
                }
                let Ok(plan) = plan_move_op(g, ctx, v, u, op, path, None) else { continue };
                if plan.needs_rename || plan.speculative {
                    continue;
                }
                // Landing check on the *effective* sources (copy bypassing
                // may have rewritten them).
                let mut srcs = g.op(op).src.clone();
                for &(i, operand) in &plan.rewrites {
                    srcs[i] = operand;
                }
                if srcs
                    .iter()
                    .filter_map(|s| s.reg())
                    .any(|r| in_u.get(&r).copied().unwrap_or(0) > 0)
                {
                    continue;
                }
                let out = apply_move_op(g, ctx, v, u, op, path, &plan);
                debug_assert!(out.split.is_none(), "single-entry rows never split");
                stats.backfilled += 1;
                changed = true;
            }
        }
        // Reclaim rows the backfill emptied — through the hazard check, so
        // no reclaimed cycle re-shrinks a producer distance.
        let empties: Vec<NodeId> = region
            .iter()
            .skip(1)
            .copied()
            .filter(|&m| g.node_exists(m) && m != g.entry && g.node(m).tree.is_empty())
            .collect();
        // Moves do not change edges (splits are excluded above), so the
        // pass-level predecessor map stays valid until a deletion —
        // which rewires edges and forces a recompute.
        let mut preds_now = preds;
        let mut preds_stale = false;
        let mut deleted_any = false;
        for m in empties {
            if preds_stale {
                preds_now = g.predecessors();
                preds_stale = false;
            }
            if try_delete_empty_if(g, ctx, m, |g, m| {
                !delete_would_create_hazard(g, &preds_now, desc, m)
            }) {
                region.retain(|&x| x != m);
                stats.reclaimed_rows += 1;
                preds_stale = true;
                deleted_any = true;
                changed = true;
            }
        }
        if deleted_any {
            ctx.refresh(g);
        }
        if !changed {
            // One-step fixpoint: nothing moved or deleted this pass, so
            // `preds_now` still matches the graph. Ready work deeper down
            // may yet reach open slots past rows the adjacent sweep cannot
            // land in (§3.2 resource barriers) — try multi-hop climbs.
            changed = multihop_sweep(g, ctx, desc, region, &preds_now, stats);
        }
        if !changed {
            break;
        }
    }
}

/// Multi-hop climb sweep, run only at the one-step fixpoint: a ready op
/// deeper in a straight-line chain can pass *through* full (or hot)
/// intermediate rows on its way to an open slot — a transit never rests,
/// so only the landing row's template and producer distances matter. The
/// 16-cycle corridors of deep-latency machines are the motivating case:
/// the row directly beneath a delay row runs out of movable ops long
/// before the padding is full, while ready work three and four rows down
/// is walled off behind full compute rows.
///
/// Every hop of a climb is validated by [`climb_clear`] before the first
/// edit, so a started climb always reaches its landing row; landings are
/// re-checked against the *current* graph by [`landing_too_hot`] (the
/// pass-start countdown snapshot goes stale as climbed producers move),
/// so a climb never plants a hazard for the closing pad round to re-pay.
/// Rows therefore only ever empty and shrink, never re-pad: the schedule
/// cannot get longer.
fn multihop_sweep(
    g: &mut Graph,
    ctx: &mut Ctx<'_>,
    desc: &MachineDesc,
    region: &[NodeId],
    preds: &HashMap<NodeId, Vec<NodeId>>,
    stats: &mut HazardStats,
) -> bool {
    let mut changed = false;
    let live: Vec<NodeId> = region.iter().copied().filter(|&m| g.node_exists(m)).collect();
    for i in 0..live.len() {
        let u = live[i];
        // The corridor: the maximal run of simple (single-leaf,
        // single-entry, execution-adjacent) rows below u. Each element
        // stores the leaf path of its predecessor targeting it — the
        // `path` argument of the hop that leaves it.
        let mut chain: Vec<(NodeId, TreePath)> = Vec::new();
        let mut prev = u;
        for &v in live.iter().skip(i + 1) {
            let vpreds = preds.get(&v).map(Vec::as_slice).unwrap_or(&[]);
            let entry_edges: usize =
                vpreds.iter().map(|&q| g.node(q).tree.leaf_paths_to(v).len()).sum();
            if entry_edges != 1 || !vpreds.contains(&prev) {
                break;
            }
            let Some(&path) = g.node(prev).tree.leaf_paths_to(v).first() else { break };
            if !matches!(g.node(v).tree, Tree::Leaf { .. }) {
                break;
            }
            chain.push((v, path));
            prev = v;
        }
        // chain[0] is execution-adjacent to u — the one-step sweep already
        // exhausted it. Sources start two rows down.
        for k in 1..chain.len() {
            let w = chain[k].0;
            let ops: Vec<OpId> = g
                .node_ops(w)
                .iter()
                .filter(|&&(_, o)| !g.op(o).kind.is_cj())
                .map(|&(_, o)| o)
                .collect();
            for op in ops {
                if !desc.has_room(g, u, op)
                    || !climb_clear(g, ctx, u, &chain, k, op)
                    || landing_too_hot(g, preds, desc, u, op)
                {
                    continue;
                }
                // Apply the hops bottom-up; `climb_clear` proved each plan
                // comes back plain.
                for t in (0..=k).rev() {
                    let from = chain[t].0;
                    let to = if t == 0 { u } else { chain[t - 1].0 };
                    let path = chain[t].1;
                    let Ok(plan) = plan_move_op(g, ctx, from, to, op, path, None) else {
                        debug_assert!(false, "prechecked climb hop must plan");
                        break;
                    };
                    debug_assert!(
                        plan.rewrites.is_empty() && !plan.needs_rename && !plan.speculative,
                        "prechecked climb hop must be a plain move"
                    );
                    let out = apply_move_op(g, ctx, from, to, op, path, &plan);
                    debug_assert!(out.split.is_none(), "single-entry rows never split");
                    changed = true;
                }
                stats.backfilled += 1;
                stats.multihop += 1;
            }
        }
    }
    changed
}

/// Would every hop of climbing `op` from `chain[k]` through
/// `chain[k-1..=0]` into `u` plan as a plain move (no rename, no operand
/// rewrite, non-speculative)? Mirrors [`plan_move_op`]'s conditions for
/// root-placed ops moving between single-leaf single-entry rows; those
/// conditions depend only on the contents of the rows along the corridor,
/// which the climb itself never alters — so a `true` here guarantees
/// every subsequent plan succeeds.
fn climb_clear(
    g: &Graph,
    ctx: &Ctx<'_>,
    u: NodeId,
    chain: &[(NodeId, TreePath)],
    k: usize,
    op: OpId,
) -> bool {
    let o = g.op(op);
    let reads: Vec<RegId> = o.reads().collect();
    let dest = o.dest;
    let is_mem = o.kind.is_mem();
    let orig = o.orig;
    for t in (0..=k).rev() {
        let leaving = chain[t].0;
        // Ops the hop lands among: for interior targets the whole
        // single-leaf row; for the head row only the ops committing on the
        // entry path — exactly the planner's path set.
        let target_ops: Vec<OpId> = if t == 0 {
            ops_committing_on(g, u, chain[0].1)
        } else {
            g.node_ops(chain[t - 1].0).iter().map(|&(_, p)| p).collect()
        };
        for &p in &target_ops {
            let pr = g.op(p);
            if is_mem && pr.kind.is_mem() && ctx.ddg.mem_dep(pr.orig, orig) {
                return false; // memory dependence
            }
            if pr.dest.is_some_and(|d| reads.contains(&d)) {
                return false; // true dependence (no copy bypass in a climb)
            }
            if dest.is_some() && pr.dest == dest {
                return false; // output conflict would force a rename
            }
        }
        // Move-past-read: a co-resident op reading the mover's dest at
        // entry would observe the new value once the mover leaves upward.
        if let Some(d) = dest {
            if g.node(leaving)
                .tree
                .placed_ops()
                .iter()
                .any(|&(_, q)| q != op && g.op(q).reads_reg(d))
            {
                return false;
            }
        }
    }
    true
}

/// Ops committing on `leaf_path` of `n` (mirror of the move planner's
/// path set).
fn ops_committing_on(g: &Graph, n: NodeId, leaf_path: TreePath) -> Vec<OpId> {
    let mut out = Vec::new();
    g.node(n).tree.walk(&mut |p, t| {
        if p.is_prefix_of(leaf_path) {
            out.extend_from_slice(t.ops());
        }
    });
    out
}

/// Would `op`, landing at `n`, read a register whose producer is still in
/// flight at `n`'s entry? An upward walk over the *current* graph — the
/// multi-hop sweep moves producers between checks, so the pass-start
/// countdown snapshot cannot be trusted. Conservative: any definition
/// within latency range counts, even if a nearer redefinition shadows it.
fn landing_too_hot(
    g: &Graph,
    preds: &HashMap<NodeId, Vec<NodeId>>,
    desc: &MachineDesc,
    n: NodeId,
    op: OpId,
) -> bool {
    let reads: Vec<RegId> = g.op(op).reads().collect();
    if reads.is_empty() {
        return false;
    }
    let lmax = desc.max_latency();
    let mut level: Vec<NodeId> = preds.get(&n).cloned().unwrap_or_default();
    let mut seen: HashSet<(NodeId, u32)> = HashSet::new();
    for b in 1..lmax {
        let mut next = Vec::new();
        for &m in &level {
            if !g.node_exists(m) || !seen.insert((m, b)) {
                continue;
            }
            for &(_, o) in g.node_ops(m) {
                let pr = g.op(o);
                if let Some(d) = pr.dest {
                    if reads.contains(&d) && desc.latency_of(pr.kind) > b {
                        return true;
                    }
                }
            }
            if let Some(ps) = preds.get(&m) {
                next.extend_from_slice(ps);
            }
        }
        level = next;
        if level.is_empty() {
            break;
        }
    }
    false
}

// ----------------------------------------------------------------------
// Entry point
// ----------------------------------------------------------------------

/// Resolve every latency hazard in the reachable graph: pad, backfill
/// ready work into the padding, pad whatever the backfill exposed, and
/// assert the invariant. `region` is kept in schedule order (delay rows
/// are inserted at their execution position) for downstream pattern
/// detection. No-op on unit-latency machines.
pub fn resolve_hazards(
    g: &mut Graph,
    ctx: &mut Ctx<'_>,
    desc: &MachineDesc,
    region: &mut Vec<NodeId>,
) -> HazardStats {
    let mut stats = HazardStats::default();
    if desc.max_latency() <= 1 {
        return stats;
    }
    let _span = grip_obs::span!("hazards");
    pad_to_fixpoint(g, Some(region), desc, &mut stats);
    backfill(g, ctx, desc, region, &mut stats);
    pad_to_fixpoint(g, Some(region), desc, &mut stats);
    ctx.refresh(g);
    debug_assert_eq!(scan_hazards(g, desc), 0, "schedule not stall-free on {}", desc.name);
    record_hazard_counters(&stats);
    stats
}

/// Fold one resolution run's [`HazardStats`] into the process-wide
/// metrics registry.
fn record_hazard_counters(s: &HazardStats) {
    grip_obs::counter!("grip_hazard_edges_total").add(s.hazards);
    grip_obs::counter!("grip_hazard_delay_rows_total").add(s.delay_rows);
    grip_obs::counter!("grip_hazard_backfills_total").add(s.backfilled);
    grip_obs::counter!("grip_hazard_multihop_total").add(s.multihop);
    grip_obs::counter!("grip_hazard_reclaimed_rows_total").add(s.reclaimed_rows);
}

#[cfg(test)]
mod tests {
    use super::*;
    use grip_analysis::Ddg;
    use grip_ir::{OpKind, Operand, Operation, ProgramBuilder, RegId, Tree, TreePath, Value};
    use grip_machine::LatencyTable;

    /// A flat machine with 3-cycle loads (everything else single-cycle).
    fn mem3(width: usize) -> MachineDesc {
        MachineDesc {
            latency: LatencyTable { alu: 1, fpu: 1, fpu_long: 1, mem: 3, branch: 1 },
            ..MachineDesc::uniform(width)
        }
    }

    /// load t = x[0] ; u = t + 1.0 — a distance-1 use of a 3-cycle load.
    fn load_use_chain() -> (grip_ir::Graph, RegId) {
        let mut b = ProgramBuilder::new();
        let x = b.array("x", 4);
        let t = b.load("t", x, Operand::Imm(Value::I(0)), 0);
        let u = b.binary("u", OpKind::Add, Operand::Reg(t), Operand::Imm(Value::F(1.0)));
        b.live_out(u);
        (b.finish(), u)
    }

    #[test]
    fn padding_restores_producer_distance() {
        let (mut g, _) = load_use_chain();
        let desc = mem3(4);
        assert!(scan_hazards(&g, &desc) > 0, "the sequential chain carries the hazard");
        let before = g.node_count();
        let stats = pad_hazards(&mut g, &desc);
        g.validate().unwrap();
        assert_eq!(stats.delay_rows, 2, "a 3-cycle load needs two rows of slack");
        assert_eq!(g.node_count(), before + 2);
        assert_eq!(scan_hazards(&g, &desc), 0);

        let mut m = grip_vm::Machine::for_graph(&g);
        m.set_array_f(grip_ir::ArrayId::new(0), &[5.0; 4]);
        let stats = m.run_model(&g, &desc).unwrap();
        assert_eq!(stats.stall_cycles, 0, "padding must satisfy the scoreboard");
    }

    #[test]
    fn unit_latency_is_a_no_op() {
        let (mut g, _) = load_use_chain();
        let before = g.node_count();
        let stats = pad_hazards(&mut g, &MachineDesc::uniform(4));
        assert_eq!(stats, HazardStats::default());
        assert_eq!(g.node_count(), before);
    }

    #[test]
    fn backfill_reclaims_independent_work() {
        // load t ; u = t + 1 ; v = k + 1 — the independent ALU op below
        // the hazard can ride up into the delay slack, emptying its row.
        let mut b = ProgramBuilder::new();
        let x = b.array("x", 4);
        let k = b.named_reg("k");
        b.const_i(k, 7);
        let t = b.load("t", x, Operand::Imm(Value::I(0)), 0);
        let u = b.binary("u", OpKind::Add, Operand::Reg(t), Operand::Imm(Value::F(1.0)));
        let v = b.binary("v", OpKind::IAdd, Operand::Reg(k), Operand::Imm(Value::I(1)));
        b.live_out(u);
        b.live_out(v);
        let mut g = b.finish();
        let desc = mem3(4);
        let ddg = Ddg::build(&g, g.entry);
        let mut ctx = Ctx::new(&g, &ddg);
        let mut region: Vec<grip_ir::NodeId> = g.reachable();
        let stats = resolve_hazards(&mut g, &mut ctx, &desc, &mut region);
        g.validate().unwrap();
        assert_eq!(scan_hazards(&g, &desc), 0);
        assert_eq!(stats.delay_rows, 2);
        assert!(stats.backfilled >= 1, "v should ride up into the slack: {stats:?}");
        assert!(stats.reclaimed_rows >= 1, "emptied rows are reclaimed: {stats:?}");
        // Region order still matches execution order.
        let mut m = grip_vm::Machine::for_graph(&g);
        m.set_array_f(grip_ir::ArrayId::new(0), &[5.0; 4]);
        let run = m.run_model(&g, &desc).unwrap();
        assert_eq!(run.stall_cycles, 0);
        assert_eq!(m.reg(u), Some(Value::F(6.0)));
        assert_eq!(m.reg(v), Some(Value::I(8)));
    }

    #[test]
    fn padding_splices_the_loop_back_edge() {
        // t is loaded (4-cycle) one row before the latch and consumed at
        // the loop head: the only hazard runs *around the back edge*, so
        // the delay row must be spliced into the latch's continue side —
        // the same shape a re-rolled loop's rotation rows produce.
        let n = 6i64;
        let mut b = ProgramBuilder::new();
        let x = b.array("x", (n + 8) as usize);
        let t = b.named_reg("t");
        b.const_f(t, 0.5);
        let acc = b.named_reg("acc");
        b.const_f(acc, 1.0);
        let k = b.named_reg("k");
        b.const_i(k, 0);
        b.begin_loop();
        let s = b.binary("s", OpKind::Mul, Operand::Reg(acc), Operand::Reg(t));
        b.emit(Operation::new(
            OpKind::Add,
            Some(acc),
            vec![Operand::Reg(s), Operand::Imm(Value::F(0.25))],
        ));
        b.iadd_imm(k, k, 1);
        b.emit(Operation::new(OpKind::Load(x), Some(t), vec![Operand::Reg(k)]));
        let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(n)));
        b.end_loop(c);
        let mut g = b.finish();
        g.live_out = vec![acc, k];
        let g0 = g.clone();

        let desc = MachineDesc {
            latency: LatencyTable { alu: 1, fpu: 1, fpu_long: 1, mem: 4, branch: 1 },
            ..MachineDesc::uniform(4)
        };
        // load -> cmp -> latch -> (back edge) -> Mul is 3 issue slots; a
        // 4-cycle load needs 4, so exactly one delay row goes in.
        let stats = pad_hazards(&mut g, &desc);
        g.validate().unwrap();
        assert_eq!(stats.delay_rows, 1, "{stats:?}");
        assert_eq!(scan_hazards(&g, &desc), 0);

        let init = |m: &mut grip_vm::Machine| {
            let xs: Vec<f64> = (0..n + 8).map(|i| 0.125 * i as f64).collect();
            m.set_array_f(grip_ir::ArrayId::new(0), &xs);
        };
        let mut m0 = grip_vm::Machine::for_graph(&g0);
        init(&mut m0);
        m0.run(&g0).unwrap();
        let mut m1 = grip_vm::Machine::for_graph(&g);
        init(&mut m1);
        let run = m1.run_model(&g, &desc).unwrap();
        assert_eq!(run.stall_cycles, 0, "the padded back edge satisfies the scoreboard");
        assert!(grip_vm::EquivReport::compare(&g0, &m0, &m1).is_equal());
    }

    #[test]
    fn deletion_guard_catches_the_reshrink() {
        // P(load, 3 cycles) -> E(empty) -> D(empty) -> C(reads the load):
        // the distance is exactly 3; deleting either empty row re-shrinks
        // it below the latency.
        let mut g = grip_ir::Graph::new();
        let x = g.array("x", 4);
        let t = g.named_reg("t");
        let u = g.named_reg("u");
        let ld =
            g.add_op(Operation::new(OpKind::Load(x), Some(t), vec![Operand::Imm(Value::I(0))]));
        let use_ = g.add_op(Operation::new(
            OpKind::Add,
            Some(u),
            vec![Operand::Reg(t), Operand::Imm(Value::F(1.0))],
        ));
        let c = g.add_node(Tree::Leaf { ops: vec![use_], succ: None });
        let d = g.add_node(Tree::leaf(Some(c)));
        let e = g.add_node(Tree::leaf(Some(d)));
        let p = g.add_node(Tree::Leaf { ops: vec![ld], succ: Some(e) });
        g.set_succ(g.entry, TreePath::ROOT, Some(p));
        g.live_out = vec![u];
        g.validate().unwrap();

        let desc = mem3(4);
        let preds = g.predecessors();
        assert!(delete_would_create_hazard(&g, &preds, &desc, e));
        assert!(delete_would_create_hazard(&g, &preds, &desc, d));
        // Under unit latencies the same deletions are free.
        assert!(!delete_would_create_hazard(&g, &preds, &MachineDesc::uniform(4), e));
        // An unrelated consumer does not pin the row.
        let desc1 = mem3(4);
        let mut g2 = g.clone();
        let k = g2.named_reg("k");
        let indep =
            g2.add_op(Operation::new(OpKind::Copy, Some(k), vec![Operand::Imm(Value::I(1))]));
        g2.remove_op_from(c, use_);
        g2.insert_op_at(c, TreePath::ROOT, indep);
        let preds2 = g2.predecessors();
        assert!(!delete_would_create_hazard(&g2, &preds2, &desc1, e));
    }
}
