//! # grip-core — the GRiP scheduler
//!
//! The paper's contribution: **G**lobal **R**esource-constrained
//! **P**ercolation scheduling (§3.2–§3.4).
//!
//! GRiP fills each instruction, in a top-down traversal, with the best
//! operations from its *Moveable-ops* set — every operation below the node
//! that has not been frozen by a dependence on a frozen op. Unlike the
//! Unifiable-ops technique it approximates, operations that fail to reach
//! the node stay wherever they got to, compacting the subgraph below as a
//! side effect; full intermediate instructions form tolerated *resource
//! barriers*.
//!
//! For Perfect Pipelining, the §3.3 **gap prediction and prevention**
//! facility guards every single-instruction hop with the `Gapless-move`
//! test and the three suspension rules, guaranteeing (Theorems 1–2) that
//! only fillable, temporary gaps ever form — which is what makes the
//! pipelined pattern converge.
//!
//! Entry point: [`schedule_region`] (or the [`Grip`] builder for tracing).

#![warn(missing_docs)]

mod grip;
mod resources;

pub use grip::{
    schedule_region, Grip, GripConfig, ScheduleOutput, ScheduleStats, Speculation, TraceEvent,
};
pub use grip_machine::{FuClass, LatencyTable, MachineDesc, MachineError, MachineModel, UNCAPPED};
pub use resources::Resources;
