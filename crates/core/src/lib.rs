//! # grip-core — the GRiP scheduler
//!
//! The paper's contribution: **G**lobal **R**esource-constrained
//! **P**ercolation scheduling (§3.2–§3.4).
//!
//! GRiP fills each instruction, in a top-down traversal, with the best
//! operations from its *Moveable-ops* set — every operation below the node
//! that has not been frozen by a dependence on a frozen op. Unlike the
//! Unifiable-ops technique it approximates, operations that fail to reach
//! the node stay wherever they got to, compacting the subgraph below as a
//! side effect; full intermediate instructions form tolerated *resource
//! barriers*.
//!
//! For Perfect Pipelining, the §3.3 **gap prediction and prevention**
//! facility guards every single-instruction hop with the `Gapless-move`
//! test and the three suspension rules, guaranteeing (Theorems 1–2) that
//! only fillable, temporary gaps ever form — which is what makes the
//! pipelined pattern converge.
//!
//! On machines with multi-cycle latencies, every schedule leaving the
//! scheduler is additionally **stall-free**: the [`hazards`]
//! post-pass re-checks producer→consumer issue distances over the whole
//! reachable graph (loop back edges and exit paths included), backfills
//! ready work into the slack, and pads whatever is left with delay rows,
//! so the simulator's scoreboard (the VM's `run_model`)
//! charges zero interlock stalls.
//!
//! Entry point: [`schedule_region`] (or the [`Grip`] builder for tracing).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod grip;
pub mod hazards;
mod resources;

pub use grip::{
    schedule_region, Grip, GripConfig, PhaseTimes, ScheduleOutput, ScheduleStats, Speculation,
    TraceEvent,
};
pub use grip_machine::{FuClass, LatencyTable, MachineDesc, MachineError, MachineModel, UNCAPPED};
pub use hazards::HazardStats;
pub use resources::Resources;
