//! The GRiP scheduler (Figures 10 and 12).
//!
//! A node is scheduled by repeatedly choosing the highest-ranked operation
//! from its *Moveable-ops* set — every operation on the subgraph below it
//! that has not been frozen — and migrating it upward one instruction at a
//! time. Operations that cannot reach the node are left wherever they got
//! to (partial compaction of the subgraph below, the key difference from
//! Unifiable-ops scheduling); full intermediate nodes simply stop them
//! (resource barriers, §3.2, tolerated by design).
//!
//! With gap prevention enabled (§3.3), every single hop is guarded by the
//! `Gapless-move` test and the three suspension rules, which is what makes
//! Perfect Pipelining converge.

use crate::resources::Resources;
use grip_analysis::RankTable;
use grip_ir::{Graph, NodeId, OpId, TreePath};
use grip_percolate::{
    apply_move_cj, apply_move_op, plan_move_cj, plan_move_op, propagate_copies, remove_if_dead,
    try_delete_empty, Ctx, MoveFail,
};
use std::collections::HashSet;
use std::time::Instant;

/// When may an operation move *speculatively* (past a conditional it was
/// guarded by)?
///
/// §1: "when a large number of resources are currently available, it would
/// be worthwhile to allow the speculative scheduling of operations; on the
/// other hand, with only a few resources, it might be better to prohibit
/// it until all non-speculative operations have been scheduled." The paper
/// itself always allows speculation ("Without speculative scheduling
/// heuristics, GRiP always allows speculative scheduling") — that is the
/// default — but the heuristic is "completely abstracted away from the
/// actual transformations", which this policy type reproduces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Speculation {
    /// The paper's behaviour: speculation is always allowed.
    #[default]
    Always,
    /// Never move an operation past a guarding conditional.
    Never,
    /// Allow speculation only while the target instruction still has at
    /// least this many free functional-unit slots — scarce slots are
    /// reserved for non-speculative work.
    WhenSlotsFree(usize),
}

impl Speculation {
    fn allows(self, free_slots: usize) -> bool {
        match self {
            Speculation::Always => true,
            Speculation::Never => false,
            Speculation::WhenSlotsFree(m) => free_slots >= m,
        }
    }
}

/// Scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct GripConfig {
    /// Machine resources.
    pub resources: Resources,
    /// Enable the §3.3 gap prediction and prevention facility.
    pub gap_prevention: bool,
    /// Remove dead operations incrementally while scheduling (§4).
    pub dce: bool,
    /// Speculative-motion policy (see [`Speculation`]).
    pub speculation: Speculation,
    /// Record [`TraceEvent`]s (used by the figure-regeneration binaries).
    pub trace: bool,
}

impl Default for GripConfig {
    fn default() -> Self {
        GripConfig {
            resources: Resources::UNLIMITED,
            gap_prevention: true,
            dce: true,
            speculation: Speculation::Always,
            trace: false,
        }
    }
}

/// Counters describing one scheduling run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Successful single-instruction hops.
    pub hops: u64,
    /// Operations that reached the node being scheduled.
    pub arrivals: u64,
    /// Renamings performed (compensation copies inserted).
    pub renames: u64,
    /// Node splits (multi-predecessor copies).
    pub splits: u64,
    /// Gap-prevention suspensions.
    pub suspensions: u64,
    /// Moves rejected by the Gapless-move test.
    pub gap_rejections: u64,
    /// Hops rejected because the target instruction was full.
    pub resource_blocks: u64,
    /// Hops rejected because landing would put the op closer to a
    /// multi-cycle producer than the producer's latency.
    pub latency_blocks: u64,
    /// Dead operations removed during scheduling.
    pub dce_removed: u64,
    /// Empty instructions deleted.
    pub nodes_deleted: u64,
    /// Empty-row deletions refused because they would re-shrink a
    /// producer→consumer distance below the producer's latency.
    pub deletions_blocked: u64,
    /// Candidate-selection rounds.
    pub picks: u64,
    /// Speculative hops vetoed by the speculation policy.
    pub speculation_vetoes: u64,
    /// Delay rows inserted by the hazard-resolution post-pass.
    pub hazard_delay_rows: u64,
    /// Ready ops backfilled into delay rows by the post-pass.
    pub hazard_backfills: u64,
    /// Rows emptied by backfill and reclaimed by the post-pass.
    pub hazard_reclaimed_rows: u64,
    /// Iteration-loop exits taken because the live region already matched
    /// the class-aware pigeonhole resource bound (provably row-optimal).
    pub bound_exits: u64,
}

/// One event of a traced schedule.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// Scheduling moved on to a new node.
    Node(NodeId),
    /// `op` hopped from `from` into `to` (`arrived` = `to` is the node
    /// being scheduled).
    Hop {
        /// The moved operation.
        op: OpId,
        /// Source instruction.
        from: NodeId,
        /// Target instruction.
        to: NodeId,
        /// Whether this hop completed the migration.
        arrived: bool,
    },
    /// `op` was suspended by gap prevention while sitting in `at`.
    Suspend {
        /// The suspended operation.
        op: OpId,
        /// Where it was suspended.
        at: NodeId,
    },
    /// All suspensions lifted after a successful move.
    Unsuspend,
}

/// Per-phase wall-clock self time of the pick loop, the scheduler's own
/// profile: where does `schedule_ns` actually go? Kept **outside**
/// [`ScheduleStats`] deliberately — stats ride the wire and participate
/// in the bit-identity invariant (a cache hit must equal its cold run,
/// counters included), while timings vary run to run. Phases:
///
/// * `cand_refresh` — building, sorting, and scanning the priority
///   candidate list in [`Grip::pick_candidate`];
/// * `legality` — the per-hop probe chain in [`Grip::migrate`]:
///   parent search, suspension rules, resource/template room, latency
///   guard, gapless-move test, and the `plan_move_*` dry runs;
/// * `commit` — applying planned moves (`apply_move_*`, region splices,
///   empty-row deletes) inside [`Grip::hop`];
/// * `dead_sweep` — incremental dead-op sweeping and the DCE / empty-row
///   passes between nodes.
///
/// The four phases don't cover the whole `grip` span (the bound-exit
/// check, hazard post-pass, and loop bookkeeping fall outside), so they
/// are reported as self-times, not a decomposition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Candidate-list refresh + scan nanoseconds.
    pub cand_refresh_ns: u64,
    /// Migration legality-probe nanoseconds (excluding commits).
    pub legality_ns: u64,
    /// Move-commit nanoseconds.
    pub commit_ns: u64,
    /// Dead-op sweep / DCE / empty-row cleanup nanoseconds.
    pub dead_sweep_ns: u64,
}

impl PhaseTimes {
    /// Sum of the four phases.
    pub fn total_ns(&self) -> u64 {
        self.cand_refresh_ns + self.legality_ns + self.commit_ns + self.dead_sweep_ns
    }

    /// Accumulate another run's phases (bench cells aggregate the
    /// pipeline's runs per kernel).
    pub fn accumulate(&mut self, other: &PhaseTimes) {
        self.cand_refresh_ns += other.cand_refresh_ns;
        self.legality_ns += other.legality_ns;
        self.commit_ns += other.commit_ns;
        self.dead_sweep_ns += other.dead_sweep_ns;
    }
}

/// Result of scheduling a region.
#[derive(Debug)]
pub struct ScheduleOutput {
    /// Counters.
    pub stats: ScheduleStats,
    /// Trace (empty unless `cfg.trace`).
    pub trace: Vec<TraceEvent>,
    /// The region's surviving nodes, in schedule order.
    pub region: Vec<NodeId>,
    /// The pick loop's own profile (observation-only; not part of the
    /// wire response or the bit-identity invariant).
    pub phases: PhaseTimes,
}

/// How far a migration got.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Migrated {
    /// Reached the node being scheduled.
    Arrived,
    /// Moved at least one hop but stopped short.
    Partial,
    /// Could not move at all (dependence or resource block).
    Stuck(StuckReason),
    /// Gap prevention suspended the op mid-flight.
    Suspended,
    /// A hop succeeded while suspensions were pending: return to re-rank
    /// (Figure 12's early return).
    YieldAfterMove,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StuckReason {
    Dependence,
    Resources,
    NoPath,
}

/// Reusable epoch-stamped visited set: `visit` marks-and-tests without
/// ever clearing the backing array (bumping the epoch invalidates all
/// marks in O(1)), so the DFS helpers allocate nothing per call.
#[derive(Default)]
struct VisitScratch {
    stamp: Vec<u64>,
    epoch: u64,
}

impl VisitScratch {
    fn begin(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// True when `n` was not yet visited in epoch `e` (and marks it).
    fn visit(&mut self, e: u64, n: NodeId) -> bool {
        let i = n.index();
        if i >= self.stamp.len() {
            self.stamp.resize(i + 1, 0);
        }
        if self.stamp[i] == e {
            false
        } else {
            self.stamp[i] = e;
            true
        }
    }
}

/// Dense region-position map (`NodeId` → region index), replacing a
/// `HashMap` in the hottest scans. Rebuilt on every region edit.
struct PosMap {
    idx: Vec<u32>,
}

impl PosMap {
    const NONE: u32 = u32::MAX;

    fn build(region: &[NodeId]) -> PosMap {
        let bound = region.iter().map(|n| n.index() + 1).max().unwrap_or(0);
        let mut idx = vec![PosMap::NONE; bound];
        for (i, &n) in region.iter().enumerate() {
            idx[n.index()] = i as u32;
        }
        PosMap { idx }
    }

    #[inline]
    fn get(&self, n: NodeId) -> Option<usize> {
        match self.idx.get(n.index()) {
            Some(&i) if i != PosMap::NONE => Some(i as usize),
            _ => None,
        }
    }

    #[inline]
    fn contains(&self, n: NodeId) -> bool {
        self.get(n).is_some()
    }
}

/// The GRiP scheduling engine for one region (an unwound loop window or a
/// whole acyclic program fragment), in top-down order.
pub struct Grip<'g, 'a> {
    g: &'g mut Graph,
    ctx: &'g mut Ctx<'a>,
    ranks: &'g RankTable,
    cfg: GripConfig,
    region: Vec<NodeId>,
    pos: PosMap,
    /// Suspended ops (gap-prevention rule 1), insertion-ordered. The set
    /// stays tiny, so a vector beats any hashed container here.
    suspended: Vec<OpId>,
    /// Sequential rows directly above the region top, nearest first — the
    /// part of the latency-hazard scan window that lies outside the
    /// region (empty on unit-latency machines).
    above_region: Vec<NodeId>,
    /// Memoized per-op priorities: an op's rank inputs (`orig`, `iter`,
    /// the prebuilt chain metrics) are fixed at creation, so the priority
    /// is computed once per op instead of once per candidate scan.
    prio: Vec<Option<grip_analysis::Priority>>,
    /// Epoch-stamped skip sets for [`Grip::schedule_node`] (dependence /
    /// resource freezes), replacing per-node `HashSet` churn.
    dep_skip: Vec<u64>,
    res_skip: Vec<u64>,
    dep_epoch: u64,
    res_epoch: u64,
    /// DFS scratch for gap prevention and the parent search.
    gap_seen: VisitScratch,
    below_seen: VisitScratch,
    pt_seen: VisitScratch,
    /// `parent_toward` results, valid while the edge structure is
    /// unchanged (op hops between existing rows don't invalidate it).
    pt_stamp: Vec<u64>,
    pt_val: Vec<Option<(NodeId, TreePath)>>,
    pt_gen: u64,
    pt_key: Option<(NodeId, u64)>,
    /// Priority-sorted candidate list for [`Grip::pick_candidate`],
    /// rebuilt once per skip-set epoch (any hop, split, or deletion bumps
    /// an epoch, so region membership and placements are frozen while the
    /// list is live; stale entries are skipped lazily).
    cand: Vec<(grip_analysis::Priority, OpId)>,
    cand_key: (u64, u64),
    /// Lowest region index the dead-op sweep has covered this epoch (a
    /// falling suspension floor re-exposes rows that must be re-swept).
    dead_start: usize,
    stats: ScheduleStats,
    phases: PhaseTimes,
    trace: Vec<TraceEvent>,
}

impl<'g, 'a> Grip<'g, 'a> {
    /// Create a scheduler over `region` (topological order, first node
    /// scheduled first).
    pub fn new(
        g: &'g mut Graph,
        ctx: &'g mut Ctx<'a>,
        ranks: &'g RankTable,
        cfg: GripConfig,
        region: Vec<NodeId>,
    ) -> Self {
        let pos = PosMap::build(&region);
        let above_region = Grip::prefix_chain(g, &region, &pos, &cfg);
        Grip {
            g,
            ctx,
            ranks,
            cfg,
            region,
            pos,
            suspended: Vec::new(),
            above_region,
            prio: Vec::new(),
            dep_skip: Vec::new(),
            res_skip: Vec::new(),
            dep_epoch: 0,
            res_epoch: 0,
            gap_seen: VisitScratch::default(),
            below_seen: VisitScratch::default(),
            pt_seen: VisitScratch::default(),
            pt_stamp: Vec::new(),
            pt_val: Vec::new(),
            pt_gen: 0,
            pt_key: None,
            cand: Vec::new(),
            cand_key: (0, 0),
            dead_start: usize::MAX,
            stats: ScheduleStats::default(),
            phases: PhaseTimes::default(),
            trace: Vec::new(),
        }
    }

    /// The unambiguous chain of predecessor rows above the region top
    /// (nearest first), up to the hazard-scan depth. Back edges from
    /// inside the region are ignored; a multi-predecessor join stops the
    /// chain conservatively. Nodes above the region are never edited by
    /// the scheduler, so the chain is computed once.
    fn prefix_chain(g: &Graph, region: &[NodeId], pos: &PosMap, cfg: &GripConfig) -> Vec<NodeId> {
        let depth = (cfg.resources.desc().max_latency() as usize).saturating_sub(1);
        let Some(&top) = region.first() else { return Vec::new() };
        if depth == 0 {
            return Vec::new();
        }
        let preds = g.predecessors();
        let mut chain = Vec::with_capacity(depth);
        let mut cur = top;
        let mut seen: HashSet<NodeId> = HashSet::new();
        while chain.len() < depth {
            let above: Vec<NodeId> = preds
                .get(&cur)
                .map(|ps| {
                    ps.iter().copied().filter(|&p| !pos.contains(p) && !seen.contains(&p)).collect()
                })
                .unwrap_or_default();
            let [only] = above[..] else { break };
            seen.insert(only);
            chain.push(only);
            cur = only;
        }
        chain
    }

    /// Run the full top-down schedule (Figure 10 / Figure 12).
    pub fn run(mut self) -> ScheduleOutput {
        // Stage span + pass counters: observation only — nothing below
        // reads the clock or the registry, so schedules are bit-identical
        // with instrumentation on.
        let _span = grip_obs::span!("grip");
        // Bound-driven early exit, on machines with per-class caps only.
        // Scheduling a node only pulls operations *upward* from rows below
        // it, so once the cursor stands at row `i` the suffix `i..` is a
        // closed subproblem: its op multiset can no longer grow, and its
        // row count can only fall toward the grip-bounds lower bound of
        // that multiset (class pigeonhole, or the latency-weighted
        // dataflow critical path — the same analyses the post-scheduling
        // certificate is built from; the recurrence bound is excluded
        // because a mid-region suffix does not wrap through the back
        // edge). When the live suffix already meets its bound, every
        // remaining visit is a candidate-selection round that provably
        // cannot shrink the schedule — stop iterating. Uniform-width
        // machines are excluded to keep their schedules bit-for-bit the
        // paper's (and a width-1 machine would trivially "exit" before
        // scheduling at all).
        let exit_on_bound = self.cfg.resources.desc().has_class_caps();
        let mut i = 0;
        while i < self.region.len() {
            let n = self.region[i];
            if !self.g.node_exists(n) {
                self.remove_from_region(n);
                continue;
            }
            if exit_on_bound && self.suffix_at_bound(i) {
                self.stats.bound_exits += 1;
                break;
            }
            if self.cfg.trace {
                self.trace.push(TraceEvent::Node(n));
            }
            self.schedule_node(n);
            self.suspended.clear();
            if self.cfg.dce {
                self.dce_sweep();
            } else {
                self.ctx.refresh(self.g);
            }
            self.cleanup_empty_below(i);
            i = self.pos.get(n).map(|p| p + 1).unwrap_or(i);
        }
        // Hazard-resolution post-pass: upgrade the best-effort latency
        // guard to a hard invariant — after this, the schedule is
        // stall-free on its target machine (no-op under unit latencies).
        let desc = *self.cfg.resources.desc();
        if desc.max_latency() > 1 {
            let hz = crate::hazards::resolve_hazards(self.g, self.ctx, &desc, &mut self.region);
            self.stats.hazard_delay_rows = hz.delay_rows;
            self.stats.hazard_backfills = hz.backfilled;
            self.stats.hazard_reclaimed_rows = hz.reclaimed_rows;
        }
        record_pass_counters(&self.stats);
        record_phase_times(&self.phases);
        ScheduleOutput {
            stats: self.stats,
            trace: self.trace,
            region: self.region,
            phases: self.phases,
        }
    }

    /// True when the live rows from region position `from` onward already
    /// pack into the minimum row count the static prover can justify for
    /// their op multiset: the class pigeonhole
    /// ([`grip_bounds::res_rows_bound`]), or — only when the cheap
    /// pigeonhole does not close — the latency-weighted dataflow critical
    /// path from [`grip_bounds::analyze`]. A read-only check: when it
    /// never fires, the schedule is bit-identical to an unchecked run.
    fn suffix_at_bound(&self, from: usize) -> bool {
        let live: Vec<NodeId> =
            self.region[from..].iter().copied().filter(|&n| self.g.node_exists(n)).collect();
        let mut counts = grip_bounds::OpCounts::default();
        for &n in &live {
            for &(_, op) in self.g.node_ops(n) {
                counts.add(self.g.op(op).kind);
            }
        }
        if counts.noncj + counts.cjs == 0 {
            return false;
        }
        let desc = self.cfg.resources.desc();
        let rows = live.len() as u64;
        let (res, _) = grip_bounds::res_rows_bound(&counts, desc);
        if rows == res {
            return true;
        }
        let ana = grip_bounds::analyze(self.g, &live, self.ctx.ddg, desc);
        rows == ana.res_mii.max(ana.critical_path)
    }

    /// `procedure schedule(n)`: fill `n` with the best moveable operations.
    fn schedule_node(&mut self, n: NodeId) {
        // Ops that failed for dependence reasons are frozen for this node;
        // resource-blocked ops are retried after any successful move.
        // Both sets are epoch stamps into reusable arrays (bumping the
        // epoch empties a set in O(1)).
        self.dep_epoch += 1;
        self.res_epoch += 1;
        loop {
            if self.cfg.resources.exhausted(self.g, n) {
                break;
            }
            self.stats.picks += 1;
            let Some(op) = self.pick_candidate(n) else { break };
            let hops_before = self.stats.hops;
            let mut suspended_now = false;
            match self.migrate(n, op) {
                Migrated::Arrived => {
                    self.stats.arrivals += 1;
                    self.after_successful_move();
                }
                Migrated::YieldAfterMove => {
                    // Re-rank: unsuspended ops may now outrank everything.
                }
                Migrated::Partial => {
                    self.after_successful_move();
                    // It moved but cannot reach n (for now): freeze for n.
                    mark(&mut self.dep_skip, self.dep_epoch, op);
                }
                Migrated::Stuck(StuckReason::Resources) => {
                    mark(&mut self.res_skip, self.res_epoch, op);
                }
                Migrated::Stuck(_) => {
                    mark(&mut self.dep_skip, self.dep_epoch, op);
                }
                Migrated::Suspended => {
                    // Rule 1: wait until the test can pass again.
                    suspended_now = true;
                }
            }
            // Any successful motion changes the resource picture: retry
            // resource-blocked ops.
            if self.stats.hops > hops_before {
                self.res_epoch += 1;
            }
            // Deadlock guard: a suspension with no other moveable op below
            // would spin — treat the op as frozen for this node.
            if suspended_now && self.pick_candidate(n).is_none() {
                self.suspended.retain(|&o| o != op);
                mark(&mut self.dep_skip, self.dep_epoch, op);
            }
        }
    }

    /// Highest-priority op placed strictly below `n` in the region,
    /// honouring suspension rule 3 and the skip sets.
    ///
    /// The candidate list is sorted by priority once per skip-set epoch
    /// and scanned for the first still-valid entry. Any structural change
    /// (a hop, split, rename, or deletion) bumps an epoch before the next
    /// pick, so placements, region order and liveness are frozen while the
    /// list is live — the sorted walk returns exactly the op a full region
    /// rescan would have chosen (stable sort: priority ties keep the
    /// region scan order the rescan used).
    ///
    /// Timing wrapper: the whole call is `cand_refresh` self time, minus
    /// whatever the nested [`Grip::sweep_dead`] attributed to
    /// `dead_sweep`. Reading the clock changes no decision — the inner
    /// logic is untouched.
    fn pick_candidate(&mut self, n: NodeId) -> Option<OpId> {
        let t0 = Instant::now();
        let sweep_before = self.phases.dead_sweep_ns;
        let out = self.pick_candidate_inner(n);
        let elapsed = t0.elapsed().as_nanos() as u64;
        let swept = self.phases.dead_sweep_ns - sweep_before;
        self.phases.cand_refresh_ns += elapsed.saturating_sub(swept);
        out
    }

    fn pick_candidate_inner(&mut self, n: NodeId) -> Option<OpId> {
        let npos = self.pos.get(n).expect("scheduled node is in the region");
        // Rule 3: with pending suspensions only ops strictly below the
        // lowest (deepest) suspended op may move.
        let floor = if self.suspended.is_empty() {
            npos
        } else {
            self.suspended
                .iter()
                .filter_map(|&o| self.g.placement(o))
                .filter_map(|m| self.pos.get(m))
                .max()
                .unwrap_or(npos)
        };
        let start = floor.max(npos) + 1;
        if self.cand_key != (self.dep_epoch, self.res_epoch) {
            // New epoch: sweep dead ops below the floor (the rescan used
            // to fold this into candidate scanning), then rebuild the
            // sorted list over every surviving op below `n`.
            self.cand_key = (self.dep_epoch, self.res_epoch);
            self.sweep_dead(start, self.region.len());
            self.dead_start = start;
            self.cand.clear();
            for idx in (npos + 1)..self.region.len() {
                let m = self.region[idx];
                if !self.g.node_exists(m) {
                    continue;
                }
                for &(_, op) in self.g.node_ops(m) {
                    let p = prio_of(&mut self.prio, self.ranks, self.g, op);
                    self.cand.push((p, op));
                }
            }
            self.cand.sort_by_key(|&(p, _)| p);
        } else if start < self.dead_start {
            // The suspension floor dropped without a structural change
            // (deadlock-guard unsuspension): rows between the new and old
            // floors are candidates again and get their deferred sweep.
            self.sweep_dead(start, self.dead_start);
            self.dead_start = start;
        }
        for &(_, op) in &self.cand {
            if is_marked(&self.dep_skip, self.dep_epoch, op)
                || is_marked(&self.res_skip, self.res_epoch, op)
                || (!self.suspended.is_empty() && self.suspended.contains(&op))
            {
                continue;
            }
            // Stale entries: removed ops have no placement; the floor
            // filter applies to the op's (frozen) current row.
            let Some(m) = self.g.placement(op) else { continue };
            let Some(mp) = self.pos.get(m) else { continue };
            if mp < start {
                continue;
            }
            return Some(op);
        }
        None
    }

    /// Remove dead pure ops in region rows `start..end`, in region order —
    /// the incremental-DCE half of the old candidate rescan. Skips marked
    /// and suspended ops exactly as the rescan did (they were never
    /// dead-checked while frozen).
    fn sweep_dead(&mut self, start: usize, end: usize) {
        if !self.cfg.dce {
            return;
        }
        let t0 = Instant::now();
        self.sweep_dead_inner(start, end);
        self.phases.dead_sweep_ns += t0.elapsed().as_nanos() as u64;
    }

    fn sweep_dead_inner(&mut self, start: usize, end: usize) {
        let mut dead: Vec<(NodeId, OpId)> = Vec::new();
        for idx in start..end.min(self.region.len()) {
            let m = self.region[idx];
            if !self.g.node_exists(m) {
                continue;
            }
            for &(_, op) in self.g.node_ops(m) {
                if is_marked(&self.dep_skip, self.dep_epoch, op)
                    || is_marked(&self.res_skip, self.res_epoch, op)
                    || (!self.suspended.is_empty() && self.suspended.contains(&op))
                {
                    continue;
                }
                let o = self.g.op(op);
                if o.dest.is_some()
                    && !o.kind.is_cj()
                    && self.ctx.lv.dest_is_dead(self.g, m, op, o.dest.expect("checked"))
                {
                    dead.push((m, op));
                }
            }
        }
        for (m, op) in dead {
            if self.g.node_exists(m) && remove_if_dead(self.g, self.ctx, m, op) {
                self.stats.dce_removed += 1;
            }
        }
    }

    /// Migrate `op` toward `n` one instruction at a time (`migrate`, Figure
    /// 12). Each hop re-checks resources, legality, and — when enabled —
    /// the Gapless-move test.
    ///
    /// Timing wrapper: the whole call is `legality` self time, minus the
    /// apply sections [`Grip::hop`] attributes to `commit` — so the probe
    /// chain (parent search, room checks, latency guard, gapless test,
    /// plan dry runs) is measured separately from committed mutation.
    fn migrate(&mut self, n: NodeId, op: OpId) -> Migrated {
        let t0 = Instant::now();
        let commit_before = self.phases.commit_ns;
        let out = self.migrate_inner(n, op);
        let elapsed = t0.elapsed().as_nanos() as u64;
        let committed = self.phases.commit_ns - commit_before;
        self.phases.legality_ns += elapsed.saturating_sub(committed);
        out
    }

    fn migrate_inner(&mut self, n: NodeId, op: OpId) -> Migrated {
        let mut progressed = false;
        loop {
            let Some(cur) = self.g.placement(op) else {
                return if progressed {
                    Migrated::Partial
                } else {
                    Migrated::Stuck(StuckReason::NoPath)
                };
            };
            if cur == n {
                return Migrated::Arrived;
            }
            // No op leaves a node that holds a suspended op (nothing may
            // pass a suspended operation).
            if self.cfg.gap_prevention
                && self.suspended.iter().any(|&s| s != op && self.g.placement(s) == Some(cur))
            {
                return if progressed {
                    Migrated::Partial
                } else {
                    Migrated::Stuck(StuckReason::Dependence)
                };
            }
            let Some((parent, path)) = self.parent_toward(n, cur) else {
                return if progressed {
                    Migrated::Partial
                } else {
                    Migrated::Stuck(StuckReason::NoPath)
                };
            };
            // Rule 3: never land above the deepest suspended op.
            if self.cfg.gap_prevention && !self.suspended.is_empty() {
                let deepest = self
                    .suspended
                    .iter()
                    .filter_map(|&o| self.g.placement(o))
                    .filter_map(|m| self.pos.get(m))
                    .max();
                if let Some(dp) = deepest {
                    if self.pos.get(parent).unwrap_or(usize::MAX) < dp {
                        return if progressed {
                            Migrated::Partial
                        } else {
                            Migrated::Stuck(StuckReason::Dependence)
                        };
                    }
                }
            }
            if !self.cfg.resources.has_room(self.g, parent, op) {
                self.stats.resource_blocks += 1;
                return if progressed {
                    Migrated::Partial
                } else {
                    Migrated::Stuck(StuckReason::Resources)
                };
            }
            if self.latency_blocked(parent, op) {
                self.stats.latency_blocks += 1;
                self.stats.resource_blocks += 1;
                return if progressed {
                    Migrated::Partial
                } else {
                    Migrated::Stuck(StuckReason::Resources)
                };
            }
            if self.cfg.gap_prevention && !self.gapless_move(cur, parent, op) {
                self.stats.gap_rejections += 1;
                self.stats.suspensions += 1;
                if !self.suspended.contains(&op) {
                    self.suspended.push(op);
                }
                if self.cfg.trace {
                    self.trace.push(TraceEvent::Suspend { op, at: cur });
                }
                return Migrated::Suspended;
            }
            let moved = self.hop(cur, parent, op, path);
            match moved {
                Ok(()) => {
                    progressed = true;
                    if self.cfg.trace {
                        self.trace.push(TraceEvent::Hop {
                            op,
                            from: cur,
                            to: parent,
                            arrived: parent == n,
                        });
                    }
                    // Figure 12: once something moved while ops are
                    // suspended, return so the scheduler re-ranks.
                    if !self.suspended.is_empty() {
                        self.unsuspend_all();
                        return Migrated::YieldAfterMove;
                    }
                }
                Err(_) => {
                    return if progressed {
                        Migrated::Partial
                    } else {
                        Migrated::Stuck(StuckReason::Dependence)
                    };
                }
            }
        }
    }

    /// Execute one legality-checked hop `cur -> parent`.
    fn hop(
        &mut self,
        cur: NodeId,
        parent: NodeId,
        op: OpId,
        path: TreePath,
    ) -> Result<(), MoveFail> {
        let is_cj = self.g.op(op).kind.is_cj();
        if is_cj {
            let plan = plan_move_cj(self.g, self.ctx, cur, parent, op, path, None)?;
            let commit_t0 = Instant::now();
            let out = apply_move_cj(self.g, self.ctx, cur, parent, op, path, &plan);
            if let Some(split) = out.split {
                self.insert_region_after(cur, split);
                self.stats.splits += 1;
            }
            self.insert_region_after(out.true_residue, out.false_residue);
            // Residues may have emptied out.
            for r in [out.true_residue, out.false_residue] {
                self.try_delete(r);
            }
            self.phases.commit_ns += commit_t0.elapsed().as_nanos() as u64;
        } else {
            let plan = plan_move_op(self.g, self.ctx, cur, parent, op, path, None)?;
            // Refuse to rename copies: a compensation copy of a copy can
            // regress forever; leaving the copy in place costs one slot.
            if plan.needs_rename && self.g.op(op).kind == grip_ir::OpKind::Copy {
                return Err(MoveFail::TrueDep { reader: op, writer: op });
            }
            // A renaming move leaves a compensation copy (an ALU op) in
            // `cur` where the moved op used to be. On a flat machine the
            // swap is free — same width — but with per-class slot caps it
            // converts the departing op's slot into an ALU slot, so the
            // swap must itself fit `cur`'s template.
            if plan.needs_rename && !self.rename_copy_fits(cur, op) {
                self.stats.resource_blocks += 1;
                return Err(MoveFail::TrueDep { reader: op, writer: op });
            }
            // Speculation policy (§1): a speculative hop may be vetoed when
            // slots are scarce.
            if plan.speculative {
                let free = self.cfg.resources.free_slots(self.g, parent);
                if !self.cfg.speculation.allows(free) {
                    self.stats.speculation_vetoes += 1;
                    return Err(MoveFail::SpeculativeStore);
                }
            }
            let commit_t0 = Instant::now();
            let out = apply_move_op(self.g, self.ctx, cur, parent, op, path, &plan);
            if out.renamed.is_some() {
                self.stats.renames += 1;
            }
            if let Some(split) = out.split {
                self.insert_region_after(cur, split);
                self.stats.splits += 1;
            }
            self.try_delete(cur);
            self.phases.commit_ns += commit_t0.elapsed().as_nanos() as u64;
        }
        self.stats.hops += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Latency hazards (machine model)
    // ------------------------------------------------------------------

    /// Would `cur` still fit its issue template after `op` is replaced by
    /// a compensation copy? (Copies issue on the ALU class.)
    fn rename_copy_fits(&self, cur: NodeId, op: OpId) -> bool {
        self.cfg.resources.desc().copy_swap_fits(self.g, cur, self.g.op(op).kind)
    }

    /// Would landing `op` in `row` place it closer to a multi-cycle
    /// producer of one of its sources than that producer's latency?
    ///
    /// Upward motion only ever *shrinks* the distance to producers (they
    /// sit above) and grows the distance to consumers, so checking the
    /// producer side on every landing suppresses new hazards at the
    /// moment of the move. The scan counts *live* rows only (a deleted
    /// region slot issues nothing) and, when it runs off the region top,
    /// continues into the cached chain of sequential rows above the
    /// region — cross-region producers used to slip through here
    /// unchecked. It walks at most `max_latency - 1` rows per source and
    /// stops at the nearest def (which shadows older ones), so the
    /// unit-latency model pays nothing. The guard remains best-effort
    /// (back-edge distances are out of scope); the hazard-resolution
    /// post-pass upgrades the residue to a hard stall-free invariant.
    fn latency_blocked(&self, row: NodeId, op: OpId) -> bool {
        let desc = self.cfg.resources.desc();
        let lmax = desc.max_latency() as usize;
        if lmax <= 1 {
            return false;
        }
        let Some(ridx) = self.pos.get(row) else { return false };
        let mut unresolved: Vec<grip_ir::RegId> = self.g.op(op).reads().collect();
        if unresolved.is_empty() {
            return false;
        }
        let mut d = 0usize; // live-instruction distance walked so far
        let region_above = self.region[..ridx].iter().rev();
        for &above in region_above.chain(self.above_region.iter()) {
            if !self.g.node_exists(above) {
                continue;
            }
            d += 1;
            if d >= lmax {
                return false; // every remaining producer has retired
            }
            for &(_, w) in self.g.node_ops(above) {
                let wo = self.g.op(w);
                let Some(dst) = wo.dest else { continue };
                let before = unresolved.len();
                unresolved.retain(|&r| r != dst);
                if unresolved.len() != before && desc.latency_of(wo.kind) as usize > d {
                    return true;
                }
            }
            if unresolved.is_empty() {
                return false;
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Gap prevention (§3.3)
    // ------------------------------------------------------------------

    /// The Gapless-move test (§3.3): may `op` leave `from` (for the node
    /// above) without ever creating a permanent gap?
    fn gapless_move(&mut self, from: NodeId, _to: NodeId, op: OpId) -> bool {
        let mut visited = std::mem::take(&mut self.gap_seen);
        let mut below = std::mem::take(&mut self.below_seen);
        let epoch = visited.begin();
        let ok = self.gapless_rec(from, op, &mut visited, epoch, &mut below);
        self.gap_seen = visited;
        self.below_seen = below;
        ok
    }

    fn gapless_rec(
        &self,
        from: NodeId,
        op: OpId,
        visited: &mut VisitScratch,
        epoch: u64,
        below: &mut VisitScratch,
    ) -> bool {
        if !visited.visit(epoch, from) {
            return false;
        }
        let ops = self.g.node_ops(from);
        // Condition 1: the op is alone — the node dies with its departure.
        if ops.len() == 1 {
            return true;
        }
        let it = self.g.op(op).iter;
        // Condition 2: another op of the same iteration stays behind.
        if ops.iter().filter(|&&(_, o)| self.g.op(o).iter == it).count() >= 2 {
            return true;
        }
        // Condition 3: no same-iteration op below `from` — op is the last of
        // its iteration, nothing to gap against.
        if !self.iteration_below(from, it, below) {
            return true;
        }
        // Condition 4: some same-iteration op X in a successor S could move
        // into `from` once op has left ("given that Op succeeded in moving
        // to To"), and X's own departure from S is gapless (Theorem 1's
        // induction).
        for s in self.region_successors(from) {
            let paths = self.g.node(from).tree.leaf_paths_to(s);
            for &(_, x) in self.g.node_ops(s) {
                if x == op || self.g.op(x).iter != it {
                    continue;
                }
                for &p in &paths {
                    let plan_ok = if self.g.op(x).kind.is_cj() {
                        plan_move_cj(self.g, self.ctx, s, from, x, p, Some(op)).is_ok()
                    } else {
                        plan_move_op(self.g, self.ctx, s, from, x, p, Some(op)).is_ok()
                    };
                    if plan_ok && self.gapless_rec(s, x, visited, epoch, below) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Does any node strictly below `from` (region successors, transitive)
    /// hold an op of iteration `it`?
    fn iteration_below(&self, from: NodeId, it: u32, seen: &mut VisitScratch) -> bool {
        let epoch = seen.begin();
        let mut stack: Vec<NodeId> = self.region_successors(from);
        while let Some(m) = stack.pop() {
            if !seen.visit(epoch, m) {
                continue;
            }
            if self.g.node_ops(m).iter().any(|&(_, o)| self.g.op(o).iter == it) {
                return true;
            }
            let mp = self.pos.get(m).expect("stack members are region rows");
            for &s in self.g.unique_successors(m) {
                if self.pos.get(s).is_some_and(|sp| sp > mp) {
                    stack.push(s);
                }
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Bookkeeping
    // ------------------------------------------------------------------

    /// Successors of `m` inside the region, forward edges only (the back
    /// edge from the window latch to its head is ignored).
    fn region_successors(&self, m: NodeId) -> Vec<NodeId> {
        let mp = match self.pos.get(m) {
            Some(p) => p,
            None => return Vec::new(),
        };
        self.g
            .unique_successors(m)
            .iter()
            .copied()
            .filter(|&s| self.pos.get(s).is_some_and(|sp| sp > mp))
            .collect()
    }

    /// The last edge of some forward path `n -> ... -> cur` (DFS), i.e. the
    /// node to hop `op` into next, with the leaf path reaching `cur`.
    ///
    /// Results are memoized while the edge structure is unchanged: op hops
    /// between existing rows leave both the CFG and the region membership
    /// alone (splits and deletions bump [`Graph::edge_version`], which
    /// drops the whole cache), so repeated migrations along the same
    /// corridor pay the DFS once.
    fn parent_toward(&mut self, n: NodeId, cur: NodeId) -> Option<(NodeId, TreePath)> {
        let ev = self.g.edge_version();
        if self.pt_key != Some((n, ev)) {
            self.pt_key = Some((n, ev));
            self.pt_gen += 1;
        }
        let i = cur.index();
        if self.pt_stamp.get(i) == Some(&self.pt_gen) {
            return self.pt_val[i];
        }
        let found = self.parent_toward_dfs(n, cur);
        if i >= self.pt_stamp.len() {
            self.pt_stamp.resize(i + 1, 0);
            self.pt_val.resize(i + 1, None);
        }
        self.pt_stamp[i] = self.pt_gen;
        self.pt_val[i] = found;
        found
    }

    fn parent_toward_dfs(&mut self, n: NodeId, cur: NodeId) -> Option<(NodeId, TreePath)> {
        if !self.g.node_exists(n) {
            return None;
        }
        // DFS from n; find any node whose successor set contains cur.
        let epoch = self.pt_seen.begin();
        let mut stack = vec![n];
        while let Some(m) = stack.pop() {
            if !self.pt_seen.visit(epoch, m) {
                continue;
            }
            let succs = self.region_successors(m);
            if succs.contains(&cur) {
                let paths = self.g.node(m).tree.leaf_paths_to(cur);
                if let Some(&p) = paths.first() {
                    return Some((m, p));
                }
            }
            stack.extend(succs);
        }
        None
    }

    fn after_successful_move(&mut self) {
        if !self.suspended.is_empty() {
            self.unsuspend_all();
        }
    }

    fn unsuspend_all(&mut self) {
        self.suspended.clear();
        if self.cfg.trace {
            self.trace.push(TraceEvent::Unsuspend);
        }
    }

    fn insert_region_after(&mut self, anchor: NodeId, new_node: NodeId) {
        if self.pos.contains(new_node) {
            return;
        }
        let at = self.pos.get(anchor).map(|p| p + 1).unwrap_or(self.region.len());
        self.region.insert(at.min(self.region.len()), new_node);
        self.reindex();
    }

    fn remove_from_region(&mut self, n: NodeId) {
        self.region.retain(|&m| m != n);
        self.reindex();
    }

    fn reindex(&mut self) {
        self.pos = PosMap::build(&self.region);
    }

    /// May the empty row `n` be deleted without re-shrinking a
    /// producer→consumer issue distance below the producer's latency?
    /// (Row deletion used to undo distances the latency guard had already
    /// approved — the re-shrink bug; refused deletions are counted.)
    fn deletion_is_hazard_safe(&mut self, n: NodeId) -> bool {
        let desc = self.cfg.resources.desc();
        if desc.max_latency() <= 1 {
            return true;
        }
        let safe = !crate::hazards::delete_would_create_hazard(self.g, &self.ctx.preds, desc, n);
        if !safe {
            self.stats.deletions_blocked += 1;
        }
        safe
    }

    fn try_delete(&mut self, n: NodeId) {
        if self.g.node_exists(n)
            && self.g.node(n).tree.is_empty()
            && n != self.g.entry
            && self.pos.get(n).is_some_and(|p| p != 0)
            && self.deletion_is_hazard_safe(n)
            && try_delete_empty(self.g, self.ctx, n)
        {
            self.stats.nodes_deleted += 1;
            self.remove_from_region(n);
        }
    }

    fn dce_sweep(&mut self) {
        let t0 = Instant::now();
        self.dce_sweep_inner();
        self.phases.dead_sweep_ns += t0.elapsed().as_nanos() as u64;
    }

    fn dce_sweep_inner(&mut self) {
        self.stats.dce_removed += propagate_copies(self.g, self.ctx) as u64;
        self.ctx.refresh(self.g);
        loop {
            let mut removed = 0;
            for i in 0..self.region.len() {
                let n = self.region[i];
                if !self.g.node_exists(n) {
                    continue;
                }
                let ops: Vec<OpId> = self.g.node_ops(n).iter().map(|&(_, o)| o).collect();
                for op in ops {
                    if remove_if_dead(self.g, self.ctx, n, op) {
                        removed += 1;
                    }
                }
            }
            self.stats.dce_removed += removed;
            if removed == 0 {
                break;
            }
            self.ctx.refresh(self.g);
        }
    }

    fn cleanup_empty_below(&mut self, from_idx: usize) {
        let t0 = Instant::now();
        self.cleanup_empty_below_inner(from_idx);
        self.phases.dead_sweep_ns += t0.elapsed().as_nanos() as u64;
    }

    fn cleanup_empty_below_inner(&mut self, from_idx: usize) {
        let mut i = from_idx;
        while i < self.region.len() {
            let n = self.region[i];
            if self.g.node_exists(n)
                && self.g.node(n).tree.is_empty()
                && i != 0
                && self.deletion_is_hazard_safe(n)
                && try_delete_empty(self.g, self.ctx, n)
            {
                self.stats.nodes_deleted += 1;
                self.remove_from_region(n);
                continue;
            }
            i += 1;
        }
    }
}

/// Mark `op` in an epoch-stamped set.
fn mark(set: &mut Vec<u64>, epoch: u64, op: OpId) {
    let i = op.index();
    if i >= set.len() {
        set.resize(i + 1, 0);
    }
    set[i] = epoch;
}

/// Membership test against an epoch-stamped set.
fn is_marked(set: &[u64], epoch: u64, op: OpId) -> bool {
    set.get(op.index()).is_some_and(|&s| s == epoch)
}

/// Memoized [`RankTable::priority`]: an op's rank inputs are fixed at its
/// creation (the chain metrics are prebuilt, `orig`/`iter` never change on
/// a placed op), so each op pays the table lookup exactly once per run.
fn prio_of(
    cache: &mut Vec<Option<grip_analysis::Priority>>,
    ranks: &RankTable,
    g: &Graph,
    op: OpId,
) -> grip_analysis::Priority {
    let i = op.index();
    if i >= cache.len() {
        cache.resize(i + 1, None);
    }
    if let Some(p) = cache[i] {
        return p;
    }
    let p = ranks.priority(g, op);
    cache[i] = Some(p);
    p
}

/// Fold one run's [`ScheduleStats`] into the process-wide metrics
/// registry (`grip_obs`): GRiP iterations, percolation moves attempted
/// vs committed, and the hazard post-pass work. Bumping once per run
/// keeps the hot loops free of instrumentation.
fn record_pass_counters(s: &ScheduleStats) {
    grip_obs::counter!("grip_schedules_total").inc();
    grip_obs::counter!("grip_iterations_total").add(s.picks);
    grip_obs::counter!("grip_moves_committed_total").add(s.hops);
    grip_obs::counter!("grip_moves_attempted_total")
        .add(s.hops + s.resource_blocks + s.latency_blocks + s.gap_rejections);
    grip_obs::counter!("grip_arrivals_total").add(s.arrivals);
    grip_obs::counter!("grip_renames_total").add(s.renames);
    grip_obs::counter!("grip_suspensions_total").add(s.suspensions);
    grip_obs::counter!("grip_dce_removed_total").add(s.dce_removed);
    grip_obs::counter!("grip_bound_exits_total").add(s.bound_exits);
}

/// Fold one run's [`PhaseTimes`] into the registry: ns-sum counters per
/// pick-loop phase, so a long-lived server (and the windowed `stats`
/// command) can see where scheduling time goes across runs. Like the
/// pass counters, bumped once per run, never inside the hot loops.
fn record_phase_times(p: &PhaseTimes) {
    grip_obs::counter!(
        "grip_sched_phase_cand_refresh_ns_total",
        "Scheduler self-time building and scanning the candidate list, ns."
    )
    .add(p.cand_refresh_ns);
    grip_obs::counter!(
        "grip_sched_phase_legality_ns_total",
        "Scheduler self-time in per-hop legality probes, ns."
    )
    .add(p.legality_ns);
    grip_obs::counter!(
        "grip_sched_phase_commit_ns_total",
        "Scheduler self-time applying committed moves, ns."
    )
    .add(p.commit_ns);
    grip_obs::counter!(
        "grip_sched_phase_dead_sweep_ns_total",
        "Scheduler self-time sweeping dead ops and empty rows, ns."
    )
    .add(p.dead_sweep_ns);
}

/// Convenience: schedule `region` of `g` and return the output.
pub fn schedule_region(
    g: &mut Graph,
    ctx: &mut Ctx<'_>,
    ranks: &RankTable,
    cfg: GripConfig,
    region: Vec<NodeId>,
) -> ScheduleOutput {
    Grip::new(g, ctx, ranks, cfg, region).run()
}
