//! The machine resource model: a thin adapter over [`MachineModel`].
//!
//! The seed modelled a machine as a flat `{fus, cjs}` pair — every
//! operation costing one interchangeable slot for one cycle. [`Resources`]
//! now wraps a [`MachineDesc`] (functional-unit classes, per-class slot
//! caps, multi-cycle latencies, issue templates) and delegates every
//! occupancy question to it, so `has_room`/`ops_full`/`exhausted` are
//! class- and latency-aware while [`Resources::vliw`] keeps the paper's
//! behaviour bit-for-bit (§4 still applies: renaming copies compete for
//! slots, which is why redundant-op removal matters). The IBM VLIW model
//! has tree-based multiway branching, so the default jump budget is
//! unlimited; it can be bounded for ablations via
//! [`Resources::with_limits`].
//!
//! All caps use `usize::MAX` as an "unlimited" sentinel; every comparison
//! tests counts *against* the cap (never arithmetic on it), so the
//! sentinel is overflow-free.

use grip_ir::{Graph, NodeId, OpId};
use grip_machine::{MachineDesc, MachineModel, UNCAPPED};

/// Per-instruction resource limits, as a machine description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resources {
    desc: MachineDesc,
}

impl Resources {
    /// No limits — pure Percolation Scheduling (POST's first phase).
    pub const UNLIMITED: Resources = Resources { desc: MachineDesc::UNLIMITED };

    /// The paper's machine: `fus` functional units, unbounded branch tree.
    pub const fn vliw(fus: usize) -> Resources {
        Resources { desc: MachineDesc::uniform(fus) }
    }

    /// A single-issue machine (`vliw(1)`): the sequential baseline.
    pub const fn scalar() -> Resources {
        Resources { desc: MachineDesc::scalar() }
    }

    /// A flat machine with a bounded branch tree (the `cjs` ablation).
    pub const fn with_limits(fus: usize, cjs: usize) -> Resources {
        let mut desc = MachineDesc::uniform(fus);
        desc.cjs = cjs;
        Resources { desc }
    }

    /// Schedule for an arbitrary machine description (presets or custom).
    pub const fn machine(desc: MachineDesc) -> Resources {
        Resources { desc }
    }

    /// The underlying machine description.
    pub fn desc(&self) -> &MachineDesc {
        &self.desc
    }

    /// Total ordinary-operation slots per instruction (the flat view).
    pub fn fus(&self) -> usize {
        self.desc.width
    }

    /// Conditional jumps per instruction tree.
    pub fn cjs(&self) -> usize {
        self.desc.cjs
    }

    /// True when the width is the unlimited sentinel.
    pub fn is_unlimited_width(&self) -> bool {
        self.desc.width == UNCAPPED
    }

    /// True when `node` can still accept `op`.
    pub fn has_room(&self, g: &Graph, node: NodeId, op: OpId) -> bool {
        self.desc.has_room(g, node, op)
    }

    /// True when `node` is saturated for ordinary operations.
    pub fn ops_full(&self, g: &Graph, node: NodeId) -> bool {
        self.desc.ops_full(g, node)
    }

    /// True when nothing further fits at all (ops and jumps).
    pub fn exhausted(&self, g: &Graph, node: NodeId) -> bool {
        self.desc.exhausted(g, node)
    }

    /// Free total-width slots in `node` (saturating; never overflows on
    /// the unlimited sentinel).
    pub fn free_slots(&self, g: &Graph, node: NodeId) -> usize {
        self.desc.free_slots(g, node)
    }
}

impl MachineModel for Resources {
    fn desc(&self) -> &MachineDesc {
        &self.desc
    }
}

impl From<MachineDesc> for Resources {
    fn from(desc: MachineDesc) -> Resources {
        Resources { desc }
    }
}

impl Default for Resources {
    fn default() -> Resources {
        Resources::UNLIMITED
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grip_ir::{OpKind, Operand, Operation, Tree, Value};

    #[test]
    fn room_accounting() {
        let mut g = Graph::new();
        let r = g.fresh_reg();
        let c = g.fresh_reg();
        let o1 = g.add_op(Operation::new(OpKind::Copy, Some(r), vec![Operand::Imm(Value::I(1))]));
        let n = g.add_node(Tree::Leaf { ops: vec![o1], succ: None });
        let d2 = g.fresh_reg();
        let o2 = g.add_op(Operation::new(
            OpKind::IAdd,
            Some(d2),
            vec![Operand::Reg(r), Operand::Imm(Value::I(1))],
        ));
        let cj = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(c)]));

        let two = Resources::vliw(2);
        assert!(two.has_room(&g, n, o2));
        assert!(!Resources::vliw(1).has_room(&g, n, o2));
        assert!(two.has_room(&g, n, cj), "jump budget independent of FU slots");
        assert!(!Resources::with_limits(2, 0).has_room(&g, n, cj));
        assert!(Resources::UNLIMITED.has_room(&g, n, o2));
        assert!(Resources::vliw(1).ops_full(&g, n));
        assert!(!two.exhausted(&g, n));
        assert_eq!(Resources::scalar().fus(), 1);
    }

    #[test]
    fn unlimited_sentinels_are_overflow_free() {
        // A node with ops and cjs present; every check against the MAX
        // sentinel must neither overflow nor report saturation.
        let mut g = Graph::new();
        let c = g.fresh_reg();
        let r = g.fresh_reg();
        let op = g.add_op(Operation::new(OpKind::Copy, Some(r), vec![Operand::Imm(Value::I(1))]));
        let cj = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(c)]));
        let n = g.add_node(Tree::Branch {
            ops: vec![op],
            cj,
            on_true: Box::new(Tree::leaf(None)),
            on_false: Box::new(Tree::leaf(None)),
        });
        let u = Resources::UNLIMITED;
        assert!(!u.ops_full(&g, n));
        assert!(!u.exhausted(&g, n));
        assert_eq!(u.free_slots(&g, n), usize::MAX - 1);
        // cjs == MAX with a populated tree: comparison, not subtraction.
        let v = Resources::vliw(1);
        assert!(v.ops_full(&g, n), "width 1 is taken");
        assert!(!v.exhausted(&g, n), "cj budget MAX can never exhaust");
        assert!(v.has_room(&g, n, cj));
        // Bounded-cj machine saturates both sides.
        let b = Resources::with_limits(1, 1);
        assert!(b.exhausted(&g, n));
    }

    #[test]
    fn class_caps_flow_through_the_adapter() {
        let mut g = Graph::new();
        let x = g.array("x", 4);
        let (r1, r2, r3) = (g.fresh_reg(), g.fresh_reg(), g.fresh_reg());
        let ld1 =
            g.add_op(Operation::new(OpKind::Load(x), Some(r1), vec![Operand::Imm(Value::I(0))]));
        let n = g.add_node(Tree::Leaf { ops: vec![ld1], succ: None });
        let ld2 =
            g.add_op(Operation::new(OpKind::Load(x), Some(r2), vec![Operand::Imm(Value::I(1))]));
        let add = g.add_op(Operation::new(
            OpKind::IAdd,
            Some(r3),
            vec![Operand::Imm(Value::I(1)), Operand::Imm(Value::I(2))],
        ));
        let m = Resources::machine(MachineDesc::mem_bound());
        assert!(!m.has_room(&g, n, ld2), "one memory port");
        assert!(m.has_room(&g, n, add), "ALU slots open");
        assert_eq!(m.fus(), 8);
    }
}
