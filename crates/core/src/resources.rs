//! The machine resource model.
//!
//! One VLIW instruction offers `fus` functional-unit slots for ordinary
//! operations (copies included — §4 notes that renaming copies compete for
//! resources, which is why redundant-op removal matters) and a budget of
//! conditional jumps for the instruction's branch tree. The paper's IBM
//! VLIW model has tree-based multiway branching, so the default jump budget
//! is unlimited; it can be bounded for ablations.

use grip_ir::{Graph, NodeId, OpId};

/// Per-instruction resource limits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resources {
    /// Functional units: max ordinary operations per instruction.
    pub fus: usize,
    /// Max conditional jumps per instruction tree.
    pub cjs: usize,
}

impl Resources {
    /// No limits — pure Percolation Scheduling (POST's first phase).
    pub const UNLIMITED: Resources = Resources { fus: usize::MAX, cjs: usize::MAX };

    /// The paper's machine: `fus` functional units, unbounded branch tree.
    pub fn vliw(fus: usize) -> Resources {
        Resources { fus, cjs: usize::MAX }
    }

    /// True when `node` can still accept `op`.
    pub fn has_room(&self, g: &Graph, node: NodeId, op: OpId) -> bool {
        if g.op(op).kind.is_cj() {
            g.node_cj_count(node) < self.cjs
        } else {
            g.node_op_count(node) < self.fus
        }
    }

    /// True when `node` is saturated for ordinary operations.
    pub fn ops_full(&self, g: &Graph, node: NodeId) -> bool {
        g.node_op_count(node) >= self.fus
    }

    /// True when nothing further fits at all (ops and jumps).
    pub fn exhausted(&self, g: &Graph, node: NodeId) -> bool {
        self.ops_full(g, node) && g.node_cj_count(node) >= self.cjs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grip_ir::{OpKind, Operand, Operation, Tree, Value};

    #[test]
    fn room_accounting() {
        let mut g = Graph::new();
        let r = g.fresh_reg();
        let c = g.fresh_reg();
        let o1 = g.add_op(Operation::new(OpKind::Copy, Some(r), vec![Operand::Imm(Value::I(1))]));
        let n = g.add_node(Tree::Leaf { ops: vec![o1], succ: None });
        let d2 = g.fresh_reg();
        let o2 = g.add_op(Operation::new(
            OpKind::IAdd,
            Some(d2),
            vec![Operand::Reg(r), Operand::Imm(Value::I(1))],
        ));
        let cj = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(c)]));

        let two = Resources::vliw(2);
        assert!(two.has_room(&g, n, o2));
        assert!(!Resources::vliw(1).has_room(&g, n, o2));
        assert!(two.has_room(&g, n, cj), "jump budget independent of FU slots");
        assert!(!Resources { fus: 2, cjs: 0 }.has_room(&g, n, cj));
        assert!(Resources::UNLIMITED.has_room(&g, n, o2));
        assert!(Resources::vliw(1).ops_full(&g, n));
        assert!(!two.exhausted(&g, n));
    }
}
