//! GRiP scheduler behaviour tests: packing, resource limits, ranked order,
//! semantic preservation, and gap prevention on hand-tagged iterations.

use grip_analysis::{Ddg, RankTable};
use grip_core::{schedule_region, GripConfig, Resources};
use grip_ir::{Graph, NodeId, OpKind, Operand, ProgramBuilder, Value};
use grip_percolate::Ctx;
use grip_vm::{EquivReport, Machine};

fn run_equal(g0: &Graph, g1: &Graph) {
    let mut m0 = Machine::for_graph(g0);
    let mut m1 = Machine::for_graph(g1);
    m0.run(g0).unwrap();
    m1.run(g1).unwrap();
    let rep = EquivReport::compare(g0, &m0, &m1);
    assert!(rep.is_equal(), "schedule changed semantics: {rep:?}\n{}", grip_ir::print::dump(g1));
}

/// n independent constants followed by a chain of adds.
fn mixed_program(independents: usize) -> Graph {
    let mut b = ProgramBuilder::new();
    let mut regs = Vec::new();
    for i in 0..independents {
        let r = b.named_reg(&format!("c{i}"));
        b.const_i(r, i as i64);
        regs.push(r);
    }
    let mut acc = b.named_reg("acc");
    b.const_i(acc, 0);
    for (i, &r) in regs.iter().enumerate() {
        acc = b.binary(&format!("s{i}"), OpKind::IAdd, Operand::Reg(acc), Operand::Reg(r));
    }
    b.live_out(acc);
    b.finish()
}

fn schedule(g: &mut Graph, fus: usize, gaps: bool) -> Vec<NodeId> {
    let ddg = Ddg::build(g, g.entry);
    let mut ctx = Ctx::new(g, &ddg);
    let ranks = RankTable::new(&ddg, true);
    let cfg = GripConfig {
        resources: Resources::vliw(fus),
        gap_prevention: gaps,
        dce: true,
        speculation: Default::default(),
        trace: false,
    };
    let region = g.reachable();
    let out = schedule_region(g, &mut ctx, &ranks, cfg, region);
    out.region
}

#[test]
fn packs_independent_ops_to_width() {
    for fus in [2usize, 4, 8] {
        let g0 = mixed_program(8);
        let mut g = g0.clone();
        schedule(&mut g, fus, false);
        g.validate().unwrap();
        run_equal(&g0, &g);
        // No node exceeds the width.
        for n in g.reachable() {
            assert!(
                g.node_op_count(n) <= fus,
                "node {n} exceeds {fus} FUs:\n{}",
                grip_ir::print::dump(&g)
            );
        }
        // Compaction happened: the sequential program had 17 op rows.
        let op_rows = g.reachable().into_iter().filter(|&n| g.node_op_count(n) > 0).count();
        assert!(op_rows < 17, "expected compaction below the 17 sequential rows, got {op_rows}");
        // The adds form a chain; after the entry row folds s0 through the
        // constant copies, at least 7 chain rows remain.
        assert!(op_rows >= 7, "chain must lower-bound the schedule: {op_rows}");
    }
}

#[test]
fn respects_dependence_chains() {
    // A pure chain cannot compact at all: every op depends on the previous.
    let mut b = ProgramBuilder::new();
    let mut acc = b.named_reg("a0");
    b.const_i(acc, 1);
    for i in 0..6 {
        acc = b.binary(
            &format!("a{}", i + 1),
            OpKind::IAdd,
            Operand::Reg(acc),
            Operand::Imm(Value::I(1)),
        );
    }
    b.live_out(acc);
    let g0 = b.finish();
    let mut g = g0.clone();
    schedule(&mut g, 8, false);
    g.validate().unwrap();
    run_equal(&g0, &g);
    // Copy bypass folds a1 = a0 + 1 through the a0 constant copy into the
    // first row (and DCE may drop a0), so the chain costs 6 rows, not 7.
    let op_nodes = g.reachable().into_iter().filter(|&n| g.node_op_count(n) > 0).count();
    assert_eq!(op_nodes, 6, "chain length (with the head folded) bounds the schedule");
}

#[test]
fn infinite_resources_compact_maximally() {
    let g0 = mixed_program(6);
    let mut g = g0.clone();
    schedule(&mut g, usize::MAX, false);
    g.validate().unwrap();
    run_equal(&g0, &g);
    // Row 1 takes every constant plus s0 (folded through the copies);
    // s1..s5 chain below: 6 op rows total.
    let rows: Vec<usize> =
        g.reachable().into_iter().map(|n| g.node_op_count(n)).filter(|&c| c > 0).collect();
    assert_eq!(rows.len(), 6, "1 wide row + 5 chain rows: {rows:?}");
    assert!(rows[0] >= 5, "first row holds the surviving consts + s0: {rows:?}");
}

#[test]
fn scheduler_preserves_loop_semantics() {
    // Schedule the body of a real loop (region = loop body nodes) and run
    // the whole program.
    let mut b = ProgramBuilder::new();
    let n = 12i64;
    let x = b.array("x", n as usize + 8);
    let y = b.array("y", n as usize + 8);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let t = b.load("t", x, Operand::Reg(k), 0);
    let u = b.binary("u", OpKind::Mul, Operand::Reg(t), Operand::Imm(Value::F(3.0)));
    let v = b.binary("v", OpKind::Add, Operand::Reg(u), Operand::Imm(Value::F(1.0)));
    b.store(y, Operand::Reg(k), 0, Operand::Reg(v));
    b.iadd_imm(k, k, 1);
    let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(n)));
    b.end_loop(c);
    let mut g = b.finish();
    g.live_out = vec![k];
    let g0 = g.clone();
    let li = g.loop_info.unwrap();

    // Region: loop body nodes head..=latch in chain order.
    let mut region = vec![li.head];
    let mut cur = li.head;
    while cur != li.latch {
        cur = g.successors(cur)[0];
        region.push(cur);
    }
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let ranks = RankTable::new(&ddg, true);
    let cfg = GripConfig {
        resources: Resources::vliw(4),
        gap_prevention: true,
        dce: true,
        speculation: Default::default(),
        trace: false,
    };
    let out = schedule_region(&mut g, &mut ctx, &ranks, cfg, region);
    g.validate().unwrap();

    let setup = |m: &mut Machine| {
        let xs: Vec<f64> = (0..n + 8).map(|i| i as f64 * 0.5).collect();
        m.set_array_f(x, &xs);
    };
    let mut m0 = Machine::for_graph(&g0);
    setup(&mut m0);
    let s0 = m0.run(&g0).unwrap();
    let mut m1 = Machine::for_graph(&g);
    setup(&mut m1);
    let s1 = m1.run(&g).unwrap();
    assert!(EquivReport::compare(&g0, &m0, &m1).is_equal());
    assert!(
        s1.cycles < s0.cycles,
        "compaction must shorten the loop: {} vs {}",
        s1.cycles,
        s0.cycles
    );
    assert!(out.stats.hops > 0);
}

#[test]
fn ranked_order_prefers_long_chains_for_scarce_slots() {
    // One slot available; a long-chain op and a short-chain op both want
    // it. The §3.4 heuristic must give it to the long chain.
    let mut b = ProgramBuilder::new();
    let start = b.named_reg("start");
    b.const_i(start, 0);
    // long chain: l1 -> l2 -> l3 rooted at l1
    let l1 = b.binary("l1", OpKind::IAdd, Operand::Reg(start), Operand::Imm(Value::I(1)));
    // short: s1 only
    let s1 = b.binary("s1", OpKind::IAdd, Operand::Reg(start), Operand::Imm(Value::I(9)));
    let l2 = b.binary("l2", OpKind::IAdd, Operand::Reg(l1), Operand::Imm(Value::I(1)));
    let l3 = b.binary("l3", OpKind::IAdd, Operand::Reg(l2), Operand::Imm(Value::I(1)));
    b.live_out(l3);
    b.live_out(s1);
    let g0 = b.finish();
    let mut g = g0.clone();

    // 2 FUs: the entry row can hold start plus ONE of {l1, s1}.
    schedule(&mut g, 2, false);
    g.validate().unwrap();
    run_equal(&g0, &g);
    let first = g.reachable().into_iter().find(|&n| g.node_op_count(n) > 0).unwrap();
    let labels: Vec<String> =
        g.node_ops(first).iter().map(|&(_, o)| g.op(o).label().to_string()).collect();
    assert!(
        labels.contains(&"l1".to_string()),
        "long-chain op must win the slot; row was {labels:?}"
    );
}

/// Two hand-tagged "iterations": iteration 0 = chain a0→b0, iteration 1 =
/// chain a1→b1, with a1 independent of iteration 0. Without gap prevention
/// and plentiful resources, a1 rises next to a0, leaving its partner b1 two
/// rows behind: a gap in iteration 1's rows. With gap prevention, every
/// row containing an iteration-1 op keeps the pattern contiguous.
fn two_iteration_graph() -> (Graph, Vec<NodeId>) {
    let mut b = ProgramBuilder::new();
    let z = b.named_reg("z");
    b.const_i(z, 0);
    let a0 = b.binary("a0", OpKind::IAdd, Operand::Reg(z), Operand::Imm(Value::I(1)));
    let b0 = b.binary("b0", OpKind::IAdd, Operand::Reg(a0), Operand::Imm(Value::I(1)));
    let c0 = b.binary("c0", OpKind::IAdd, Operand::Reg(b0), Operand::Imm(Value::I(1)));
    let a1 = b.binary("a1", OpKind::IAdd, Operand::Reg(z), Operand::Imm(Value::I(2)));
    let b1 = b.binary("b1", OpKind::IAdd, Operand::Reg(a1), Operand::Imm(Value::I(2)));
    let c1 = b.binary("c1", OpKind::IAdd, Operand::Reg(b1), Operand::Imm(Value::I(2)));
    b.live_out(c0);
    b.live_out(c1);
    let mut g = b.finish();
    // Tag iterations: ops named *0 are iteration 0, *1 iteration 1.
    let mut region = Vec::new();
    for n in g.reachable() {
        let ops = g.node_ops(n);
        if let Some(&(_, o)) = ops.first() {
            let it = if g.op(o).label().ends_with('1') { 1 } else { 0 };
            g.op_mut(o).iter = it;
            region.push(n);
        }
    }
    (g, region)
}

#[test]
fn gap_prevention_keeps_iterations_contiguous() {
    for gaps in [false, true] {
        let (mut g, region) = two_iteration_graph();
        let g0 = g.clone();
        let ddg = Ddg::build(&g, g.entry);
        let mut ctx = Ctx::new(&g, &ddg);
        let ranks = RankTable::new(&ddg, true);
        let cfg = GripConfig {
            resources: Resources::vliw(2),
            gap_prevention: gaps,
            dce: false,
            speculation: Default::default(),
            trace: false,
        };
        let out = schedule_region(&mut g, &mut ctx, &ranks, cfg, region);
        g.validate().unwrap();
        run_equal(&g0, &g);

        // Collect, for iteration 1, the row indices that hold its ops.
        let rows: Vec<NodeId> = out.region.iter().copied().filter(|&n| g.node_exists(n)).collect();
        let it1_rows: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|(_, &n)| g.node_ops(n).iter().any(|&(_, o)| g.op(o).iter == 1))
            .map(|(i, _)| i)
            .collect();
        if gaps {
            // Gapless: iteration 1's rows are contiguous.
            for w in it1_rows.windows(2) {
                assert_eq!(
                    w[1] - w[0],
                    1,
                    "iteration 1 rows must be contiguous with gap prevention: {it1_rows:?}\n{}",
                    grip_ir::print::dump(&g)
                );
            }
        }
    }
}

#[test]
fn trace_records_moves() {
    let mut g = mixed_program(4);
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let ranks = RankTable::new(&ddg, true);
    let cfg = GripConfig {
        resources: Resources::vliw(4),
        gap_prevention: false,
        dce: false,
        speculation: Default::default(),
        trace: true,
    };
    let region = g.reachable();
    let out = schedule_region(&mut g, &mut ctx, &ranks, cfg, region);
    assert!(out.trace.iter().any(|e| matches!(e, grip_core::TraceEvent::Hop { .. })));
    assert!(out.trace.iter().any(|e| matches!(e, grip_core::TraceEvent::Node(_))));
}

#[test]
fn speculation_policy_gates_motion_past_branches() {
    use grip_core::Speculation;
    // A loop where useful work sits below the loop-control branch: with
    // speculation forbidden, later iterations' ops cannot climb past the
    // earlier exits, so the schedule stays longer.
    let mut b = ProgramBuilder::new();
    let x = b.array("x", 64);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let t = b.load("t", x, Operand::Reg(k), 0);
    let u = b.binary("u", OpKind::Mul, Operand::Reg(t), Operand::Imm(Value::F(2.0)));
    b.store(x, Operand::Reg(k), 0, Operand::Reg(u));
    b.iadd_imm(k, k, 1);
    let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(16)));
    b.end_loop(c);
    let mut g0 = b.finish();
    g0.live_out = vec![k];

    let mut lens = Vec::new();
    for policy in [Speculation::Always, Speculation::Never] {
        let mut g = g0.clone();
        let w = grip_pipeline::unwind(&mut g, 4);
        grip_pipeline::simplify_inductions(&mut g, &w.rows);
        let ddg = Ddg::build(&g, g.entry);
        let mut ctx = Ctx::new(&g, &ddg);
        let ranks = RankTable::new(&ddg, true);
        let cfg = GripConfig {
            resources: Resources::vliw(4),
            gap_prevention: false,
            dce: true,
            speculation: policy,
            trace: false,
        };
        let out = schedule_region(&mut g, &mut ctx, &ranks, cfg, w.rows.clone());
        g.validate().unwrap();
        run_equal(&g0, &g);
        let rows =
            out.region.iter().filter(|&&n| g.node_exists(n) && g.node_op_count(n) > 0).count();
        if policy == Speculation::Never {
            assert!(out.stats.speculation_vetoes > 0, "vetoes must fire");
        }
        lens.push(rows);
    }
    assert!(
        lens[0] < lens[1],
        "speculation must shorten the schedule: always={} never={}",
        lens[0],
        lens[1]
    );
}

#[test]
fn resource_aware_speculation_interpolates() {
    use grip_core::Speculation;
    // WhenSlotsFree(width) behaves like Never (no row ever has `width`
    // free slots once anything is placed... entry rows do); the policy is
    // monotone between the extremes.
    let policies = [
        Speculation::Always,
        Speculation::WhenSlotsFree(1),
        Speculation::WhenSlotsFree(3),
        Speculation::Never,
    ];
    let mut vetoes = Vec::new();
    for policy in policies {
        let mut g = mixed_program(6);
        // Give it a branch to speculate across.
        let ddg = Ddg::build(&g, g.entry);
        let mut ctx = Ctx::new(&g, &ddg);
        let ranks = RankTable::new(&ddg, true);
        let cfg = GripConfig {
            resources: Resources::vliw(4),
            gap_prevention: false,
            dce: false,
            speculation: policy,
            trace: false,
        };
        let region = g.reachable();
        let out = schedule_region(&mut g, &mut ctx, &ranks, cfg, region);
        g.validate().unwrap();
        vetoes.push(out.stats.speculation_vetoes);
    }
    // Straight-line code has no speculation at all: every policy agrees.
    assert!(vetoes.iter().all(|&v| v == 0), "no branches, no vetoes: {vetoes:?}");
}
