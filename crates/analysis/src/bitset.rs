//! A fixed-capacity bit set over `u64` words, used for register sets in the
//! dataflow analyses (dense, allocation-free in the inner loops).

/// Dense bit set with a fixed capacity chosen at construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    bits: usize,
}

impl BitSet {
    /// An empty set able to hold `bits` elements.
    pub fn new(bits: usize) -> BitSet {
        BitSet { words: vec![0; bits.div_ceil(64)], bits }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.bits
    }

    /// Insert `i`; returns true if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.bits, "bit {i} out of capacity {}", self.bits);
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Remove `i`; returns true if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.bits, other.bits);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self &= other`; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.bits, other.bits);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no element is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Grow capacity to at least `bits` (new bits start unset).
    pub fn grow(&mut self, bits: usize) {
        if bits > self.bits {
            self.bits = bits;
            self.words.resize(bits.div_ceil(64), 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_and_iter() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        b.insert(64);
        b.insert(1);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 64]);
    }

    #[test]
    fn intersect() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(1);
        a.insert(64);
        b.insert(64);
        b.insert(99);
        assert!(a.intersect_with(&b));
        assert!(!a.intersect_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![64]);
    }

    #[test]
    fn grow_preserves() {
        let mut s = BitSet::new(10);
        s.insert(7);
        s.grow(200);
        assert!(s.contains(7));
        s.insert(199);
        assert_eq!(s.len(), 2);
    }
}
