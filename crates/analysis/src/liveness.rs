//! Register liveness over tree-structured VLIW instructions.
//!
//! Used for the paper's *write-live* conflict test ("Op writes to a register
//! that is live at the entry to From, but that is not killed by Op", §2) and
//! for dead-code removal. Between full recomputations the scheduler applies
//! *grow-only* updates, which can only over-approximate liveness — an
//! over-approximation may cause an unnecessary renaming but never an unsound
//! motion.

use crate::bitset::BitSet;
use crate::order::reverse_postorder;
use grip_ir::{Graph, NodeId, OpId, RegId};
use std::collections::HashMap;

/// Reusable per-node dataflow summaries (entry uses and must-defs), keyed
/// by [`Graph::node_stamp`] so only nodes edited since the previous
/// [`Liveness::compute_with`] call pay the tree walk again. The scheduler
/// recomputes liveness after every scheduled node; between recomputes it
/// touches a handful of rows, so the cache turns each recompute from
/// O(nodes × tree) into O(edited nodes × tree) plus the bitset fixpoint.
#[derive(Default)]
pub struct LivenessCache {
    /// Indexed by node id.
    node: Vec<Option<NodeSummary>>,
}

/// One node's cached dataflow summary: `(stamp, uses, must_defs)`.
type NodeSummary = (u64, Vec<RegId>, Vec<RegId>);

/// Per-node live-in register sets.
pub struct Liveness {
    nreg: usize,
    live_in: Vec<Option<BitSet>>,
}

impl Liveness {
    /// Fixpoint liveness for all nodes reachable from the entry.
    pub fn compute(g: &Graph) -> Liveness {
        Liveness::compute_with(g, &mut LivenessCache::default())
    }

    /// [`Liveness::compute`] reusing `cache` for the per-node use/def
    /// summaries across calls. Bit-identical results; only the tree walks
    /// for unchanged nodes are skipped.
    pub fn compute_with(g: &Graph, cache: &mut LivenessCache) -> Liveness {
        let nreg = g.reg_count();
        let order = reverse_postorder(g, g.entry);
        let bound = g.node_index_bound();
        if cache.node.len() < bound {
            cache.node.resize_with(bound, || None);
        }
        let mut live_in: Vec<Option<BitSet>> = Vec::new();
        live_in.resize_with(bound, || None);
        for &n in &order {
            live_in[n.index()] = Some(BitSet::new(nreg));
            let stamp = g.node_stamp(n);
            let fresh = match &cache.node[n.index()] {
                Some((s, _, _)) => *s != stamp,
                None => true,
            };
            if fresh {
                let mut uses: Vec<RegId> = Vec::new();
                for &(_, op) in g.node_ops(n) {
                    uses.extend(g.op(op).reads());
                }
                cache.node[n.index()] = Some((stamp, uses, must_defs_of(g, n)));
            }
        }
        let mut scratch = BitSet::new(nreg);
        let mut changed = true;
        while changed {
            changed = false;
            for &n in order.iter().rev() {
                scratch.clear();
                // live-out: union of successors' live-in; exits contribute
                // the program's observable registers.
                for &(_, succ) in g.node_leaves(n) {
                    match succ {
                        Some(s) => {
                            if let Some(set) = live_in[s.index()].as_ref() {
                                scratch.union_with(set);
                            }
                        }
                        None => {
                            for &r in &g.live_out {
                                scratch.insert(r.index());
                            }
                        }
                    }
                }
                let (_, uses, must) = cache.node[n.index()].as_ref().expect("summary built");
                // Kill registers defined on *every* path.
                for r in must {
                    scratch.remove(r.index());
                }
                // All operand fetches happen at entry.
                for r in uses {
                    scratch.insert(r.index());
                }
                let entry = live_in[n.index()].as_mut().expect("node in order");
                if *entry != scratch {
                    std::mem::swap(entry, &mut scratch);
                    changed = true;
                }
            }
        }
        Liveness { nreg, live_in }
    }

    /// Live-in set of `n` (empty for unknown nodes).
    pub fn live_in(&self, n: NodeId) -> Option<&BitSet> {
        self.live_in.get(n.index()).and_then(|s| s.as_ref())
    }

    /// True if `r` is live at entry of `n`.
    pub fn is_live_in(&self, n: NodeId, r: RegId) -> bool {
        self.live_in.get(n.index()).and_then(|s| s.as_ref()).is_some_and(|s| s.contains(r.index()))
    }

    /// Make room for registers allocated after `compute` (renaming).
    pub fn grow_regs(&mut self, nreg: usize) {
        if nreg > self.nreg {
            self.nreg = nreg;
            for set in self.live_in.iter_mut().flatten() {
                set.grow(nreg);
            }
        }
    }

    fn entry_mut(&mut self, n: NodeId) -> &mut BitSet {
        if self.live_in.len() <= n.index() {
            self.live_in.resize_with(n.index() + 1, || None);
        }
        let nreg = self.nreg;
        self.live_in[n.index()].get_or_insert_with(|| BitSet::new(nreg))
    }

    /// Seed liveness for a node created after `compute` (a split copy) from
    /// the node it was cloned from.
    pub fn adopt(&mut self, new_node: NodeId, template: NodeId) {
        let set = self.live_in(template).cloned().unwrap_or_else(|| BitSet::new(self.nreg));
        *self.entry_mut(new_node) = set;
    }

    /// Grow-only update: record that `r` is (possibly) live at entry of `n`
    /// and propagate upward through predecessors until a node must-defines
    /// `r` or already has it. `preds` is the current predecessor map.
    pub fn add_live_at(
        &mut self,
        g: &Graph,
        preds: &HashMap<NodeId, Vec<NodeId>>,
        n: NodeId,
        r: RegId,
    ) {
        self.grow_regs(g.reg_count());
        let mut stack = vec![n];
        while let Some(m) = stack.pop() {
            let nreg = self.nreg;
            let entry = self.entry_mut(m);
            entry.grow(nreg);
            if !entry.insert(r.index()) {
                continue; // already known live here
            }
            for &p in preds.get(&m).map(|v| v.as_slice()).unwrap_or(&[]) {
                if !must_defs_of(g, p).contains(&r) {
                    stack.push(p);
                }
            }
        }
    }

    /// The paper's write-live test, phrased for a move of `op` out of
    /// `from`: is `dest` live at the entry to `from` when `op`'s own
    /// contribution is ignored?
    ///
    /// True when some *other* op of `from` reads `dest` at entry
    /// (move-past-read folds into the same test), or some leaf path of
    /// `from` without a redefinition of `dest` (by ops ≠ `op`) flows into a
    /// successor where `dest` is live.
    pub fn write_live_conflict(&self, g: &Graph, from: NodeId, op: OpId, dest: RegId) -> bool {
        let tree = &g.node(from).tree;
        // Entry reads by other ops in the node.
        for &(_, o) in g.node_ops(from) {
            if o != op && g.op(o).reads_reg(dest) {
                return true;
            }
        }
        // Paths whose downstream still wants dest.
        for &(leaf, succ) in g.node_leaves(from) {
            let mut redefined = false;
            tree.walk(&mut |p, t| {
                if p.is_prefix_of(leaf) {
                    for &o in t.ops() {
                        if o != op && g.op(o).dest == Some(dest) {
                            redefined = true;
                        }
                    }
                }
            });
            if redefined {
                continue;
            }
            let live_downstream = match succ {
                Some(s) => self.is_live_in(s, dest),
                None => g.live_out.contains(&dest),
            };
            if live_downstream {
                return true;
            }
        }
        false
    }

    /// True if the value `op` (placed in `n` at position `pos`) writes to
    /// `dest` can never be observed: no other op reads it at entry of a
    /// later node on any path through `pos`. Same-node ops see entry values
    /// and are therefore never readers of `op`'s result.
    pub fn dest_is_dead(&self, g: &Graph, n: NodeId, op: OpId, dest: RegId) -> bool {
        if g.placement(op) != Some(n) {
            return false;
        }
        let leaves = g.node_leaves(n);
        // Leaf nodes (the overwhelmingly common VLIW row shape): every op
        // commits on the single path, so liveness at the one successor
        // decides — no tree walk needed.
        if let [(_, succ)] = leaves {
            let live = match succ {
                Some(s) => self.is_live_in(*s, dest),
                None => g.live_out.contains(&dest),
            };
            return !live;
        }
        let tree = &g.node(n).tree;
        let Some(pos) = tree.position_of(op) else {
            return false;
        };
        for &(leaf, succ) in leaves {
            if !pos.is_prefix_of(leaf) {
                continue; // op does not commit on this path
            }
            let live = match succ {
                Some(s) => self.is_live_in(s, dest),
                None => g.live_out.contains(&dest),
            };
            if live {
                return false;
            }
        }
        true
    }
}

/// Registers written on every leaf path of `n`.
fn must_defs_of(g: &Graph, n: NodeId) -> Vec<RegId> {
    let tree = &g.node(n).tree;
    let leaves = tree.leaves();
    let mut acc: Option<Vec<RegId>> = None;
    for (leaf, _) in leaves {
        let mut defs = Vec::new();
        tree.walk(&mut |p, t| {
            if p.is_prefix_of(leaf) {
                for &o in t.ops() {
                    if let Some(d) = g.op(o).dest {
                        defs.push(d);
                    }
                }
            }
        });
        acc = Some(match acc {
            None => defs,
            Some(prev) => prev.into_iter().filter(|d| defs.contains(d)).collect(),
        });
        if acc.as_ref().is_some_and(|a| a.is_empty()) {
            break;
        }
    }
    acc.unwrap_or_default()
}

#[allow(unused_imports)]
use grip_ir::TreePath; // referenced by docs

#[cfg(test)]
mod tests {
    use super::*;
    use grip_ir::{OpKind, Operand, ProgramBuilder, Value};

    /// k=0; loop { t=x[k]; x[k]=t*2; k+=1; c=k<8 } ; live_out = {k}
    fn loop_graph() -> (Graph, RegId, RegId, RegId) {
        let mut b = ProgramBuilder::new();
        let x = b.array("x", 8);
        let k = b.named_reg("k");
        b.const_i(k, 0);
        b.begin_loop();
        let t = b.load("t", x, Operand::Reg(k), 0);
        let t2 = b.binary("t2", OpKind::Mul, Operand::Reg(t), Operand::Imm(Value::F(2.0)));
        b.store(x, Operand::Reg(k), 0, Operand::Reg(t2));
        b.iadd_imm(k, k, 1);
        let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(8)));
        b.end_loop(c);
        let mut g = b.finish();
        g.live_out = vec![k];
        (g, k, t, t2)
    }

    #[test]
    fn loop_carried_register_is_live_at_head() {
        let (g, k, t, _) = loop_graph();
        let lv = Liveness::compute(&g);
        let li = g.loop_info.unwrap();
        assert!(lv.is_live_in(li.head, k), "k live around the loop");
        assert!(!lv.is_live_in(li.head, t), "t is defined before use each iteration");
    }

    #[test]
    fn live_out_registers_survive_exit() {
        let (g, k, _, _) = loop_graph();
        let lv = Liveness::compute(&g);
        let li = g.loop_info.unwrap();
        assert!(lv.is_live_in(li.exit, k), "k observable after loop");
    }

    #[test]
    fn temporaries_die_after_last_use() {
        let (g, _, t, t2) = loop_graph();
        let lv = Liveness::compute(&g);
        let li = g.loop_info.unwrap();
        // At the latch, both t and t2 are dead (store already consumed t2).
        assert!(!lv.is_live_in(li.latch, t));
        assert!(!lv.is_live_in(li.latch, t2));
    }

    #[test]
    fn write_live_test_detects_loop_carried_conflicts() {
        let (g, k, _, _) = loop_graph();
        let lv = Liveness::compute(&g);
        // The induction update `k = k + 1` node: moving it out of its node
        // conflicts on k? k is read downstream (cmp) => live at succ.
        let li = g.loop_info.unwrap();
        // find the iadd node
        let mut n = li.head;
        let (iadd_node, iadd_op) = loop {
            let ops = g.node_ops(n);
            if let Some(&(_, o)) = ops.first() {
                if g.op(o).kind == OpKind::IAdd {
                    break (n, o);
                }
            }
            n = g.successors(n)[0];
        };
        assert!(lv.write_live_conflict(&g, iadd_node, iadd_op, k));
        // A fresh register is never live.
        let mut g2 = g.clone();
        let fresh = g2.fresh_reg();
        assert!(!lv.write_live_conflict(&g2, iadd_node, iadd_op, fresh));
    }

    #[test]
    fn dest_dead_detection() {
        let mut b = ProgramBuilder::new();
        let a = b.named_reg("a");
        b.const_i(a, 1);
        let unused = b.binary("u", OpKind::IAdd, Operand::Reg(a), Operand::Imm(Value::I(1)));
        let used = b.binary("s", OpKind::IAdd, Operand::Reg(a), Operand::Imm(Value::I(2)));
        b.live_out(used);
        let g = b.finish();
        let lv = Liveness::compute(&g);
        // find nodes of the two adds
        let mut unused_loc = None;
        let mut used_loc = None;
        for n in g.reachable() {
            for &(_, o) in g.node_ops(n) {
                if g.op(o).dest == Some(unused) {
                    unused_loc = Some((n, o));
                }
                if g.op(o).dest == Some(used) {
                    used_loc = Some((n, o));
                }
            }
        }
        let (n_u, o_u) = unused_loc.unwrap();
        let (n_s, o_s) = used_loc.unwrap();
        assert!(lv.dest_is_dead(&g, n_u, o_u, unused));
        assert!(!lv.dest_is_dead(&g, n_s, o_s, used));
    }

    #[test]
    fn grow_only_update_propagates_up() {
        let (g, _, _, _) = loop_graph();
        let mut lv = Liveness::compute(&g);
        let li = g.loop_info.unwrap();
        let mut g2 = g.clone();
        let fresh = g2.fresh_reg();
        let preds = g2.predecessors();
        assert!(!lv.is_live_in(li.latch, fresh));
        lv.add_live_at(&g2, &preds, li.latch, fresh);
        assert!(lv.is_live_in(li.latch, fresh));
        // propagated through the body up to the head (no must-defs of fresh)
        assert!(lv.is_live_in(li.head, fresh));
    }
}
