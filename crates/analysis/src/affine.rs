//! Affine address analysis for memory disambiguation.
//!
//! After unwinding, induction simplification leaves every load/store address
//! in the form `base_register + constant` (the constant lives in the op's
//! `disp` field). Two accesses to the same array with the *same* base
//! register alias exactly when their constants are equal; with different or
//! unknown bases they must be assumed to alias. This is the word-level
//! disambiguation the paper's Livermore results rely on (cross-iteration
//! `x[k+i]` vs `x[k+j]`).

use grip_ir::{OpId, OpKind, Operand, RegId, Value};
use std::collections::HashMap;

/// A resolved address: `base + offset`, with `base = None` meaning an
/// absolute (constant) address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AffineAddr {
    /// Runtime base register, if any.
    pub base: Option<RegId>,
    /// Compile-time constant part.
    pub offset: i64,
}

/// Tracks, per register, the affine expression assigned to it by the
/// program's single definition (registers redefined along the walk are
/// poisoned and resolve to "unknown").
#[derive(Default)]
pub struct AffineMap {
    exprs: HashMap<RegId, AffineAddr>,
    poisoned: HashMap<RegId, bool>,
}

impl AffineMap {
    /// Empty map.
    pub fn new() -> AffineMap {
        AffineMap::default()
    }

    /// Feed one operation, in program order.
    pub fn observe(&mut self, op: &grip_ir::Operation, _id: OpId) {
        let Some(dest) = op.dest else { return };
        if self.exprs.contains_key(&dest) || self.poisoned.get(&dest).copied().unwrap_or(false) {
            // Second definition: poison.
            self.exprs.remove(&dest);
            self.poisoned.insert(dest, true);
            return;
        }
        let expr = match op.kind {
            OpKind::Copy => match op.src[0] {
                Operand::Imm(Value::I(c)) => Some(AffineAddr { base: None, offset: c }),
                Operand::Reg(s) => Some(self.resolve_reg(s)),
                _ => None,
            },
            OpKind::IAdd | OpKind::ISub => {
                let sign = if op.kind == OpKind::ISub { -1 } else { 1 };
                match (op.src[0], op.src[1]) {
                    (Operand::Reg(s), Operand::Imm(Value::I(c))) => {
                        let mut e = self.resolve_reg(s);
                        e.offset += sign * c;
                        Some(e)
                    }
                    (Operand::Imm(Value::I(c)), Operand::Reg(s)) if sign == 1 => {
                        let mut e = self.resolve_reg(s);
                        e.offset += c;
                        Some(e)
                    }
                    (Operand::Imm(Value::I(a)), Operand::Imm(Value::I(b))) => {
                        Some(AffineAddr { base: None, offset: a + sign * b })
                    }
                    _ => None,
                }
            }
            _ => None,
        };
        match expr {
            Some(e) => {
                self.exprs.insert(dest, e);
            }
            None => {
                self.poisoned.insert(dest, true);
            }
        }
    }

    /// The affine expression a register holds (itself + 0 for registers with
    /// no recorded definition, e.g. loop inputs).
    fn resolve_reg(&self, r: RegId) -> AffineAddr {
        if self.poisoned.get(&r).copied().unwrap_or(false) {
            // Unknown content: use the register itself as an opaque base —
            // *not* comparable with other uses, so mark via a sentinel.
            return AffineAddr { base: Some(r), offset: i64::MIN };
        }
        self.exprs.get(&r).copied().unwrap_or(AffineAddr { base: Some(r), offset: 0 })
    }

    /// Resolve a load/store address (`index operand + disp`). `None` means
    /// statically unknown.
    pub fn resolve_addr(&self, index: Operand, disp: i64) -> Option<AffineAddr> {
        match index {
            Operand::Imm(Value::I(c)) => Some(AffineAddr { base: None, offset: c + disp }),
            Operand::Imm(_) => None,
            Operand::Reg(r) => {
                if self.poisoned.get(&r).copied().unwrap_or(false) {
                    return None;
                }
                let mut e = self.resolve_reg(r);
                if e.offset == i64::MIN {
                    return None;
                }
                e.offset += disp;
                Some(e)
            }
        }
    }
}

/// May two resolved addresses (same array) refer to the same word?
pub fn may_alias(a: Option<AffineAddr>, b: Option<AffineAddr>) -> bool {
    match (a, b) {
        (Some(x), Some(y)) if x.base == y.base => x.offset == y.offset,
        // Anything unknown may alias.
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grip_ir::{Graph, Operation};

    fn iadd(g: &mut Graph, d: RegId, s: RegId, c: i64) -> Operation {
        let _ = g;
        Operation::new(OpKind::IAdd, Some(d), vec![Operand::Reg(s), Operand::Imm(Value::I(c))])
    }

    #[test]
    fn chains_fold_to_common_base() {
        let mut g = Graph::new();
        let k0 = g.named_reg("k0");
        let k1 = g.named_reg("k1");
        let k2 = g.named_reg("k2");
        let mut m = AffineMap::new();
        m.observe(&iadd(&mut g, k1, k0, 1), OpId::new(0));
        m.observe(&iadd(&mut g, k2, k1, 1), OpId::new(1));
        let a0 = m.resolve_addr(Operand::Reg(k0), 0).unwrap();
        let a2 = m.resolve_addr(Operand::Reg(k2), 0).unwrap();
        assert_eq!(a0.base, a2.base);
        assert_eq!(a2.offset - a0.offset, 2);
        assert!(!may_alias(Some(a0), Some(a2)));
        assert!(may_alias(Some(a0), m.resolve_addr(Operand::Reg(k2), -2)));
    }

    #[test]
    fn redefinition_poisons() {
        let mut g = Graph::new();
        let k = g.named_reg("k");
        let d = g.named_reg("d");
        let mut m = AffineMap::new();
        m.observe(&iadd(&mut g, d, k, 1), OpId::new(0));
        m.observe(&iadd(&mut g, d, k, 2), OpId::new(1)); // redefined
        assert_eq!(m.resolve_addr(Operand::Reg(d), 0), None);
    }

    #[test]
    fn unknown_defs_poison() {
        let mut g = Graph::new();
        let d = g.named_reg("d");
        let s = g.named_reg("s");
        let mut m = AffineMap::new();
        // d = s * 3 is not affine-in-one-register for our purposes
        m.observe(
            &Operation::new(
                OpKind::IMul,
                Some(d),
                vec![Operand::Reg(s), Operand::Imm(Value::I(3))],
            ),
            OpId::new(0),
        );
        assert_eq!(m.resolve_addr(Operand::Reg(d), 0), None);
        assert!(may_alias(
            m.resolve_addr(Operand::Reg(d), 0),
            Some(AffineAddr { base: None, offset: 3 })
        ));
    }

    #[test]
    fn absolute_addresses_compare() {
        let m = AffineMap::new();
        let a = m.resolve_addr(Operand::Imm(Value::I(3)), 1);
        let b = m.resolve_addr(Operand::Imm(Value::I(4)), 0);
        let c = m.resolve_addr(Operand::Imm(Value::I(9)), 0);
        assert!(may_alias(a, b));
        assert!(!may_alias(a, c));
    }
}
