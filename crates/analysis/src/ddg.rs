//! The data-dependence graph over a program's operations.
//!
//! Built **once** on the pre-scheduling (sequential) program; edges are keyed
//! by the ops' ids at build time, which are exactly the `orig` ancestors that
//! survive code motion and node duplication. Register true dependences are
//! re-checked syntactically during moves (renaming changes them); *memory*
//! dependences cannot be renamed away, so the scheduler consults this graph.

use crate::affine::{may_alias, AffineMap};
use crate::order::reverse_postorder;
use grip_ir::{Graph, NodeId, OpId, OpKind};
use std::collections::{HashMap, HashSet};

/// Dependence graph: register true deps + memory deps, plus derived ranks.
///
/// `Clone` is cheap enough to support caching: the maps are keyed by op
/// ids, which survive graph cloning unchanged, so a `Ddg` built on a graph
/// applies verbatim to any clone of that graph (the service layer's DDG
/// cache relies on this).
#[derive(Clone)]
pub struct Ddg {
    /// Direct true-dependence successors (reg + mem edges merged).
    succs: HashMap<OpId, Vec<OpId>>,
    /// Direct predecessors.
    preds: HashMap<OpId, Vec<OpId>>,
    /// Memory-dependence pairs `(earlier, later)` that constrain motion.
    mem_pairs: HashSet<(OpId, OpId)>,
    /// All ops in the linearized build order.
    order: Vec<OpId>,
}

impl Ddg {
    /// Build the DDG for all ops reachable from `root`, linearized in
    /// reverse post-order (program order for sequential graphs).
    pub fn build(g: &Graph, root: NodeId) -> Ddg {
        let mut order: Vec<OpId> = Vec::new();
        for n in reverse_postorder(g, root) {
            for &(_, op) in g.node_ops(n) {
                order.push(op);
            }
        }
        let mut succs: HashMap<OpId, Vec<OpId>> = HashMap::new();
        let mut preds: HashMap<OpId, Vec<OpId>> = HashMap::new();
        let mut mem_pairs = HashSet::new();
        let edge = |a: OpId,
                    b: OpId,
                    succs: &mut HashMap<OpId, Vec<OpId>>,
                    preds: &mut HashMap<OpId, Vec<OpId>>| {
            if a == b {
                return;
            }
            let v = succs.entry(a).or_default();
            if !v.contains(&b) {
                v.push(b);
                preds.entry(b).or_default().push(a);
            }
        };

        // Register true dependences via last-definition tracking.
        let mut last_def: HashMap<grip_ir::RegId, OpId> = HashMap::new();
        // Affine map fed in the same walk for memory disambiguation.
        let mut affine = AffineMap::new();
        // (op, array, addr, is_store) history per array.
        let mut mem_hist: Vec<(OpId, grip_ir::ArrayId, Option<crate::affine::AffineAddr>, bool)> =
            Vec::new();

        for &id in &order {
            let op = g.op(id);
            for r in op.reads() {
                if let Some(&d) = last_def.get(&r) {
                    edge(d, id, &mut succs, &mut preds);
                }
            }
            match op.kind {
                OpKind::Load(a) => {
                    let addr = affine.resolve_addr(op.src[0], op.disp);
                    for &(p, pa, paddr, pstore) in &mem_hist {
                        if pa == a && pstore && may_alias(paddr, addr) {
                            edge(p, id, &mut succs, &mut preds);
                            mem_pairs.insert((p, id));
                        }
                    }
                    mem_hist.push((id, a, addr, false));
                }
                OpKind::Store(a) => {
                    let addr = affine.resolve_addr(op.src[0], op.disp);
                    for &(p, pa, paddr, _) in &mem_hist {
                        // Stores conflict with earlier loads (anti) and
                        // stores (output); both constrain upward motion.
                        if pa == a && may_alias(paddr, addr) {
                            edge(p, id, &mut succs, &mut preds);
                            mem_pairs.insert((p, id));
                        }
                    }
                    mem_hist.push((id, a, addr, true));
                }
                _ => {}
            }
            if let Some(d) = op.dest {
                last_def.insert(d, id);
            }
            affine.observe(op, id);
        }
        Ddg { succs, preds, mem_pairs, order }
    }

    /// Direct dependence successors of `op` (by build-time/orig id).
    pub fn succs(&self, op: OpId) -> &[OpId] {
        self.succs.get(&op).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Direct dependence predecessors of `op`.
    pub fn preds(&self, op: OpId) -> &[OpId] {
        self.preds.get(&op).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// True when a *memory* dependence orders `earlier` before `later`
    /// (arguments are `orig` ids).
    pub fn mem_dep(&self, earlier: OpId, later: OpId) -> bool {
        self.mem_pairs.contains(&(earlier, later))
    }

    /// The linearized build order.
    pub fn order(&self) -> &[OpId] {
        &self.order
    }

    /// Longest dependence chain *rooted at* each op (number of ops on the
    /// chain, itself included) and the transitive dependent count — the two
    /// keys of the paper's §3.4 ranking heuristic.
    pub fn chain_metrics(&self) -> ChainMetrics {
        self.chain_metrics_weighted(|_| 1)
    }

    /// [`Ddg::chain_metrics`] with a per-op weight: the chain rooted at an
    /// op is the maximum *weight sum* over dependence chains below it,
    /// itself included. With `weight(op)` = the op's issue-to-result
    /// latency, chains measure critical-path **cycles** rather than hop
    /// count, so a 16-cycle divide outranks a string of unit-latency adds.
    /// `weight = |_| 1` reproduces [`Ddg::chain_metrics`] exactly (the
    /// paper's unit-latency ranking is the special case).
    pub fn chain_metrics_weighted(&self, weight: impl Fn(OpId) -> u32) -> ChainMetrics {
        let n = self.order.len();
        let idx: HashMap<OpId, usize> =
            self.order.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        let mut chain = vec![1u32; n];
        let mut dependents = vec![0u32; n];
        // Reverse topological = reverse of build order (edges always go
        // forward in the linearization).
        let mut desc: Vec<crate::bitset::BitSet> =
            (0..n).map(|_| crate::bitset::BitSet::new(n)).collect();
        for (i, &op) in self.order.iter().enumerate().rev() {
            let mut best = 0u32;
            for &s in self.succs(op) {
                let si = idx[&s];
                best = best.max(chain[si]);
                let (a, b) = split_two(&mut desc, i, si);
                a.union_with(b);
                a.insert(si);
            }
            chain[i] = weight(op) + best;
            dependents[i] = desc[i].len() as u32;
        }
        ChainMetrics { idx, chain, dependents }
    }
}

/// Borrow two distinct elements of a slice mutably.
fn split_two<T>(v: &mut [T], a: usize, b: usize) -> (&mut T, &T) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = v.split_at_mut(b);
        (&mut lo[a], &hi[0])
    } else {
        let (lo, hi) = v.split_at_mut(a);
        (&mut hi[0], &lo[b])
    }
}

/// Longest-chain and dependent-count tables produced by
/// [`Ddg::chain_metrics`].
pub struct ChainMetrics {
    idx: HashMap<OpId, usize>,
    chain: Vec<u32>,
    dependents: Vec<u32>,
}

impl ChainMetrics {
    /// Longest dependence chain rooted at `op` (1 for sinks). Unknown ops
    /// (created later) inherit 0.
    pub fn chain(&self, op: OpId) -> u32 {
        self.idx.get(&op).map(|&i| self.chain[i]).unwrap_or(0)
    }

    /// Number of transitive dependents of `op`.
    pub fn dependents(&self, op: OpId) -> u32 {
        self.idx.get(&op).map(|&i| self.dependents[i]).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grip_ir::{Operand, ProgramBuilder, Value};

    /// a = 1; b = a+1; c = b+1; d = 5  (independent)
    fn chain_graph() -> (Graph, Vec<OpId>) {
        let mut b = ProgramBuilder::new();
        let a = b.named_reg("a");
        b.const_i(a, 1);
        let b1 = b.binary("b", OpKind::IAdd, Operand::Reg(a), Operand::Imm(Value::I(1)));
        let _c = b.binary("c", OpKind::IAdd, Operand::Reg(b1), Operand::Imm(Value::I(1)));
        let d = b.named_reg("d");
        b.const_i(d, 5);
        let g = b.finish();
        let ddg = Ddg::build(&g, g.entry);
        let order = ddg.order().to_vec();
        (g, order)
    }

    #[test]
    fn register_chains() {
        let (g, order) = chain_graph();
        let ddg = Ddg::build(&g, g.entry);
        let m = ddg.chain_metrics();
        // order: [a, b, c, d]
        assert_eq!(m.chain(order[0]), 3);
        assert_eq!(m.chain(order[1]), 2);
        assert_eq!(m.chain(order[2]), 1);
        assert_eq!(m.chain(order[3]), 1);
        assert_eq!(m.dependents(order[0]), 2);
        assert_eq!(m.dependents(order[3]), 0);
        assert_eq!(ddg.succs(order[0]), &[order[1]]);
        assert_eq!(ddg.preds(order[1]), &[order[0]]);
    }

    #[test]
    fn memory_dependences_with_affine_disambiguation() {
        let mut b = ProgramBuilder::new();
        let x = b.array("x", 16);
        let k = b.named_reg("k");
        b.const_i(k, 0);
        // store x[k]; load x[k] (aliases); load x[k+1] (no alias);
        // store x[k+1] (aliases the load at k+1 and the store? no: k+1 vs k differ)
        b.store(x, Operand::Reg(k), 0, Operand::Imm(Value::F(1.0)));
        let t0 = b.load("t0", x, Operand::Reg(k), 0);
        let t1 = b.load("t1", x, Operand::Reg(k), 1);
        b.store(x, Operand::Reg(k), 1, Operand::Reg(t0));
        let g = b.finish();
        let _ = t1;
        let ddg = Ddg::build(&g, g.entry);
        let ops = ddg.order().to_vec();
        // ops: [k=0, st0, ld0, ld1, st1]
        let (st0, ld0, ld1, st1) = (ops[1], ops[2], ops[3], ops[4]);
        assert!(ddg.mem_dep(st0, ld0), "store x[k] -> load x[k]");
        assert!(!ddg.mem_dep(st0, ld1), "x[k] vs x[k+1] disambiguated");
        assert!(ddg.mem_dep(ld1, st1), "anti: load x[k+1] -> store x[k+1]");
        assert!(!ddg.mem_dep(ld0, st1), "load x[k] vs store x[k+1]");
        assert!(!ddg.mem_dep(st0, st1), "store x[k] vs store x[k+1]");
    }

    #[test]
    fn unknown_addresses_are_conservative() {
        let mut b = ProgramBuilder::new();
        let x = b.array("x", 16);
        let ix = b.iarray("ix", 16);
        let k = b.named_reg("k");
        b.const_i(k, 0);
        let j = b.load("j", ix, Operand::Reg(k), 0); // runtime index
        b.store(x, Operand::Reg(j), 0, Operand::Imm(Value::F(1.0)));
        let t = b.load("t", x, Operand::Reg(k), 3);
        let g = b.finish();
        let _ = t;
        let ddg = Ddg::build(&g, g.entry);
        let ops = ddg.order().to_vec();
        let (st, ld) = (ops[2], ops[3]);
        assert!(ddg.mem_dep(st, ld), "indirect store conflicts with every load");
    }
}
