//! # grip-analysis — dataflow analyses for percolation scheduling
//!
//! The program analyses the GRiP stack needs:
//!
//! * [`reverse_postorder`] / [`Dominators`] — traversal orders and the
//!   dominance relation ("the subgraph dominated by *n*" of §3.2);
//! * [`Liveness`] — register liveness over tree instructions, driving the
//!   paper's write-live conflict test and dead-code removal;
//! * [`AffineMap`] / [`may_alias`] — `base + constant` address resolution
//!   for word-level memory disambiguation across unwound iterations;
//! * [`Ddg`] — the data-dependence graph (register true deps re-checked
//!   syntactically during motion; memory deps consulted through `orig` ids
//!   because they survive renaming and duplication);
//! * [`RankTable`] — the §3.4 scheduling heuristic (longest chain, then
//!   dependent count, with the Perfect-Pipelining iteration-major rule).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod affine;
mod bitset;
mod ddg;
mod liveness;
mod order;
mod rank;

pub use affine::{may_alias, AffineAddr, AffineMap};
pub use bitset::BitSet;
pub use ddg::{ChainMetrics, Ddg};
pub use liveness::{Liveness, LivenessCache};
pub use order::{reverse_postorder, Dominators, OrderIndex};
pub use rank::{Priority, RankTable};
