//! Traversal orders and dominators over the program graph.
//!
//! Scheduling works on an acyclic *window* (the unwound loop body plus its
//! exit blocks); the loop back edge is excluded by construction because the
//! window head's predecessor set is simply never consulted. For safety these
//! routines tolerate cycles by ignoring back edges found during DFS.

use grip_ir::{Graph, NodeId};
use std::collections::HashMap;

/// Topological-ish order of the nodes reachable from `root`: reverse
/// post-order of a DFS, which linearizes acyclic regions topologically and
/// breaks cycles at their back edges.
pub fn reverse_postorder(g: &Graph, root: NodeId) -> Vec<NodeId> {
    #[derive(Clone, Copy)]
    enum Ev {
        Enter(NodeId),
        Exit(NodeId),
    }
    let mut seen: Vec<bool> = vec![false; g.node_ids().map(|n| n.index() + 1).max().unwrap_or(0)];
    let mut post = Vec::new();
    let mut stack = vec![Ev::Enter(root)];
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Enter(n) => {
                if seen[n.index()] {
                    continue;
                }
                seen[n.index()] = true;
                stack.push(Ev::Exit(n));
                // Push successors in reverse so the first successor is
                // visited first (stable, source-order DFS).
                let succs = g.unique_successors(n);
                for &s in succs.iter().rev() {
                    if !seen[s.index()] {
                        stack.push(Ev::Enter(s));
                    }
                }
            }
            Ev::Exit(n) => post.push(n),
        }
    }
    post.reverse();
    post
}

/// Positions of nodes within an order, for O(1) "is A before B" queries.
pub struct OrderIndex {
    pos: HashMap<NodeId, usize>,
}

impl OrderIndex {
    /// Index the given order.
    pub fn new(order: &[NodeId]) -> OrderIndex {
        OrderIndex { pos: order.iter().enumerate().map(|(i, &n)| (n, i)).collect() }
    }

    /// Position of `n` in the order, if present.
    pub fn pos(&self, n: NodeId) -> Option<usize> {
        self.pos.get(&n).copied()
    }

    /// True when `a` precedes `b` (both must be in the order).
    pub fn before(&self, a: NodeId, b: NodeId) -> bool {
        self.pos[&a] < self.pos[&b]
    }
}

/// Immediate-dominator tree for the subgraph reachable from `root`,
/// computed with the classic iterative Cooper–Harvey–Kennedy algorithm.
pub struct Dominators {
    idom: HashMap<NodeId, NodeId>,
    order: Vec<NodeId>,
}

impl Dominators {
    /// Compute dominators from `root`.
    pub fn compute(g: &Graph, root: NodeId) -> Dominators {
        let order = reverse_postorder(g, root);
        let index = OrderIndex::new(&order);
        let preds: HashMap<NodeId, Vec<NodeId>> = {
            let mut m: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
            for &n in &order {
                for &s in g.unique_successors(n) {
                    if index.pos(s).is_some() {
                        m.entry(s).or_default().push(n);
                    }
                }
            }
            m
        };
        let mut idom: HashMap<NodeId, NodeId> = HashMap::new();
        idom.insert(root, root);
        let mut changed = true;
        while changed {
            changed = false;
            for &n in order.iter().skip(1) {
                let mut new_idom: Option<NodeId> = None;
                for &p in preds.get(&n).map(|v| v.as_slice()).unwrap_or(&[]) {
                    if !idom.contains_key(&p) {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&n) != Some(&ni) {
                        idom.insert(n, ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, order }
    }

    fn intersect(
        idom: &HashMap<NodeId, NodeId>,
        index: &OrderIndex,
        mut a: NodeId,
        mut b: NodeId,
    ) -> NodeId {
        while a != b {
            while index.pos(a).unwrap() > index.pos(b).unwrap() {
                a = idom[&a];
            }
            while index.pos(b).unwrap() > index.pos(a).unwrap() {
                b = idom[&b];
            }
        }
        a
    }

    /// Immediate dominator of `n` (itself for the root).
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        self.idom.get(&n).copied()
    }

    /// True when `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom.get(&cur) {
                Some(&d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// The nodes dominated by `n`, in reverse post-order.
    pub fn dominated_by(&self, n: NodeId) -> Vec<NodeId> {
        self.order.iter().copied().filter(|&m| self.dominates(n, m)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grip_ir::{OpKind, Operand, ProgramBuilder, Value};

    fn diamond() -> (Graph, Vec<NodeId>) {
        // entry -> cond -> (t | f) -> join
        let mut b = ProgramBuilder::new();
        let c = b.named_reg("c");
        b.const_i(c, 0);
        let g = b.finish();
        // Build the diamond by hand on top.
        let mut g = g;
        let cv = g.named_reg("cv");
        let cj = g.add_op(grip_ir::Operation::new(OpKind::CondJump, None, vec![Operand::Reg(cv)]));
        let join = g.add_node(grip_ir::Tree::leaf(None));
        let t = g.add_node(grip_ir::Tree::leaf(Some(join)));
        let f = g.add_node(grip_ir::Tree::leaf(Some(join)));
        let cond = g.add_node(grip_ir::Tree::Branch {
            ops: vec![],
            cj,
            on_true: Box::new(grip_ir::Tree::leaf(Some(t))),
            on_false: Box::new(grip_ir::Tree::leaf(Some(f))),
        });
        // chain the original tail to cond
        let tail = g
            .reachable()
            .into_iter()
            .find(|&n| g.successors(n).is_empty() && n != join && n != t && n != f)
            .unwrap();
        g.set_succ(tail, grip_ir::TreePath::ROOT, Some(cond));
        (g, vec![cond, t, f, join])
    }

    #[test]
    fn rpo_is_topological_on_dags() {
        let (g, nodes) = diamond();
        let order = reverse_postorder(&g, g.entry);
        let idx = OrderIndex::new(&order);
        let (cond, t, f, join) = (nodes[0], nodes[1], nodes[2], nodes[3]);
        assert!(idx.before(cond, t));
        assert!(idx.before(cond, f));
        assert!(idx.before(t, join));
        assert!(idx.before(f, join));
    }

    #[test]
    fn dominators_of_diamond() {
        let (g, nodes) = diamond();
        let (cond, t, _f, join) = (nodes[0], nodes[1], nodes[2], nodes[3]);
        let dom = Dominators::compute(&g, g.entry);
        assert!(dom.dominates(cond, t));
        assert!(dom.dominates(cond, join));
        assert!(!dom.dominates(t, join)); // join reachable via f too
        assert_eq!(dom.idom(join), Some(cond));
        assert!(dom.dominated_by(cond).contains(&join));
        assert!(!dom.dominated_by(t).contains(&join));
    }

    #[test]
    fn rpo_tolerates_loops() {
        let mut b = ProgramBuilder::new();
        let k = b.named_reg("k");
        b.const_i(k, 0);
        b.begin_loop();
        b.iadd_imm(k, k, 1);
        let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(4)));
        b.end_loop(c);
        let g = b.finish();
        let order = reverse_postorder(&g, g.entry);
        assert_eq!(order.len(), g.reachable().len());
        let li = g.loop_info.unwrap();
        let idx = OrderIndex::new(&order);
        assert!(idx.before(li.head, li.latch));
        assert!(idx.before(li.latch, li.exit));
    }
}
