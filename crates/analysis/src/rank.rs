//! The §3.4 operation-ordering heuristic.
//!
//! > Operation A has higher priority than operation B if one of the
//! > following are true:
//! > 1. The longest data dependence chain rooted at A is longer than the
//! >    longest data dependence chain rooted at B.
//! > 2. The longest data dependence chains of A and B are equal, but A has
//! >    more dependents in the data dependence graph than B.
//! >
//! > When used for Perfect Pipelining, we add the stipulation that all
//! > operations from iteration *i* have higher priority than all operations
//! > from iteration *j > i*.
//!
//! Ties beyond that fall back to textual (op id) order, which is also the
//! paper's implicit tiebreak ("important operations tend to occur textually
//! before less important ones").

use crate::ddg::{ChainMetrics, Ddg};
use grip_ir::{Graph, OpId};
use std::cmp::Ordering;

/// A totally ordered priority; **smaller sorts first = higher priority**.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Priority {
    /// Iteration tag (Perfect Pipelining stipulation) — ascending.
    pub iter: u32,
    /// Negated longest chain — ascending means longest chain first.
    neg_chain: i64,
    /// Negated own weight (issue latency under latency-aware ranks; the
    /// constant 1 otherwise, where it cannot reorder anything): among
    /// equal chains, start the op whose result takes longest to arrive.
    neg_weight: i64,
    /// Negated dependent count.
    neg_dependents: i64,
    /// Textual order tiebreak (ancestor op id).
    pub orig: OpId,
}

/// Priority table derived from a [`Ddg`].
pub struct RankTable {
    metrics: ChainMetrics,
    /// Per-op weights under latency-aware ranks (`None` = all ops weigh 1,
    /// the paper's formulation).
    weights: Option<std::collections::HashMap<OpId, u32>>,
    /// Iterations ranked together as one group (1 = the paper's exact
    /// stipulation; latency-aware ranks widen the group so adjacent
    /// iterations can interleave across multi-cycle latencies).
    iter_group: u32,
    /// When false (plain compaction, no pipelining), iteration tags are
    /// ignored.
    pub iteration_major: bool,
}

impl RankTable {
    /// Build ranks for the given dependence graph (unit weights: chains
    /// count ops, the paper's formulation).
    pub fn new(ddg: &Ddg, iteration_major: bool) -> RankTable {
        RankTable { metrics: ddg.chain_metrics(), weights: None, iter_group: 1, iteration_major }
    }

    /// Build **latency-aware** ranks: chains are weighted by `weight`
    /// (typically the op's issue latency on the target machine), so the
    /// scheduler drains long-latency critical paths first instead of
    /// packing them tightly and leaving the hazard post-pass to pad the
    /// stalls back in. With unit weights this is [`RankTable::new`]
    /// bit-for-bit.
    pub fn with_weights(
        ddg: &Ddg,
        iteration_major: bool,
        weight: impl Fn(OpId) -> u32,
    ) -> RankTable {
        RankTable::with_weights_grouped(ddg, iteration_major, 1, weight)
    }

    /// [`RankTable::with_weights`] with the iteration-major stipulation
    /// coarsened to groups of `iter_group` consecutive iterations:
    /// within a group, the weighted chain decides, so iteration *i+1*'s
    /// long-latency chain can start under iteration *i*'s shadow. Group 1
    /// is the exact stipulation; unit weights + group 1 reproduce
    /// [`RankTable::new`] bit-for-bit.
    pub fn with_weights_grouped(
        ddg: &Ddg,
        iteration_major: bool,
        iter_group: u32,
        weight: impl Fn(OpId) -> u32,
    ) -> RankTable {
        let weights = ddg.order().iter().map(|&o| (o, weight(o))).collect();
        RankTable {
            metrics: ddg.chain_metrics_weighted(weight),
            weights: Some(weights),
            iter_group: iter_group.max(1),
            iteration_major,
        }
    }

    /// Priority of `op` in graph `g` (duplicated ops inherit their
    /// ancestor's metrics through `orig`).
    pub fn priority(&self, g: &Graph, op: OpId) -> Priority {
        let o = g.op(op);
        // Ancestor metrics when available (survives duplication); fall back
        // to the op's own id for tables built on already-transformed graphs.
        let mut chain = self.metrics.chain(o.orig);
        let mut deps = self.metrics.dependents(o.orig);
        let mut key = o.orig;
        if chain == 0 {
            chain = self.metrics.chain(op);
            deps = self.metrics.dependents(op);
            key = op;
        }
        let weight = match &self.weights {
            Some(w) => w.get(&key).copied().unwrap_or(1),
            None => 1,
        };
        Priority {
            iter: if self.iteration_major { o.iter / self.iter_group } else { 0 },
            neg_chain: -(chain as i64),
            neg_weight: -(i64::from(weight)),
            neg_dependents: -(deps as i64),
            orig: o.orig,
        }
    }

    /// `Less` when `a` outranks `b`.
    pub fn compare(&self, g: &Graph, a: OpId, b: OpId) -> Ordering {
        self.priority(g, a).cmp(&self.priority(g, b))
    }

    /// Sort a candidate list by descending priority (best first).
    pub fn sort(&self, g: &Graph, ops: &mut [OpId]) {
        ops.sort_by(|&a, &b| self.compare(g, a, b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grip_ir::{OpKind, Operand, ProgramBuilder, Value};

    #[test]
    fn chain_length_dominates() {
        // a -> b -> c chain plus independent d: a first, d last of equals.
        let mut b = ProgramBuilder::new();
        let a = b.named_reg("a");
        b.const_i(a, 1);
        let b1 = b.binary("b", OpKind::IAdd, Operand::Reg(a), Operand::Imm(Value::I(1)));
        let _c = b.binary("c", OpKind::IAdd, Operand::Reg(b1), Operand::Imm(Value::I(1)));
        let d = b.named_reg("d");
        b.const_i(d, 5);
        let g = b.finish();
        let ddg = Ddg::build(&g, g.entry);
        let ranks = RankTable::new(&ddg, false);
        let mut ops = ddg.order().to_vec();
        ranks.sort(&g, &mut ops);
        // a (chain 3) first; then b (2); c and d have chain 1, c has id order
        let names: Vec<_> = ops.iter().map(|&o| g.op(o).label().to_string()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn dependents_break_chain_ties() {
        // x feeds two sinks; y feeds one; both have chain 2.
        let mut b = ProgramBuilder::new();
        let x = b.named_reg("x");
        b.const_i(x, 1);
        let y = b.named_reg("y");
        b.const_i(y, 2);
        let _s1 = b.binary("s1", OpKind::IAdd, Operand::Reg(x), Operand::Imm(Value::I(1)));
        let _s2 = b.binary("s2", OpKind::IAdd, Operand::Reg(x), Operand::Imm(Value::I(2)));
        let _s3 = b.binary("s3", OpKind::IAdd, Operand::Reg(y), Operand::Imm(Value::I(3)));
        let g = b.finish();
        let ddg = Ddg::build(&g, g.entry);
        let ranks = RankTable::new(&ddg, false);
        let ops = ddg.order().to_vec();
        let (opx, opy) = (ops[0], ops[1]);
        assert_eq!(ranks.compare(&g, opx, opy), Ordering::Less, "x has more dependents");
    }

    #[test]
    fn latency_weights_promote_long_chains_and_unit_weights_change_nothing() {
        // slow = one 16-cycle op; fast chain = two unit ops.
        let mut b = ProgramBuilder::new();
        let a = b.named_reg("a");
        b.const_i(a, 1);
        let f1 = b.binary("f1", OpKind::IAdd, Operand::Reg(a), Operand::Imm(Value::I(1)));
        let _f2 = b.binary("f2", OpKind::IAdd, Operand::Reg(f1), Operand::Imm(Value::I(1)));
        let s = b.named_reg("s");
        b.const_f(s, 2.0);
        let _d = b.binary("d", OpKind::Div, Operand::Reg(s), Operand::Imm(Value::F(3.0)));
        let g = b.finish();
        let ddg = Ddg::build(&g, g.entry);
        let ops = ddg.order().to_vec();
        // ops: [a, f1, f2, s=const, d=div]
        let (op_a, op_s) = (ops[0], ops[3]);
        // Unit view: a's chain (3 ops) beats s's chain (2 ops).
        let unit = RankTable::new(&ddg, false);
        assert_eq!(unit.compare(&g, op_a, op_s), Ordering::Less);
        // Explicit unit weights are the same table bit-for-bit.
        let unit_w = RankTable::with_weights(&ddg, false, |_| 1);
        for &x in &ops {
            for &y in &ops {
                assert_eq!(unit.compare(&g, x, y), unit_w.compare(&g, x, y));
            }
        }
        // Latency view (div = 16): s roots a 17-cycle chain, a only 3.
        let lat = RankTable::with_weights(&ddg, false, |o| match g.op(o).kind {
            OpKind::Div => 16,
            _ => 1,
        });
        assert_eq!(lat.compare(&g, op_s, op_a), Ordering::Less, "weighted chain wins");
    }

    #[test]
    fn iteration_groups_coarsen_the_stipulation() {
        let mut b = ProgramBuilder::new();
        let a = b.named_reg("a");
        b.const_i(a, 1);
        let l1 = b.binary("l1", OpKind::IAdd, Operand::Reg(a), Operand::Imm(Value::I(1)));
        let _l2 = b.binary("l2", OpKind::IAdd, Operand::Reg(l1), Operand::Imm(Value::I(1)));
        let mut g = b.finish();
        let ddg = Ddg::build(&g, g.entry);
        let ops = ddg.order().to_vec();
        // The long-chain op sits in iteration 1, a short op in iteration 0.
        g.op_mut(ops[0]).iter = 1; // chain 3
        g.op_mut(ops[2]).iter = 0; // chain 1
        let exact = RankTable::with_weights_grouped(&ddg, true, 1, |_| 1);
        assert_eq!(exact.compare(&g, ops[2], ops[0]), Ordering::Less, "iteration wins at group 1");
        let paired = RankTable::with_weights_grouped(&ddg, true, 2, |_| 1);
        assert_eq!(
            paired.compare(&g, ops[0], ops[2]),
            Ordering::Less,
            "inside one pair the chain decides"
        );
    }

    #[test]
    fn iteration_major_overrides_chains() {
        let mut b = ProgramBuilder::new();
        let a = b.named_reg("a");
        b.const_i(a, 1);
        let long = b.binary("l", OpKind::IAdd, Operand::Reg(a), Operand::Imm(Value::I(1)));
        let _l2 = b.binary("l2", OpKind::IAdd, Operand::Reg(long), Operand::Imm(Value::I(1)));
        let mut g = b.finish();
        let ddg = Ddg::build(&g, g.entry);
        // Tag the long-chain op as iteration 1, the shorter one as 0.
        let ops = ddg.order().to_vec();
        g.op_mut(ops[1]).iter = 1;
        g.op_mut(ops[2]).iter = 0;
        let ranks = RankTable::new(&ddg, true);
        assert_eq!(ranks.compare(&g, ops[2], ops[1]), Ordering::Less, "earlier iteration wins");
        let ranks_plain = RankTable::new(&ddg, false);
        assert_eq!(
            ranks_plain.compare(&g, ops[1], ops[2]),
            Ordering::Less,
            "without iteration-major, the longer chain wins"
        );
    }
}
