//! The §3.4 operation-ordering heuristic.
//!
//! > Operation A has higher priority than operation B if one of the
//! > following are true:
//! > 1. The longest data dependence chain rooted at A is longer than the
//! >    longest data dependence chain rooted at B.
//! > 2. The longest data dependence chains of A and B are equal, but A has
//! >    more dependents in the data dependence graph than B.
//! >
//! > When used for Perfect Pipelining, we add the stipulation that all
//! > operations from iteration *i* have higher priority than all operations
//! > from iteration *j > i*.
//!
//! Ties beyond that fall back to textual (op id) order, which is also the
//! paper's implicit tiebreak ("important operations tend to occur textually
//! before less important ones").

use crate::ddg::{ChainMetrics, Ddg};
use grip_ir::{Graph, OpId};
use std::cmp::Ordering;

/// A totally ordered priority; **smaller sorts first = higher priority**.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Priority {
    /// Iteration tag (Perfect Pipelining stipulation) — ascending.
    pub iter: u32,
    /// Negated longest chain — ascending means longest chain first.
    neg_chain: i64,
    /// Negated dependent count.
    neg_dependents: i64,
    /// Textual order tiebreak (ancestor op id).
    pub orig: OpId,
}

/// Priority table derived from a [`Ddg`].
pub struct RankTable {
    metrics: ChainMetrics,
    /// When false (plain compaction, no pipelining), iteration tags are
    /// ignored.
    pub iteration_major: bool,
}

impl RankTable {
    /// Build ranks for the given dependence graph.
    pub fn new(ddg: &Ddg, iteration_major: bool) -> RankTable {
        RankTable { metrics: ddg.chain_metrics(), iteration_major }
    }

    /// Priority of `op` in graph `g` (duplicated ops inherit their
    /// ancestor's metrics through `orig`).
    pub fn priority(&self, g: &Graph, op: OpId) -> Priority {
        let o = g.op(op);
        // Ancestor metrics when available (survives duplication); fall back
        // to the op's own id for tables built on already-transformed graphs.
        let mut chain = self.metrics.chain(o.orig);
        let mut deps = self.metrics.dependents(o.orig);
        if chain == 0 {
            chain = self.metrics.chain(op);
            deps = self.metrics.dependents(op);
        }
        Priority {
            iter: if self.iteration_major { o.iter } else { 0 },
            neg_chain: -(chain as i64),
            neg_dependents: -(deps as i64),
            orig: o.orig,
        }
    }

    /// `Less` when `a` outranks `b`.
    pub fn compare(&self, g: &Graph, a: OpId, b: OpId) -> Ordering {
        self.priority(g, a).cmp(&self.priority(g, b))
    }

    /// Sort a candidate list by descending priority (best first).
    pub fn sort(&self, g: &Graph, ops: &mut [OpId]) {
        ops.sort_by(|&a, &b| self.compare(g, a, b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grip_ir::{OpKind, Operand, ProgramBuilder, Value};

    #[test]
    fn chain_length_dominates() {
        // a -> b -> c chain plus independent d: a first, d last of equals.
        let mut b = ProgramBuilder::new();
        let a = b.named_reg("a");
        b.const_i(a, 1);
        let b1 = b.binary("b", OpKind::IAdd, Operand::Reg(a), Operand::Imm(Value::I(1)));
        let _c = b.binary("c", OpKind::IAdd, Operand::Reg(b1), Operand::Imm(Value::I(1)));
        let d = b.named_reg("d");
        b.const_i(d, 5);
        let g = b.finish();
        let ddg = Ddg::build(&g, g.entry);
        let ranks = RankTable::new(&ddg, false);
        let mut ops = ddg.order().to_vec();
        ranks.sort(&g, &mut ops);
        // a (chain 3) first; then b (2); c and d have chain 1, c has id order
        let names: Vec<_> = ops.iter().map(|&o| g.op(o).label().to_string()).collect();
        assert_eq!(names, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn dependents_break_chain_ties() {
        // x feeds two sinks; y feeds one; both have chain 2.
        let mut b = ProgramBuilder::new();
        let x = b.named_reg("x");
        b.const_i(x, 1);
        let y = b.named_reg("y");
        b.const_i(y, 2);
        let _s1 = b.binary("s1", OpKind::IAdd, Operand::Reg(x), Operand::Imm(Value::I(1)));
        let _s2 = b.binary("s2", OpKind::IAdd, Operand::Reg(x), Operand::Imm(Value::I(2)));
        let _s3 = b.binary("s3", OpKind::IAdd, Operand::Reg(y), Operand::Imm(Value::I(3)));
        let g = b.finish();
        let ddg = Ddg::build(&g, g.entry);
        let ranks = RankTable::new(&ddg, false);
        let ops = ddg.order().to_vec();
        let (opx, opy) = (ops[0], ops[1]);
        assert_eq!(ranks.compare(&g, opx, opy), Ordering::Less, "x has more dependents");
    }

    #[test]
    fn iteration_major_overrides_chains() {
        let mut b = ProgramBuilder::new();
        let a = b.named_reg("a");
        b.const_i(a, 1);
        let long = b.binary("l", OpKind::IAdd, Operand::Reg(a), Operand::Imm(Value::I(1)));
        let _l2 = b.binary("l2", OpKind::IAdd, Operand::Reg(long), Operand::Imm(Value::I(1)));
        let mut g = b.finish();
        let ddg = Ddg::build(&g, g.entry);
        // Tag the long-chain op as iteration 1, the shorter one as 0.
        let ops = ddg.order().to_vec();
        g.op_mut(ops[1]).iter = 1;
        g.op_mut(ops[2]).iter = 0;
        let ranks = RankTable::new(&ddg, true);
        assert_eq!(ranks.compare(&g, ops[2], ops[1]), Ordering::Less, "earlier iteration wins");
        let ranks_plain = RankTable::new(&ddg, false);
        assert_eq!(
            ranks_plain.compare(&g, ops[1], ops[2]),
            Ordering::Less,
            "without iteration-major, the longer chain wins"
        );
    }
}
