//! # grip-audit — independent static verification of schedules
//!
//! Every other correctness signal in the workspace is *dynamic*: the VM
//! executes a schedule and reports stalls, template violations, and a
//! final-state digest. This crate is the second, independent proof path:
//! a static verifier that takes a **scheduled** graph, the **original
//! kernel's** data-dependence graph, and the [`MachineDesc`] it was
//! scheduled for, and proves by dataflow analysis — never by execution —
//! that the schedule is legal:
//!
//! * **GA001 dependence inversion** — every memory dependence of the
//!   source graph (flow, anti, output) maps to a legal ordering in the
//!   schedule, across unwound iterations, the loop back edge, and exit
//!   fix-up chains; register flow dependences are checked wherever their
//!   producer/consumer instances survive renaming ([`checks::deps`]).
//! * **GA002 latency shadow** — a countdown dataflow over the scheduled
//!   rows, derived from [`MachineDesc::latency_of`] alone, proving no row
//!   reads a register while a producer's latency is still outstanding.
//!   This is the static twin of the hazard pass's `scan_hazards`, sharing
//!   none of its bookkeeping.
//! * **GA003 resource overflow** — per-row width, conditional-jump count,
//!   and per-FU-class slot caps re-checked from the machine description.
//! * **GA004 value integrity** — no register is read along any path
//!   before a definition, and no row writes one register twice on a
//!   single leaf path (liveness-style bitset dataflow reusing
//!   `grip-analysis`).
//!
//! Failures come back as structured [`Diagnostic`]s with stable codes and
//! row locations — not booleans — and the whole [`AuditReport`] has a
//! JSON exposition via `grip-json` so it can ride the service protocol.
//!
//! The crate deliberately depends only on `grip-ir`, `grip-machine`,
//! `grip-analysis`, and `grip-json`: it shares no code (and therefore no
//! failure modes) with the scheduler, the hazard pass, or the VM.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use grip_analysis::Ddg;
use grip_ir::{Graph, NodeId, OpId, RegId, TreePath};
use grip_machine::MachineDesc;
use std::collections::HashMap;

mod checks;
mod report;

pub use report::{AuditCode, AuditReport, Diagnostic};

/// Shared pre-computed view of the scheduled graph: the stable row order,
/// per-row placements and leaves, and the predecessor relation restricted
/// to reachable rows. Built once, read by every check.
pub(crate) struct Ctx<'a> {
    pub g: &'a Graph,
    pub desc: &'a MachineDesc,
    /// Reachable nodes in the graph's stable breadth-first order.
    pub nodes: Vec<NodeId>,
    /// Node → row index in `nodes`.
    pub row: HashMap<NodeId, usize>,
    /// Per row: `(position, op)` placements, conditional jumps included.
    pub placed: Vec<Vec<(TreePath, OpId)>>,
    /// Per row: `(leaf position, successor)` pairs.
    pub leaves: Vec<Vec<(TreePath, Option<NodeId>)>>,
    /// Predecessors, restricted to reachable rows on both sides.
    pub preds: HashMap<NodeId, Vec<NodeId>>,
}

impl<'a> Ctx<'a> {
    fn new(g: &'a Graph, desc: &'a MachineDesc) -> Ctx<'a> {
        let nodes = g.reachable();
        let row: HashMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let placed = nodes.iter().map(|&n| g.node_ops(n).to_vec()).collect();
        let leaves = nodes.iter().map(|&n| g.node(n).tree.leaves()).collect();
        let mut preds: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for (n, list) in g.predecessors() {
            if !row.contains_key(&n) {
                continue;
            }
            for p in list {
                if row.contains_key(&p) {
                    preds.entry(n).or_default().push(p);
                }
            }
        }
        // `predecessors()` iterates a HashMap; sort for a deterministic
        // fixpoint visit order (and therefore deterministic diagnostics).
        for list in preds.values_mut() {
            list.sort_by_key(|n| row[n]);
            list.dedup();
        }
        Ctx { g, desc, nodes, row, placed, leaves, preds }
    }

    /// Display label for an op instance (debug name or mnemonic).
    pub fn label(&self, op: OpId) -> String {
        self.g.op(op).label().to_string()
    }

    /// Display form of a register.
    pub fn reg(&self, r: RegId) -> String {
        r.to_string()
    }
}

/// Statically audit a scheduled graph against the dependence graph of the
/// kernel it was derived from and the machine it was scheduled for.
///
/// `ddg` must be the DDG built from the *prepared* (unwound, folded)
/// window **before** scheduling — the same graph `schedule_window`
/// consumed; its op ids are the `orig` ancestors of every scheduled
/// instance. The audit never executes anything: all four checks are
/// dataflow analyses over the scheduled rows.
pub fn audit_schedule(g: &Graph, ddg: &Ddg, desc: &MachineDesc) -> AuditReport {
    let ctx = Ctx::new(g, desc);
    let mut rep = AuditReport {
        rows: ctx.nodes.len(),
        ops: ctx.placed.iter().map(Vec::len).sum(),
        ..AuditReport::default()
    };
    let (mem_deps, reg_deps) = checks::deps::check(&ctx, ddg, &mut rep.diagnostics);
    rep.mem_deps = mem_deps;
    rep.reg_deps = reg_deps;
    checks::latency::check(&ctx, &mut rep.diagnostics);
    checks::resources::check(&ctx, &mut rep.diagnostics);
    checks::values::check(&ctx, &mut rep.diagnostics);
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use grip_ir::{OpKind, Operand, ProgramBuilder, TreePath};

    /// `x = 2.0; y = x*x; A[k] = y; z = A[k]; w = z + y`, one op per row —
    /// a sequential graph whose DDG carries register flow deps and a
    /// store→load memory flow dep.
    fn straight_line() -> (Graph, Vec<NodeId>) {
        let mut b = ProgramBuilder::new();
        let arr = b.array("A", 8);
        let k = b.named_reg("k");
        b.const_i(k, 0);
        let x = b.named_reg("x");
        b.const_f(x, 2.0);
        let y = b.binary("y", OpKind::Mul, Operand::Reg(x), Operand::Reg(x));
        b.store(arr, Operand::Reg(k), 0, Operand::Reg(y));
        let z = b.load("z", arr, Operand::Reg(k), 0);
        let w = b.binary("w", OpKind::Add, Operand::Reg(z), Operand::Reg(y));
        b.live_out(w);
        let g = b.finish();
        let nodes = g.reachable();
        (g, nodes)
    }

    fn move_op(g: &mut Graph, from: NodeId, to: NodeId) {
        let (_, op) = g.node_ops(from)[0];
        g.remove_op_from(from, op);
        g.insert_op_at(to, TreePath::ROOT, op);
    }

    #[test]
    fn sequential_program_is_clean() {
        let (g, _) = straight_line();
        let ddg = Ddg::build(&g, g.entry);
        let rep = audit_schedule(&g, &ddg, &MachineDesc::uniform(4));
        assert!(rep.is_clean(), "unexpected findings:\n{rep}");
        assert!(rep.mem_deps >= 1, "store→load flow dep should be checked");
        assert!(rep.reg_deps >= 3);
        assert_eq!(rep.rows, 7);
    }

    #[test]
    fn consumer_above_producer_is_value_integrity() {
        let (mut g, nodes) = straight_line();
        let ddg = Ddg::build(&g, g.entry);
        // Move `w = z + y` (row 6) up into the row of `x = 2.0` (row 2):
        // both of its sources are now read before any definition.
        move_op(&mut g, nodes[6], nodes[2]);
        let rep = audit_schedule(&g, &ddg, &MachineDesc::uniform(4));
        assert!(rep.count(AuditCode::ValueIntegrity) >= 1, "got:\n{rep}");
    }

    #[test]
    fn load_hoisted_above_store_is_dependence_inversion() {
        let (mut g, nodes) = straight_line();
        let ddg = Ddg::build(&g, g.entry);
        // Move `z = A[k]` (row 5) above the store (row 4), into row 3.
        move_op(&mut g, nodes[5], nodes[3]);
        let rep = audit_schedule(&g, &ddg, &MachineDesc::uniform(4));
        assert!(rep.count(AuditCode::DependenceInversion) >= 1, "got:\n{rep}");
    }

    #[test]
    fn store_and_load_collapsed_into_one_row_is_flagged() {
        let (mut g, nodes) = straight_line();
        let ddg = Ddg::build(&g, g.entry);
        // Put the load into the store's own row: the load fetches at row
        // entry and misses the store's write.
        move_op(&mut g, nodes[5], nodes[4]);
        let rep = audit_schedule(&g, &ddg, &MachineDesc::uniform(4));
        assert!(rep.count(AuditCode::DependenceInversion) >= 1, "got:\n{rep}");
    }

    #[test]
    fn overfull_row_is_resource_overflow() {
        let (mut g, nodes) = straight_line();
        let ddg = Ddg::build(&g, g.entry);
        // Two ops in one row on a width-1 machine.
        move_op(&mut g, nodes[3], nodes[2]);
        let rep = audit_schedule(&g, &ddg, &MachineDesc::uniform(1));
        assert!(rep.count(AuditCode::ResourceOverflow) >= 1, "got:\n{rep}");
    }

    #[test]
    fn latency_shadow_on_a_multi_cycle_machine() {
        // The sequential program places `w = z + y` in the row right after
        // the load of `z`; on mem_bound (multi-cycle loads) that row sits
        // inside the load's latency shadow.
        let (g, _) = straight_line();
        let ddg = Ddg::build(&g, g.entry);
        let rep = audit_schedule(&g, &ddg, &MachineDesc::mem_bound());
        assert!(rep.count(AuditCode::LatencyShadow) >= 1, "got:\n{rep}");
        // The same schedule on a unit-latency machine has no shadows.
        let rep = audit_schedule(&g, &ddg, &MachineDesc::uniform(4));
        assert_eq!(rep.count(AuditCode::LatencyShadow), 0);
    }

    #[test]
    fn duplicated_def_in_one_row_is_value_integrity() {
        let (mut g, nodes) = straight_line();
        let ddg = Ddg::build(&g, g.entry);
        // Clone the mul and insert the twin into the same row: two writes
        // of `y` on one path.
        let (_, y_op) = g.node_ops(nodes[3])[0];
        let twin = g.dup_op(y_op);
        g.insert_op_at(nodes[3], TreePath::ROOT, twin);
        let rep = audit_schedule(&g, &ddg, &MachineDesc::uniform(4));
        assert!(rep.count(AuditCode::ValueIntegrity) >= 1, "got:\n{rep}");
    }
}
