//! GA001 — dependence preservation.
//!
//! The source DDG's op ids are the `orig` ancestors of every scheduled
//! instance, so each dependence `a → b` is re-found in the schedule by
//! locating the rows holding instances of `b` and asking whether `a` is
//! **must-complete** at their entry: present on every path from program
//! entry, through unwound iterations, the loop back edge, and exit fix-up
//! chains alike.
//!
//! Only *memory* dependences (flow, anti, output) are enforced here, for
//! the same reason the scheduler itself only consults the DDG for them:
//! they cannot be renamed away. Register flow dependences are legally
//! dissolved and re-routed by renaming (the producer writes a fresh
//! register, a copy chain delivers the value), merged across alternative
//! exit fix-up chains, and over-approximated by the linearized last-def
//! scan across mutually exclusive paths — so their post-schedule form is
//! not an op-to-op ordering at all but a dataflow property: every read
//! sees a definition on every path. That property is exactly what GA004's
//! value-integrity analysis proves; an inverted register dependence
//! surfaces there as a use-before-def. This check still walks the
//! register edges to count them (and to keep the coverage numbers
//! honest), but orders only the memory pairs.

use super::{must_forward, row_reaches};
use crate::report::{AuditCode, Diagnostic};
use crate::Ctx;
use grip_analysis::Ddg;
use grip_ir::{OpId, OpKind};
use std::collections::HashMap;

/// The dependence class of a memory edge, for messages.
fn class_of(ka: OpKind, kb: OpKind) -> &'static str {
    match (ka.is_store(), kb.is_store()) {
        (true, false) => "memory flow",
        (false, true) => "memory anti",
        (true, true) => "memory output",
        (false, false) => "memory",
    }
}

/// Run the check; returns `(mem_deps, reg_deps)` examined.
pub(crate) fn check(ctx: &Ctx, ddg: &Ddg, out: &mut Vec<Diagnostic>) -> (usize, usize) {
    // Must-complete orig ids at each row's entry.
    let ins = must_forward(ctx, ctx.g.op_table_len(), |i, leaf, set| {
        for &(p, op) in &ctx.placed[i] {
            if p.is_prefix_of(leaf) {
                set.insert(ctx.g.op(op).orig.index());
            }
        }
    });
    // Rows holding an instance of each surviving orig.
    let mut instances: HashMap<OpId, Vec<usize>> = HashMap::new();
    for (i, placed) in ctx.placed.iter().enumerate() {
        for &(_, op) in placed {
            let rows = instances.entry(ctx.g.op(op).orig).or_default();
            if rows.last() != Some(&i) {
                rows.push(i);
            }
        }
    }

    let (mut mem_deps, mut reg_deps) = (0usize, 0usize);
    for &a in ddg.order() {
        for &b in ddg.succs(a) {
            if !ddg.mem_dep(a, b) {
                reg_deps += 1;
                continue; // register flow: enforced via GA004's dataflow
            }
            mem_deps += 1;
            let Some(b_rows) = instances.get(&b) else {
                continue; // consumer dead-code removed: nothing left to order
            };
            let (ka, kb) = (ctx.g.op(a).kind, ctx.g.op(b).kind);
            let class = class_of(ka, kb);
            let Some(a_rows) = instances.get(&a) else {
                // A memory producer may only vanish from the anti side —
                // a dead-code-removed load. A missing store is a lost write.
                if !ka.is_load() {
                    out.push(Diagnostic {
                        code: AuditCode::DependenceInversion,
                        row: b_rows[0],
                        op: Some(ctx.label(b)),
                        register: None,
                        message: format!(
                            "{class} dependence {} -> {}: the producer store has no \
                             scheduled instance",
                            ctx.label(a),
                            ctx.label(b)
                        ),
                    });
                }
                continue;
            };
            let abit = a.index();
            // A co-resident anti pair is legal: the load fetches at row
            // entry, the store commits after.
            let anti = ka.is_load();
            for &rb in b_rows {
                if ins[rb].as_ref().is_some_and(|s| s.contains(abit)) {
                    continue; // proven complete on every path to this row
                }
                let co_resident = a_rows.binary_search(&rb).is_ok();
                if anti && co_resident {
                    continue;
                }
                let ordered_somewhere = co_resident
                    || a_rows.iter().any(|&ra| row_reaches(ctx, ra, rb))
                    || a_rows.iter().any(|&ra| row_reaches(ctx, rb, ra));
                if !ordered_somewhere {
                    // No execution runs both sides in order: a fictitious
                    // linearization pair across exclusive paths.
                    continue;
                }
                out.push(Diagnostic {
                    code: AuditCode::DependenceInversion,
                    row: rb,
                    op: Some(ctx.label(b)),
                    register: None,
                    message: format!(
                        "{class} dependence {} -> {}: producer not complete on every \
                         path to row {rb}{}",
                        ctx.label(a),
                        ctx.label(b),
                        if co_resident { " (pair collapsed into one row)" } else { "" }
                    ),
                });
            }
        }
    }
    (mem_deps, reg_deps)
}
