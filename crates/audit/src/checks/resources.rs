//! GA003 — resource and issue-template legality.
//!
//! Re-counts every row against the machine description: total width,
//! conditional-jump slots, and — on machines with class caps — the
//! per-FU-class slot limits. Deliberately re-derived from
//! [`grip_machine::MachineDesc`] fields rather than calling the
//! scheduler-facing `fits` helper, so a bookkeeping bug there cannot hide
//! an overfull row from the audit.

use crate::report::{AuditCode, Diagnostic};
use crate::Ctx;
use grip_machine::{FuClass, UNCAPPED};

pub(crate) fn check(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    for (i, &n) in ctx.nodes.iter().enumerate() {
        let ops = ctx.g.node_op_count(n);
        if ctx.desc.width != UNCAPPED && ops > ctx.desc.width {
            out.push(Diagnostic {
                code: AuditCode::ResourceOverflow,
                row: i,
                op: None,
                register: None,
                message: format!(
                    "row {i} issues {ops} operations, machine width is {}",
                    ctx.desc.width
                ),
            });
        }
        let cjs = ctx.g.node_cj_count(n);
        if ctx.desc.cjs != UNCAPPED && cjs > ctx.desc.cjs {
            out.push(Diagnostic {
                code: AuditCode::ResourceOverflow,
                row: i,
                op: None,
                register: None,
                message: format!(
                    "row {i} holds {cjs} conditional jumps, machine allows {}",
                    ctx.desc.cjs
                ),
            });
        }
        if !ctx.desc.has_class_caps() {
            continue;
        }
        let mut counts = [0usize; FuClass::COUNT];
        for &(_, op) in &ctx.placed[i] {
            let k = ctx.g.op(op).kind;
            if !k.is_cj() {
                counts[FuClass::of(k).index()] += 1;
            }
        }
        for &c in &FuClass::ALL[..3] {
            let cap = ctx.desc.class_slots[c.index()];
            if cap != UNCAPPED && counts[c.index()] > cap {
                out.push(Diagnostic {
                    code: AuditCode::ResourceOverflow,
                    row: i,
                    op: None,
                    register: None,
                    message: format!(
                        "row {i} issues {} {} operations, the {} template caps it at {cap}",
                        counts[c.index()],
                        c.name(),
                        ctx.desc.name
                    ),
                });
            }
        }
    }
}
