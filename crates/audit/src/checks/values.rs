//! GA004 — value integrity.
//!
//! Two register-level invariants, both checked with the same bitset
//! dataflow style as `grip-analysis`'s liveness:
//!
//! * **no use before def**: every register an op reads must be defined on
//!   *every* path from program entry to its row (reads fetch at row entry
//!   under VLIW semantics, so a definition in the same row does not
//!   count). Registers with no definition anywhere in the schedule are
//!   external inputs (the VM zero-initialises them) and are exempt.
//! * **single def per row path**: within one row, no register may be
//!   written twice along a single leaf path — the tree-instruction form
//!   of single-def-per-live-range, and a precondition for the VM's
//!   deterministic commit.

use super::must_forward;
use crate::report::{AuditCode, Diagnostic};
use crate::Ctx;
use grip_analysis::BitSet;
use std::collections::{HashMap, HashSet};

pub(crate) fn check(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    let regs = ctx.g.reg_count();
    // Registers defined somewhere in the schedule; the rest are inputs.
    let mut defined = BitSet::new(regs);
    for placed in &ctx.placed {
        for &(_, op) in placed {
            if let Some(d) = ctx.g.op(op).dest {
                defined.insert(d.index());
            }
        }
    }
    // Must-defined registers at each row's entry.
    let ins = must_forward(ctx, regs, |i, leaf, set| {
        for &(p, op) in &ctx.placed[i] {
            if p.is_prefix_of(leaf) {
                if let Some(d) = ctx.g.op(op).dest {
                    set.insert(d.index());
                }
            }
        }
    });

    let mut flagged: HashSet<(usize, usize)> = HashSet::new();
    for (i, placed) in ctx.placed.iter().enumerate() {
        for &(_, op) in placed {
            let o = ctx.g.op(op);
            for r in o.reads() {
                if !defined.contains(r.index()) {
                    continue; // external input register
                }
                let ok = ins[i].as_ref().is_some_and(|s| s.contains(r.index()));
                if !ok && flagged.insert((i, r.index())) {
                    out.push(Diagnostic {
                        code: AuditCode::ValueIntegrity,
                        row: i,
                        op: Some(o.label().to_string()),
                        register: Some(ctx.reg(r)),
                        message: format!(
                            "row {i} reads {} before any definition on some path from entry",
                            ctx.reg(r)
                        ),
                    });
                }
            }
        }
    }

    // Single def per leaf path within a row.
    let mut dup_flagged: HashSet<(usize, usize)> = HashSet::new();
    for (i, placed) in ctx.placed.iter().enumerate() {
        for &(leaf, _) in &ctx.leaves[i] {
            let mut writes: HashMap<usize, u32> = HashMap::new();
            for &(p, op) in placed {
                if p.is_prefix_of(leaf) {
                    if let Some(d) = ctx.g.op(op).dest {
                        *writes.entry(d.index()).or_insert(0) += 1;
                    }
                }
            }
            for (r, count) in writes {
                if count > 1 && dup_flagged.insert((i, r)) {
                    out.push(Diagnostic {
                        code: AuditCode::ValueIntegrity,
                        row: i,
                        op: None,
                        register: Some(ctx.reg(grip_ir::RegId::new(r))),
                        message: format!(
                            "row {i} writes register index {r} {count} times on one path"
                        ),
                    });
                }
            }
        }
    }
}
