//! GA002 — latency shadows.
//!
//! A countdown dataflow over the scheduled rows, derived from
//! [`grip_machine::MachineDesc::latency_of`] alone: when a row defines a
//! register on a machine where that op takes `L > 1` cycles, the next
//! `L - 1` rows along every path lie in its latency shadow, and any read
//! of the register there would interlock (or worse). This is the static
//! twin of the hazard pass's `scan_hazards` — same semantics (per-row
//! decrement, per-leaf-path definitions, max-merge at joins, fixpoint over
//! back edges), independently re-derived from the machine description so
//! the two implementations share no bookkeeping.

use crate::report::{AuditCode, Diagnostic};
use crate::Ctx;
use std::collections::{HashSet, VecDeque};

/// Elementwise max-merge of every predecessor's out-state into a fresh
/// entry state for row `i` (zeros when nothing is outstanding).
fn merged_input(ctx: &Ctx, outs: &[Option<Vec<u32>>], i: usize) -> Vec<u32> {
    let mut acc = vec![0u32; ctx.g.reg_count()];
    if let Some(preds) = ctx.preds.get(&ctx.nodes[i]) {
        for p in preds {
            if let Some(o) = &outs[ctx.row[p]] {
                for (a, &b) in acc.iter_mut().zip(o) {
                    *a = (*a).max(b);
                }
            }
        }
    }
    acc
}

/// One row's transfer: age every countdown by the row's single cycle,
/// then install fresh countdowns for definitions along each leaf path
/// (committed ops are those whose position prefixes the leaf); the row's
/// out-state is the pointwise max over its leaf paths.
fn transfer(ctx: &Ctx, i: usize, input: &[u32]) -> Vec<u32> {
    let dec: Vec<u32> = input.iter().map(|&c| c.saturating_sub(1)).collect();
    let mut out = vec![0u32; dec.len()];
    for &(leaf, _) in &ctx.leaves[i] {
        let mut path = dec.clone();
        for &(p, op) in &ctx.placed[i] {
            if p.is_prefix_of(leaf) {
                let o = ctx.g.op(op);
                if let Some(d) = o.dest {
                    let l = ctx.desc.latency_of(o.kind);
                    path[d.index()] = l.saturating_sub(1);
                }
            }
        }
        for (a, b) in out.iter_mut().zip(path) {
            *a = (*a).max(b);
        }
    }
    out
}

pub(crate) fn check(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    if ctx.desc.max_latency() <= 1 || ctx.nodes.is_empty() {
        return; // unit-latency machine: no shadows exist
    }
    let n = ctx.nodes.len();
    let mut outs: Vec<Option<Vec<u32>>> = vec![None; n];
    let mut queue: VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(i) = queue.pop_front() {
        queued[i] = false;
        let next = transfer(ctx, i, &merged_input(ctx, &outs, i));
        if outs[i].as_ref() != Some(&next) {
            outs[i] = Some(next);
            for &(_, succ) in &ctx.leaves[i] {
                if let Some(&j) = succ.and_then(|s| ctx.row.get(&s)) {
                    if !queued[j] {
                        queued[j] = true;
                        queue.push_back(j);
                    }
                }
            }
        }
    }

    let mut flagged: HashSet<(usize, usize)> = HashSet::new();
    for i in 0..n {
        let input = merged_input(ctx, &outs, i);
        for &(_, op) in &ctx.placed[i] {
            let o = ctx.g.op(op);
            for r in o.reads() {
                let left = input[r.index()];
                if left > 0 && flagged.insert((i, r.index())) {
                    out.push(Diagnostic {
                        code: AuditCode::LatencyShadow,
                        row: i,
                        op: Some(o.label().to_string()),
                        register: Some(ctx.reg(r)),
                        message: format!(
                            "row {i} reads {} inside a producer's latency shadow \
                             ({left} cycle{} outstanding)",
                            ctx.reg(r),
                            if left == 1 { "" } else { "s" }
                        ),
                    });
                }
            }
        }
    }
}
