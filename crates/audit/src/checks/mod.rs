//! The four audit checks, plus the shared "must" dataflow they run on.

pub(crate) mod deps;
pub(crate) mod latency;
pub(crate) mod resources;
pub(crate) mod values;

use crate::Ctx;
use grip_analysis::BitSet;
use grip_ir::TreePath;
use std::collections::VecDeque;

/// Forward **must** dataflow over the scheduled rows.
///
/// `in(entry) = ∅`; for every other row, `in(row)` is the intersection over
/// all incoming `(pred, leaf)` edges of `in(pred) ∪ gen(pred, leaf)` — the
/// facts guaranteed on *every* path from entry, loop back edges included.
/// `gen` adds the bits a given leaf path of a row establishes (committed
/// ops under VLIW tree semantics: positions that prefix the leaf).
///
/// Returns the entry set per row. Initialisation is top (`None`) with the
/// entry pinned at ∅, so chaotic iteration only ever shrinks sets and the
/// greatest fixpoint is reached.
pub(crate) fn must_forward(
    ctx: &Ctx,
    bits: usize,
    gen: impl Fn(usize, TreePath, &mut BitSet),
) -> Vec<Option<BitSet>> {
    let n = ctx.nodes.len();
    let mut ins: Vec<Option<BitSet>> = vec![None; n];
    if n == 0 {
        return ins;
    }
    ins[0] = Some(BitSet::new(bits));
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut queued = vec![false; n];
    queued[0] = true;
    while let Some(i) = queue.pop_front() {
        queued[i] = false;
        let in_i = ins[i].clone().expect("queued row has an in-set");
        for &(leaf, succ) in &ctx.leaves[i] {
            let Some(s) = succ else { continue };
            let Some(&j) = ctx.row.get(&s) else { continue };
            if j == 0 {
                continue; // nothing is "already complete" at program entry
            }
            let mut contrib = in_i.clone();
            gen(i, leaf, &mut contrib);
            let changed = match &mut ins[j] {
                Some(cur) => cur.intersect_with(&contrib),
                slot @ None => {
                    *slot = Some(contrib);
                    true
                }
            };
            if changed && !queued[j] {
                queued[j] = true;
                queue.push_back(j);
            }
        }
    }
    ins
}

/// True when row `to` is reachable from row `from` by one or more control
/// edges (`from == to` counts only via a cycle).
pub(crate) fn row_reaches(ctx: &Ctx, from: usize, to: usize) -> bool {
    let mut seen = vec![false; ctx.nodes.len()];
    let mut stack: Vec<usize> = Vec::new();
    let push_succs = |i: usize, stack: &mut Vec<usize>, seen: &mut Vec<bool>| {
        for &(_, succ) in &ctx.leaves[i] {
            if let Some(&j) = succ.and_then(|s| ctx.row.get(&s)) {
                if !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
    };
    push_succs(from, &mut stack, &mut seen);
    while let Some(i) = stack.pop() {
        if i == to {
            return true;
        }
        push_succs(i, &mut stack, &mut seen);
    }
    false
}
