//! Structured audit diagnostics: stable error codes, locations, and a
//! JSON exposition that round-trips through the service wire protocol.

use grip_json::Json;

/// Stable audit error codes. The numeric part never changes meaning, so
/// downstream tooling (CI filters, dashboards) can key on the string.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AuditCode {
    /// `GA001` — a source-graph dependence is not preserved by the
    /// schedule: the producer is not proven complete before the consumer
    /// on every path, or the pair was collapsed into one row illegally.
    DependenceInversion,
    /// `GA002` — a consumer is placed inside a producer's latency shadow:
    /// the static countdown derived from [`grip_machine::MachineDesc::latency_of`]
    /// still carries outstanding cycles for a register the row reads.
    LatencyShadow,
    /// `GA003` — a row exceeds the machine's issue template: width,
    /// conditional-jump count, or a per-FU-class slot cap.
    ResourceOverflow,
    /// `GA004` — value integrity: a register is read along some path
    /// before any definition, or one row writes the same register twice
    /// on a single leaf path.
    ValueIntegrity,
}

impl AuditCode {
    /// All codes, in numeric order.
    pub const ALL: [AuditCode; 4] = [
        AuditCode::DependenceInversion,
        AuditCode::LatencyShadow,
        AuditCode::ResourceOverflow,
        AuditCode::ValueIntegrity,
    ];

    /// The stable wire string, e.g. `"GA001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            AuditCode::DependenceInversion => "GA001",
            AuditCode::LatencyShadow => "GA002",
            AuditCode::ResourceOverflow => "GA003",
            AuditCode::ValueIntegrity => "GA004",
        }
    }

    /// Short human title for tables and summaries.
    pub fn title(self) -> &'static str {
        match self {
            AuditCode::DependenceInversion => "dependence inversion",
            AuditCode::LatencyShadow => "latency shadow",
            AuditCode::ResourceOverflow => "resource overflow",
            AuditCode::ValueIntegrity => "value integrity",
        }
    }

    /// Parse a wire string back into a code.
    pub fn parse(s: &str) -> Option<AuditCode> {
        AuditCode::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

impl std::fmt::Display for AuditCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One audit finding, located as precisely as the check allows.
///
/// `row` is the index of the offending instruction in the scheduled
/// graph's stable breadth-first order (entry = row 0) — the same order
/// the tableau printer uses, so rows are easy to find by eye.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Which invariant was violated.
    pub code: AuditCode,
    /// Row index of the offending instruction (breadth-first order).
    pub row: usize,
    /// Label of the implicated operation, when one is identified.
    pub op: Option<String>,
    /// The register involved, when one is identified.
    pub register: Option<String>,
    /// Full human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// JSON exposition of this finding.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj().field("code", self.code.as_str()).field("row", self.row as i64);
        if let Some(op) = &self.op {
            j = j.field("op", op.as_str());
        }
        if let Some(r) = &self.register {
            j = j.field("register", r.as_str());
        }
        j.field("message", self.message.as_str())
    }

    /// Parse one finding back from its wire form.
    pub fn from_json(j: &Json) -> Result<Diagnostic, String> {
        let code = j
            .get("code")
            .and_then(Json::as_str)
            .and_then(AuditCode::parse)
            .ok_or("diagnostic missing a valid \"code\"")?;
        let row = j.get("row").and_then(Json::as_i64).ok_or("diagnostic missing \"row\"")?;
        Ok(Diagnostic {
            code,
            row: row.max(0) as usize,
            op: j.get("op").and_then(Json::as_str).map(str::to_string),
            register: j.get("register").and_then(Json::as_str).map(str::to_string),
            message: j
                .get("message")
                .and_then(Json::as_str)
                .ok_or("diagnostic missing \"message\"")?
                .to_string(),
        })
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} row {}: {}", self.code, self.row, self.message)
    }
}

/// The result of a full static audit: every finding plus coverage
/// counters showing what was actually checked.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AuditReport {
    /// All findings, in check order (GA001 → GA004), then row order.
    pub diagnostics: Vec<Diagnostic>,
    /// Scheduled rows examined.
    pub rows: usize,
    /// Operation instances examined (duplicates counted per placement).
    pub ops: usize,
    /// Memory dependences of the source DDG checked for preservation.
    pub mem_deps: usize,
    /// Register flow dependences of the source DDG checked for ordering.
    pub reg_deps: usize,
}

impl AuditReport {
    /// True when no check produced a finding.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings carrying a given code.
    pub fn count(&self, code: AuditCode) -> usize {
        self.diagnostics.iter().filter(|d| d.code == code).count()
    }

    /// One-line summary: `"clean"` or `"GA001×2, GA002×1"`.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            return "clean".to_string();
        }
        let parts: Vec<String> = AuditCode::ALL
            .into_iter()
            .filter_map(|c| {
                let n = self.count(c);
                (n > 0).then(|| format!("{c}×{n}"))
            })
            .collect();
        parts.join(", ")
    }

    /// JSON exposition: `clean`, the coverage counters, and the findings.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("clean", self.is_clean())
            .field("rows", self.rows as i64)
            .field("ops", self.ops as i64)
            .field("mem_deps", self.mem_deps as i64)
            .field("reg_deps", self.reg_deps as i64)
            .field("diagnostics", Json::Arr(self.diagnostics.iter().map(|d| d.to_json()).collect()))
    }

    /// Parse a report back from its wire form.
    pub fn from_json(j: &Json) -> Result<AuditReport, String> {
        let count = |key: &str| -> Result<usize, String> {
            j.get(key)
                .and_then(Json::as_i64)
                .map(|v| v.max(0) as usize)
                .ok_or_else(|| format!("audit report missing \"{key}\""))
        };
        let diags = j
            .get("diagnostics")
            .and_then(Json::as_arr)
            .ok_or("audit report missing \"diagnostics\"")?;
        Ok(AuditReport {
            diagnostics: diags.iter().map(Diagnostic::from_json).collect::<Result<_, _>>()?,
            rows: count("rows")?,
            ops: count("ops")?,
            mem_deps: count("mem_deps")?,
            reg_deps: count("reg_deps")?,
        })
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "audit: {} ({} rows, {} ops, {} mem deps, {} reg deps)",
            self.summary(),
            self.rows,
            self.ops,
            self.mem_deps,
            self.reg_deps
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for c in AuditCode::ALL {
            assert_eq!(AuditCode::parse(c.as_str()), Some(c));
        }
        assert_eq!(AuditCode::parse("GA999"), None);
    }

    #[test]
    fn report_json_round_trips() {
        let rep = AuditReport {
            diagnostics: vec![Diagnostic {
                code: AuditCode::LatencyShadow,
                row: 7,
                op: Some("mul".to_string()),
                register: Some("r3".to_string()),
                message: "read of r3 with 2 cycles outstanding".to_string(),
            }],
            rows: 40,
            ops: 160,
            mem_deps: 12,
            reg_deps: 30,
        };
        let j = rep.to_json();
        let back = AuditReport::from_json(&Json::parse(&j.line()).unwrap()).unwrap();
        assert_eq!(back, rep);
        assert!(!back.is_clean());
        assert_eq!(back.summary(), "GA002×1");
    }

    #[test]
    fn clean_summary() {
        assert_eq!(AuditReport::default().summary(), "clean");
        assert!(AuditReport::default().is_clean());
    }
}
