//! # grip-json — a minimal JSON value tree
//!
//! The container has no network, so the workspace carries its own
//! serializer and parser instead of depending on `serde`. The writer
//! grew up in `grip-bench` (which still re-exports this crate as
//! `grip_bench::json`); the parser was added for the `grip-service`
//! JSON-lines protocol, where requests arrive as text.
//!
//! Only what the bench reports and the service protocol need: objects,
//! arrays, strings, numbers, and booleans, with deterministic field order
//! and stable float formatting (finite floats print with enough digits to
//! round-trip; non-finite values print as `null`, matching JSON's number
//! grammar). The parser is strict (no trailing garbage, no comments) and
//! keeps object fields in document order, so `parse(x).pretty()` is a
//! canonical form.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A float (`NaN`/`inf` serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object (panics on non-objects).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on non-object"),
        }
        self
    }

    /// Render with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0, true);
        s
    }

    /// Render on a single line (the JSON-lines wire form).
    pub fn line(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0, false);
        s
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                if !pretty {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.write(out, 0, false);
                    }
                    out.push(']');
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1, true);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                if !pretty {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        Json::Str(k.clone()).write(out, 0, false);
                        out.push(':');
                        v.write(out, 0, false);
                    }
                    out.push('}');
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    Json::Str(k.clone()).write(out, indent + 1, true);
                    out.push_str(": ");
                    v.write(out, indent + 1, true);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    // ---- accessors (the ergonomic half of the protocol layer) ----

    /// Object field by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload (accepts integral floats, as parsers on the other
    /// side of a pipe may have widened them).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            Json::Num(x) if x.fract() == 0.0 && x.abs() < 9.0e15 => Some(x as i64),
            _ => None,
        }
    }

    /// Numeric payload as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Num(x) => Some(x),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array items.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parse one JSON document from `src` (strict: the whole string must
    /// be consumed, modulo surrounding whitespace).
    pub fn parse(src: &str) -> Result<Json, ParseError> {
        let mut p = Parser { src: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i as i64)
    }
}
impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset into the source.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError { msg: msg.to_string(), at: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{0008}'),
                    Some(b'f') => s.push('\u{000c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: JSON escapes astral characters as
                        // two \u units; anything unpaired (including a high
                        // surrogate followed by a non-low escape) becomes
                        // U+FFFD.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.src[self.pos..].starts_with(b"\\u") {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if (0xDC00..0xE000).contains(&lo) {
                                    let astral = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(astral).unwrap_or('\u{FFFD}')
                                } else {
                                    // The high surrogate degrades; the
                                    // second escape stands on its own
                                    // (itself U+FFFD if also a surrogate).
                                    s.push('\u{FFFD}');
                                    char::from_u32(lo).unwrap_or('\u{FFFD}')
                                }
                            } else {
                                '\u{FFFD}'
                            }
                        } else {
                            char::from_u32(cp).unwrap_or('\u{FFFD}')
                        };
                        s.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if len == 0 || end > self.src.len() {
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                    match std::str::from_utf8(&self.src[start..end]) {
                        Ok(chunk) => {
                            s.push_str(chunk);
                            self.pos = end;
                        }
                        Err(_) => return Err(self.err("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

/// Length of the UTF-8 sequence starting with lead byte `b` (0 = invalid).
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_pretty_json() {
        let j = Json::obj()
            .field("name", "LL1\"x\"")
            .field("ok", true)
            .field("n", 3usize)
            .field("speedup", 3.5f64)
            .field("nan", f64::NAN)
            .field("rows", Json::Arr(vec![Json::Int(1), Json::Int(2)]));
        let s = j.pretty();
        assert!(s.contains("\"name\": \"LL1\\\"x\\\"\""));
        assert!(s.contains("\"speedup\": 3.5"));
        assert!(s.contains("\"nan\": null"));
        assert!(s.starts_with("{\n") && s.ends_with('}'));
        assert!(Json::obj().pretty() == "{}");
    }

    #[test]
    fn line_form_is_single_line_and_reparses() {
        let j = Json::obj()
            .field("kernel", "LL3")
            .field("n", 100usize)
            .field("machine", Json::obj().field("width", 4usize))
            .field("tags", Json::Arr(vec![Json::Str("a".into()), Json::Null]));
        let line = j.line();
        assert!(!line.contains('\n'));
        assert_eq!(Json::parse(&line).unwrap(), j);
        // The pretty form parses back to the same tree too.
        assert_eq!(Json::parse(&j.pretty()).unwrap(), j);
    }

    #[test]
    fn parses_scalars_and_numbers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("3.25").unwrap(), Json::Num(3.25));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        // Integer overflowing i64 falls back to float.
        assert!(matches!(Json::parse("99999999999999999999").unwrap(), Json::Num(_)));
    }

    #[test]
    fn parses_strings_with_escapes() {
        let j = Json::parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(j.as_str().unwrap(), "a\"b\\c\ndAé");
        // Surrogate pair, raw and escaped.
        let j = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(j.as_str().unwrap(), "😀");
        let j = Json::parse(r#""😀""#).unwrap();
        assert_eq!(j.as_str().unwrap(), "😀");
        // Malformed surrogates degrade to U+FFFD, never panic or wrap.
        let j = Json::parse(r#""\ud800\ud800x""#).unwrap();
        assert_eq!(j.as_str().unwrap(), "\u{FFFD}\u{FFFD}x");
        let j = Json::parse(r#""\ud800y""#).unwrap();
        assert_eq!(j.as_str().unwrap(), "\u{FFFD}y");
        let j = Json::parse(r#""\ud800A""#).unwrap();
        assert_eq!(j.as_str().unwrap(), "\u{FFFD}A");
        // Raw UTF-8 passes through.
        let j = Json::parse("\"héllo\"").unwrap();
        assert_eq!(j.as_str().unwrap(), "héllo");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "\"unterminated", "1 2", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let j = Json::parse(r#"{"kernel":"LL3","n":100,"deep":{"x":[1,2.5,true]}}"#).unwrap();
        assert_eq!(j.get("kernel").and_then(Json::as_str), Some("LL3"));
        assert_eq!(j.get("n").and_then(Json::as_i64), Some(100));
        let arr = j.get("deep").and_then(|d| d.get("x")).and_then(Json::as_arr).unwrap();
        assert_eq!(arr[0].as_i64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert!(j.get("missing").is_none());
        assert_eq!(Json::Num(7.0).as_i64(), Some(7));
    }
}
