//! The behavioural interface schedulers program against.

use crate::desc::MachineDesc;
use grip_ir::{Graph, NodeId, OpId, OpKind};

/// Anything that can answer a scheduler's resource questions.
///
/// The trait is implemented by [`MachineDesc`] itself and by adapter types
/// (such as `grip_core::Resources`) that wrap a description. All methods
/// are provided in terms of [`MachineModel::desc`], so an adapter only
/// supplies the description and inherits class- and latency-aware
/// behaviour.
pub trait MachineModel {
    /// The underlying machine description.
    fn desc(&self) -> &MachineDesc;

    /// True when `node` can still accept `op`.
    fn has_room(&self, g: &Graph, node: NodeId, op: OpId) -> bool {
        self.desc().has_room(g, node, op)
    }

    /// True when `node` is saturated for ordinary operations.
    fn ops_full(&self, g: &Graph, node: NodeId) -> bool {
        self.desc().ops_full(g, node)
    }

    /// True when nothing further fits at all (ops and jumps).
    fn exhausted(&self, g: &Graph, node: NodeId) -> bool {
        self.desc().exhausted(g, node)
    }

    /// Free total-width slots in `node`.
    fn free_slots(&self, g: &Graph, node: NodeId) -> usize {
        self.desc().free_slots(g, node)
    }

    /// Issue-to-result latency of `kind`.
    fn latency_of(&self, kind: OpKind) -> u32 {
        self.desc().latency_of(kind)
    }

    /// Deepest latency in the model (hazard-scan window).
    fn max_latency(&self) -> u32 {
        self.desc().max_latency()
    }
}

impl MachineModel for MachineDesc {
    fn desc(&self) -> &MachineDesc {
        self
    }
}
