//! Functional-unit classes and per-class operation latencies.

use grip_ir::OpKind;

/// The functional-unit class an operation issues on.
///
/// The paper's machine has `fus` interchangeable units; real VLIW/EPIC
/// targets partition them — integer ALUs, floating-point pipes, memory
/// ports, and the branch unit of the instruction tree. Every [`OpKind`]
/// maps to exactly one class via [`FuClass::of`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuClass {
    /// Integer/boolean ALU: index math, compares, logic, register copies.
    Alu,
    /// Floating-point unit: `f64` arithmetic.
    Fpu,
    /// Memory port: loads and stores.
    Mem,
    /// Branch unit: conditional jumps of the instruction tree.
    Branch,
}

impl FuClass {
    /// Number of classes (array-table dimension).
    pub const COUNT: usize = 4;

    /// All classes, in table order.
    pub const ALL: [FuClass; FuClass::COUNT] =
        [FuClass::Alu, FuClass::Fpu, FuClass::Mem, FuClass::Branch];

    /// The class `kind` issues on.
    pub fn of(kind: OpKind) -> FuClass {
        use OpKind::*;
        match kind {
            Add | Sub | Mul | Div | Min | Max | Neg | Abs | Sqrt => FuClass::Fpu,
            IAdd | ISub | IMul | CmpLt | CmpLe | CmpGt | CmpGe | CmpEq | CmpNe | And | Or | Not
            | Copy => FuClass::Alu,
            Load(_) | Store(_) => FuClass::Mem,
            CondJump => FuClass::Branch,
        }
    }

    /// Table index of this class.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            FuClass::Alu => "ALU",
            FuClass::Fpu => "FPU",
            FuClass::Mem => "MEM",
            FuClass::Branch => "BR",
        }
    }
}

/// Per-class operation latencies, in cycles from issue to result
/// availability. Latency 1 is the paper's single-cycle model: the result
/// commits at the end of the issuing instruction.
///
/// Divides and square roots get their own entry (`fpu_long`) because they
/// dominate the critical path on every machine that does not fully
/// pipeline them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LatencyTable {
    /// Integer/boolean/copy operations.
    pub alu: u32,
    /// Pipelined `f64` add/sub/mul/min/max/neg/abs.
    pub fpu: u32,
    /// Long-latency `f64` div/sqrt.
    pub fpu_long: u32,
    /// Loads and stores (store latency bounds forwarding distance).
    pub mem: u32,
    /// Conditional jumps (resolution of the instruction tree).
    pub branch: u32,
}

impl LatencyTable {
    /// The paper's model: every operation completes in one cycle.
    pub const UNIT: LatencyTable = LatencyTable { alu: 1, fpu: 1, fpu_long: 1, mem: 1, branch: 1 };

    /// Latency of `kind` under this table.
    pub fn of(&self, kind: OpKind) -> u32 {
        use OpKind::*;
        match kind {
            Div | Sqrt => self.fpu_long,
            _ => match FuClass::of(kind) {
                FuClass::Alu => self.alu,
                FuClass::Fpu => self.fpu,
                FuClass::Mem => self.mem,
                FuClass::Branch => self.branch,
            },
        }
    }

    /// The largest latency in the table — the hazard-scan window depth.
    pub fn max(&self) -> u32 {
        self.alu.max(self.fpu).max(self.fpu_long).max(self.mem).max(self.branch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grip_ir::ArrayId;

    #[test]
    fn every_kind_has_a_class() {
        use OpKind::*;
        let a = ArrayId::new(0);
        for kind in [
            Add,
            Sub,
            Mul,
            Div,
            Min,
            Max,
            Neg,
            Abs,
            Sqrt,
            IAdd,
            ISub,
            IMul,
            CmpLt,
            CmpLe,
            CmpGt,
            CmpGe,
            CmpEq,
            CmpNe,
            And,
            Or,
            Not,
            Copy,
            Load(a),
            Store(a),
            CondJump,
        ] {
            let c = FuClass::of(kind);
            assert!(c.index() < FuClass::COUNT);
            assert_eq!(FuClass::ALL[c.index()], c);
        }
        assert_eq!(FuClass::of(IAdd), FuClass::Alu);
        assert_eq!(FuClass::of(Mul), FuClass::Fpu);
        assert_eq!(FuClass::of(Load(a)), FuClass::Mem);
        assert_eq!(FuClass::of(CondJump), FuClass::Branch);
    }

    #[test]
    fn latency_lookup_distinguishes_long_ops() {
        let t = LatencyTable { alu: 1, fpu: 3, fpu_long: 12, mem: 2, branch: 1 };
        assert_eq!(t.of(OpKind::IAdd), 1);
        assert_eq!(t.of(OpKind::Add), 3);
        assert_eq!(t.of(OpKind::Div), 12);
        assert_eq!(t.of(OpKind::Sqrt), 12);
        assert_eq!(t.of(OpKind::Load(ArrayId::new(0))), 2);
        assert_eq!(t.max(), 12);
        assert_eq!(LatencyTable::UNIT.max(), 1);
    }
}
