//! The machine description: issue width, per-class slots, latencies.

use crate::class::{FuClass, LatencyTable};
use grip_ir::{Fnv, Graph, NodeId, OpId, OpKind};
use std::fmt;

/// Marker for an uncapped slot count or jump budget.
pub const UNCAPPED: usize = usize::MAX;

/// A target machine, described as an issue template over functional-unit
/// classes plus an operation-latency table.
///
/// One VLIW instruction may issue at most [`width`](MachineDesc::width)
/// ordinary operations in total, at most `class_slots[c]` of class `c`,
/// and at most [`cjs`](MachineDesc::cjs) conditional jumps in its branch
/// tree. All caps use [`UNCAPPED`] (`usize::MAX`) for "unlimited", and
/// every occupancy test compares counts *against* the cap rather than
/// doing arithmetic on it, so the unlimited sentinel can never overflow.
///
/// The [`uniform`](MachineDesc::uniform) preset reproduces the paper's
/// flat `fus`-slot machine exactly: class slots uncapped, unit latencies —
/// every check degenerates to the seed `count < fus` comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MachineDesc {
    /// Preset name (shows up in reports and bench output).
    pub name: &'static str,
    /// Total ordinary-operation slots per instruction.
    pub width: usize,
    /// Conditional jumps per instruction tree.
    pub cjs: usize,
    /// Per-class slot caps, indexed by [`FuClass::index`]. The
    /// [`FuClass::Branch`] entry mirrors `cjs` (branches never compete
    /// with ordinary slots).
    pub class_slots: [usize; FuClass::COUNT],
    /// Issue-to-result latencies.
    pub latency: LatencyTable,
}

/// Why a [`MachineDesc`] is not a valid target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// `width == 0`: no instruction could ever issue an operation.
    ZeroWidth,
    /// A class that programs need has zero slots: sequential code of that
    /// class could never be placed, let alone scheduled.
    ZeroClassSlots(FuClass),
    /// A latency of zero cycles (results before issue).
    ZeroLatency,
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::ZeroWidth => write!(f, "machine width is zero"),
            MachineError::ZeroClassSlots(c) => write!(f, "class {} has zero slots", c.name()),
            MachineError::ZeroLatency => write!(f, "zero-cycle latency"),
        }
    }
}

impl std::error::Error for MachineError {}

impl MachineDesc {
    /// No limits at all — pure Percolation Scheduling.
    pub const UNLIMITED: MachineDesc = MachineDesc {
        name: "unlimited",
        width: UNCAPPED,
        cjs: UNCAPPED,
        class_slots: [UNCAPPED; FuClass::COUNT],
        latency: LatencyTable::UNIT,
    };

    /// The paper's machine: `n` interchangeable single-cycle functional
    /// units, unbounded branch tree. Bit-for-bit equivalent to the seed
    /// flat `Resources { fus: n, cjs: MAX }` model.
    pub const fn uniform(n: usize) -> MachineDesc {
        MachineDesc {
            name: "uniform",
            width: n,
            cjs: UNCAPPED,
            class_slots: [UNCAPPED; FuClass::COUNT],
            latency: LatencyTable::UNIT,
        }
    }

    /// A single-issue machine (`uniform(1)`): the sequential baseline every
    /// speedup is measured against.
    pub const fn scalar() -> MachineDesc {
        MachineDesc { name: "scalar", ..MachineDesc::uniform(1) }
    }

    /// A two-cluster machine: four slots per instruction but at most two
    /// per class, with pipelined 2-cycle floats and 2-cycle loads — the
    /// shape of clustered VLIW DSPs where inter-cluster bandwidth caps
    /// how many units of one kind fire together.
    pub const fn clustered() -> MachineDesc {
        MachineDesc {
            name: "clustered",
            width: 4,
            cjs: UNCAPPED,
            class_slots: [2, 2, 2, UNCAPPED],
            latency: LatencyTable { alu: 1, fpu: 2, fpu_long: 8, mem: 2, branch: 1 },
        }
    }

    /// A wide machine starved for memory bandwidth: eight slots but a
    /// single memory port with 3-cycle loads. Streaming kernels bottleneck
    /// on the port; compute-dense kernels keep their speedup.
    pub const fn mem_bound() -> MachineDesc {
        MachineDesc {
            name: "mem_bound",
            width: 8,
            cjs: UNCAPPED,
            class_slots: [8, 8, 1, UNCAPPED],
            latency: LatencyTable { alu: 1, fpu: 2, fpu_long: 8, mem: 3, branch: 1 },
        }
    }

    /// An EPIC-style 8-issue machine: 4 ALUs, 4 FP pipes, 2 memory ports,
    /// with Itanium-like latencies (4-cycle pipelined FP, 2-cycle loads,
    /// long divides).
    pub const fn epic8() -> MachineDesc {
        MachineDesc {
            name: "epic8",
            width: 8,
            cjs: UNCAPPED,
            class_slots: [4, 4, 2, UNCAPPED],
            latency: LatencyTable { alu: 1, fpu: 4, fpu_long: 16, mem: 2, branch: 1 },
        }
    }

    /// The non-trivial ready-made presets, for sweeps.
    pub fn presets() -> [MachineDesc; 6] {
        [
            MachineDesc::uniform(2),
            MachineDesc::uniform(4),
            MachineDesc::uniform(8),
            MachineDesc::clustered(),
            MachineDesc::mem_bound(),
            MachineDesc::epic8(),
        ]
    }

    /// Check the description is a machine programs can actually run on.
    pub fn validate(&self) -> Result<(), MachineError> {
        if self.width == 0 {
            return Err(MachineError::ZeroWidth);
        }
        for c in [FuClass::Alu, FuClass::Fpu, FuClass::Mem] {
            if self.class_slots[c.index()] == 0 {
                return Err(MachineError::ZeroClassSlots(c));
            }
        }
        let l = &self.latency;
        if l.alu == 0 || l.fpu == 0 || l.fpu_long == 0 || l.mem == 0 || l.branch == 0 {
            return Err(MachineError::ZeroLatency);
        }
        Ok(())
    }

    /// True when neither the width nor any class slot constrains issue.
    pub fn is_unbounded(&self) -> bool {
        self.width == UNCAPPED && self.class_slots.iter().all(|&s| s == UNCAPPED)
    }

    /// True when some class has a tighter cap than the total width — the
    /// heterogeneous case the flat model cannot express.
    pub fn has_class_caps(&self) -> bool {
        FuClass::ALL[..3].iter().any(|c| self.class_slots[c.index()] < self.width)
    }

    /// Latency of `kind` on this machine.
    #[inline]
    pub fn latency_of(&self, kind: OpKind) -> u32 {
        self.latency.of(kind)
    }

    /// Stable content fingerprint of the machine: a 64-bit FNV-1a hash of
    /// every field that influences scheduling (width, jump budget, class
    /// slots, latency table) — the **name is deliberately excluded**, so an
    /// inline description with a preset's parameters addresses the same
    /// cached schedules as the preset itself. The hash is a pure function
    /// of the field values (no pointers, no platform-dependent layout), so
    /// it is stable across runs, processes, and machines — fit for
    /// content-addressed cache keys and shard routing.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.width as u64);
        h.word(self.cjs as u64);
        for &s in &self.class_slots {
            h.word(s as u64);
        }
        let l = &self.latency;
        for v in [l.alu, l.fpu, l.fpu_long, l.mem, l.branch] {
            h.word(u64::from(v));
        }
        h.finish()
    }

    /// The deepest latency — how far back the scheduler's hazard scan and
    /// the simulator's scoreboard have to look.
    #[inline]
    pub fn max_latency(&self) -> u32 {
        self.latency.max()
    }

    /// Ordinary operations of class `c` currently placed in `node`.
    pub fn class_count(g: &Graph, node: NodeId, c: FuClass) -> usize {
        g.node_ops(node)
            .iter()
            .filter(|&&(_, o)| {
                let k = g.op(o).kind;
                !k.is_cj() && FuClass::of(k) == c
            })
            .count()
    }

    /// Would one more ordinary operation of `kind` fit in `node`?
    pub fn room_for_kind(&self, g: &Graph, node: NodeId, kind: OpKind) -> bool {
        if kind.is_cj() {
            return g.node_cj_count(node) < self.cjs;
        }
        if g.node_op_count(node) >= self.width {
            return false;
        }
        let c = FuClass::of(kind);
        let cap = self.class_slots[c.index()];
        // Uniform fast path: uncapped classes need no per-class count.
        cap == UNCAPPED || MachineDesc::class_count(g, node, c) < cap
    }

    /// True when `node` can still accept `op` (the reservation check).
    pub fn has_room(&self, g: &Graph, node: NodeId, op: OpId) -> bool {
        self.room_for_kind(g, node, g.op(op).kind)
    }

    /// True when no ordinary operation of *any* class fits anymore.
    pub fn ops_full(&self, g: &Graph, node: NodeId) -> bool {
        if g.node_op_count(node) >= self.width {
            return true;
        }
        if !self.has_class_caps() {
            return false;
        }
        FuClass::ALL[..3]
            .iter()
            .all(|&c| MachineDesc::class_count(g, node, c) >= self.class_slots[c.index()])
    }

    /// True when nothing further fits at all (ordinary ops and jumps).
    pub fn exhausted(&self, g: &Graph, node: NodeId) -> bool {
        self.ops_full(g, node) && g.node_cj_count(node) >= self.cjs
    }

    /// Free total-width slots in `node` (0 when the width is saturated;
    /// saturating, so an [`UNCAPPED`] width never overflows).
    pub fn free_slots(&self, g: &Graph, node: NodeId) -> usize {
        self.width.saturating_sub(g.node_op_count(node))
    }

    /// Would `node` still fit its issue template after one of its
    /// operations of `kind` is swapped for a register copy?
    ///
    /// A renaming move leaves a compensation copy — an ALU-class op — in
    /// the row the renamed operation departs. On a flat machine the swap
    /// is width-neutral, but with per-class slot caps it converts a `kind`
    /// slot into an ALU slot, so schedulers must refuse renaming moves
    /// whose swap would overflow the ALU budget (GRiP and the
    /// Unifiable-ops baseline both consult this before renaming).
    pub fn copy_swap_fits(&self, g: &Graph, node: NodeId, kind: OpKind) -> bool {
        if !self.has_class_caps() {
            return true;
        }
        let copy_class = FuClass::of(OpKind::Copy);
        if FuClass::of(kind) == copy_class {
            return true;
        }
        MachineDesc::class_count(g, node, copy_class) < self.class_slots[copy_class.index()]
    }

    /// Does the whole instruction at `node` fit the issue template?
    /// (Static check over the full tree, used by POST's breaking phase and
    /// the simulator's template validation.)
    pub fn fits(&self, g: &Graph, node: NodeId) -> bool {
        if g.node_op_count(node) > self.width || g.node_cj_count(node) > self.cjs {
            return false;
        }
        if !self.has_class_caps() {
            return true;
        }
        let mut counts = [0usize; FuClass::COUNT];
        for &(_, o) in g.node_ops(node) {
            let k = g.op(o).kind;
            if !k.is_cj() {
                counts[FuClass::of(k).index()] += 1;
            }
        }
        FuClass::ALL[..3].iter().all(|&c| counts[c.index()] <= self.class_slots[c.index()])
    }
}

impl fmt::Display for MachineDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        if self.width == UNCAPPED {
            write!(f, "width=inf")?;
        } else {
            write!(f, "width={}", self.width)?;
        }
        if self.has_class_caps() {
            for c in &FuClass::ALL[..3] {
                let s = self.class_slots[c.index()];
                if s != UNCAPPED {
                    write!(f, ", {}={s}", c.name())?;
                }
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_content_addressed() {
        // Same parameters under a different name hash identically.
        let mut renamed = MachineDesc::epic8();
        renamed.name = "custom";
        assert_eq!(renamed.fingerprint(), MachineDesc::epic8().fingerprint());
        // Every preset is distinct from every other.
        let fps: Vec<u64> = MachineDesc::presets().iter().map(|d| d.fingerprint()).collect();
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b, "preset fingerprints must differ");
            }
        }
        // Any field change moves the hash.
        let base = MachineDesc::clustered();
        let mut v = base;
        v.latency.mem = 5;
        assert_ne!(v.fingerprint(), base.fingerprint());
        let mut w = base;
        w.class_slots[0] = 3;
        assert_ne!(w.fingerprint(), base.fingerprint());
        // Stable across calls (pure function of the fields).
        assert_eq!(base.fingerprint(), MachineDesc::clustered().fingerprint());
    }
}
