//! # grip-machine — heterogeneous machine descriptions
//!
//! The resource model GRiP schedules against. The paper assumes `fus`
//! interchangeable single-cycle functional units; this crate generalizes
//! that to a *machine description*:
//!
//! * [`FuClass`] — the functional-unit classes (ALU, FPU, MEM, BRANCH)
//!   and the [`OpKind`](grip_ir::OpKind) → class mapping;
//! * [`LatencyTable`] — per-class issue-to-result latencies, with
//!   long-latency divides split out;
//! * [`MachineDesc`] — an issue template (total width + per-class slot
//!   caps + jump budget) plus latencies, with ready-made presets:
//!   [`uniform(n)`](MachineDesc::uniform) (the paper's machine,
//!   bit-for-bit), [`scalar`](MachineDesc::scalar),
//!   [`clustered`](MachineDesc::clustered),
//!   [`mem_bound`](MachineDesc::mem_bound), and
//!   [`epic8`](MachineDesc::epic8);
//! * [`MachineModel`] — the trait schedulers program against; adapter
//!   types (e.g. `grip_core::Resources`) wrap a description and inherit
//!   class- and latency-aware `has_room` / `ops_full` / `exhausted`.
//!
//! Every cap uses [`UNCAPPED`] (`usize::MAX`) as an "unlimited" sentinel,
//! and all occupancy checks compare counts against the cap — never
//! arithmetic *on* the cap — so the sentinel cannot overflow.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod class;
mod desc;
mod model;

pub use class::{FuClass, LatencyTable};
pub use desc::{MachineDesc, MachineError, UNCAPPED};
pub use model::MachineModel;

#[cfg(test)]
mod tests {
    use super::*;
    use grip_ir::{Graph, OpKind, Operand, Operation, Tree, Value};

    /// A node holding the given op kinds (ordinary ops only).
    fn node_with(g: &mut Graph, kinds: &[OpKind]) -> grip_ir::NodeId {
        let mut ops = Vec::new();
        for &k in kinds {
            let dest = if k.has_dest() { Some(g.fresh_reg()) } else { None };
            let src = (0..k.arity()).map(|_| Operand::Imm(Value::F(1.0))).collect();
            ops.push(g.add_op(Operation::new(k, dest, src)));
        }
        g.add_node(Tree::Leaf { ops, succ: None })
    }

    #[test]
    fn uniform_reproduces_flat_counting() {
        let mut g = Graph::new();
        let n = node_with(&mut g, &[OpKind::IAdd, OpKind::Mul, OpKind::IAdd]);
        let spare_dest = g.fresh_reg();
        let spare = g.add_op(Operation::new(
            OpKind::IAdd,
            Some(spare_dest),
            vec![Operand::Imm(Value::I(1)), Operand::Imm(Value::I(1))],
        ));
        for width in [1usize, 2, 3, 4, UNCAPPED] {
            let m = MachineDesc::uniform(width);
            assert_eq!(m.has_room(&g, n, spare), 3 < width, "width {width}");
            assert_eq!(m.ops_full(&g, n), 3 >= width, "width {width}");
            // cjs are uncapped: never exhausted even when ops are full.
            assert!(!m.exhausted(&g, n), "width {width}");
            assert_eq!(m.free_slots(&g, n), width.saturating_sub(3));
        }
        assert_eq!(MachineDesc::scalar().width, 1);
        assert!(MachineDesc::scalar().ops_full(&g, n));
    }

    #[test]
    fn class_caps_overflow_independently_of_width() {
        let mut g = Graph::new();
        // Two loads fill mem_bound's single memory port long before its
        // eight total slots.
        let x = g.array("x", 8);
        let n = node_with(&mut g, &[OpKind::Load(x)]);
        let m = MachineDesc::mem_bound();
        let (r1, r2) = (g.fresh_reg(), g.fresh_reg());
        let another_load = g.add_op(Operation::new(
            OpKind::Load(grip_ir::ArrayId::new(0)),
            Some(r1),
            vec![Operand::Imm(Value::I(0))],
        ));
        let an_alu = g.add_op(Operation::new(
            OpKind::IAdd,
            Some(r2),
            vec![Operand::Imm(Value::I(1)), Operand::Imm(Value::I(1))],
        ));
        assert!(!m.has_room(&g, n, another_load), "single port is taken");
        assert!(m.has_room(&g, n, an_alu), "width 8 still open for ALU work");
        assert!(!m.ops_full(&g, n), "other classes still have slots");
        assert!(m.fits(&g, n), "one load fits the template");

        // Saturate the template: mem cap 1 makes a 2-load node ill-formed.
        let n2 = node_with(
            &mut g,
            &[OpKind::Load(grip_ir::ArrayId::new(0)), OpKind::Load(grip_ir::ArrayId::new(0))],
        );
        assert!(!m.fits(&g, n2));
        assert!(MachineDesc::uniform(8).fits(&g, n2), "flat model can't see the port");
    }

    #[test]
    fn clustered_splits_width_across_classes() {
        let mut g = Graph::new();
        let m = MachineDesc::clustered();
        let n = node_with(&mut g, &[OpKind::IAdd, OpKind::IAdd]);
        let (ra, rf) = (g.fresh_reg(), g.fresh_reg());
        let alu = g.add_op(Operation::new(
            OpKind::IAdd,
            Some(ra),
            vec![Operand::Imm(Value::I(1)), Operand::Imm(Value::I(1))],
        ));
        let fpu = g.add_op(Operation::new(
            OpKind::Add,
            Some(rf),
            vec![Operand::Imm(Value::F(1.0)), Operand::Imm(Value::F(1.0))],
        ));
        assert!(!m.has_room(&g, n, alu), "ALU cluster (2) is full");
        assert!(m.has_room(&g, n, fpu), "FPU cluster is open");
        // Filling both clusters saturates ordinary issue even though
        // width 4 > alu 2: ops_full consults every class.
        let full = node_with(&mut g, &[OpKind::IAdd, OpKind::IAdd, OpKind::Add, OpKind::Add]);
        assert!(m.ops_full(&g, full));
    }

    #[test]
    fn presets_are_valid_and_distinct() {
        for m in MachineDesc::presets() {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
        MachineDesc::UNLIMITED.validate().unwrap();
        MachineDesc::scalar().validate().unwrap();
        assert!(MachineDesc::clustered().has_class_caps());
        assert!(MachineDesc::mem_bound().has_class_caps());
        assert!(MachineDesc::epic8().has_class_caps());
        assert!(!MachineDesc::uniform(4).has_class_caps());
        assert!(MachineDesc::UNLIMITED.is_unbounded());
        assert!(!MachineDesc::epic8().is_unbounded());
        assert_eq!(MachineDesc::epic8().max_latency(), 16);
    }

    #[test]
    fn invalid_descriptions_are_rejected() {
        let mut m = MachineDesc::uniform(0);
        assert_eq!(m.validate(), Err(MachineError::ZeroWidth));
        m = MachineDesc::uniform(4);
        m.class_slots[FuClass::Mem.index()] = 0;
        assert_eq!(m.validate(), Err(MachineError::ZeroClassSlots(FuClass::Mem)));
        m = MachineDesc::uniform(4);
        m.latency.mem = 0;
        assert_eq!(m.validate(), Err(MachineError::ZeroLatency));
    }

    #[test]
    fn model_trait_provides_behaviour_from_desc() {
        let m = MachineDesc::epic8();
        let dyn_model: &dyn MachineModel = &m;
        assert_eq!(dyn_model.latency_of(OpKind::Add), 4);
        assert_eq!(dyn_model.max_latency(), 16);
        assert_eq!(dyn_model.desc().name, "epic8");
    }
}
