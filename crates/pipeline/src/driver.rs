//! The end-to-end Perfect Pipelining driver:
//! unwind → simplify → analyze → GRiP-schedule → detect pattern → (roll).

use crate::pattern::{detect, estimate_cpi, fu_lower_bound, steady_rows, Pattern};
use crate::roll::{roll, RollError, RollOutcome};
use crate::simplify::simplify_inductions;
use crate::unwind::{unwind, Window};
use grip_analysis::{Ddg, RankTable};
use grip_audit::AuditReport;
use grip_bounds::BoundCertificate;
use grip_core::{schedule_region, GripConfig, PhaseTimes, Resources, ScheduleStats};
use grip_ir::{Graph, NodeId};
use grip_machine::{FuClass, MachineDesc, UNCAPPED};
use grip_percolate::Ctx;

/// Options for [`perfect_pipeline`].
#[derive(Clone, Copy, Debug)]
pub struct PipelineOptions {
    /// Unwind factor (how many iterations enter the window).
    pub unwind: usize,
    /// Machine resources.
    pub resources: Resources,
    /// Fold unwound induction chains (`k.1 = k.0+1` → `k.1 = k+2`) and
    /// address constants. Required for cross-iteration induction
    /// parallelism (Table 1 configuration); makes the pattern non-periodic
    /// at the operand level, so re-rolling is only possible without it.
    pub fold_inductions: bool,
    /// §3.3 gap prevention (on for Perfect Pipelining; off reproduces the
    /// divergent Figure 9 behaviour).
    pub gap_prevention: bool,
    /// Incremental dead-code removal.
    pub dce: bool,
    /// Attempt to re-roll the detected pattern into a real loop.
    pub try_roll: bool,
    /// Run the `grip-audit` static verifier on the finished schedule and
    /// attach its report. Debug builds audit unconditionally (and assert
    /// the report is clean); this flag opts release builds in.
    pub audit: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            unwind: 8,
            resources: Resources::vliw(4),
            fold_inductions: true,
            gap_prevention: true,
            dce: true,
            try_roll: false,
            audit: false,
        }
    }
}

/// Everything the harness needs to report a pipelined loop.
#[derive(Debug)]
pub struct PipelineReport {
    /// The unwound window bookkeeping (op ancestry, body length).
    pub window: Window,
    /// Scheduler counters.
    pub stats: ScheduleStats,
    /// Full scheduler region after scheduling (steady rows plus exit-path
    /// residues), in order.
    pub region: Vec<NodeId>,
    /// Steady rows after scheduling, in order.
    pub steady: Vec<NodeId>,
    /// The repeating pattern, if the schedule converged exactly.
    pub pattern: Option<Pattern>,
    /// Slope-based steady-state CPI estimate (defined even when the packing
    /// wobbles around a non-integral ops/width ratio).
    pub cpi_estimate: Option<f64>,
    /// Result of re-rolling, when requested.
    pub rolled: Option<Result<RollOutcome, RollError>>,
    /// Static audit of the finished schedule, when requested (always
    /// present in debug builds).
    pub audit: Option<AuditReport>,
    /// Proven lower bound on the steady-window schedule length, with the
    /// achieved-vs-provable gap (`grip-bounds`).
    pub bounds: BoundCertificate,
    /// The scheduler's pick-loop phase profile (candidate refresh /
    /// legality probes / commit / dead-row sweep). Observation-only: not
    /// on the wire, not part of bit-identity.
    pub phases: PhaseTimes,
}

impl PipelineReport {
    /// Sequential cycles per iteration (one-op-per-node original body).
    pub fn seq_cpi(&self) -> f64 {
        self.window.body_len as f64
    }

    /// Steady-state cycles per iteration of the pipelined loop: the
    /// converged pattern's ratio when one exists, otherwise the slope
    /// estimate over the window's middle iterations.
    pub fn pipelined_cpi(&self) -> Option<f64> {
        self.pattern.map(|p| p.cpi).or(self.cpi_estimate)
    }

    /// The paper's loop-body speedup: sequential CPI / pipelined CPI.
    pub fn speedup(&self) -> Option<f64> {
        self.pipelined_cpi().map(|c| self.seq_cpi() / c)
    }
}

/// The machine-independent product of the pre-scheduling stages: the
/// unwound (and induction-simplified) window plus its dependence graph.
///
/// Preparation depends only on `(program, unwind, fold_inductions)` — the
/// machine first matters at [`schedule_window`] — so a `PreparedWindow`
/// (with its graph snapshot) can be cached and replayed against many
/// machine descriptions. The DDG is keyed by op ids, which graph cloning
/// preserves, so one `Ddg` serves every clone of the prepared graph.
pub struct PreparedWindow {
    /// Unwound-window bookkeeping (rows, ancestry, body length).
    pub window: Window,
    /// Dependence graph of the prepared program.
    pub ddg: Ddg,
}

/// Stage 1 of [`perfect_pipeline`]: unwind the canonical loop of `g` by
/// `unwind_factor`, optionally fold the unwound induction arithmetic, and
/// build the dependence graph. Mutates `g` into the pre-scheduling window
/// form; scheduling itself happens in [`schedule_window`].
pub fn prepare(g: &mut Graph, unwind_factor: usize, fold_inductions: bool) -> PreparedWindow {
    let _span = grip_obs::span!("prepare");
    let window = unwind(g, unwind_factor);
    if fold_inductions {
        simplify_inductions(g, &window.rows);
    }
    let ddg = Ddg::build(g, g.entry);
    PreparedWindow { window, ddg }
}

/// Run the full Perfect Pipelining stack on the canonical loop of `g`,
/// in place. The graph remains executable (and observationally equivalent
/// to the input) at every stage; `try_roll` failures leave the scheduled
/// window untouched.
pub fn perfect_pipeline(g: &mut Graph, opts: PipelineOptions) -> PipelineReport {
    let PreparedWindow { window, ddg } = prepare(g, opts.unwind, opts.fold_inductions);
    schedule_window(g, window, &ddg, opts)
}

/// Stage 2 of [`perfect_pipeline`]: GRiP-schedule a prepared window under
/// `opts.resources`, detect the steady pattern, and optionally re-roll.
/// `g` must be the (possibly cloned) graph the window was prepared on;
/// `opts.unwind`/`opts.fold_inductions` are ignored here — they were
/// consumed by [`prepare`].
pub fn schedule_window(
    g: &mut Graph,
    window: Window,
    ddg: &Ddg,
    opts: PipelineOptions,
) -> PipelineReport {
    // The "schedule" stage span covers ranking, GRiP (its own child
    // span), pattern detection, and re-rolling; the hazard post-pass
    // inside GRiP (and after rolling) reports separately as "hazards".
    let _span = grip_obs::span!("schedule");
    let mut ctx = Ctx::new(g, ddg);
    // Latency-aware ranks: chains weighted by issue latency, and — on
    // multi-cycle machines only — the iteration-major stipulation
    // coarsened to pairs, so a long-latency chain from iteration i+1 can
    // start under iteration i's shadow instead of forcing the hazard
    // post-pass to pad the gap afterwards. Unit-latency machines (every
    // `uniform` preset) get the paper's hop-count ranks bit-for-bit.
    let ranks = {
        let desc = opts.resources.desc();
        let group = if desc.max_latency() > 1 { 2 } else { 1 };
        let gr: &Graph = g;
        RankTable::with_weights_grouped(ddg, true, group, |op| desc.latency_of(gr.op(op).kind))
    };
    let cfg = GripConfig {
        resources: opts.resources,
        gap_prevention: opts.gap_prevention,
        dce: opts.dce,
        speculation: Default::default(),
        trace: false,
    };
    let out = schedule_region(g, &mut ctx, &ranks, cfg, window.rows.clone());
    let region = out.region.clone();
    let steady = steady_rows(g, &region, window.head);
    let pattern = detect(g, &window, &steady);
    let (bounds, cpi_estimate) = certify_window(g, &window, &steady, ddg, opts.resources.desc());
    let rolled = match (opts.try_roll, pattern) {
        (true, Some(pat)) => {
            // The earliest pattern occurrence may still read fill-defined
            // values whose periodic counterparts only settle a period
            // later; retry one period in.
            //
            // Rotation rows are pure register copies, which issue on the
            // ALU class: their packing budget is the tighter of the total
            // width and the ALU slot cap, or unlimited (0) when neither
            // binds.
            let desc = opts.resources.desc();
            let budget = desc.width.min(desc.class_slots[FuClass::Alu.index()]);
            let fus = if budget == UNCAPPED { 0 } else { budget };
            let mut attempt = roll(g, &window, &steady, &pat, fus);
            if attempt.is_err() {
                let shifted = Pattern { start: pat.start + pat.period_rows, ..pat };
                if shifted.start + 2 * shifted.period_rows <= steady.len() {
                    attempt = roll(g, &window, &steady, &shifted, fus);
                }
            }
            // Re-rolling rewires the back edge (through the rotation rows)
            // and shortens every cross-back-edge path, so the stall-free
            // invariant the scheduler established must be restored on the
            // rolled loop: the rotation copies read pattern-defined values
            // whose producers may now sit one row away. No-op under unit
            // latencies.
            if attempt.is_ok() {
                grip_core::hazards::pad_hazards(g, opts.resources.desc());
            }
            Some(attempt)
        }
        _ => None,
    };
    // Independent static verification of whatever the stages above left
    // in the graph — including the re-rolled loop, whose rewired back
    // edge and rotation rows the auditor re-derives from scratch. Debug
    // builds always audit, so every unit/property/bench run in the
    // workspace doubles as an auditor soak; release builds opt in.
    let audit = if opts.audit || cfg!(debug_assertions) {
        let _span = grip_obs::span!("audit");
        let rep = grip_audit::audit_schedule(g, ddg, opts.resources.desc());
        debug_assert!(rep.is_clean(), "grip-audit found a scheduler bug: {rep}");
        Some(rep)
    } else {
        None
    };
    PipelineReport {
        window,
        stats: out.stats,
        region,
        steady,
        pattern,
        cpi_estimate,
        rolled,
        audit,
        bounds,
        phases: out.phases,
    }
}

/// Certify a scheduled steady window: prove the `grip-bounds` lower bound
/// (under its own "bounds" stage span) and derive the steady-state CPI
/// estimate, clamped from below by the class-aware resource bound. The one
/// shared post-scheduling summary both the Perfect Pipelining driver and
/// the POST baseline report.
pub fn certify_window(
    g: &Graph,
    window: &Window,
    steady: &[NodeId],
    ddg: &Ddg,
    desc: &MachineDesc,
) -> (BoundCertificate, Option<f64>) {
    let bounds = {
        let _span = grip_obs::span!("bounds");
        grip_bounds::certificate(g, steady, ddg, desc)
    };
    let cpi_estimate = estimate_cpi(g, window, steady)
        .map(|c| fu_lower_bound(g, window, steady, desc).map_or(c, |b| c.max(b)));
    (bounds, cpi_estimate)
}
