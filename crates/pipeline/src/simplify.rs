//! Induction simplification over the unwound window.
//!
//! Rewrites the unwound chains `k.0 = k + 1; k.1 = k.0 + 1; …` into
//! `k.i = k + (i+1)` and folds the constant parts of addresses into the
//! load/store displacement fields. This serves two purposes:
//!
//! * the per-iteration induction updates stop being a serial chain (they
//!   all hang off the window-entry value), which is what lets multiple
//!   iterations issue in one instruction;
//! * every address becomes `base_register + constant`, making the
//!   cross-iteration memory disambiguation of `grip-analysis` exact.
//!
//! Together with dead-code elimination this is the concrete form of the
//! paper's "redundant operation removal" on the Livermore loops.
//!
//! The analysis is seeded at the window head only — window-entry registers
//! are opaque bases, never resolved through the preamble (their values
//! differ on every traversal of the back edge).

use grip_analysis::{AffineAddr, AffineMap};
use grip_ir::{Graph, NodeId, OpKind, Operand, Value};

/// Simplify induction arithmetic in `rows` (window chain order). Returns
/// the number of rewritten operations.
pub fn simplify_inductions(g: &mut Graph, rows: &[NodeId]) -> usize {
    let mut affine = AffineMap::new();
    let mut rewrites = 0;
    for &n in rows {
        let ops: Vec<_> = g.node_ops(n).iter().map(|&(_, o)| o).collect();
        for id in ops {
            let op = g.op(id);
            match op.kind {
                OpKind::IAdd | OpKind::ISub if op.dest.is_some() => {
                    // Try to re-express as base + constant.
                    let sign = if op.kind == OpKind::ISub { -1 } else { 1 };
                    if let (Operand::Reg(s), Operand::Imm(Value::I(c))) = (op.src[0], op.src[1]) {
                        match affine.resolve_addr(Operand::Reg(s), 0) {
                            Some(AffineAddr { base: Some(b), offset }) if b != s => {
                                let op = g.op_mut(id);
                                op.kind = OpKind::IAdd;
                                op.src[0] = Operand::Reg(b);
                                op.src[1] = Operand::Imm(Value::I(offset + sign * c));
                                rewrites += 1;
                            }
                            Some(AffineAddr { base: None, offset }) => {
                                // Fully constant: become a load-immediate.
                                let op = g.op_mut(id);
                                op.kind = OpKind::Copy;
                                op.src = vec![Operand::Imm(Value::I(offset + sign * c))];
                                rewrites += 1;
                            }
                            _ => {}
                        }
                    }
                }
                OpKind::Load(_) | OpKind::Store(_) => {
                    if let Operand::Reg(s) = op.src[0] {
                        match affine.resolve_addr(Operand::Reg(s), op.disp) {
                            Some(AffineAddr { base: Some(b), offset })
                                if b != s || offset != op.disp =>
                            {
                                let op = g.op_mut(id);
                                op.src[0] = Operand::Reg(b);
                                op.disp = offset;
                                rewrites += 1;
                            }
                            Some(AffineAddr { base: None, offset }) => {
                                let op = g.op_mut(id);
                                op.src[0] = Operand::Imm(Value::I(offset));
                                op.disp = 0;
                                rewrites += 1;
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
            let opref = g.op(id).clone();
            affine.observe(&opref, id);
        }
    }
    rewrites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unwind::unwind;
    use grip_ir::{OpKind, ProgramBuilder};
    use grip_vm::{EquivReport, Machine};

    #[test]
    fn unwound_induction_chain_becomes_parallel() {
        let n = 9i64;
        let mut b = ProgramBuilder::new();
        let x = b.array("x", (n + 8) as usize);
        let k = b.named_reg("k");
        b.const_i(k, 0);
        b.begin_loop();
        let t = b.load("t", x, Operand::Reg(k), 0);
        let t2 = b.binary("t2", OpKind::Mul, Operand::Reg(t), Operand::Imm(Value::F(2.0)));
        b.store(x, Operand::Reg(k), 0, Operand::Reg(t2));
        b.iadd_imm(k, k, 1);
        let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(n)));
        b.end_loop(c);
        let mut g = b.finish();
        g.live_out = vec![k];
        let g0 = g.clone();

        let w = unwind(&mut g, 4);
        let rewrites = simplify_inductions(&mut g, &w.rows);
        assert!(rewrites > 0);
        g.validate().unwrap();

        // All induction updates now read the canonical k directly.
        let mut iadds = 0;
        for &row in &w.rows {
            for &(_, o) in g.node_ops(row) {
                let op = g.op(o);
                if op.kind == OpKind::IAdd {
                    iadds += 1;
                    assert_eq!(op.src[0], Operand::Reg(k), "{op}");
                }
            }
        }
        assert_eq!(iadds, 4);

        // Loads/stores of iteration i address x[k + i].
        for (idx, &row) in w.rows.iter().enumerate() {
            let iter = (idx / w.body_len) as i64;
            for &(_, o) in g.node_ops(row) {
                let op = g.op(o);
                if op.kind.is_mem() {
                    assert_eq!(op.src[0], Operand::Reg(k), "{op}");
                    assert_eq!(op.disp, iter, "{op}");
                }
            }
        }

        // Semantics unchanged.
        let setup = |m: &mut Machine| {
            let xs: Vec<f64> = (0..n + 8).map(|i| i as f64 + 1.0).collect();
            m.set_array_f(x, &xs);
        };
        let mut m0 = Machine::for_graph(&g0);
        setup(&mut m0);
        m0.run(&g0).unwrap();
        let mut m1 = Machine::for_graph(&g);
        setup(&mut m1);
        m1.run(&g).unwrap();
        assert!(EquivReport::compare(&g0, &m0, &m1).is_equal());
    }

    use grip_ir::{Operand, Value};
}
