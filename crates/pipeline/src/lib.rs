//! # grip-pipeline — Perfect Pipelining
//!
//! The loop-parallelization layer of the reproduction (§2 and §3.3 of the
//! paper): unwind the loop with per-iteration renaming, simplify the
//! unwound induction arithmetic, GRiP-schedule the window with the
//! iteration-major ranking rule, detect the repeating steady-state pattern,
//! and optionally re-roll the pattern into a real loop with a register
//! rotation block on the back edge.
//!
//! The headline metric matches the paper's: loop-body speedup =
//! sequential cycles-per-iteration ÷ pattern cycles-per-iteration
//! ([`PipelineReport::speedup`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod driver;
mod pattern;
mod roll;
mod simplify;
mod unwind;

pub use driver::{
    certify_window, perfect_pipeline, prepare, schedule_window, PipelineOptions, PipelineReport,
    PreparedWindow,
};
pub use pattern::{detect, estimate_cpi, fu_lower_bound, steady_rows, Pattern};
pub use roll::{roll, RollError, RollOutcome};
pub use simplify::simplify_inductions;
pub use unwind::{unwind, Window};
