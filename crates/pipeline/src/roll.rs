//! Re-rolling: materialize the detected pattern as a real loop.
//!
//! The pattern rows become the new loop body (the paper's "convergence of
//! Perfect Pipelining is achieved by making nodes 4 and 5 the new loop
//! body", Figure 13). Correctness is established by **operand
//! correspondence**: every op in the pattern — and every op in the exit
//! fix-up blocks its conditional jumps lead to — is paired with its
//! counterpart one period later, and each source operand must be
//!
//! * the same immediate;
//! * a loop-invariant register (identical in both);
//! * a pattern-defined register whose def has already committed when the
//!   read happens (the counterpart then reads the shifted def — nothing to
//!   do);
//! * a pattern-defined register read before its def commits (loop-carried
//!   within the pattern: the counterpart reads the *same* register — the
//!   value survives across the back edge in place); or
//! * an externally-defined register: walking the operand across successive
//!   periods yields a succession `α₀ ← α₁ ← … ← αₘ` ending at a
//!   pattern-defined register, which becomes a chain of **rotation
//!   copies** on the back edge — the software analogue of an m-deep
//!   rotating register file (values with multi-iteration lifetimes need
//!   multi-period buffering).
//!
//! Anything else (notably induction arithmetic folded to distinct
//! immediates) makes the pattern non-periodic at the operand level and
//! re-rolling reports failure; the caller falls back to the scheduled
//! window, which is always semantically exact. Rolled graphs are
//! additionally validated by simulation in the test suites.

use crate::pattern::Pattern;
use crate::unwind::Window;
use grip_ir::{Graph, NodeId, OpId, OpKind, Operand, RegId, Tree, TreePath};
use std::collections::HashMap;

/// Why re-rolling was not possible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RollError {
    /// Immediate operands differ between an op and its counterpart — the
    /// pattern is not operand-periodic (folded induction arithmetic).
    NonPeriodicImmediate(OpId),
    /// A source register pairing fits none of the legal cases, or its
    /// rotation chain leaves the window before reaching a pattern def.
    NonPeriodicRegister(OpId, RegId),
    /// A register has several defs inside the pattern rows.
    MultipleDefs(RegId),
    /// Two ops in one row share an identity — pairing is ambiguous.
    AmbiguousIdentity,
    /// Structural surprise (missing ancestry, malformed fix-ups, …).
    Malformed(&'static str),
}

impl std::fmt::Display for RollError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RollError::NonPeriodicImmediate(op) => {
                write!(f, "op {op}: immediates differ across periods")
            }
            RollError::NonPeriodicRegister(op, r) => {
                write!(f, "op {op}: register {r} pairing is not periodic")
            }
            RollError::MultipleDefs(r) => write!(f, "register {r} defined twice in pattern"),
            RollError::AmbiguousIdentity => write!(f, "ambiguous op identity within a row"),
            RollError::Malformed(m) => write!(f, "malformed pattern: {m}"),
        }
    }
}

/// Statistics of a successful roll.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RollOutcome {
    /// First pattern row — the rolled loop's head.
    pub body_head: NodeId,
    /// Rotation copies inserted on the back edge.
    pub rotation_copies: usize,
    /// Rotation instruction rows (each at most `fus` copies wide).
    pub rotation_rows: usize,
}

type Ident = (OpId, u32, bool);

fn ident_of(g: &Graph, w: &Window, op: OpId) -> Option<Ident> {
    let body_op = w.body_op(g, op)?;
    let o = g.op(op);
    let artifact = o.kind == OpKind::Copy && g.op(body_op).kind != OpKind::Copy;
    Some((body_op, o.iter, artifact))
}

struct RollCtx<'a> {
    g: &'a Graph,
    rows: &'a [NodeId],
    s: usize,
    p: usize,
    /// periods[q]: (row offset, period-0 identity) -> op instance.
    periods: Vec<HashMap<(usize, Ident), OpId>>,
    /// Pattern defs: register -> (row offset, defining op).
    def_row: HashMap<RegId, (usize, OpId)>,
    /// Pattern def -> its def one period later.
    def_cp: HashMap<RegId, RegId>,
    /// Loop exit node (fix-up chains end here).
    loop_exit: Option<NodeId>,
    /// Accumulated rotation links α_i -> α_{i+1}, in chain order.
    rot: Vec<(RegId, RegId)>,
    /// Known successions (consistency check).
    succ_of: HashMap<RegId, RegId>,
}

impl<'a> RollCtx<'a> {
    /// Follow operand `alpha` across periods until a pattern-defined
    /// register terminates the chain; record the links as rotation copies.
    fn chain(
        &mut self,
        op: OpId,
        alpha: RegId,
        mut fetch: impl FnMut(&RollCtx<'a>, usize) -> Result<RegId, RollError>,
    ) -> Result<(), RollError> {
        let mut prev = alpha;
        let mut q = 1;
        loop {
            let cur = fetch(self, q)?;
            match self.succ_of.get(&prev) {
                Some(&known) if known != cur => {
                    return Err(RollError::NonPeriodicRegister(op, alpha));
                }
                Some(_) => {}
                None => {
                    self.succ_of.insert(prev, cur);
                    self.rot.push((prev, cur));
                }
            }
            if self.def_row.contains_key(&cur) {
                return Ok(());
            }
            prev = cur;
            q += 1;
            if q >= self.periods.len() {
                return Err(RollError::NonPeriodicRegister(op, alpha));
            }
        }
    }

    /// Classify + verify one register operand pairing. `committed` decides
    /// whether a pattern def (row, op) has committed by the time this
    /// reader fetches.
    fn check_reg(
        &mut self,
        op: OpId,
        alpha: RegId,
        sigma: RegId,
        committed: impl Fn(usize, OpId) -> bool,
        fetch: impl FnMut(&RollCtx<'a>, usize) -> Result<RegId, RollError>,
    ) -> Result<(), RollError> {
        match self.def_row.get(&alpha).copied() {
            Some((jd, def_op)) => {
                if committed(jd, def_op) {
                    if self.def_cp.get(&alpha) != Some(&sigma) {
                        return Err(RollError::NonPeriodicRegister(op, alpha));
                    }
                } else if sigma != alpha {
                    return Err(RollError::NonPeriodicRegister(op, alpha));
                }
                Ok(())
            }
            None if sigma == alpha => Ok(()), // loop-invariant
            None => self.chain(op, alpha, fetch),
        }
    }

    /// The exit fix-up op chain hanging off the false side of cj `inst`
    /// placed in row `rows[s + q*p + j]`.
    fn fixup_chain(&self, q: usize, j: usize, inst: OpId) -> Result<Vec<OpId>, RollError> {
        let row = self.rows[self.s + q * self.p + j];
        let tree = &self.g.node(row).tree;
        let pos = tree.position_of(inst).ok_or(RollError::Malformed("cj not in its row"))?;
        let exit =
            tree.get(pos.child(false)).ok_or(RollError::Malformed("cj without false side"))?;
        let Tree::Leaf { ops, succ } = exit else {
            return Err(RollError::Malformed("exit side is not a leaf"));
        };
        if !ops.is_empty() {
            return Err(RollError::Malformed("ops on an exit leaf"));
        }
        let mut cur = *succ;
        let mut out = Vec::new();
        while let Some(n) = cur {
            if Some(n) == self.loop_exit {
                break;
            }
            let ops = self.g.node_ops(n);
            if ops.len() != 1 {
                return Err(RollError::Malformed("fix-up block shape"));
            }
            out.push(ops[0].1);
            let succs = self.g.unique_successors(n);
            if succs.len() != 1 {
                return Err(RollError::Malformed("fix-up block fan-out"));
            }
            cur = Some(succs[0]);
        }
        Ok(out)
    }
}

/// Replace the steady window with a rolled loop whose body is the pattern.
/// `rows` are the steady rows used for detection; `fus` packs the rotation
/// copies (0 = unlimited).
pub fn roll(
    g: &mut Graph,
    w: &Window,
    rows: &[NodeId],
    pat: &Pattern,
    fus: usize,
) -> Result<RollOutcome, RollError> {
    let (s, p, shift) = (pat.start, pat.period_rows, pat.period_iters);
    if s + 2 * p > rows.len() {
        return Err(RollError::Malformed("pattern must repeat inside the window"));
    }

    // --- Index op instances per period, normalized to period-0 ids. -----
    let total_periods = (rows.len() - s) / p;
    let mut periods: Vec<HashMap<(usize, Ident), OpId>> = vec![HashMap::new(); total_periods];
    for (q, table) in periods.iter_mut().enumerate() {
        for j in 0..p {
            let row = rows[s + q * p + j];
            for &(_, op) in g.node_ops(row) {
                let (body_op, iter, art) =
                    ident_of(g, w, op).ok_or(RollError::Malformed("op without ancestry"))?;
                let base_iter = iter as i64 - (q as u32 * shift) as i64;
                if base_iter < 0 {
                    return Err(RollError::Malformed("iteration underflow"));
                }
                let key = (j, (body_op, base_iter as u32, art));
                if table.insert(key, op).is_some() {
                    return Err(RollError::AmbiguousIdentity);
                }
            }
        }
    }
    let body: Vec<NodeId> = rows[s..s + p].to_vec();

    // --- Pattern defs and their next-period counterparts. ----------------
    let mut def_row: HashMap<RegId, (usize, OpId)> = HashMap::new();
    for (j, &row) in body.iter().enumerate() {
        for &(_, op) in g.node_ops(row) {
            if let Some(d) = g.op(op).dest {
                if def_row.insert(d, (j, op)).is_some() {
                    return Err(RollError::MultipleDefs(d));
                }
            }
        }
    }
    let mut def_cp: HashMap<RegId, RegId> = HashMap::new();
    for (&(j, id), &op) in &periods[0] {
        let cp = periods[1]
            .get(&(j, id))
            .copied()
            .ok_or(RollError::Malformed("counterpart op missing"))?;
        if let (Some(d), Some(d2)) = (g.op(op).dest, g.op(cp).dest) {
            def_cp.insert(d, d2);
        }
    }

    let mut rc = RollCtx {
        g,
        rows,
        s,
        p,
        periods,
        def_row,
        def_cp,
        loop_exit: g.loop_info.map(|li| li.exit),
        rot: Vec::new(),
        succ_of: HashMap::new(),
    };

    // --- Body-op correspondence. -----------------------------------------
    let items: Vec<((usize, Ident), OpId)> = rc.periods[0].iter().map(|(&k, &v)| (k, v)).collect();
    for &((j, id), op) in &items {
        let cp = rc.periods[1].get(&(j, id)).copied().expect("checked above");
        let (o, c) = (rc.g.op(op), rc.g.op(cp));
        if o.kind != c.kind || o.disp != c.disp || o.src.len() != c.src.len() {
            return Err(RollError::Malformed("op/counterpart kind mismatch"));
        }
        let srcs: Vec<(Operand, Operand)> =
            o.src.iter().copied().zip(c.src.iter().copied()).collect();
        for (si, (a, b)) in srcs.into_iter().enumerate() {
            match (a, b) {
                (Operand::Imm(x), Operand::Imm(y)) => {
                    if !x.bit_eq(y) {
                        return Err(RollError::NonPeriodicImmediate(op));
                    }
                }
                (Operand::Reg(alpha), Operand::Reg(sigma)) => {
                    // Instruction-entry fetch: same-row defs are "previous".
                    let committed = |jd: usize, _d: OpId| jd < j;
                    let fetch = |rc: &RollCtx<'_>, q: usize| -> Result<RegId, RollError> {
                        let inst = rc
                            .periods
                            .get(q)
                            .and_then(|t| t.get(&(j, id)))
                            .copied()
                            .ok_or(RollError::NonPeriodicRegister(op, alpha))?;
                        match rc.g.op(inst).src.get(si) {
                            Some(Operand::Reg(r)) => Ok(*r),
                            _ => Err(RollError::NonPeriodicRegister(op, alpha)),
                        }
                    };
                    rc.check_reg(op, alpha, sigma, committed, fetch)?;
                }
                _ => return Err(RollError::Malformed("operand shape mismatch")),
            }
        }
    }

    // --- Exit fix-up correspondence. --------------------------------------
    for &((j, id), op) in &items {
        if !rc.g.op(op).kind.is_cj() {
            continue;
        }
        let f0 = rc.fixup_chain(0, j, op)?;
        let cp = rc.periods[1].get(&(j, id)).copied().expect("checked above");
        let f1 = rc.fixup_chain(1, j, cp)?;
        if f0.len() != f1.len() {
            return Err(RollError::Malformed("fix-up length mismatch"));
        }
        // Defs at the exit row commit only if they sit on the exit path.
        let row0 = rows[s + j];
        let cj_pos = rc.g.node(row0).tree.position_of(op).expect("cj placed");
        let exit_leaf = cj_pos.child(false);
        for (k, (&a_op, &b_op)) in f0.iter().zip(&f1).enumerate() {
            let (oa, ob) = (rc.g.op(a_op), rc.g.op(b_op));
            if oa.kind != ob.kind || oa.dest != ob.dest || oa.src.len() != ob.src.len() {
                return Err(RollError::Malformed("fix-up op mismatch"));
            }
            let srcs: Vec<(Operand, Operand)> =
                oa.src.iter().copied().zip(ob.src.iter().copied()).collect();
            for (si, (a, b)) in srcs.into_iter().enumerate() {
                match (a, b) {
                    (Operand::Imm(x), Operand::Imm(y)) => {
                        if !x.bit_eq(y) {
                            return Err(RollError::NonPeriodicImmediate(a_op));
                        }
                    }
                    (Operand::Reg(alpha), Operand::Reg(sigma)) => {
                        let g2: &Graph = rc.g;
                        let committed = |jd: usize, d: OpId| {
                            jd < j
                                || (jd == j
                                    && g2
                                        .node(row0)
                                        .tree
                                        .position_of(d)
                                        .is_some_and(|pp| pp.is_prefix_of(exit_leaf)))
                        };
                        let fetch = |rc: &RollCtx<'_>, q: usize| -> Result<RegId, RollError> {
                            let inst = rc
                                .periods
                                .get(q)
                                .and_then(|t| t.get(&(j, id)))
                                .copied()
                                .ok_or(RollError::NonPeriodicRegister(a_op, alpha))?;
                            let chain = rc.fixup_chain(q, j, inst)?;
                            let fop = chain
                                .get(k)
                                .copied()
                                .ok_or(RollError::NonPeriodicRegister(a_op, alpha))?;
                            match rc.g.op(fop).src.get(si) {
                                Some(Operand::Reg(r)) => Ok(*r),
                                _ => Err(RollError::NonPeriodicRegister(a_op, alpha)),
                            }
                        };
                        rc.check_reg(a_op, alpha, sigma, committed, fetch)?;
                    }
                    _ => return Err(RollError::Malformed("operand shape mismatch")),
                }
            }
        }
    }

    let rot = rc.rot;

    // --- Materialize the rotation block. ----------------------------------
    let width = if fus == 0 { usize::MAX } else { fus };
    let mut rot_nodes: Vec<NodeId> = Vec::new();
    if !rot.is_empty() {
        for chunk in rot.chunks(width.min(rot.len())) {
            let mut ops = Vec::with_capacity(chunk.len());
            for &(dst, src) in chunk {
                let mut cpy =
                    grip_ir::Operation::new(OpKind::Copy, Some(dst), vec![Operand::Reg(src)]);
                cpy.name = g.reg_name(dst).map(|nm| format!("{nm}@rot").into());
                ops.push(g.add_op(cpy));
            }
            let n = g.add_node(Tree::Leaf { ops, succ: None });
            rot_nodes.push(n);
        }
        for pair in rot_nodes.windows(2) {
            g.set_succ(pair[0], TreePath::ROOT, Some(pair[1]));
        }
    }

    // --- Rewire the back edge. --------------------------------------------
    let last = body[p - 1];
    let next_head = rows[s + p];
    let paths = g.node(last).tree.leaf_paths_to(next_head);
    if paths.is_empty() {
        return Err(RollError::Malformed("pattern tail does not reach the next period"));
    }
    let back_target = if let Some(&first) = rot_nodes.first() {
        g.set_succ(*rot_nodes.last().expect("nonempty"), TreePath::ROOT, Some(body[0]));
        first
    } else {
        body[0]
    };
    for path in paths {
        g.set_succ(last, path, Some(back_target));
    }

    Ok(RollOutcome {
        body_head: body[0],
        rotation_copies: rot.len(),
        rotation_rows: rot_nodes.len(),
    })
}
