//! Steady-state pattern detection over a scheduled window.
//!
//! "Imagine the loop unwound an infinite number of times. The pattern in
//! the middle continuously repeats … we can exploit this fact by making
//! this repeated pattern the new loop body" (§2). After GRiP scheduling
//! with gap prevention, the window's steady rows repeat with a fixed
//! iteration shift; the pattern's `rows / iterations` ratio is the
//! pipelined loop's cycles-per-iteration.

use crate::unwind::Window;
use grip_ir::{Graph, NodeId, OpId, OpKind};
use grip_machine::{FuClass, MachineDesc, UNCAPPED};

/// A detected repeating pattern.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pattern {
    /// Index (into the steady-row list) where the pattern starts.
    pub start: usize,
    /// Rows per period.
    pub period_rows: usize,
    /// Iterations retired per period.
    pub period_iters: u32,
    /// Steady-state cycles per source iteration.
    pub cpi: f64,
}

/// The rows that execute on every traversal of the (possibly rescheduled)
/// window: nodes that can still reach the back edge to `window.head`,
/// in region order.
pub fn steady_rows(g: &Graph, region: &[NodeId], head: NodeId) -> Vec<NodeId> {
    let live: Vec<NodeId> = region.iter().copied().filter(|&n| g.node_exists(n)).collect();
    let pos: std::collections::HashMap<NodeId, usize> =
        live.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    // Carrier nodes: hold an edge back to the window head.
    let carriers: Vec<NodeId> =
        live.iter().copied().filter(|&n| g.successors(n).contains(&head)).collect();
    if carriers.is_empty() {
        return live;
    }
    // Nodes that reach a carrier via forward region edges.
    let mut steady: std::collections::HashSet<NodeId> = carriers.iter().copied().collect();
    // Iterate backwards over region order until fixpoint (forward edges
    // only, so one reverse pass suffices).
    for &n in live.iter().rev() {
        if steady.contains(&n) {
            continue;
        }
        let np = pos[&n];
        let reaches = g
            .unique_successors(n)
            .iter()
            .any(|&s| pos.get(&s).is_some_and(|&sp| sp > np) && steady.contains(&s));
        if reaches {
            steady.insert(n);
        }
    }
    live.into_iter().filter(|n| steady.contains(n)).collect()
}

/// One row's shape: the multiset of `(body op, iteration, kind tag)` of its
/// operations, sorted for comparison. The kind tag distinguishes an op from
/// a compensation copy that inherited its ancestry.
fn signature(g: &Graph, w: &Window, n: NodeId) -> Option<Vec<(OpId, u32, bool)>> {
    let mut sig = Vec::new();
    for &(_, op) in g.node_ops(n) {
        let body = w.body_op(g, op)?;
        let o = g.op(op);
        let is_copy_artifact = o.kind == OpKind::Copy && g.op(body).kind != OpKind::Copy;
        sig.push((body, o.iter, is_copy_artifact));
    }
    sig.sort_unstable();
    Some(sig)
}

/// Do `a` and `b` have the same shape with every iteration advanced by
/// `shift`?
fn shifted_eq(a: &[(OpId, u32, bool)], b: &[(OpId, u32, bool)], shift: u32) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(&(ob, oi, oc), &(nb, ni, nc))| ob == nb && oc == nc && ni == oi + shift)
}

/// Find the smallest repeating pattern among `rows` (steady rows in order).
///
/// Searches periods `p` ascending and starts `s` ascending for a shift
/// `Δ ≥ 1` with `sig(rows[s+p+j]) = sig(rows[s+j]) + Δ` for all `j < p`.
pub fn detect(g: &Graph, w: &Window, rows: &[NodeId]) -> Option<Pattern> {
    let sigs: Vec<Option<Vec<(OpId, u32, bool)>>> =
        rows.iter().map(|&n| signature(g, w, n)).collect();
    let len = rows.len();
    for p in 1..=len / 2 {
        for s in 0..=len.saturating_sub(2 * p) {
            // Determine Δ from the first row pair.
            let (Some(a), Some(b)) = (&sigs[s], &sigs[s + p]) else { continue };
            if a.is_empty() || b.is_empty() || a.len() != b.len() {
                continue;
            }
            let shift = match b[0].1.checked_sub(a[0].1) {
                Some(d) if d >= 1 => d,
                _ => continue,
            };
            let ok = (0..p).all(|j| match (&sigs[s + j], &sigs[s + p + j]) {
                (Some(x), Some(y)) => shifted_eq(x, y, shift),
                _ => false,
            });
            if ok {
                return Some(Pattern {
                    start: s,
                    period_rows: p,
                    period_iters: shift,
                    cpi: p as f64 / shift as f64,
                });
            }
        }
    }
    None
}

/// Fallback steady-state estimate when no exact pattern exists (the packing
/// of a non-integral `ops-per-iteration / width` ratio wobbles around its
/// mean): the slope of "first row touched by iteration i" over the middle
/// iterations, in rows per iteration.
///
/// For a converged pattern the slope equals the pattern CPI exactly; for a
/// quasi-periodic schedule it is the observed throughput of the window's
/// steady section.
pub fn estimate_cpi(g: &Graph, w: &Window, rows: &[NodeId]) -> Option<f64> {
    let u = w.iterations;
    if u < 4 {
        return None;
    }
    // Midpoint of each iteration's row span: robust against a single op
    // sneaking far ahead of (or trailing behind) its iteration.
    let mut first_row: Vec<Option<usize>> = vec![None; u as usize];
    let mut last_row: Vec<Option<usize>> = vec![None; u as usize];
    for (ri, &n) in rows.iter().enumerate() {
        for &(_, op) in g.node_ops(n) {
            let it = g.op(op).iter as usize;
            if it < first_row.len() {
                if first_row[it].is_none() {
                    first_row[it] = Some(ri);
                }
                last_row[it] = Some(ri);
            }
        }
    }
    // Skip the fill (first quarter) and drain (last quarter), then fit a
    // least-squares line through (iteration, span midpoint) — averaging out
    // the integer quantization of row indices.
    let lo = (u as usize) / 4;
    let hi = (u as usize - 1) - (u as usize) / 4;
    if hi <= lo {
        return None;
    }
    let pts: Vec<(f64, f64)> = (lo..=hi)
        .filter_map(|i| match (first_row[i], last_row[i]) {
            (Some(a), Some(b)) => Some((i as f64, (a + b) as f64 / 2.0)),
            _ => None,
        })
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let m = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = m * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (m * sxy - sx * sy) / denom;
    (slope > 0.0).then_some(slope)
}

/// Physical lower bound on steady-state CPI: the functional-unit ops of a
/// middle iteration that survived into the steady rows cannot issue in
/// fewer than `ops/width` instructions — and, per class, in fewer than
/// `class ops / class slots` (a single memory port bounds a streaming
/// loop no matter how wide the machine is). Slope estimates below this
/// bound measured the window's fill region, not its throughput.
pub fn fu_lower_bound(g: &Graph, w: &Window, rows: &[NodeId], desc: &MachineDesc) -> Option<f64> {
    if desc.width == 0 || desc.is_unbounded() || w.iterations < 3 {
        return None;
    }
    let mid = w.iterations / 2;
    let mut ops = 0usize;
    let mut by_class = [0usize; FuClass::COUNT];
    for &n in rows {
        for &(_, op) in g.node_ops(n) {
            let o = g.op(op);
            if o.iter == mid && !o.kind.is_cj() {
                ops += 1;
                by_class[FuClass::of(o.kind).index()] += 1;
            }
        }
    }
    if ops == 0 {
        return None;
    }
    let mut bound: f64 = 0.0;
    if desc.width != UNCAPPED {
        bound = ops as f64 / desc.width as f64;
    }
    for c in &FuClass::ALL[..3] {
        let slots = desc.class_slots[c.index()];
        if slots != UNCAPPED && slots > 0 {
            bound = bound.max(by_class[c.index()] as f64 / slots as f64);
        }
    }
    (bound > 0.0).then_some(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::simplify_inductions;
    use crate::unwind::unwind;
    use grip_analysis::{Ddg, RankTable};
    use grip_core::{schedule_region, GripConfig, Resources};
    use grip_ir::{OpKind, Operand, ProgramBuilder, Value};
    use grip_percolate::Ctx;

    /// The paper's Figure 5/6 loop: a -> b -> c with a loop-carried
    /// dependence of a on itself (plus the loop control the paper leaves
    /// implicit; c's result is stored so the chain stays live).
    fn abc_loop(n: i64) -> grip_ir::Graph {
        let mut b = ProgramBuilder::new();
        let y = b.array("y", (n + 8) as usize);
        let acc = b.named_reg("acc");
        b.const_f(acc, 1.0);
        let k = b.named_reg("k");
        b.const_i(k, 0);
        b.begin_loop();
        // a: acc = acc * 1.0001 (self LCD)
        b.emit(grip_ir::Operation::new(
            OpKind::Mul,
            Some(acc),
            vec![Operand::Reg(acc), Operand::Imm(Value::F(1.0001))],
        ));
        // b: t = acc + 2.0 ; c: y[k] = t * 3.0
        let t = b.binary("b", OpKind::Add, Operand::Reg(acc), Operand::Imm(Value::F(2.0)));
        let u = b.binary("c", OpKind::Mul, Operand::Reg(t), Operand::Imm(Value::F(3.0)));
        b.store(y, Operand::Reg(k), 0, Operand::Reg(u));
        b.iadd_imm(k, k, 1);
        let c = b.binary("cc", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(n)));
        b.end_loop(c);
        let mut g = b.finish();
        g.live_out = vec![acc, k];
        g
    }

    #[test]
    fn perfect_pipelining_converges_on_abc_loop() {
        // Unlimited resources + unfolded inductions: the classic slope-1
        // diagonal (every chain rises one row per iteration via its LCD).
        let mut g = abc_loop(64);
        let w = unwind(&mut g, 6);
        let ddg = Ddg::build(&g, g.entry);
        let mut ctx = Ctx::new(&g, &ddg);
        let ranks = RankTable::new(&ddg, true);
        let cfg = GripConfig {
            resources: Resources::UNLIMITED,
            gap_prevention: true,
            dce: true,
            speculation: Default::default(),
            trace: false,
        };
        let out = schedule_region(&mut g, &mut ctx, &ranks, cfg, w.rows.clone());
        g.validate().unwrap();
        let rows = steady_rows(&g, &out.region, w.head);
        let pat = detect(&g, &w, &rows).expect("gap prevention must converge");
        // One iteration per pattern period; the self-LCD serializes `a`,
        // so the steady state retires one iteration per row.
        assert_eq!(pat.period_rows as u32, pat.period_iters, "slope-1 pattern");
        assert!(pat.cpi <= 1.01, "unlimited resources: 1 cycle/iter, got {}", pat.cpi);
    }

    #[test]
    fn no_gap_prevention_means_no_convergence_under_unlimited_resources() {
        // Without gap prevention, unconstrained motion spreads iterations
        // apart (Figure 9): the steady rows need not repeat.
        let mut g = abc_loop(64);
        let w = unwind(&mut g, 6);
        simplify_inductions(&mut g, &w.rows);
        let ddg = Ddg::build(&g, g.entry);
        let mut ctx = Ctx::new(&g, &ddg);
        let ranks = RankTable::new(&ddg, true);
        let cfg = GripConfig {
            resources: Resources::UNLIMITED,
            gap_prevention: false,
            dce: true,
            speculation: Default::default(),
            trace: false,
        };
        let out = schedule_region(&mut g, &mut ctx, &ranks, cfg, w.rows.clone());
        let rows = steady_rows(&g, &out.region, w.head);
        // The `a` chain (LCD) forms a diagonal while b/c race upward: row
        // contents drift apart, visible as growing per-row op counts then
        // thinning tails. We just assert the schedule differs from the
        // gapless one in shape: some iteration's ops are separated by a row
        // that contains none of its ops (a gap).
        let mut has_gap = false;
        for it in 0..w.iterations {
            let mut seen: Vec<bool> = Vec::new();
            for &r in &rows {
                let any = g.node_ops(r).iter().any(|&(_, o)| g.op(o).iter == it);
                seen.push(any);
            }
            let first = seen.iter().position(|&b| b);
            let last = seen.iter().rposition(|&b| b);
            if let (Some(f), Some(l)) = (first, last) {
                if seen[f..=l].iter().any(|&b| !b) {
                    has_gap = true;
                }
            }
        }
        assert!(has_gap, "expected gaps without prevention");
    }
}
