//! Loop unwinding with per-iteration register renaming.
//!
//! Perfect Pipelining "unwinds the loop a fixed number of times before
//! scheduling" (§3.2). The unwinder replicates the canonical one-op-per-node
//! loop body `u` times:
//!
//! * iteration copies `0..u-1` define fresh registers; the **last** copy
//!   writes back into the original registers, so the window's back edge
//!   re-enters with the same register names it started with (and the first
//!   entry from the preheader needs no adjustment either);
//! * every op is tagged with its iteration (`Operation::iter`) — the tags
//!   drive the iteration-major ranking rule and the Gapless-move test;
//! * each iteration's loop-control jump exits to a per-iteration *fix-up
//!   block* that copies the live-at-exit registers back to their canonical
//!   names before the shared epilogue.

use grip_analysis::Liveness;
use grip_ir::{Graph, LoopInfo, NodeId, OpId, OpKind, Operand, RegId, Tree, TreePath};
use std::collections::HashMap;

/// The unwound window plus the bookkeeping pattern detection needs.
///
/// `Clone` exists for the service layer's DDG cache: a cached window is
/// cloned per request and handed (with a clone of its graph) to
/// [`crate::schedule_window`].
#[derive(Clone, Debug)]
pub struct Window {
    /// Window rows in chain order: iteration 0's first node through the
    /// last iteration's latch.
    pub rows: Vec<NodeId>,
    /// First row (back-edge target).
    pub head: NodeId,
    /// Last row (back-edge source before scheduling).
    pub latch: NodeId,
    /// Per-iteration exit fix-up entry nodes (empty entries point straight
    /// at the loop exit).
    pub fixups: Vec<NodeId>,
    /// Unwind factor.
    pub iterations: u32,
    /// Window op → original body op (ancestry for row signatures).
    pub origin: HashMap<OpId, OpId>,
    /// Nodes per iteration in the original sequential body — the paper's
    /// sequential cycles-per-iteration baseline.
    pub body_len: usize,
}

impl Window {
    /// The original body op behind a (possibly duplicated) window op.
    pub fn body_op(&self, g: &Graph, op: OpId) -> Option<OpId> {
        self.origin.get(&g.op(op).orig).copied()
    }
}

/// Unwind the single canonical loop of `g` by factor `u` (≥ 1).
///
/// Panics if the graph has no [`LoopInfo`] or the body is not in canonical
/// one-op-per-node form (the shape every kernel builder produces).
pub fn unwind(g: &mut Graph, u: usize) -> Window {
    assert!(u >= 1, "unwind factor must be at least 1");
    let li = g.loop_info.expect("unwind requires loop_info");

    // Collect the canonical body: chain of single-op leaves ending at the
    // branch latch.
    let mut body: Vec<(NodeId, OpId)> = Vec::new();
    let mut cur = li.head;
    let latch_cj = loop {
        if cur == li.latch {
            match &g.node(cur).tree {
                Tree::Branch { cj, ops, on_true, on_false } => {
                    assert!(ops.is_empty(), "canonical latch carries only its jump");
                    assert!(
                        matches!(**on_true, Tree::Leaf { .. })
                            && matches!(**on_false, Tree::Leaf { .. }),
                        "canonical latch has leaf sides"
                    );
                    break *cj;
                }
                _ => panic!("latch must branch"),
            }
        }
        let ops = g.node_ops(cur);
        assert_eq!(ops.len(), 1, "canonical body has one op per node ({cur})");
        assert_eq!(ops[0].0, TreePath::ROOT, "body ops sit at tree roots");
        body.push((cur, ops[0].1));
        let succ = g.successors(cur);
        assert_eq!(succ.len(), 1, "body nodes fall through");
        cur = succ[0];
    };
    let body_len = body.len() + 1; // + latch

    // Registers needing exit fix-ups: defined in the body AND live at the
    // loop exit.
    let lv = Liveness::compute(g);
    let body_defs: Vec<RegId> = body.iter().filter_map(|&(_, op)| g.op(op).dest).collect();
    let fixup_regs: Vec<RegId> =
        body_defs.iter().copied().filter(|&r| lv.is_live_in(li.exit, r)).collect();

    // Emit u copies.
    let mut rows: Vec<NodeId> = Vec::new();
    let mut fixups: Vec<NodeId> = Vec::new();
    let mut origin: HashMap<OpId, OpId> = HashMap::new();
    // Current name of each body-defined register (identity at window entry).
    let mut cur_name: HashMap<RegId, RegId> = HashMap::new();
    let mut iter_heads: Vec<NodeId> = Vec::new();
    let mut latches: Vec<NodeId> = Vec::new();

    for i in 0..u {
        let last_copy = i == u - 1;
        let mut iter_rows = Vec::new();
        for &(_, body_op) in &body {
            let mut op = g.op(body_op).clone();
            // Rewrite reads to current names.
            for s in op.src.iter_mut() {
                if let Operand::Reg(r) = *s {
                    if let Some(&nr) = cur_name.get(&r) {
                        *s = Operand::Reg(nr);
                    }
                }
            }
            // Destination: fresh per iteration, original names in the last
            // copy (so the back edge needs no compensation).
            if let Some(d) = op.dest {
                let nd = if last_copy {
                    d
                } else {
                    let base = g.reg_name(d).map(|s| s.to_string());
                    match base {
                        Some(b) => g.named_reg(&format!("{b}.{i}")),
                        None => g.fresh_reg(),
                    }
                };
                op.dest = Some(nd);
                cur_name.insert(d, nd);
            }
            op.iter = i as u32;
            let id = g.add_op(op);
            origin.insert(id, body_op);
            let n = g.add_node(Tree::Leaf { ops: vec![id], succ: None });
            iter_rows.push(n);
        }
        // Latch copy.
        let mut cj = g.op(latch_cj).clone();
        if let Operand::Reg(r) = cj.src[0] {
            if let Some(&nr) = cur_name.get(&r) {
                cj.src[0] = Operand::Reg(nr);
            }
        }
        cj.iter = i as u32;
        let cj_id = g.add_op(cj);
        origin.insert(cj_id, latch_cj);
        let latch = g.add_node(Tree::Branch {
            ops: vec![],
            cj: cj_id,
            on_true: Box::new(Tree::leaf(None)),  // patched below
            on_false: Box::new(Tree::leaf(None)), // patched below
        });
        iter_rows.push(latch);
        latches.push(latch);

        // Chain the iteration's rows.
        for w in iter_rows.windows(2) {
            g.set_succ(w[0], TreePath::ROOT, Some(w[1]));
        }
        iter_heads.push(iter_rows[0]);

        // Exit fix-up block: canonical_name <- current_name for live regs.
        let fixup_entry = if last_copy {
            li.exit // last copy already writes canonical names
        } else {
            let mut entry: Option<NodeId> = None;
            let mut tail: Option<NodeId> = None;
            for &r in &fixup_regs {
                let cn = cur_name.get(&r).copied().unwrap_or(r);
                if cn == r {
                    continue;
                }
                let mut c = grip_ir::Operation::new(OpKind::Copy, Some(r), vec![Operand::Reg(cn)]);
                c.iter = i as u32;
                c.name = g.reg_name(r).map(|s| format!("{s}!").into());
                let cid = g.add_op(c);
                let n = g.add_node(Tree::Leaf { ops: vec![cid], succ: None });
                if let Some(t) = tail {
                    g.set_succ(t, TreePath::ROOT, Some(n));
                }
                entry.get_or_insert(n);
                tail = Some(n);
            }
            match (entry, tail) {
                (Some(e), Some(t)) => {
                    g.set_succ(t, TreePath::ROOT, Some(li.exit));
                    e
                }
                _ => li.exit,
            }
        };
        fixups.push(fixup_entry);
        g.set_succ(latch, TreePath::ROOT.child(false), Some(fixup_entry));

        rows.extend(iter_rows);
    }

    // Continue edges: iteration i -> iteration i+1; last -> window head.
    for (i, &latch) in latches.iter().enumerate() {
        let target = if i + 1 < u { iter_heads[i + 1] } else { iter_heads[0] };
        g.set_succ(latch, TreePath::ROOT.child(true), Some(target));
    }

    // Splice the window in place of the old body.
    let head = iter_heads[0];
    let latch = latches[u - 1];
    // The preheader's edge(s) to the old head now reach the window.
    for p in g.predecessors().get(&li.head).cloned().unwrap_or_default() {
        if p == li.latch {
            continue; // the old back edge dies with the old body
        }
        for lp in g.node(p).tree.leaf_paths_to(li.head) {
            g.set_succ(p, lp, Some(head));
        }
    }
    g.loop_info = Some(LoopInfo { head, latch, preheader: li.preheader, exit: li.exit });

    Window { rows, head, latch, fixups, iterations: u as u32, origin, body_len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grip_ir::{OpKind, ProgramBuilder, Value};
    use grip_vm::{EquivReport, Machine};

    /// saxpy-ish: y[k] = y[k] + 2.5*x[k], k live-out.
    fn loop_graph(n: i64) -> (Graph, grip_ir::ArrayId, grip_ir::ArrayId) {
        let mut b = ProgramBuilder::new();
        let x = b.array("x", (n + 8) as usize);
        let y = b.array("y", (n + 8) as usize);
        let k = b.named_reg("k");
        b.const_i(k, 0);
        b.begin_loop();
        let t = b.load("t", x, Operand::Reg(k), 0);
        let u_ = b.binary("u", OpKind::Mul, Operand::Reg(t), Operand::Imm(Value::F(2.5)));
        let w = b.load("w", y, Operand::Reg(k), 0);
        let v = b.binary("v", OpKind::Add, Operand::Reg(u_), Operand::Reg(w));
        b.store(y, Operand::Reg(k), 0, Operand::Reg(v));
        b.iadd_imm(k, k, 1);
        let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(n)));
        b.end_loop(c);
        let mut g = b.finish();
        g.live_out = vec![k];
        (g, x, y)
    }

    fn check_equiv(g0: &Graph, g1: &Graph, x: grip_ir::ArrayId, y: grip_ir::ArrayId, n: i64) {
        let setup = |m: &mut Machine| {
            let xs: Vec<f64> = (0..n + 8).map(|i| (i as f64).sin()).collect();
            let ys: Vec<f64> = (0..n + 8).map(|i| (i as f64) * 0.25).collect();
            m.set_array_f(x, &xs);
            m.set_array_f(y, &ys);
        };
        let mut m0 = Machine::for_graph(g0);
        setup(&mut m0);
        m0.run(g0).unwrap();
        let mut m1 = Machine::for_graph(g1);
        setup(&mut m1);
        m1.run(g1).unwrap();
        let rep = EquivReport::compare(g0, &m0, &m1);
        assert!(rep.is_equal(), "unwinding changed semantics: {rep:?}");
    }

    #[test]
    fn unwound_window_preserves_semantics_all_remainders() {
        // Trip counts that end at every possible point mid-window.
        for n in [1i64, 2, 3, 4, 5, 7, 8, 9, 12] {
            let (g0, x, y) = loop_graph(n);
            let mut g = g0.clone();
            let w = unwind(&mut g, 4);
            g.validate().unwrap();
            assert_eq!(w.rows.len(), 4 * w.body_len);
            check_equiv(&g0, &g, x, y, n);
        }
    }

    #[test]
    fn unwind_factor_one_is_identity_shaped() {
        let (g0, x, y) = loop_graph(6);
        let mut g = g0.clone();
        let w = unwind(&mut g, 1);
        g.validate().unwrap();
        assert_eq!(w.rows.len(), w.body_len);
        assert_eq!(w.fixups.len(), 1);
        check_equiv(&g0, &g, x, y, 6);
    }

    #[test]
    fn iteration_tags_and_origins_recorded() {
        let (g0, _, _) = loop_graph(8);
        let mut g = g0.clone();
        let w = unwind(&mut g, 3);
        for (idx, &row) in w.rows.iter().enumerate() {
            let expect_iter = (idx / w.body_len) as u32;
            for &(_, op) in g.node_ops(row) {
                assert_eq!(g.op(op).iter, expect_iter, "row {idx}");
                assert!(w.body_op(&g, op).is_some(), "every window op maps to a body op");
            }
        }
        // Same body op across iterations maps to the same origin.
        let first_op = g.node_ops(w.rows[0])[0].1;
        let second_op = g.node_ops(w.rows[w.body_len])[0].1;
        assert_eq!(w.body_op(&g, first_op), w.body_op(&g, second_op));
    }

    #[test]
    fn last_iteration_writes_canonical_registers() {
        let (g0, _, _) = loop_graph(8);
        let mut g = g0.clone();
        let w = unwind(&mut g, 4);
        // k's final update in the window writes the original k.
        let k = g0.live_out[0];
        let last_iter_rows = &w.rows[3 * w.body_len..];
        let writes_k = last_iter_rows
            .iter()
            .any(|&n| g.node_ops(n).iter().any(|&(_, o)| g.op(o).dest == Some(k)));
        assert!(writes_k, "last copy must write canonical k");
        // Early iterations write renamed registers only.
        let early = &w.rows[..w.body_len];
        assert!(
            early.iter().all(|&n| { g.node_ops(n).iter().all(|&(_, o)| g.op(o).dest != Some(k)) }),
            "iteration 0 must not clobber canonical k"
        );
    }
}
