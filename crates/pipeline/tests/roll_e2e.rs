//! End-to-end re-rolling: pipeline a loop, roll the detected pattern into
//! a real loop with a rotation block, and verify by simulation that the
//! rolled program is observationally identical to the original across many
//! trip counts.

use grip_core::Resources;
use grip_ir::{ArrayId, Graph, OpKind, Operand, ProgramBuilder, RegId, Value};
use grip_pipeline::{perfect_pipeline, PipelineOptions};
use grip_vm::{EquivReport, Machine};

/// The running example: acc chain (LCD), dependent b/c ops, a store, loop
/// control. Unfolded inductions keep the pattern operand-periodic.
fn abc_loop(n: i64) -> (Graph, ArrayId, RegId) {
    let mut b = ProgramBuilder::new();
    let y = b.array("y", (n + 8) as usize);
    let acc = b.named_reg("acc");
    b.const_f(acc, 1.0);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    b.emit(grip_ir::Operation::new(
        OpKind::Mul,
        Some(acc),
        vec![Operand::Reg(acc), Operand::Imm(Value::F(1.0001))],
    ));
    let t = b.binary("b", OpKind::Add, Operand::Reg(acc), Operand::Imm(Value::F(2.0)));
    let u = b.binary("c", OpKind::Mul, Operand::Reg(t), Operand::Imm(Value::F(3.0)));
    b.store(y, Operand::Reg(k), 0, Operand::Reg(u));
    b.iadd_imm(k, k, 1);
    let c = b.binary("cc", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(n)));
    b.end_loop(c);
    let mut g = b.finish();
    g.live_out = vec![acc, k];
    (g, y, acc)
}

fn run(g: &Graph) -> Machine {
    let mut m = Machine::for_graph(g);
    m.run(g).unwrap_or_else(|e| panic!("run failed: {e}\n{}", grip_ir::print::dump(g)));
    m
}

#[test]
fn rolled_loop_is_observationally_identical() {
    // Trip counts hitting every phase of the pattern, including ones that
    // exit during the fill.
    for n in [1i64, 2, 3, 5, 8, 13, 21, 40, 64] {
        let (g0, _, _) = abc_loop(n);
        let mut g = g0.clone();
        let opts = PipelineOptions {
            unwind: 6,
            resources: Resources::UNLIMITED,
            fold_inductions: false, // operand-periodic => rollable
            gap_prevention: true,
            dce: true,
            try_roll: true,
            audit: false,
        };
        let rep = perfect_pipeline(&mut g, opts);
        let pat = rep.pattern.expect("slope-1 pattern must converge");
        assert_eq!(pat.period_iters, 1);
        let rolled =
            rep.rolled.expect("roll requested").unwrap_or_else(|e| panic!("roll failed: {e}"));
        assert!(rolled.rotation_copies > 0, "LCD chains need rotation");
        g.validate().unwrap();

        let m0 = run(&g0);
        let m1 = run(&g);
        let rep2 = EquivReport::compare(&g0, &m0, &m1);
        assert!(rep2.is_equal(), "n={n}: rolled loop diverged: {rep2:?}");
    }
}

#[test]
fn rolled_loop_executes_fewer_cycles() {
    let n = 200i64;
    let (g0, _, _) = abc_loop(n);
    let mut g = g0.clone();
    let opts = PipelineOptions {
        unwind: 6,
        resources: Resources::UNLIMITED,
        fold_inductions: false,
        gap_prevention: true,
        dce: true,
        try_roll: true,
        audit: false,
    };
    let rep = perfect_pipeline(&mut g, opts);
    rep.rolled.expect("requested").expect("rolls");
    let mut m0 = Machine::for_graph(&g0);
    let s0 = m0.run(&g0).unwrap();
    let mut m1 = Machine::for_graph(&g);
    let s1 = m1.run(&g).unwrap();
    // 7 sequential rows per iteration vs ~1 pattern row + 1 rotation row.
    assert!(
        (s1.cycles as f64) < 0.5 * s0.cycles as f64,
        "rolled: {} vs sequential: {}",
        s1.cycles,
        s0.cycles
    );
}

#[test]
fn folded_inductions_refuse_to_roll() {
    // With folded induction immediates the pattern is not operand-periodic;
    // roll must fail loudly rather than miscompile.
    let (_, _, _) = abc_loop(32);
    let (g0, _, _) = abc_loop(32);
    let mut g = g0.clone();
    let opts = PipelineOptions {
        unwind: 8,
        resources: Resources::vliw(2),
        fold_inductions: true,
        gap_prevention: true,
        dce: true,
        try_roll: true,
        audit: false,
    };
    let rep = perfect_pipeline(&mut g, opts);
    if let Some(rolled) = rep.rolled {
        assert!(rolled.is_err(), "folded immediates must not silently roll");
    }
    // The scheduled window remains exact regardless.
    let m0 = run(&g0);
    let m1 = run(&g);
    assert!(EquivReport::compare(&g0, &m0, &m1).is_equal());
}
