//! Human-readable dumps: whole-graph listings and the paper's iteration
//! tableaux (Figures 5, 9, 13).

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::tree::Tree;
use std::fmt::Write as _;

/// Render the whole graph as an indented listing, nodes in reachable order.
pub fn dump(g: &Graph) -> String {
    let mut out = String::new();
    for n in g.reachable() {
        let _ = writeln!(out, "{n}:{}", if n == g.entry { "  (entry)" } else { "" });
        dump_tree(g, &g.node(n).tree, 1, &mut out);
    }
    out
}

fn dump_tree(g: &Graph, t: &Tree, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match t {
        Tree::Leaf { ops, succ } => {
            for &o in ops {
                let _ = writeln!(out, "{pad}{}", render_op(g, o));
            }
            match succ {
                Some(s) => {
                    let _ = writeln!(out, "{pad}=> {s}");
                }
                None => {
                    let _ = writeln!(out, "{pad}=> exit");
                }
            }
        }
        Tree::Branch { ops, cj, on_true, on_false } => {
            for &o in ops {
                let _ = writeln!(out, "{pad}{}", render_op(g, o));
            }
            let _ = writeln!(out, "{pad}{} ?", render_op(g, *cj));
            let _ = writeln!(out, "{pad}T:");
            dump_tree(g, on_true, indent + 1, out);
            let _ = writeln!(out, "{pad}F:");
            dump_tree(g, on_false, indent + 1, out);
        }
    }
}

/// Render one operation with named registers where available.
pub fn render_op(g: &Graph, id: crate::ids::OpId) -> String {
    let op = g.op(id);
    let mut s = String::new();
    if let Some(n) = &op.name {
        let _ = write!(s, "[{n}] ");
    }
    let _ = write!(s, "{op}");
    if op.iter != 0 {
        let _ = write!(s, "  ;it{}", op.iter);
    }
    s
}

/// One row of a tableau: a node and, per iteration, the labels of its ops
/// belonging to that iteration.
#[derive(Clone, Debug)]
pub struct TableauRow {
    /// The node this row describes.
    pub node: NodeId,
    /// `cells[i]` holds the labels of this node's ops tagged iteration `i`.
    pub cells: Vec<String>,
}

/// Build the paper-style iteration tableau for `nodes` (typically the
/// scheduled unwound loop body in topological order): one row per node, one
/// column per iteration, each cell the concatenated labels of that
/// iteration's ops in the node — the exact format of Figures 5, 9 and 13.
pub fn tableau(g: &Graph, nodes: &[NodeId], iters: usize) -> Vec<TableauRow> {
    let mut rows = Vec::with_capacity(nodes.len());
    for &n in nodes {
        let mut cells = vec![String::new(); iters];
        let mut ops = g.node_ops(n).to_vec();
        ops.sort_by_key(|&(_, o)| o);
        for (_, o) in ops {
            let op = g.op(o);
            let it = op.iter as usize;
            if it < iters {
                let label = op.label();
                // Conditional jumps render as their label suffixed with '?'.
                if op.kind.is_cj() {
                    let _ = write!(cells[it], "{label}?");
                } else {
                    cells[it].push_str(label);
                }
            }
        }
        rows.push(TableauRow { node: n, cells });
    }
    rows
}

/// Format a tableau as fixed-width text.
pub fn render_tableau(rows: &[TableauRow], iters: usize) -> String {
    let width =
        rows.iter().flat_map(|r| r.cells.iter().map(|c| c.len())).max().unwrap_or(1).max(4) + 1;
    let mut out = String::new();
    let _ = write!(out, "{:>6} |", "node");
    for i in 0..iters {
        let _ = write!(out, " {:^w$}", format!("it{i}"), w = width);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(8 + (width + 1) * iters));
    for row in rows {
        let _ = write!(out, "{:>6} |", row.node.to_string());
        for c in &row.cells {
            let _ = write!(out, " {:^w$}", c, w = width);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::op::{OpKind, Operand};
    use crate::value::Value;

    fn sample() -> Graph {
        let mut b = ProgramBuilder::new();
        let k = b.named_reg("k");
        b.const_i(k, 0);
        b.begin_loop();
        b.iadd_imm(k, k, 1);
        let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(4)));
        b.end_loop(c);
        b.finish()
    }

    #[test]
    fn dump_contains_nodes_and_ops() {
        let g = sample();
        let text = dump(&g);
        assert!(text.contains("(entry)"));
        assert!(text.contains("iadd"));
        assert!(text.contains("cjump"));
        assert!(text.contains("=> exit"));
        assert!(text.contains("T:"));
    }

    #[test]
    fn tableau_shapes() {
        let g = sample();
        let nodes: Vec<NodeId> = g.reachable();
        let rows = tableau(&g, &nodes, 2);
        assert_eq!(rows.len(), nodes.len());
        assert!(rows.iter().all(|r| r.cells.len() == 2));
        let text = render_tableau(&rows, 2);
        assert!(text.contains("it0"));
        assert!(text.contains("it1"));
    }
}
