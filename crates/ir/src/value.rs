//! Runtime values carried by registers and memory cells.

use std::fmt;

/// A dynamically-typed machine word.
///
/// The paper's intermediate language manipulates floating point data,
/// integer induction variables, and boolean condition codes; we model the
/// three kinds explicitly so the simulator can type-check executions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// 64-bit float (the Livermore kernels' data).
    F(f64),
    /// 64-bit signed integer (induction variables, indices).
    I(i64),
    /// Boolean condition produced by compares, consumed by conditional jumps.
    B(bool),
}

/// Element type of a memory array.
///
/// Speculatively hoisted loads may run with out-of-range indices (the loop
/// would have exited before their result mattered); the simulator gives such
/// loads a typed default value — "non-faulting load" semantics — so the
/// element type must be declared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElemKind {
    /// `f64` data arrays.
    F,
    /// `i64` index arrays (the PIC kernels' indirection vectors).
    I,
}

impl ElemKind {
    /// The value an uninitialized or speculatively-out-of-bounds read sees.
    pub fn default_value(self) -> Value {
        match self {
            ElemKind::F => Value::F(0.0),
            ElemKind::I => Value::I(0),
        }
    }
}

/// Error produced when a [`Value`] has the wrong type for an operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeError {
    /// What the operation expected, e.g. `"f64"`.
    pub expected: &'static str,
    /// What it got, e.g. `"i64"`.
    pub got: &'static str,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: expected {}, got {}", self.expected, self.got)
    }
}

impl std::error::Error for TypeError {}

impl Value {
    /// Name of the value's type, for diagnostics.
    pub fn type_name(self) -> &'static str {
        match self {
            Value::F(_) => "f64",
            Value::I(_) => "i64",
            Value::B(_) => "bool",
        }
    }

    /// Extract an `f64` or fail with a [`TypeError`].
    pub fn as_f(self) -> Result<f64, TypeError> {
        match self {
            Value::F(x) => Ok(x),
            other => Err(TypeError { expected: "f64", got: other.type_name() }),
        }
    }

    /// Extract an `i64` or fail with a [`TypeError`].
    pub fn as_i(self) -> Result<i64, TypeError> {
        match self {
            Value::I(x) => Ok(x),
            other => Err(TypeError { expected: "i64", got: other.type_name() }),
        }
    }

    /// Extract a `bool` or fail with a [`TypeError`].
    pub fn as_b(self) -> Result<bool, TypeError> {
        match self {
            Value::B(x) => Ok(x),
            other => Err(TypeError { expected: "bool", got: other.type_name() }),
        }
    }

    /// Bitwise-exact equality (used by the equivalence checker so that
    /// `NaN == NaN` and `-0.0 != 0.0` are handled deterministically).
    pub fn bit_eq(self, other: Value) -> bool {
        match (self, other) {
            (Value::F(a), Value::F(b)) => a.to_bits() == b.to_bits(),
            (Value::I(a), Value::I(b)) => a == b,
            (Value::B(a), Value::B(b)) => a == b,
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::F(x) => write!(f, "{x}"),
            Value::I(x) => write!(f, "{x}"),
            Value::B(x) => write!(f, "{x}"),
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::F(x)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::I(x)
    }
}

impl From<bool> for Value {
    fn from(x: bool) -> Self {
        Value::B(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(1.5).as_f(), Ok(1.5));
        assert_eq!(Value::from(3i64).as_i(), Ok(3));
        assert_eq!(Value::from(true).as_b(), Ok(true));
    }

    #[test]
    fn type_errors_report_kinds() {
        let err = Value::I(1).as_f().unwrap_err();
        assert_eq!(err.expected, "f64");
        assert_eq!(err.got, "i64");
        assert!(err.to_string().contains("expected f64"));
    }

    #[test]
    fn bit_equality_handles_nan_and_zero() {
        assert!(Value::F(f64::NAN).bit_eq(Value::F(f64::NAN)));
        assert!(!Value::F(0.0).bit_eq(Value::F(-0.0)));
        assert!(!Value::I(0).bit_eq(Value::B(false)));
    }
}
