//! A convenience builder producing *sequential* program graphs — one
//! operation per instruction — exactly the shape the paper's front end
//! hands to GRiP ("a sequential VLIW program graph wherein each node
//! contains a single intermediate language statement", §4).

use crate::graph::{Graph, LoopInfo};
use crate::ids::{ArrayId, NodeId, RegId};
use crate::op::{OpKind, Operand, Operation};
use crate::tree::Tree;
use crate::value::Value;

/// Builds a straight-line / single-loop sequential program.
///
/// ```
/// use grip_ir::{ProgramBuilder, OpKind, Operand, Value};
///
/// let mut b = ProgramBuilder::new();
/// let x = b.array("x", 16);
/// let k = b.named_reg("k");
/// b.const_i(k, 0);
/// b.begin_loop();
/// let t = b.load("t", x, Operand::Reg(k), 0);
/// let t2 = b.binary("t2", OpKind::Mul, Operand::Reg(t), Operand::Imm(Value::F(2.0)));
/// b.store(x, Operand::Reg(k), 0, Operand::Reg(t2));
/// b.iadd_imm(k, k, 1);
/// let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(16)));
/// b.end_loop(c);
/// let g = b.finish();
/// assert!(g.loop_info.is_some());
/// g.validate().unwrap();
/// ```
pub struct ProgramBuilder {
    g: Graph,
    /// Last emitted node; the next op is chained after it.
    tail: NodeId,
    /// Leaf position inside `tail` where the chain continues (the
    /// fall-through side after a loop latch).
    tail_path: crate::tree::TreePath,
    /// Set by `begin_loop`: the node *before* the loop head (the head is the
    /// next emitted node).
    loop_start: Option<(NodeId, Option<NodeId>)>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Start a fresh program.
    pub fn new() -> Self {
        let g = Graph::new();
        let tail = g.entry;
        ProgramBuilder { g, tail, tail_path: crate::tree::TreePath::ROOT, loop_start: None }
    }

    /// Declare an `f64` array.
    pub fn array(&mut self, name: &str, len: usize) -> ArrayId {
        self.g.array(name, len)
    }

    /// Declare an `i64` index array.
    pub fn iarray(&mut self, name: &str, len: usize) -> ArrayId {
        self.g.array_typed(name, len, crate::value::ElemKind::I)
    }

    /// Allocate a named register.
    pub fn named_reg(&mut self, name: &str) -> RegId {
        self.g.named_reg(name)
    }

    /// Mark a register observable at program exit.
    pub fn live_out(&mut self, r: RegId) {
        if !self.g.live_out.contains(&r) {
            self.g.live_out.push(r);
        }
    }

    /// Append one operation as its own instruction node.
    pub fn emit(&mut self, mut op: Operation) -> NodeId {
        debug_assert!(!op.kind.is_cj(), "use end_loop/branch for jumps");
        if op.name.is_none() {
            if let Some(d) = op.dest {
                op.name = self.g.reg_name(d).map(Into::into);
            }
        }
        let id = self.g.add_op(op);
        let n = self.g.add_node(Tree::Leaf { ops: vec![id], succ: None });
        self.g.set_succ(self.tail, self.tail_path, Some(n));
        self.tail = n;
        self.tail_path = crate::tree::TreePath::ROOT;
        n
    }

    /// `dest = kind src0, src1` with a fresh named destination.
    pub fn binary(&mut self, name: &str, kind: OpKind, a: Operand, b: Operand) -> RegId {
        let d = self.g.named_reg(name);
        self.emit(Operation::new(kind, Some(d), vec![a, b]));
        d
    }

    /// `dest = kind src` with a fresh named destination.
    pub fn unary(&mut self, name: &str, kind: OpKind, a: Operand) -> RegId {
        let d = self.g.named_reg(name);
        self.emit(Operation::new(kind, Some(d), vec![a]));
        d
    }

    /// `dest = #v` (load-immediate into an existing register).
    pub fn const_i(&mut self, dest: RegId, v: i64) -> NodeId {
        self.emit(Operation::new(OpKind::Copy, Some(dest), vec![Operand::Imm(Value::I(v))]))
    }

    /// `dest = #v` for floats.
    pub fn const_f(&mut self, dest: RegId, v: f64) -> NodeId {
        self.emit(Operation::new(OpKind::Copy, Some(dest), vec![Operand::Imm(Value::F(v))]))
    }

    /// `dest = copy src`.
    pub fn copy(&mut self, dest: RegId, src: Operand) -> NodeId {
        self.emit(Operation::new(OpKind::Copy, Some(dest), vec![src]))
    }

    /// `dest = iadd src, #imm` into an *existing* register (for induction
    /// updates like `k = k + 1`).
    pub fn iadd_imm(&mut self, dest: RegId, src: RegId, imm: i64) -> NodeId {
        self.emit(Operation::new(
            OpKind::IAdd,
            Some(dest),
            vec![Operand::Reg(src), Operand::Imm(Value::I(imm))],
        ))
    }

    /// Fresh-destination load: `name = array[idx + disp]`.
    pub fn load(&mut self, name: &str, array: ArrayId, idx: Operand, disp: i64) -> RegId {
        let d = self.g.named_reg(name);
        let mut op = Operation::new(OpKind::Load(array), Some(d), vec![idx]);
        op.disp = disp;
        self.emit(op);
        d
    }

    /// `array[idx + disp] = value`.
    pub fn store(&mut self, array: ArrayId, idx: Operand, disp: i64, value: Operand) -> NodeId {
        let mut op = Operation::new(OpKind::Store(array), None, vec![idx, value]);
        op.disp = disp;
        self.emit(op)
    }

    /// Mark the next emitted instruction as the head of *the* loop.
    pub fn begin_loop(&mut self) {
        assert!(self.loop_start.is_none(), "only one loop per builder program");
        self.loop_start = Some((self.tail, None));
    }

    /// Close the loop: emits the conditional jump `if cond goto head else
    /// fall through`. The builder then continues emitting the post-loop
    /// (epilogue) code on the fall-through side.
    pub fn end_loop(&mut self, cond: RegId) -> NodeId {
        let (preheader, _) = self.loop_start.expect("end_loop without begin_loop");
        let head = self.g.successors(preheader)[0];
        let cj = self.g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(cond)]));
        let latch = self.g.add_node(Tree::Branch {
            ops: vec![],
            cj,
            on_true: Box::new(Tree::leaf(Some(head))),
            on_false: Box::new(Tree::leaf(None)),
        });
        self.g.set_succ(self.tail, self.tail_path, Some(latch));
        self.tail = latch;
        self.tail_path = crate::tree::TreePath::ROOT.child(false);
        self.loop_start = Some((preheader, Some(latch)));
        latch
    }

    /// Finish the program. If a loop was built, the loop exit node (the
    /// first post-loop node, materialized empty when none was emitted) is
    /// recorded in [`LoopInfo`].
    pub fn finish(mut self) -> Graph {
        if let Some((preheader, Some(latch))) = self.loop_start {
            let false_path = crate::tree::TreePath::ROOT.child(false);
            let exit = match self.g.node(latch).tree.get(false_path) {
                Some(Tree::Leaf { succ: Some(s), .. }) => *s,
                _ => {
                    // No post-loop code: materialize an explicit exit node.
                    let exit = self.g.add_node(Tree::leaf(None));
                    self.g.set_succ(latch, false_path, Some(exit));
                    exit
                }
            };
            let head = self.g.successors(preheader)[0];
            self.g.loop_info = Some(LoopInfo { head, latch, preheader, exit });
        }
        self.g
    }

    /// Direct access to the underlying graph while building (for unusual
    /// shapes the convenience methods do not cover).
    pub fn graph_mut(&mut self) -> &mut Graph {
        &mut self.g
    }

    /// The node the next emission will chain after.
    pub fn tail(&self) -> NodeId {
        self.tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_program() {
        let mut b = ProgramBuilder::new();
        let r = b.named_reg("acc");
        b.const_f(r, 0.0);
        let s = b.binary("s", OpKind::Add, Operand::Reg(r), Operand::Imm(Value::F(1.0)));
        b.live_out(s);
        let g = b.finish();
        g.validate().unwrap();
        assert_eq!(g.reachable().len(), 3); // entry + 2 ops
        assert!(g.loop_info.is_none());
        assert_eq!(g.live_out, vec![s]);
    }

    #[test]
    fn loop_program_records_loop_info() {
        let mut b = ProgramBuilder::new();
        let x = b.array("x", 8);
        let k = b.named_reg("k");
        b.const_i(k, 0);
        b.begin_loop();
        let t = b.load("t", x, Operand::Reg(k), 0);
        b.store(x, Operand::Reg(k), 0, Operand::Reg(t));
        b.iadd_imm(k, k, 1);
        let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(8)));
        b.end_loop(c);
        let g = b.finish();
        g.validate().unwrap();
        let li = g.loop_info.unwrap();
        // back edge: latch's true side points at head
        assert!(g.successors(li.latch).contains(&li.head));
        assert!(g.successors(li.latch).contains(&li.exit));
        assert_eq!(g.successors(li.preheader), vec![li.head]);
        // one op per node in the loop body
        let mut n = li.head;
        let mut count = 0;
        while n != li.latch {
            assert_eq!(g.node_op_count(n), 1);
            n = g.successors(n)[0];
            count += 1;
        }
        assert_eq!(count, 4);
    }

    #[test]
    fn post_loop_code_chains_after_latch() {
        let mut b = ProgramBuilder::new();
        let k = b.named_reg("k");
        b.const_i(k, 0);
        b.begin_loop();
        b.iadd_imm(k, k, 1);
        let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(4)));
        b.end_loop(c);
        let done = b.binary("d", OpKind::IAdd, Operand::Reg(k), Operand::Imm(Value::I(100)));
        b.live_out(done);
        let g = b.finish();
        g.validate().unwrap();
        let li = g.loop_info.unwrap();
        // exit is the post-loop op node
        assert_eq!(g.node_op_count(li.exit), 1);
    }
}
