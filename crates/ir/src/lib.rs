//! # grip-ir — the VLIW program-graph IR
//!
//! The intermediate representation of the GRiP system, modelling §2 of
//! Nicolau & Novack, *An Efficient Global Resource Constrained Technique
//! for Exploiting Instruction Level Parallelism* (UCI TR 92-08, 1992):
//!
//! * a **program graph** whose nodes are VLIW instructions and whose edges
//!   are control flow ([`Graph`], [`Instruction`]);
//! * instructions as **trees of conditional jumps** with ordinary
//!   operations attached to tree positions ([`Tree`], [`TreePath`]) — the
//!   IBM VLIW variant, where only results along the selected path commit;
//! * the operation vocabulary of the paper's intermediate language
//!   ([`Operation`], [`OpKind`]): `A = B op C`, loads/stores, conditional
//!   jumps, and register copies;
//! * a [`ProgramBuilder`] producing the *sequential* graphs (one operation
//!   per instruction) that scheduling starts from.
//!
//! Everything is stored in flat arenas addressed by `u32` newtype ids; all
//! structural mutation goes through [`Graph`] methods so the op→node
//! placement map used by the schedulers stays consistent.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod builder;
mod fnv;
mod graph;
mod ids;
mod op;
pub mod print;
mod tree;
mod value;

pub use builder::ProgramBuilder;
pub use fnv::Fnv;
pub use graph::{ArrayInfo, Graph, Instruction, LoopInfo, ValidateError};
pub use ids::{ArrayId, NodeId, OpId, RegId};
pub use op::{OpKind, Operand, Operation};
pub use tree::{Tree, TreePath};
pub use value::{ElemKind, TypeError, Value};
