//! Instruction trees: the IBM VLIW model of §2.
//!
//! An instruction is a binary tree whose internal nodes carry conditional
//! jumps and whose leaves name successor instructions. Ordinary operations
//! are attached to tree positions; an operation attached at position `p`
//! commits its result on every execution whose selected path passes through
//! `p` (the IBM variant stores only results computed along the selected
//! path).

use crate::ids::{NodeId, OpId};
use std::fmt;

/// A path (or path prefix) through an instruction tree, encoded as branch
/// decisions from the root: bit `i` is the decision at depth `i`
/// (`true` = taken/true side).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TreePath {
    bits: u64,
    len: u8,
}

impl TreePath {
    /// The empty path (the tree root).
    pub const ROOT: TreePath = TreePath { bits: 0, len: 0 };

    /// Number of branch decisions on the path.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// True for the root path.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Extend the path with one more branch decision.
    #[must_use]
    pub fn child(self, taken: bool) -> TreePath {
        assert!(self.len < 64, "instruction tree deeper than 64 branches");
        let mut bits = self.bits;
        if taken {
            bits |= 1 << self.len;
        }
        TreePath { bits, len: self.len + 1 }
    }

    /// The branch decision at depth `i`.
    #[inline]
    pub fn decision(self, i: usize) -> bool {
        debug_assert!(i < self.len());
        self.bits & (1 << i) != 0
    }

    /// The parent position (one decision shorter), or `None` at the root.
    pub fn parent(self) -> Option<TreePath> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            TreePath { bits: self.bits & !(!0u64 << len), len }.into()
        }
    }

    /// True if `self` is a (non-strict) prefix of `other`: an op at `self`
    /// commits on every path through `other`.
    pub fn is_prefix_of(self, other: TreePath) -> bool {
        if self.len > other.len {
            return false;
        }
        let mask = if self.len == 0 { 0 } else { !(!0u64 << self.len) };
        (self.bits & mask) == (other.bits & mask)
    }
}

macro_rules! fmt_path_impl {
    ($trait_:path) => {
        impl $trait_ for TreePath {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.len == 0 {
                    return write!(f, "ε");
                }
                for i in 0..self.len() {
                    write!(f, "{}", if self.decision(i) { 'T' } else { 'F' })?;
                }
                Ok(())
            }
        }
    };
}

fmt_path_impl!(fmt::Debug);
fmt_path_impl!(fmt::Display);

/// A node of an instruction tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Tree {
    /// End of a path: the operations committed here plus the successor
    /// instruction (`None` = program exit).
    Leaf {
        /// Operations attached to this exact path.
        ops: Vec<OpId>,
        /// Next instruction when execution selects this path.
        succ: Option<NodeId>,
    },
    /// A conditional jump with its two subtrees. `ops` attached here commit
    /// on all paths through this position.
    Branch {
        /// Operations committing on every path below this position.
        ops: Vec<OpId>,
        /// The conditional jump operation selecting a side.
        cj: OpId,
        /// Subtree taken when the condition is true.
        on_true: Box<Tree>,
        /// Subtree taken when the condition is false.
        on_false: Box<Tree>,
    },
}

impl Tree {
    /// A leaf with no operations.
    pub fn leaf(succ: Option<NodeId>) -> Tree {
        Tree::Leaf { ops: Vec::new(), succ }
    }

    /// The subtree at position `path`, if the position exists.
    pub fn get(&self, path: TreePath) -> Option<&Tree> {
        let mut cur = self;
        for i in 0..path.len() {
            match cur {
                Tree::Branch { on_true, on_false, .. } => {
                    cur = if path.decision(i) { on_true } else { on_false };
                }
                Tree::Leaf { .. } => return None,
            }
        }
        Some(cur)
    }

    /// Mutable access to the subtree at `path`.
    pub fn get_mut(&mut self, path: TreePath) -> Option<&mut Tree> {
        let mut cur = self;
        for i in 0..path.len() {
            match cur {
                Tree::Branch { on_true, on_false, .. } => {
                    cur = if path.decision(i) { on_true } else { on_false };
                }
                Tree::Leaf { .. } => return None,
            }
        }
        Some(cur)
    }

    /// Operations stored directly at this tree node.
    pub fn ops(&self) -> &[OpId] {
        match self {
            Tree::Leaf { ops, .. } | Tree::Branch { ops, .. } => ops,
        }
    }

    /// Mutable operations list of this tree node.
    pub fn ops_mut(&mut self) -> &mut Vec<OpId> {
        match self {
            Tree::Leaf { ops, .. } | Tree::Branch { ops, .. } => ops,
        }
    }

    /// Pre-order walk over all positions, visiting `(position, tree-node)`.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(TreePath, &'a Tree)) {
        fn rec<'a>(t: &'a Tree, p: TreePath, f: &mut impl FnMut(TreePath, &'a Tree)) {
            f(p, t);
            if let Tree::Branch { on_true, on_false, .. } = t {
                rec(on_true, p.child(true), f);
                rec(on_false, p.child(false), f);
            }
        }
        rec(self, TreePath::ROOT, f)
    }

    /// All `(position, op)` pairs in the tree, conditional jumps included
    /// (a branch's cj is reported at the branch position).
    pub fn placed_ops(&self) -> Vec<(TreePath, OpId)> {
        let mut out = Vec::new();
        self.walk(&mut |p, t| {
            for &op in t.ops() {
                out.push((p, op));
            }
            if let Tree::Branch { cj, .. } = t {
                out.push((p, *cj));
            }
        });
        out
    }

    /// All leaf positions with their successors.
    pub fn leaves(&self) -> Vec<(TreePath, Option<NodeId>)> {
        let mut out = Vec::new();
        self.walk(&mut |p, t| {
            if let Tree::Leaf { succ, .. } = t {
                out.push((p, *succ));
            }
        });
        out
    }

    /// Leaf positions whose successor is `target`.
    pub fn leaf_paths_to(&self, target: NodeId) -> Vec<TreePath> {
        self.leaves().into_iter().filter_map(|(p, s)| (s == Some(target)).then_some(p)).collect()
    }

    /// Successor instructions (with duplicates if several leaves share one).
    pub fn successors(&self) -> Vec<NodeId> {
        self.leaves().into_iter().filter_map(|(_, s)| s).collect()
    }

    /// Position of operation `op` in the tree (its own position for a cj).
    pub fn position_of(&self, op: OpId) -> Option<TreePath> {
        let mut found = None;
        self.walk(&mut |p, t| {
            if found.is_none()
                && (t.ops().contains(&op) || matches!(t, Tree::Branch { cj, .. } if *cj == op))
            {
                found = Some(p);
            }
        });
        found
    }

    /// Remove `op` from whatever position holds it. Returns its position.
    /// Does not restructure the tree (removing a branch's cj is a separate,
    /// structural edit — see [`Tree::remove_branch`]).
    pub fn remove_op(&mut self, op: OpId) -> Option<TreePath> {
        let pos = self.position_of(op)?;
        let node = self.get_mut(pos).expect("position exists");
        if let Tree::Branch { cj, .. } = node {
            assert_ne!(*cj, op, "use remove_branch to remove a conditional jump");
        }
        let ops = node.ops_mut();
        let idx = ops.iter().position(|&o| o == op)?;
        ops.remove(idx);
        Some(pos)
    }

    /// Attach `op` at position `path` (leaf or branch node).
    pub fn insert_op(&mut self, path: TreePath, op: OpId) {
        self.get_mut(path).expect("insert_op: position must exist").ops_mut().push(op);
    }

    /// Replace the leaf at `path` by a branch on `cj` whose sides are fresh
    /// leaves to `t_succ` / `f_succ`. The old leaf's ops stay at the (now
    /// branch) position, so they still commit on both sides — exactly the
    /// old semantics. Used by `move-cj`.
    pub fn split_leaf(
        &mut self,
        path: TreePath,
        cj: OpId,
        t_succ: Option<NodeId>,
        f_succ: Option<NodeId>,
    ) {
        let node = self.get_mut(path).expect("split_leaf: position must exist");
        let Tree::Leaf { ops, .. } = node else {
            panic!("split_leaf: position {path} is not a leaf");
        };
        let ops = std::mem::take(ops);
        *node = Tree::Branch {
            ops,
            cj,
            on_true: Box::new(Tree::leaf(t_succ)),
            on_false: Box::new(Tree::leaf(f_succ)),
        };
    }

    /// Remove the branch at `path`, keeping only the `keep_true` side.
    /// The branch's ops are merged into the kept subtree's root position.
    /// Returns the removed conditional jump. Used when splitting a node for
    /// `move-cj` (the true/false residues each keep one side).
    pub fn remove_branch(&mut self, path: TreePath, keep_true: bool) -> OpId {
        let node = self.get_mut(path).expect("remove_branch: position must exist");
        let Tree::Branch { ops, cj, on_true, on_false } = node else {
            panic!("remove_branch: position {path} is not a branch");
        };
        let cj = *cj;
        let mut ops = std::mem::take(ops);
        let mut kept = std::mem::replace(
            if keep_true { on_true } else { on_false }.as_mut(),
            Tree::leaf(None),
        );
        ops.append(kept.ops_mut());
        *kept.ops_mut() = ops;
        *node = kept;
        cj
    }

    /// Replace every leaf successor equal to `from` with `to`.
    pub fn redirect(&mut self, from: NodeId, to: Option<NodeId>) -> usize {
        fn rec(t: &mut Tree, from: NodeId, to: Option<NodeId>) -> usize {
            match t {
                Tree::Leaf { succ, .. } => {
                    if *succ == Some(from) {
                        *succ = to;
                        1
                    } else {
                        0
                    }
                }
                Tree::Branch { on_true, on_false, .. } => {
                    rec(on_true, from, to) + rec(on_false, from, to)
                }
            }
        }
        rec(self, from, to)
    }

    /// Count of ordinary (non-cj) operations: the instruction's demand on
    /// the machine's functional units.
    pub fn op_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_, t| n += t.ops().len());
        n
    }

    /// Number of conditional jumps in the tree.
    pub fn cj_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_, t| {
            if matches!(t, Tree::Branch { .. }) {
                n += 1;
            }
        });
        n
    }

    /// True when the instruction holds neither operations nor jumps.
    pub fn is_empty(&self) -> bool {
        self.op_count() == 0 && self.cj_count() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(i: usize) -> OpId {
        OpId::new(i)
    }

    fn sample() -> Tree {
        // Branch(cj=op0) with op1 at root; true -> Leaf{[op2], n1}; false -> Leaf{[], n2}
        Tree::Branch {
            ops: vec![op(1)],
            cj: op(0),
            on_true: Box::new(Tree::Leaf { ops: vec![op(2)], succ: Some(NodeId::new(1)) }),
            on_false: Box::new(Tree::leaf(Some(NodeId::new(2)))),
        }
    }

    #[test]
    fn path_encoding() {
        let p = TreePath::ROOT.child(true).child(false);
        assert_eq!(p.len(), 2);
        assert!(p.decision(0));
        assert!(!p.decision(1));
        assert_eq!(p.to_string(), "TF");
        assert_eq!(p.parent().unwrap().to_string(), "T");
        assert!(TreePath::ROOT.is_prefix_of(p));
        assert!(TreePath::ROOT.child(true).is_prefix_of(p));
        assert!(!TreePath::ROOT.child(false).is_prefix_of(p));
        assert!(!p.is_prefix_of(TreePath::ROOT.child(true)));
    }

    #[test]
    fn walk_and_queries() {
        let t = sample();
        assert_eq!(t.op_count(), 2);
        assert_eq!(t.cj_count(), 1);
        assert_eq!(t.successors(), vec![NodeId::new(1), NodeId::new(2)]);
        assert_eq!(t.leaf_paths_to(NodeId::new(2)), vec![TreePath::ROOT.child(false)]);
        assert_eq!(t.position_of(op(2)), Some(TreePath::ROOT.child(true)));
        assert_eq!(t.position_of(op(0)), Some(TreePath::ROOT));
        let placed = t.placed_ops();
        assert_eq!(placed.len(), 3);
    }

    #[test]
    fn remove_and_insert() {
        let mut t = sample();
        let pos = t.remove_op(op(2)).unwrap();
        assert_eq!(pos, TreePath::ROOT.child(true));
        assert_eq!(t.op_count(), 1);
        t.insert_op(TreePath::ROOT.child(false), op(2));
        assert_eq!(t.position_of(op(2)), Some(TreePath::ROOT.child(false)));
    }

    #[test]
    fn split_leaf_preserves_ops_position() {
        let mut t = sample();
        let p = TreePath::ROOT.child(true);
        t.split_leaf(p, op(9), Some(NodeId::new(7)), Some(NodeId::new(8)));
        // old leaf ops now at the branch position => commit on both sides
        assert_eq!(t.get(p).unwrap().ops(), &[op(2)]);
        assert_eq!(t.cj_count(), 2);
        assert_eq!(t.successors(), vec![NodeId::new(7), NodeId::new(8), NodeId::new(2)]);
    }

    #[test]
    fn remove_branch_keeps_side_and_merges_ops() {
        let mut t = sample();
        let cj = t.remove_branch(TreePath::ROOT, true);
        assert_eq!(cj, op(0));
        assert_eq!(t.cj_count(), 0);
        // root ops (op1) merged with kept side's ops (op2)
        assert_eq!(t.op_count(), 2);
        assert_eq!(t.successors(), vec![NodeId::new(1)]);
    }

    #[test]
    fn redirect_edges() {
        let mut t = sample();
        assert_eq!(t.redirect(NodeId::new(2), Some(NodeId::new(5))), 1);
        assert_eq!(t.successors(), vec![NodeId::new(1), NodeId::new(5)]);
        assert_eq!(t.redirect(NodeId::new(99), None), 0);
    }

    #[test]
    fn empty_detection() {
        assert!(Tree::leaf(None).is_empty());
        assert!(!sample().is_empty());
    }
}
