//! Operations: the "conventional operations" of the paper's VLIW model
//! (`A = B op C`, `load`/`store`, `jump-cond C DEST`, register copies).

use crate::ids::{ArrayId, OpId, RegId};
use crate::value::{TypeError, Value};
use std::fmt;

/// An operand: either a virtual register or an immediate constant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Operand {
    /// Read a register at instruction entry.
    Reg(RegId),
    /// A literal value.
    Imm(Value),
}

impl Operand {
    /// The register read by this operand, if any.
    #[inline]
    pub fn reg(self) -> Option<RegId> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// True if this operand reads `r`.
    #[inline]
    pub fn reads(self, r: RegId) -> bool {
        self.reg() == Some(r)
    }
}

impl From<RegId> for Operand {
    fn from(r: RegId) -> Self {
        Operand::Reg(r)
    }
}

impl From<Value> for Operand {
    fn from(v: Value) -> Self {
        Operand::Imm(v)
    }
}

/// The kind of an operation.
///
/// All operations complete in a single cycle, as assumed in §2 of the paper
/// (the multi-cycle extension is Potasman's and out of scope).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// `f64` addition.
    Add,
    /// `f64` subtraction.
    Sub,
    /// `f64` multiplication.
    Mul,
    /// `f64` division.
    Div,
    /// `f64` minimum.
    Min,
    /// `f64` maximum.
    Max,
    /// `f64` negation.
    Neg,
    /// `f64` absolute value.
    Abs,
    /// `f64` square root.
    Sqrt,
    /// `i64` addition (induction variables, index math).
    IAdd,
    /// `i64` subtraction.
    ISub,
    /// `i64` multiplication.
    IMul,
    /// Less-than compare (both operands `i64` or both `f64`; result bool).
    CmpLt,
    /// Less-or-equal compare.
    CmpLe,
    /// Greater-than compare.
    CmpGt,
    /// Greater-or-equal compare.
    CmpGe,
    /// Equality compare.
    CmpEq,
    /// Inequality compare.
    CmpNe,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean negation.
    Not,
    /// Register copy or load-immediate. Copies are produced by renaming and
    /// "do not generate new values and do not prevent code motion" (§2);
    /// the percolation engine bypasses them.
    Copy,
    /// Memory read: `dest = array[src0 + disp]`.
    Load(ArrayId),
    /// Memory write: `array[src0 + disp] = src1`. No destination register.
    Store(ArrayId),
    /// Conditional jump on a boolean register; lives at the branch points of
    /// an instruction tree. No destination register.
    CondJump,
}

impl OpKind {
    /// Number of source operands this kind requires.
    pub fn arity(self) -> usize {
        use OpKind::*;
        match self {
            Add | Sub | Mul | Div | Min | Max | IAdd | ISub | IMul | CmpLt | CmpLe | CmpGt
            | CmpGe | CmpEq | CmpNe | And | Or => 2,
            Neg | Abs | Sqrt | Not | Copy | CondJump => 1,
            Load(_) => 1,
            Store(_) => 2,
        }
    }

    /// Whether operations of this kind define a destination register.
    pub fn has_dest(self) -> bool {
        !matches!(self, OpKind::Store(_) | OpKind::CondJump)
    }

    /// True for conditional jumps.
    #[inline]
    pub fn is_cj(self) -> bool {
        matches!(self, OpKind::CondJump)
    }

    /// True for stores (which can never be scheduled speculatively because a
    /// memory write cannot be renamed away).
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, OpKind::Store(_))
    }

    /// True for loads.
    #[inline]
    pub fn is_load(self) -> bool {
        matches!(self, OpKind::Load(_))
    }

    /// True if this kind touches memory.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpKind::Load(_) | OpKind::Store(_))
    }

    /// True if `a op b == b op a`, used by the node-local unifier.
    pub fn commutative(self) -> bool {
        use OpKind::*;
        matches!(self, Add | Mul | Min | Max | IAdd | IMul | CmpEq | CmpNe | And | Or)
    }

    /// Evaluate a pure (register-only) operation on concrete values.
    ///
    /// `Load`/`Store`/`CondJump`/`Copy` are not evaluated here: memory ops
    /// need the machine state and `Copy`/`CondJump` just forward `srcs[0]`.
    pub fn eval(self, srcs: &[Value]) -> Result<Value, TypeError> {
        use OpKind::*;
        debug_assert_eq!(srcs.len(), self.arity());
        Ok(match self {
            Add => Value::F(srcs[0].as_f()? + srcs[1].as_f()?),
            Sub => Value::F(srcs[0].as_f()? - srcs[1].as_f()?),
            Mul => Value::F(srcs[0].as_f()? * srcs[1].as_f()?),
            Div => Value::F(srcs[0].as_f()? / srcs[1].as_f()?),
            Min => Value::F(srcs[0].as_f()?.min(srcs[1].as_f()?)),
            Max => Value::F(srcs[0].as_f()?.max(srcs[1].as_f()?)),
            Neg => Value::F(-srcs[0].as_f()?),
            Abs => Value::F(srcs[0].as_f()?.abs()),
            Sqrt => Value::F(srcs[0].as_f()?.sqrt()),
            IAdd => Value::I(srcs[0].as_i()?.wrapping_add(srcs[1].as_i()?)),
            ISub => Value::I(srcs[0].as_i()?.wrapping_sub(srcs[1].as_i()?)),
            IMul => Value::I(srcs[0].as_i()?.wrapping_mul(srcs[1].as_i()?)),
            CmpLt | CmpLe | CmpGt | CmpGe | CmpEq | CmpNe => {
                let ord = match (srcs[0], srcs[1]) {
                    (Value::I(a), Value::I(b)) => a.partial_cmp(&b),
                    (a, b) => a.as_f()?.partial_cmp(&b.as_f()?),
                };
                let r = match self {
                    CmpLt => ord == Some(std::cmp::Ordering::Less),
                    CmpLe => {
                        matches!(ord, Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal))
                    }
                    CmpGt => ord == Some(std::cmp::Ordering::Greater),
                    CmpGe => {
                        matches!(ord, Some(std::cmp::Ordering::Greater | std::cmp::Ordering::Equal))
                    }
                    CmpEq => ord == Some(std::cmp::Ordering::Equal),
                    CmpNe => ord != Some(std::cmp::Ordering::Equal),
                    _ => unreachable!(),
                };
                Value::B(r)
            }
            And => Value::B(srcs[0].as_b()? && srcs[1].as_b()?),
            Or => Value::B(srcs[0].as_b()? || srcs[1].as_b()?),
            Not => Value::B(!srcs[0].as_b()?),
            Copy | Load(_) | Store(_) | CondJump => {
                unreachable!("eval() is only defined for pure arithmetic kinds")
            }
        })
    }

    /// Mnemonic used by the pretty printer.
    pub fn mnemonic(self) -> &'static str {
        use OpKind::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Div => "div",
            Min => "min",
            Max => "max",
            Neg => "neg",
            Abs => "abs",
            Sqrt => "sqrt",
            IAdd => "iadd",
            ISub => "isub",
            IMul => "imul",
            CmpLt => "clt",
            CmpLe => "cle",
            CmpGt => "cgt",
            CmpGe => "cge",
            CmpEq => "ceq",
            CmpNe => "cne",
            And => "and",
            Or => "or",
            Not => "not",
            Copy => "copy",
            Load(_) => "load",
            Store(_) => "store",
            CondJump => "cjump",
        }
    }
}

/// An operation instance stored in the [`crate::Graph`] arena.
#[derive(Clone, Debug)]
pub struct Operation {
    /// What this operation computes.
    pub kind: OpKind,
    /// Destination register; `None` for stores and conditional jumps.
    pub dest: Option<RegId>,
    /// Source operands (fetched at instruction entry under VLIW semantics).
    pub src: Vec<Operand>,
    /// Constant displacement added to `src[0]` for `Load`/`Store` addressing.
    /// Induction simplification folds unwound `k+i` chains into this field,
    /// which is what makes cross-iteration memory disambiguation decidable.
    pub disp: i64,
    /// Iteration tag for Perfect Pipelining (0 outside pipelined regions).
    pub iter: u32,
    /// The pre-scheduling ancestor of this op. Self for original operations;
    /// duplication (node splitting, move-cj residues) preserves it. Memory
    /// dependences and pattern detection are keyed by this id so they
    /// survive code motion.
    pub orig: OpId,
    /// Optional debug label (the paper's `a`–`g` example names).
    pub name: Option<Box<str>>,
}

impl Operation {
    /// Create an operation; `orig` is patched by the graph when the op is
    /// first interned.
    pub fn new(kind: OpKind, dest: Option<RegId>, src: Vec<Operand>) -> Self {
        debug_assert_eq!(src.len(), kind.arity(), "bad arity for {kind:?}");
        debug_assert_eq!(dest.is_some(), kind.has_dest(), "bad dest for {kind:?}");
        Operation {
            kind,
            dest,
            src,
            disp: 0,
            iter: 0,
            orig: OpId::new(u32::MAX as usize),
            name: None,
        }
    }

    /// All registers read by this operation.
    pub fn reads(&self) -> impl Iterator<Item = RegId> + '_ {
        self.src.iter().filter_map(|o| o.reg())
    }

    /// True if the operation reads register `r`.
    pub fn reads_reg(&self, r: RegId) -> bool {
        self.src.iter().any(|o| o.reads(r))
    }

    /// True if the operation writes register `r`.
    pub fn writes_reg(&self, r: RegId) -> bool {
        self.dest == Some(r)
    }

    /// A short label for tableau printing: the debug name if present,
    /// otherwise the mnemonic.
    pub fn label(&self) -> &str {
        self.name.as_deref().unwrap_or_else(|| self.kind.mnemonic())
    }

    /// True if this is a register-to-register copy (renaming artifact).
    pub fn is_reg_copy(&self) -> bool {
        self.kind == OpKind::Copy && matches!(self.src[0], Operand::Reg(_))
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(d) = self.dest {
            write!(f, "{d} = ")?;
        }
        write!(f, "{}", self.kind.mnemonic())?;
        if let OpKind::Load(a) | OpKind::Store(a) = self.kind {
            write!(f, " {a}")?;
        }
        for (i, s) in self.src.iter().enumerate() {
            let sep = if i == 0 { ' ' } else { ',' };
            match s {
                Operand::Reg(r) => write!(f, "{sep}{r}")?,
                Operand::Imm(v) => write!(f, "{sep}#{v}")?,
            }
        }
        if self.kind.is_mem() && self.disp != 0 {
            write!(f, "+{}", self.disp)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_dest_invariants() {
        assert_eq!(OpKind::Add.arity(), 2);
        assert_eq!(OpKind::Not.arity(), 1);
        assert_eq!(OpKind::Store(ArrayId::new(0)).arity(), 2);
        assert!(!OpKind::Store(ArrayId::new(0)).has_dest());
        assert!(!OpKind::CondJump.has_dest());
        assert!(OpKind::Load(ArrayId::new(0)).has_dest());
    }

    #[test]
    fn eval_arithmetic() {
        assert_eq!(OpKind::Add.eval(&[Value::F(1.0), Value::F(2.0)]), Ok(Value::F(3.0)));
        assert_eq!(OpKind::IMul.eval(&[Value::I(3), Value::I(4)]), Ok(Value::I(12)));
        assert_eq!(OpKind::CmpLt.eval(&[Value::I(3), Value::I(4)]), Ok(Value::B(true)));
        assert_eq!(OpKind::CmpGe.eval(&[Value::F(3.0), Value::F(4.0)]), Ok(Value::B(false)));
        assert_eq!(OpKind::And.eval(&[Value::B(true), Value::B(false)]), Ok(Value::B(false)));
    }

    #[test]
    fn eval_type_errors() {
        assert!(OpKind::Add.eval(&[Value::I(1), Value::F(2.0)]).is_err());
        assert!(OpKind::Not.eval(&[Value::F(1.0)]).is_err());
    }

    #[test]
    fn mixed_compare_requires_floats_or_ints() {
        // i64/i64 compares exactly; mixed promotes via as_f and errors on ints.
        assert_eq!(OpKind::CmpEq.eval(&[Value::I(2), Value::I(2)]), Ok(Value::B(true)));
        assert!(OpKind::CmpEq.eval(&[Value::I(2), Value::F(2.0)]).is_err());
    }

    #[test]
    fn display_formats() {
        let op = Operation::new(
            OpKind::Add,
            Some(RegId::new(3)),
            vec![Operand::Reg(RegId::new(1)), Operand::Imm(Value::F(2.0))],
        );
        assert_eq!(op.to_string(), "r3 = add r1,#2");
        let mut ld = Operation::new(
            OpKind::Load(ArrayId::new(0)),
            Some(RegId::new(5)),
            vec![Operand::Reg(RegId::new(2))],
        );
        ld.disp = 4;
        assert_eq!(ld.to_string(), "r5 = load @0 r2+4");
    }

    #[test]
    fn reads_and_writes() {
        let op = Operation::new(
            OpKind::Sub,
            Some(RegId::new(9)),
            vec![Operand::Reg(RegId::new(1)), Operand::Reg(RegId::new(1))],
        );
        assert!(op.reads_reg(RegId::new(1)));
        assert!(!op.reads_reg(RegId::new(9)));
        assert!(op.writes_reg(RegId::new(9)));
        assert_eq!(op.reads().count(), 2);
    }
}
