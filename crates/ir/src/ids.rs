//! Newtype index handles for the IR arenas.
//!
//! Everything in the IR is stored in flat `Vec` arenas and referenced by
//! these copyable `u32` ids (no `Rc`/`RefCell` graphs), following the
//! index-based graph idiom for performance-sensitive Rust.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            #[inline]
            pub fn new(raw: usize) -> Self {
                debug_assert!(raw <= u32::MAX as usize);
                Self(raw as u32)
            }

            /// The raw index, for arena addressing.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// A virtual register. The register file is unbounded (the paper assumes
    /// "a free register is available" whenever renaming is required).
    RegId,
    "r"
);
id_newtype!(
    /// A memory array (the simulator gives each array its own address space,
    /// which is how the paper's word-level dependence reasoning behaves).
    ArrayId,
    "@"
);
id_newtype!(
    /// A node of the program graph, i.e. one VLIW instruction.
    NodeId,
    "n"
);
id_newtype!(
    /// An operation instance. Stable across code motion; duplication (node
    /// splitting) allocates a fresh `OpId` that shares the original's
    /// [`crate::Operation::orig`] ancestor id.
    OpId,
    "op"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let r = RegId::new(7);
        assert_eq!(r.index(), 7);
        assert_eq!(format!("{r}"), "r7");
        assert_eq!(format!("{:?}", NodeId::new(3)), "n3");
        assert_eq!(format!("{}", ArrayId::new(1)), "@1");
        assert_eq!(format!("{}", OpId::new(12)), "op12");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(OpId::new(1) < OpId::new(2));
        assert_eq!(NodeId::new(4), NodeId::new(4));
    }
}
