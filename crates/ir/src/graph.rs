//! The program graph: a directed graph of VLIW instructions (§2).

use crate::ids::{ArrayId, NodeId, OpId, RegId};
use crate::op::Operation;
#[cfg(test)]
use crate::op::{OpKind, Operand};
use crate::tree::{Tree, TreePath};
use std::collections::HashMap;
use std::fmt;

/// Metadata for one memory array.
#[derive(Clone, Debug)]
pub struct ArrayInfo {
    /// Debug name, e.g. `"x"`.
    pub name: Box<str>,
    /// Number of elements the simulator allocates.
    pub len: usize,
    /// Element type (see [`crate::ElemKind`] on speculative loads).
    pub elem: crate::value::ElemKind,
}

/// The single innermost loop a kernel builder produced, consumed by the
/// Perfect Pipelining unwinder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LoopInfo {
    /// First node of the loop body (target of the back edge).
    pub head: NodeId,
    /// Node containing the loop-control conditional jump (source of the back
    /// edge).
    pub latch: NodeId,
    /// The node preceding the loop (its successor is `head`).
    pub preheader: NodeId,
    /// First node after the loop (the latch's exit successor).
    pub exit: NodeId,
}

/// One VLIW instruction: a tree of conditional jumps with operations
/// attached to tree positions.
#[derive(Clone, Debug)]
pub struct Instruction {
    /// The branch tree (a plain `Leaf` for branch-free instructions).
    pub tree: Tree,
}

/// Cached per-node derived data, rebuilt whenever the node's tree is
/// edited. Because all structural mutation goes through [`Graph`]
/// methods, the cache can never go stale; it turns the scheduler's
/// hottest queries (`node_ops`, `successors`, `node_op_count`) from
/// allocating tree walks into slice reads.
#[derive(Clone, Debug)]
struct NodeCache {
    /// `(position, op)` pairs in pre-order (cjs at their branch position).
    ops: Vec<(TreePath, OpId)>,
    /// Leaf positions with their successors, in pre-order.
    leaves: Vec<(TreePath, Option<NodeId>)>,
    /// Successors with duplicates (leaf order).
    succs: Vec<NodeId>,
    /// Sorted, deduplicated successors.
    uniq: Vec<NodeId>,
    /// Ordinary (non-cj) op count.
    op_count: usize,
    /// Conditional-jump count.
    cj_count: usize,
    /// [`Graph::version`] at the last content change of this node (tree
    /// edit or operand rewrite of a placed op) — per-node dirty bit for
    /// incremental analyses.
    stamp: u64,
}

impl NodeCache {
    fn build(tree: &Tree, stamp: u64) -> NodeCache {
        let ops = tree.placed_ops();
        let leaves = tree.leaves();
        let succs: Vec<NodeId> = leaves.iter().filter_map(|&(_, s)| s).collect();
        let mut uniq = succs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let op_count = tree.op_count();
        let cj_count = tree.cj_count();
        NodeCache { ops, leaves, succs, uniq, op_count, cj_count, stamp }
    }
}

/// A whole program: instruction nodes, an operation arena, register and
/// array books, and the designated entry node.
///
/// All structural mutation goes through `Graph` methods so the op→node
/// placement map stays consistent; transformation code never edits trees
/// behind the graph's back.
#[derive(Clone, Debug)]
pub struct Graph {
    ops: Vec<Operation>,
    nodes: Vec<Option<Instruction>>,
    caches: Vec<Option<NodeCache>>,
    version: u64,
    edge_version: u64,
    placed: Vec<Option<NodeId>>,
    /// Entry instruction.
    pub entry: NodeId,
    next_reg: u32,
    reg_names: Vec<Option<Box<str>>>,
    arrays: Vec<ArrayInfo>,
    /// Registers observable after the program exits (the equivalence checker
    /// compares these plus all memory).
    pub live_out: Vec<RegId>,
    /// The innermost loop, when the program was built as a loop kernel.
    pub loop_info: Option<LoopInfo>,
}

/// Structural consistency failure reported by [`Graph::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateError(pub String);

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid graph: {}", self.0)
    }
}

impl std::error::Error for ValidateError {}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    /// An empty graph with a single empty entry node.
    pub fn new() -> Self {
        let mut g = Graph {
            ops: Vec::new(),
            nodes: Vec::new(),
            caches: Vec::new(),
            version: 0,
            edge_version: 0,
            placed: Vec::new(),
            entry: NodeId::new(0),
            next_reg: 0,
            reg_names: Vec::new(),
            arrays: Vec::new(),
            live_out: Vec::new(),
            loop_info: None,
        };
        g.entry = g.add_node(Tree::leaf(None));
        g
    }

    // ------------------------------------------------------------------
    // Registers and arrays
    // ------------------------------------------------------------------

    /// Monotonic mutation stamp: bumped on *every* change (ops, trees,
    /// edges, registers). Analyses cache against it.
    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Monotonic control-flow stamp: bumped only when an edge of the
    /// graph changes (split, branch removal, node deletion, redirect).
    /// Reachability-shaped caches key on this — plain op hops between
    /// existing nodes leave it untouched.
    #[inline]
    pub fn edge_version(&self) -> u64 {
        self.edge_version
    }

    /// [`Graph::version`] at the last content change of node `n` (tree
    /// edit, or operand rewrite of an op placed in it).
    #[inline]
    pub fn node_stamp(&self, n: NodeId) -> u64 {
        self.caches[n.index()].as_ref().expect("node deleted").stamp
    }

    /// Rebuild the derived-data cache of `n` after a tree edit.
    fn refresh_cache(&mut self, n: NodeId) {
        self.version += 1;
        self.caches[n.index()] =
            self.nodes[n.index()].as_ref().map(|i| NodeCache::build(&i.tree, self.version));
    }

    /// Exclusive upper bound on node indices ever allocated (deleted slots
    /// included) — the capacity for dense node-indexed side tables.
    #[inline]
    pub fn node_index_bound(&self) -> usize {
        self.nodes.len()
    }

    /// Allocate a fresh virtual register.
    pub fn fresh_reg(&mut self) -> RegId {
        self.version += 1;
        let r = RegId(self.next_reg);
        self.next_reg += 1;
        self.reg_names.push(None);
        r
    }

    /// Allocate a fresh named register (for readable dumps).
    pub fn named_reg(&mut self, name: &str) -> RegId {
        let r = self.fresh_reg();
        self.reg_names[r.index()] = Some(name.into());
        r
    }

    /// Number of registers allocated so far.
    pub fn reg_count(&self) -> usize {
        self.next_reg as usize
    }

    /// Debug name of a register, if one was given.
    pub fn reg_name(&self, r: RegId) -> Option<&str> {
        self.reg_names.get(r.index()).and_then(|n| n.as_deref())
    }

    /// Declare an `f64` memory array of `len` elements.
    pub fn array(&mut self, name: &str, len: usize) -> ArrayId {
        self.array_typed(name, len, crate::value::ElemKind::F)
    }

    /// Declare a memory array with an explicit element type.
    pub fn array_typed(&mut self, name: &str, len: usize, elem: crate::value::ElemKind) -> ArrayId {
        self.arrays.push(ArrayInfo { name: name.into(), len, elem });
        ArrayId::new(self.arrays.len() - 1)
    }

    /// All declared arrays.
    pub fn arrays(&self) -> &[ArrayInfo] {
        &self.arrays
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    /// Intern a new operation (not yet placed in any node). Its `orig`
    /// ancestor is itself.
    pub fn add_op(&mut self, mut op: Operation) -> OpId {
        self.version += 1;
        let id = OpId::new(self.ops.len());
        op.orig = id;
        self.ops.push(op);
        self.placed.push(None);
        id
    }

    /// Intern a duplicate of `op` (same `orig` ancestor), unplaced.
    pub fn dup_op(&mut self, op: OpId) -> OpId {
        self.version += 1;
        let cloned = self.ops[op.index()].clone();
        let id = OpId::new(self.ops.len());
        self.ops.push(cloned);
        self.placed.push(None);
        id
    }

    /// The operation behind an id.
    #[inline]
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// Mutable access to an operation. Callers must not change its identity
    /// assumptions (kind/iter/orig) while it is placed; operand rewrites
    /// (copy bypassing, renaming) are fine.
    #[inline]
    pub fn op_mut(&mut self, id: OpId) -> &mut Operation {
        self.version += 1;
        // An operand rewrite changes the holding node's read set; stamp it
        // so per-node analysis caches (liveness use/def) see the change.
        if let Some(n) = self.placed[id.index()] {
            if let Some(c) = self.caches[n.index()].as_mut() {
                c.stamp = self.version;
            }
        }
        &mut self.ops[id.index()]
    }

    /// Number of interned operations (including unplaced/dead ones).
    pub fn op_table_len(&self) -> usize {
        self.ops.len()
    }

    /// Node currently holding `op`, if it is placed.
    #[inline]
    pub fn placement(&self, op: OpId) -> Option<NodeId> {
        self.placed[op.index()]
    }

    // ------------------------------------------------------------------
    // Nodes
    // ------------------------------------------------------------------

    /// Add an instruction node built from `tree`. All ops referenced by the
    /// tree are marked as placed here.
    pub fn add_node(&mut self, tree: Tree) -> NodeId {
        self.version += 1;
        self.edge_version += 1;
        let id = NodeId::new(self.nodes.len());
        for (_, op) in tree.placed_ops() {
            debug_assert!(self.placed[op.index()].is_none(), "{op} already placed");
            self.placed[op.index()] = Some(id);
        }
        self.caches.push(Some(NodeCache::build(&tree, self.version)));
        self.nodes.push(Some(Instruction { tree }));
        id
    }

    /// The instruction at `id`. Panics on deleted nodes.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Instruction {
        self.nodes[id.index()].as_ref().expect("node deleted")
    }

    /// True if the node still exists.
    #[inline]
    pub fn node_exists(&self, id: NodeId) -> bool {
        self.nodes.get(id.index()).is_some_and(|n| n.is_some())
    }

    /// Ids of all live nodes.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().enumerate().filter_map(|(i, n)| n.as_ref().map(|_| NodeId::new(i)))
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    #[inline]
    fn cache(&self, n: NodeId) -> &NodeCache {
        self.caches[n.index()].as_ref().expect("node deleted")
    }

    /// Successor instructions of `n` (duplicates preserved).
    #[inline]
    pub fn successors(&self, n: NodeId) -> &[NodeId] {
        &self.cache(n).succs
    }

    /// Unique successor instructions of `n` (sorted).
    #[inline]
    pub fn unique_successors(&self, n: NodeId) -> &[NodeId] {
        &self.cache(n).uniq
    }

    /// Leaf positions of `n` with their successors, in pre-order.
    #[inline]
    pub fn node_leaves(&self, n: NodeId) -> &[(TreePath, Option<NodeId>)] {
        &self.cache(n).leaves
    }

    /// Predecessor map for the whole graph (recomputed on demand; graphs in
    /// this system are hundreds of nodes, and scheduling recomputes only at
    /// well-defined points).
    pub fn predecessors(&self) -> HashMap<NodeId, Vec<NodeId>> {
        let mut preds: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for n in self.node_ids() {
            for &s in self.unique_successors(n) {
                preds.entry(s).or_default().push(n);
            }
        }
        preds
    }

    // ------------------------------------------------------------------
    // Structural edits (keep `placed` consistent)
    // ------------------------------------------------------------------

    /// Remove `op` from node `n` (it becomes unplaced). Returns its old
    /// tree position.
    pub fn remove_op_from(&mut self, n: NodeId, op: OpId) -> TreePath {
        let instr = self.nodes[n.index()].as_mut().expect("node deleted");
        let pos = instr.tree.remove_op(op).expect("op not in node");
        self.placed[op.index()] = None;
        self.refresh_cache(n);
        pos
    }

    /// Attach the unplaced `op` to node `n` at tree position `path`.
    pub fn insert_op_at(&mut self, n: NodeId, path: TreePath, op: OpId) {
        debug_assert!(self.placed[op.index()].is_none(), "{op} already placed");
        let instr = self.nodes[n.index()].as_mut().expect("node deleted");
        instr.tree.insert_op(path, op);
        self.placed[op.index()] = Some(n);
        self.refresh_cache(n);
    }

    /// Split the leaf of `n` at `path` into a branch on the unplaced cj
    /// `cj`, with fresh leaves to `t_succ` / `f_succ`.
    pub fn split_leaf(
        &mut self,
        n: NodeId,
        path: TreePath,
        cj: OpId,
        t_succ: Option<NodeId>,
        f_succ: Option<NodeId>,
    ) {
        debug_assert!(self.placed[cj.index()].is_none(), "{cj} already placed");
        let instr = self.nodes[n.index()].as_mut().expect("node deleted");
        instr.tree.split_leaf(path, cj, t_succ, f_succ);
        self.placed[cj.index()] = Some(n);
        self.edge_version += 1;
        self.refresh_cache(n);
    }

    /// Remove the root-or-interior branch of `n` at `path`, keeping one
    /// side. The removed cj becomes unplaced.
    pub fn remove_branch(&mut self, n: NodeId, path: TreePath, keep_true: bool) -> OpId {
        let instr = self.nodes[n.index()].as_mut().expect("node deleted");
        let cj = instr.tree.remove_branch(path, keep_true);
        self.placed[cj.index()] = None;
        // Ops from the discarded side are gone from the tree; unplace them.
        self.resync_node_placements(n);
        self.edge_version += 1;
        self.refresh_cache(n);
        cj
    }

    /// Recompute placements for a node whose tree was restructured: ops in
    /// the tree are placed here, previously-placed ops that vanished become
    /// unplaced. (Quadratic in node size; node sizes are machine widths.)
    fn resync_node_placements(&mut self, n: NodeId) {
        let in_tree: Vec<OpId> = self.nodes[n.index()]
            .as_ref()
            .expect("node deleted")
            .tree
            .placed_ops()
            .into_iter()
            .map(|(_, o)| o)
            .collect();
        for (i, p) in self.placed.iter_mut().enumerate() {
            if *p == Some(n) && !in_tree.contains(&OpId::new(i)) {
                *p = None;
            }
        }
        for o in in_tree {
            self.placed[o.index()] = Some(n);
        }
    }

    /// Deep-copy node `n`: every op is duplicated via [`Graph::dup_op`]
    /// (preserving `orig` ancestry) and a new node is created with the same
    /// tree shape and successors. Used for node splitting when a moved-from
    /// node has other predecessors.
    pub fn clone_node(&mut self, n: NodeId) -> NodeId {
        fn clone_tree(g: &mut Graph, t: &Tree) -> Tree {
            match t {
                Tree::Leaf { ops, succ } => {
                    Tree::Leaf { ops: ops.iter().map(|&o| g.dup_op(o)).collect(), succ: *succ }
                }
                Tree::Branch { ops, cj, on_true, on_false } => {
                    let ops = ops.iter().map(|&o| g.dup_op(o)).collect();
                    let cj = g.dup_op(*cj);
                    let on_true = Box::new(clone_tree(g, on_true));
                    let on_false = Box::new(clone_tree(g, on_false));
                    Tree::Branch { ops, cj, on_true, on_false }
                }
            }
        }
        let tree = self.nodes[n.index()].as_ref().expect("node deleted").tree.clone();
        let tree = clone_tree(self, &tree);
        self.add_node(tree)
    }

    /// Delete an *empty* pass-through node, rewiring every predecessor edge
    /// to its unique successor. Panics if the node still holds operations or
    /// jumps, or is the entry.
    pub fn delete_empty_node(&mut self, n: NodeId) {
        assert_ne!(n, self.entry, "cannot delete the entry node");
        let instr = self.nodes[n.index()].as_ref().expect("node deleted");
        assert!(instr.tree.is_empty(), "delete_empty_node: {n} is not empty");
        let succ = match &instr.tree {
            Tree::Leaf { succ, .. } => *succ,
            Tree::Branch { .. } => unreachable!("empty implies leaf"),
        };
        assert_ne!(succ, Some(n), "cannot delete a self-looping node");
        for i in 0..self.nodes.len() {
            if i != n.index() {
                if let Some(instr) = self.nodes[i].as_mut() {
                    if instr.tree.redirect(n, succ) > 0 {
                        self.refresh_cache(NodeId::new(i));
                    }
                }
            }
        }
        if self.loop_info.is_some_and(|li| li.head == n || li.latch == n || li.exit == n) {
            // Keep loop metadata meaningful: follow the deleted node.
            let li = self.loop_info.as_mut().expect("checked");
            if let Some(s) = succ {
                if li.head == n {
                    li.head = s;
                }
                if li.exit == n {
                    li.exit = s;
                }
            }
            if li.latch == n {
                // The latch lost its cj before becoming empty; leave as-is.
            }
        }
        self.nodes[n.index()] = None;
        self.caches[n.index()] = None;
        self.version += 1;
        self.edge_version += 1;
    }

    /// Set the successor of the leaf at `path` in node `n`.
    pub fn set_succ(&mut self, n: NodeId, path: TreePath, succ: Option<NodeId>) {
        let instr = self.nodes[n.index()].as_mut().expect("node deleted");
        match instr.tree.get_mut(path) {
            Some(Tree::Leaf { succ: s, .. }) => *s = succ,
            _ => panic!("set_succ: {n}@{path} is not a leaf"),
        }
        self.edge_version += 1;
        self.refresh_cache(n);
    }

    /// Replace every edge `X -> from` in the graph with `X -> to`.
    pub fn redirect_all(&mut self, from: NodeId, to: Option<NodeId>) -> usize {
        let mut n = 0;
        for i in 0..self.nodes.len() {
            if let Some(instr) = self.nodes[i].as_mut() {
                let hits = instr.tree.redirect(from, to);
                if hits > 0 {
                    self.refresh_cache(NodeId::new(i));
                }
                n += hits;
            }
        }
        self.edge_version += 1;
        n
    }

    // ------------------------------------------------------------------
    // Queries used by schedulers
    // ------------------------------------------------------------------

    /// Ordinary-operation count of node `n` (its functional-unit demand).
    #[inline]
    pub fn node_op_count(&self, n: NodeId) -> usize {
        self.cache(n).op_count
    }

    /// Conditional-jump count of node `n`.
    #[inline]
    pub fn node_cj_count(&self, n: NodeId) -> usize {
        self.cache(n).cj_count
    }

    /// All ops placed in `n` with their tree positions (cjs included),
    /// in pre-order.
    #[inline]
    pub fn node_ops(&self, n: NodeId) -> &[(TreePath, OpId)] {
        &self.cache(n).ops
    }

    /// Nodes reachable from `entry`, in a stable breadth-first order.
    pub fn reachable(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        let mut out = Vec::new();
        seen[self.entry.index()] = true;
        queue.push_back(self.entry);
        while let Some(n) = queue.pop_front() {
            out.push(n);
            for &s in self.unique_successors(n) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    queue.push_back(s);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Check structural invariants; transformation tests call this after
    /// every edit.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let err = |m: String| Err(ValidateError(m));
        if !self.node_exists(self.entry) {
            return err("entry node deleted".into());
        }
        let mut seen_ops: HashMap<OpId, NodeId> = HashMap::new();
        for n in self.node_ids() {
            let instr = self.node(n);
            for (_, op) in instr.tree.placed_ops() {
                if op.index() >= self.ops.len() {
                    return err(format!("{n} references unknown {op}"));
                }
                if let Some(prev) = seen_ops.insert(op, n) {
                    return err(format!("{op} placed in both {prev} and {n}"));
                }
                if self.placed[op.index()] != Some(n) {
                    return err(format!(
                        "{op} in {n} but placement map says {:?}",
                        self.placed[op.index()]
                    ));
                }
            }
            // cj fields must be CondJump ops; op arity/dest sanity.
            let mut bad: Option<String> = None;
            instr.tree.walk(&mut |p, t| {
                if bad.is_some() {
                    return;
                }
                if let Tree::Branch { cj, .. } = t {
                    if !self.op(*cj).kind.is_cj() {
                        bad = Some(format!("{n}@{p}: branch op {cj} is not a cjump"));
                    }
                }
                for &o in t.ops() {
                    let op = self.op(o);
                    if op.kind.is_cj() {
                        bad = Some(format!("{n}@{p}: cjump {o} attached as ordinary op"));
                    } else if op.src.len() != op.kind.arity() {
                        bad = Some(format!("{n}@{p}: {o} arity mismatch"));
                    } else if op.dest.is_some() != op.kind.has_dest() {
                        bad = Some(format!("{n}@{p}: {o} dest mismatch"));
                    }
                }
            });
            if let Some(m) = bad {
                return err(m);
            }
            // Successors exist.
            for s in instr.tree.successors() {
                if !self.node_exists(s) {
                    return err(format!("{n} has edge to deleted node {s}"));
                }
            }
            // No double register write along any single path.
            for (leaf, _) in instr.tree.leaves() {
                let mut written: Vec<RegId> = Vec::new();
                let mut dup: Option<String> = None;
                instr.tree.walk(&mut |p, t| {
                    if dup.is_some() || !p.is_prefix_of(leaf) {
                        return;
                    }
                    for &o in t.ops() {
                        if let Some(d) = self.op(o).dest {
                            if written.contains(&d) {
                                dup =
                                    Some(format!("{n}: register {d} written twice on path {leaf}"));
                            }
                            written.push(d);
                        }
                    }
                });
                if let Some(m) = dup {
                    return err(m);
                }
            }
        }
        // Placement map entries must point at nodes that really hold the op.
        for (i, p) in self.placed.iter().enumerate() {
            if let Some(n) = p {
                if !self.node_exists(*n) {
                    return err(format!("op{i} placed in deleted node {n}"));
                }
                if seen_ops.get(&OpId::new(i)) != Some(n) {
                    return err(format!("op{i} placement map stale ({n})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Operation;
    use crate::value::Value;

    fn simple_op(g: &mut Graph, dest: RegId) -> OpId {
        g.add_op(Operation::new(OpKind::Copy, Some(dest), vec![Operand::Imm(Value::I(1))]))
    }

    #[test]
    fn build_chain_and_validate() {
        let mut g = Graph::new();
        let r = g.fresh_reg();
        let op1 = simple_op(&mut g, r);
        let n1 = g.add_node(Tree::Leaf { ops: vec![op1], succ: None });
        // entry -> n1
        let entry = g.entry;
        g.set_succ(entry, TreePath::ROOT, Some(n1));
        g.validate().unwrap();
        assert_eq!(g.successors(entry), [n1]);
        assert_eq!(g.placement(op1), Some(n1));
        assert_eq!(g.reachable(), vec![entry, n1]);
    }

    #[test]
    fn move_between_nodes_keeps_placement() {
        let mut g = Graph::new();
        let r = g.fresh_reg();
        let op1 = simple_op(&mut g, r);
        let n2 = g.add_node(Tree::leaf(None));
        let n1 = g.add_node(Tree::Leaf { ops: vec![op1], succ: Some(n2) });
        g.set_succ(g.entry, TreePath::ROOT, Some(n1));
        g.validate().unwrap();
        let pos = g.remove_op_from(n1, op1);
        assert_eq!(pos, TreePath::ROOT);
        assert_eq!(g.placement(op1), None);
        g.insert_op_at(n2, TreePath::ROOT, op1);
        assert_eq!(g.placement(op1), Some(n2));
        g.validate().unwrap();
    }

    #[test]
    fn clone_node_duplicates_ops_with_ancestry() {
        let mut g = Graph::new();
        let r = g.fresh_reg();
        let op1 = simple_op(&mut g, r);
        let n1 = g.add_node(Tree::Leaf { ops: vec![op1], succ: None });
        let n2 = g.clone_node(n1);
        g.validate().unwrap();
        let ops2 = g.node_ops(n2);
        assert_eq!(ops2.len(), 1);
        let dup = ops2[0].1;
        assert_ne!(dup, op1);
        assert_eq!(g.op(dup).orig, op1);
        assert_eq!(g.op(dup).dest, Some(r));
    }

    #[test]
    fn delete_empty_node_rewires() {
        let mut g = Graph::new();
        let n3 = g.add_node(Tree::leaf(None));
        let n2 = g.add_node(Tree::leaf(Some(n3)));
        g.set_succ(g.entry, TreePath::ROOT, Some(n2));
        g.delete_empty_node(n2);
        g.validate().unwrap();
        assert_eq!(g.successors(g.entry), [n3]);
        assert!(!g.node_exists(n2));
    }

    #[test]
    fn validate_rejects_double_placement() {
        let mut g = Graph::new();
        let r = g.fresh_reg();
        let op1 = simple_op(&mut g, r);
        let _n1 = g.add_node(Tree::Leaf { ops: vec![op1], succ: None });
        // Manually corrupt: same op in another node.
        let bad = Instruction { tree: Tree::Leaf { ops: vec![op1], succ: None } };
        g.caches.push(Some(NodeCache::build(&bad.tree, 0)));
        g.nodes.push(Some(bad));
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_double_write_on_path() {
        let mut g = Graph::new();
        let r = g.fresh_reg();
        let a = simple_op(&mut g, r);
        let b = simple_op(&mut g, r);
        let _n = g.add_node(Tree::Leaf { ops: vec![a, b], succ: None });
        let e = g.validate().unwrap_err();
        assert!(e.0.contains("written twice"), "{e}");
    }

    #[test]
    fn predecessors_and_counts() {
        let mut g = Graph::new();
        let r = g.fresh_reg();
        let c = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(r)]));
        let n2 = g.add_node(Tree::leaf(None));
        let n3 = g.add_node(Tree::leaf(None));
        let n1 = g.add_node(Tree::Branch {
            ops: vec![],
            cj: c,
            on_true: Box::new(Tree::leaf(Some(n2))),
            on_false: Box::new(Tree::leaf(Some(n3))),
        });
        g.set_succ(g.entry, TreePath::ROOT, Some(n1));
        let preds = g.predecessors();
        assert_eq!(preds[&n2], vec![n1]);
        assert_eq!(preds[&n1], vec![g.entry]);
        assert_eq!(g.node_cj_count(n1), 1);
        assert_eq!(g.node_op_count(n1), 0);
    }
}
