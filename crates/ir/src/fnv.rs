//! The workspace's content hasher: 64-bit FNV-1a.
//!
//! One implementation, shared by every fingerprint domain — machine
//! descriptions (`grip-machine`), program graphs and cache keys
//! (`grip-service`) — so the constants and feeding conventions cannot
//! silently diverge.

/// 64-bit FNV-1a running hash.
#[derive(Clone, Copy, Debug)]
pub struct Fnv(u64);

impl Fnv {
    /// Start at the FNV-1a offset basis.
    pub fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Feed raw bytes.
    pub fn bytes(&mut self, bs: &[u8]) -> &mut Fnv {
        for &b in bs {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Feed one word as 8 little-endian bytes (platform-independent).
    pub fn word(&mut self, w: u64) -> &mut Fnv {
        self.bytes(&w.to_le_bytes())
    }

    /// Feed a string, length-prefixed so concatenations cannot collide by
    /// sliding bytes across a boundary.
    pub fn str(&mut self, s: &str) -> &mut Fnv {
        self.word(s.len() as u64).bytes(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_fnv1a_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(Fnv::new().finish(), 0xcbf2_9ce4_8422_2325, "offset basis");
        assert_eq!(Fnv::new().bytes(b"a").finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Fnv::new().bytes(b"foobar").finish(), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_separates_string_boundaries() {
        let ab_c = Fnv::new().str("ab").str("c").finish();
        let a_bc = Fnv::new().str("a").str("bc").finish();
        assert_ne!(ab_c, a_bc);
    }
}
