//! # grip-bounds — static optimality-bound prover
//!
//! Proves lower bounds on schedule length by pure dataflow/graph analysis —
//! never execution. Three analyses compose into one [`BoundCertificate`]:
//!
//! * **ResMII** — the class-aware resource bound: per-FU-class op counts
//!   against the machine's slot caps, total width, and conditional-jump
//!   tree budget. Pigeonhole: every row must respect the issue template,
//!   so `ceil(count / cap)` rows are unavoidable.
//! * **RecMII** — the recurrence bound: a register read upward-exposed in
//!   the steady window consumes the *previous* traversal's value, so the
//!   traversal period must cover the latency-weighted dependence path
//!   from that read down to the defining op, plus the definition's own
//!   latency (the back-edge leg of the dependence cycle).
//! * **Critical path** — the whole-window longest latency-weighted
//!   dependence path; no schedule can finish a traversal before its
//!   slowest chain resolves.
//!
//! The certificate is computed on the **final** steady rows (after DCE,
//! renaming, and hazard resolution), not the prepared window: dead ops
//! would overcount resources, and renaming invalidates build-time register
//! edges — so register dependences are re-derived syntactically with the
//! same last-definition scan the auditor uses, while memory dependences
//! are consulted through [`Ddg`] `orig` ids, which survive duplication.
//!
//! Division of labor with `grip-audit`: the auditor proves a schedule is
//! *correct* (dependences, latencies, templates, value integrity); this
//! crate proves how *good* a correct schedule can possibly get, and
//! certifies the gap between achieved and provable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use grip_analysis::{BitSet, Ddg};
use grip_ir::{Graph, NodeId, OpId, RegId};
use grip_json::Json;
use grip_machine::{FuClass, MachineDesc, UNCAPPED};
use std::collections::HashMap;

/// Which analysis produced the binding (maximum) bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BindingConstraint {
    /// The loop-carried recurrence bound.
    RecMii,
    /// Total issue width: `ceil(ops / width)`.
    ResMiiWidth,
    /// Integer ALU slot cap.
    ResMiiAlu,
    /// Floating-point slot cap.
    ResMiiFpu,
    /// Memory-port slot cap.
    ResMiiMem,
    /// Conditional-jump tree budget.
    ResMiiCj,
    /// The whole-window latency-weighted critical path.
    CriticalPath,
}

impl BindingConstraint {
    /// All constraints, in wire order.
    pub const ALL: [BindingConstraint; 7] = [
        BindingConstraint::RecMii,
        BindingConstraint::ResMiiWidth,
        BindingConstraint::ResMiiAlu,
        BindingConstraint::ResMiiFpu,
        BindingConstraint::ResMiiMem,
        BindingConstraint::ResMiiCj,
        BindingConstraint::CriticalPath,
    ];

    /// The stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            BindingConstraint::RecMii => "rec_mii",
            BindingConstraint::ResMiiWidth => "res_mii_width",
            BindingConstraint::ResMiiAlu => "res_mii_alu",
            BindingConstraint::ResMiiFpu => "res_mii_fpu",
            BindingConstraint::ResMiiMem => "res_mii_mem",
            BindingConstraint::ResMiiCj => "res_mii_cj",
            BindingConstraint::CriticalPath => "critical_path",
        }
    }

    /// Parse a wire string back into a constraint.
    pub fn parse(s: &str) -> Option<BindingConstraint> {
        BindingConstraint::ALL.into_iter().find(|c| c.as_str() == s)
    }

    /// The resource constraint for a capped FU class.
    fn of_class(c: FuClass) -> BindingConstraint {
        match c {
            FuClass::Alu => BindingConstraint::ResMiiAlu,
            FuClass::Fpu => BindingConstraint::ResMiiFpu,
            FuClass::Mem => BindingConstraint::ResMiiMem,
            FuClass::Branch => BindingConstraint::ResMiiCj,
        }
    }
}

impl std::fmt::Display for BindingConstraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// A proven lower bound on the steady-window schedule length, with the
/// achieved-vs-provable gap.
///
/// `bound_cycles` bounds one full traversal of the steady window: any
/// valid stall-free loop schedule of this op multiset needs at least that
/// many rows (and any execution at least that many cycles per traversal).
/// The gap compares against the steady row count the scheduler achieved.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundCertificate {
    /// The proven lower bound, in cycles per full window traversal.
    pub bound_cycles: u64,
    /// Which analysis the maximum came from.
    pub binding_constraint: BindingConstraint,
    /// `(achieved - bound) / bound`, in percent. Zero means provably
    /// optimal; negative would mean the bound is unsound.
    pub gap_pct: f64,
    /// The achieved schedule length equals the proven bound.
    pub at_bound: bool,
}

impl BoundCertificate {
    /// JSON exposition, stable across the service wire protocol.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("bound_cycles", self.bound_cycles)
            .field("binding_constraint", self.binding_constraint.as_str())
            .field("gap_pct", self.gap_pct)
            .field("at_bound", self.at_bound)
    }

    /// Parse a certificate back from its wire form.
    pub fn from_json(j: &Json) -> Result<BoundCertificate, String> {
        let bound_cycles = j
            .get("bound_cycles")
            .and_then(Json::as_i64)
            .ok_or("bound certificate missing \"bound_cycles\"")?;
        let binding_constraint = j
            .get("binding_constraint")
            .and_then(Json::as_str)
            .and_then(BindingConstraint::parse)
            .ok_or("bound certificate missing a valid \"binding_constraint\"")?;
        let gap_pct = j
            .get("gap_pct")
            .and_then(Json::as_f64)
            .ok_or("bound certificate missing \"gap_pct\"")?;
        let at_bound = j
            .get("at_bound")
            .and_then(Json::as_bool)
            .ok_or("bound certificate missing \"at_bound\"")?;
        Ok(BoundCertificate {
            bound_cycles: bound_cycles.max(0) as u64,
            binding_constraint,
            gap_pct,
            at_bound,
        })
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "bound {} ({}), gap {:.1}%{}",
            self.bound_cycles,
            self.binding_constraint,
            self.gap_pct,
            if self.at_bound { ", at bound" } else { "" }
        )
    }
}

/// Operation counts of a window, grouped the way issue templates cap them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Ordinary (non-jump) operations.
    pub noncj: usize,
    /// Per-class counts, indexed by [`FuClass::index`].
    pub class: [usize; FuClass::COUNT],
    /// Conditional jumps.
    pub cjs: usize,
}

impl OpCounts {
    /// Tally one operation.
    pub fn add(&mut self, kind: grip_ir::OpKind) {
        if kind.is_cj() {
            self.cjs += 1;
        } else {
            self.noncj += 1;
        }
        self.class[FuClass::of(kind).index()] += 1;
    }
}

/// The pigeonhole resource bound: the minimum number of template-respecting
/// rows that can hold `counts`, and which cap binds. Every scheduler row
/// obeys the issue template, so this bounds any schedule of the op set —
/// it is also the early-exit criterion the GRiP loop tests against its
/// live region.
pub fn res_rows_bound(counts: &OpCounts, desc: &MachineDesc) -> (u64, BindingConstraint) {
    let ceil = |n: usize, d: usize| n.div_ceil(d) as u64;
    // Any non-empty window needs one row; ties keep the width label.
    let mut best = (u64::from(counts.noncj + counts.cjs > 0), BindingConstraint::ResMiiWidth);
    if desc.width != UNCAPPED && ceil(counts.noncj, desc.width) > best.0 {
        best = (ceil(counts.noncj, desc.width), BindingConstraint::ResMiiWidth);
    }
    for c in FuClass::ALL[..3].iter().copied() {
        let cap = desc.class_slots[c.index()];
        if cap != UNCAPPED && cap > 0 && ceil(counts.class[c.index()], cap) > best.0 {
            best = (ceil(counts.class[c.index()], cap), BindingConstraint::of_class(c));
        }
    }
    if desc.cjs != UNCAPPED && desc.cjs > 0 && ceil(counts.cjs, desc.cjs) > best.0 {
        best = (ceil(counts.cjs, desc.cjs), BindingConstraint::ResMiiCj);
    }
    best
}

/// The three composed analyses over one steady window.
#[derive(Clone, Copy, Debug)]
pub struct BoundAnalysis {
    /// Recurrence bound (0 when the window carries no register recurrence).
    pub rec_mii: u64,
    /// Resource bound and the cap it came from.
    pub res_mii: u64,
    /// Which resource cap produced `res_mii`.
    pub res_binding: BindingConstraint,
    /// Latency-weighted whole-window critical path.
    pub critical_path: u64,
    /// How many steady operations the analyses covered.
    pub ops: usize,
}

impl BoundAnalysis {
    /// The composed bound: the maximum of the three analyses. Ties prefer
    /// the resource label, then the recurrence, then the critical path
    /// (deterministic, so certificates are stable cache content).
    pub fn bound(&self) -> (u64, BindingConstraint) {
        let mut best = (self.res_mii, self.res_binding);
        if self.rec_mii > best.0 {
            best = (self.rec_mii, BindingConstraint::RecMii);
        }
        if self.critical_path > best.0 {
            best = (self.critical_path, BindingConstraint::CriticalPath);
        }
        best
    }
}

/// One steady operation with its row, in region order.
struct SlotOp {
    op: OpId,
    row: usize,
}

/// Run all three analyses on the final steady rows of a schedule.
///
/// `steady` is the region-ordered steady row list (live nodes only);
/// `ddg` is the dependence graph built on the prepared window, consulted
/// through `orig` ids for memory dependences only — register dependences
/// are re-derived syntactically because renaming invalidates them.
pub fn analyze(g: &Graph, steady: &[NodeId], ddg: &Ddg, desc: &MachineDesc) -> BoundAnalysis {
    // Flatten the steady window into (op, row) slots in region order.
    let mut slots: Vec<SlotOp> = Vec::new();
    let mut counts = OpCounts::default();
    for (row, &n) in steady.iter().filter(|&&n| g.node_exists(n)).enumerate() {
        for &(_, op) in g.node_ops(n) {
            counts.add(g.op(op).kind);
            slots.push(SlotOp { op, row });
        }
    }
    let (res_mii, res_binding) = res_rows_bound(&counts, desc);
    if slots.is_empty() {
        return BoundAnalysis { rec_mii: 0, res_mii, res_binding, critical_path: 0, ops: 0 };
    }

    let lat = |op: OpId| u64::from(desc.latency_of(g.op(op).kind));

    // Intra-window dependence edges `pred -> slot`, weighted in cycles.
    // Register true deps via a per-row last-definition scan (VLIW entry
    // fetch: a row's defs become visible only to later rows), memory deps
    // via `orig` ancestry. Reads with no prior def are upward-exposed:
    // they consume the previous traversal's value (the RecMII seeds).
    let mut preds: Vec<Vec<(usize, u64)>> = vec![Vec::new(); slots.len()];
    let mut upward: Vec<(usize, RegId)> = Vec::new();
    let mut last_def: HashMap<RegId, usize> = HashMap::new();
    let mut row_start = 0;
    while row_start < slots.len() {
        let row = slots[row_start].row;
        let row_end = slots[row_start..]
            .iter()
            .position(|s| s.row != row)
            .map_or(slots.len(), |i| row_start + i);
        for i in row_start..row_end {
            for r in g.op(slots[i].op).reads() {
                match last_def.get(&r) {
                    Some(&d) => preds[i].push((d, lat(slots[d].op))),
                    None => upward.push((i, r)),
                }
            }
        }
        for (i, s) in slots.iter().enumerate().take(row_end).skip(row_start) {
            if let Some(d) = g.op(s.op).dest {
                last_def.insert(d, i);
            }
        }
        row_start = row_end;
    }
    // Memory dependences: `orig` pairs from the prepared window's DDG.
    // A store must resolve a row before its dependent access (weight 1);
    // a load-first (anti) pair may legally co-reside (weight 0).
    let mem_slots: Vec<usize> =
        (0..slots.len()).filter(|&i| g.op(slots[i].op).kind.is_mem()).collect();
    for (ai, &a) in mem_slots.iter().enumerate() {
        for &b in &mem_slots[ai + 1..] {
            let (oa, ob) = (g.op(slots[a].op).orig, g.op(slots[b].op).orig);
            if ddg.mem_dep(oa, ob) {
                preds[b].push((a, u64::from(g.op(slots[a].op).kind.is_store())));
            } else if ddg.mem_dep(ob, oa) {
                preds[a].push((b, u64::from(g.op(slots[b].op).kind.is_store())));
            }
        }
    }
    // Drop edges that run against slot order: in a clean schedule every
    // dependence goes forward, and the DP below walks slots in order.
    for (i, ps) in preds.iter_mut().enumerate() {
        ps.retain(|&(p, _)| p < i);
    }

    // Whole-window critical path: longest latency-weighted path, plus the
    // final op's own issue row.
    let mut earliest = vec![0u64; slots.len()];
    for i in 0..slots.len() {
        for &(p, w) in &preds[i] {
            earliest[i] = earliest[i].max(earliest[p] + w);
        }
    }
    let critical_path = earliest.iter().max().copied().unwrap_or(0) + 1;

    // RecMII: an upward-exposed read of `r` at slot `b` consumes the value
    // the *last* definition of `r` produced in the previous traversal, so
    // the traversal period covers the longest path b -> def plus the
    // definition's own latency. Only dataflow-connected pairs prove a
    // cycle; unconnected ones constrain no period.
    let mut rec_mii = 0u64;
    let mut reach = BitSet::new(slots.len());
    let mut from_b = vec![0u64; slots.len()];
    for &(b, r) in &upward {
        let Some(&a) = last_def.get(&r) else { continue };
        reach.clear();
        reach.insert(b);
        from_b[b] = 0;
        for i in (b + 1)..slots.len() {
            from_b[i] = 0;
            let mut seen = false;
            for &(p, w) in &preds[i] {
                if reach.contains(p) {
                    seen = true;
                    from_b[i] = from_b[i].max(from_b[p] + w);
                }
            }
            if seen {
                reach.insert(i);
            }
        }
        if a > b && reach.contains(a) {
            rec_mii = rec_mii.max(from_b[a] + lat(slots[a].op));
        }
    }

    BoundAnalysis { rec_mii, res_mii, res_binding, critical_path, ops: slots.len() }
}

/// Compose the analyses into a certificate, gapped against the achieved
/// steady row count.
pub fn certificate(
    g: &Graph,
    steady: &[NodeId],
    ddg: &Ddg,
    desc: &MachineDesc,
) -> BoundCertificate {
    let analysis = analyze(g, steady, ddg, desc);
    let (bound_cycles, binding_constraint) = analysis.bound();
    let achieved = steady.iter().filter(|&&n| g.node_exists(n)).count() as u64;
    let gap_pct = if bound_cycles > 0 {
        (achieved as f64 - bound_cycles as f64) / bound_cycles as f64 * 100.0
    } else {
        0.0
    };
    BoundCertificate {
        bound_cycles,
        binding_constraint,
        gap_pct,
        at_bound: achieved == bound_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_wire_strings_round_trip() {
        for c in BindingConstraint::ALL {
            assert_eq!(BindingConstraint::parse(c.as_str()), Some(c));
        }
        assert_eq!(BindingConstraint::parse("nonsense"), None);
    }

    #[test]
    fn certificate_json_round_trips() {
        for c in BindingConstraint::ALL {
            let cert = BoundCertificate {
                bound_cycles: 17,
                binding_constraint: c,
                gap_pct: 12.5,
                at_bound: false,
            };
            let back =
                BoundCertificate::from_json(&Json::parse(&cert.to_json().line()).unwrap()).unwrap();
            assert_eq!(cert, back);
        }
    }

    #[test]
    fn malformed_certificates_are_rejected() {
        for bad in [
            r#"{"binding_constraint":"rec_mii","gap_pct":0.0,"at_bound":true}"#,
            r#"{"bound_cycles":3,"binding_constraint":"nope","gap_pct":0.0,"at_bound":true}"#,
            r#"{"bound_cycles":3,"binding_constraint":"rec_mii","at_bound":true}"#,
            r#"{"bound_cycles":3,"binding_constraint":"rec_mii","gap_pct":0.0}"#,
        ] {
            assert!(BoundCertificate::from_json(&Json::parse(bad).unwrap()).is_err(), "{bad}");
        }
    }

    #[test]
    fn resource_bound_pigeonholes_each_cap() {
        let mut class = [0usize; FuClass::COUNT];
        class[FuClass::Alu.index()] = 6;
        class[FuClass::Fpu.index()] = 4;
        class[FuClass::Mem.index()] = 6;
        let counts = OpCounts { noncj: 16, class, cjs: 1 };
        // clustered: width 4, caps [2,2,2] -> width needs 4 rows, ALU and
        // MEM each need 3; width binds.
        let (b, c) = res_rows_bound(&counts, &grip_machine::MachineDesc::clustered());
        assert_eq!((b, c), (4, BindingConstraint::ResMiiWidth));
        // mem_bound: width 8, single memory port -> MEM needs 6 rows.
        let (b, c) = res_rows_bound(&counts, &grip_machine::MachineDesc::mem_bound());
        assert_eq!((b, c), (6, BindingConstraint::ResMiiMem));
        // uniform(8): only the width caps issue.
        let (b, c) = res_rows_bound(&counts, &grip_machine::MachineDesc::uniform(8));
        assert_eq!((b, c), (2, BindingConstraint::ResMiiWidth));
        // Unlimited machine: any non-empty window still needs one row.
        let (b, _) = res_rows_bound(&counts, &grip_machine::MachineDesc::UNLIMITED);
        assert_eq!(b, 1);
        let (b, _) = res_rows_bound(&OpCounts::default(), &grip_machine::MachineDesc::uniform(4));
        assert_eq!(b, 0);
    }
}
