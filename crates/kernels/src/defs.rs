//! The fourteen Livermore kernel definitions.
//!
//! Builders and references are written op-for-op in the same floating-point
//! evaluation order, so the simulator output matches the native output
//! bitwise. All loops are do-while shaped (the canonical builder latch
//! tests *after* the body), which the references mirror exactly.

use crate::{input_f, input_ix, Kernel, SLACK};
use grip_ir::{Graph, OpKind, Operand, ProgramBuilder, RegId, Value};

fn f(v: f64) -> Operand {
    Operand::Imm(Value::F(v))
}
fn r(reg: RegId) -> Operand {
    Operand::Reg(reg)
}
fn fvals(v: Vec<f64>) -> Vec<Value> {
    v.into_iter().map(Value::F).collect()
}
fn ivals(v: Vec<i64>) -> Vec<Value> {
    v.into_iter().map(Value::I).collect()
}
fn farr(ai: usize, len: usize) -> Vec<f64> {
    (0..len).map(|i| input_f(ai, i)).collect()
}

/// Standard loop postlude: `k += 1; c = k < n; if c goto head`.
fn close_loop(b: &mut ProgramBuilder, k: RegId, n: i64) {
    b.iadd_imm(k, k, 1);
    let c = b.binary("c", OpKind::CmpLt, r(k), Operand::Imm(Value::I(n)));
    b.end_loop(c);
}

// ---------------------------------------------------------------------
// LL1 — hydro fragment: x[k] = Q + y[k]*(R*z[k+10] + T*z[k+11])
// ---------------------------------------------------------------------
const Q1: f64 = 0.5;
const R1: f64 = 0.25;
const T1: f64 = 0.37;

fn ll1_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let x = b.array("x", len);
    let y = b.array("y", len);
    let z = b.array("z", len);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let z10 = b.load("z10", z, r(k), 10);
    let t1 = b.binary("t1", OpKind::Mul, f(R1), r(z10));
    let z11 = b.load("z11", z, r(k), 11);
    let t2 = b.binary("t2", OpKind::Mul, f(T1), r(z11));
    let t3 = b.binary("t3", OpKind::Add, r(t1), r(t2));
    let yk = b.load("yk", y, r(k), 0);
    let t4 = b.binary("t4", OpKind::Mul, r(yk), r(t3));
    let t5 = b.binary("t5", OpKind::Add, f(Q1), r(t4));
    b.store(x, r(k), 0, r(t5));
    close_loop(&mut b, k, n);
    let mut g = b.finish();
    g.live_out = vec![k];
    g
}

fn ll1_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let mut x = farr(0, len);
    let y = farr(1, len);
    let z = farr(2, len);
    let mut kk = 0usize;
    loop {
        x[kk] = Q1 + y[kk] * (R1 * z[kk + 10] + T1 * z[kk + 11]);
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    vec![fvals(x), fvals(y), fvals(z)]
}

// ---------------------------------------------------------------------
// LL2 — ICCG-like strided excerpt: x[k] = u[2k] - v[k]*u[2k+1]
// ---------------------------------------------------------------------
fn ll2_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let x = b.array("x", len);
    let u = b.array("u", 2 * len + 2);
    let v = b.array("v", len);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let k2 = b.binary("k2", OpKind::IMul, r(k), Operand::Imm(Value::I(2)));
    let a = b.load("a", u, r(k2), 0);
    let bb = b.load("b", u, r(k2), 1);
    let c = b.load("vv", v, r(k), 0);
    let d = b.binary("d", OpKind::Mul, r(c), r(bb));
    let e = b.binary("e", OpKind::Sub, r(a), r(d));
    b.store(x, r(k), 0, r(e));
    close_loop(&mut b, k, n);
    let mut g = b.finish();
    g.live_out = vec![k];
    g
}

fn ll2_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let mut x = farr(0, len);
    let u = farr(1, 2 * len + 2);
    let v = farr(2, len);
    let mut kk = 0usize;
    loop {
        x[kk] = u[2 * kk] - v[kk] * u[2 * kk + 1];
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    vec![fvals(x), fvals(u), fvals(v)]
}

// ---------------------------------------------------------------------
// LL3 — inner product: q += z[k]*x[k]  (serial reduction)
// ---------------------------------------------------------------------
fn ll3_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let z = b.array("z", len);
    let x = b.array("x", len);
    let out = b.array("out", 1);
    let q = b.named_reg("q");
    b.const_f(q, 0.0);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let a = b.load("a", z, r(k), 0);
    let c = b.load("b", x, r(k), 0);
    let m = b.binary("m", OpKind::Mul, r(a), r(c));
    b.emit(grip_ir::Operation::new(OpKind::Add, Some(q), vec![r(q), r(m)]));
    close_loop(&mut b, k, n);
    b.store(out, Operand::Imm(Value::I(0)), 0, r(q));
    let mut g = b.finish();
    g.live_out = vec![q, k];
    g
}

fn ll3_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let z = farr(0, len);
    let x = farr(1, len);
    let mut out = farr(2, 1);
    let mut q = 0.0f64;
    let mut kk = 0usize;
    loop {
        q += z[kk] * x[kk];
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    out[0] = q;
    vec![fvals(z), fvals(x), fvals(out)]
}

// ---------------------------------------------------------------------
// LL4 — banded linear equations: x[k] -= y[k]*x[k-5]  (distance-5 LCD)
// ---------------------------------------------------------------------
fn ll4_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let x = b.array("x", len);
    let y = b.array("y", len);
    let k = b.named_reg("k");
    b.const_i(k, 5);
    b.begin_loop();
    let a = b.load("a", x, r(k), -5);
    let yk = b.load("yk", y, r(k), 0);
    let m = b.binary("m", OpKind::Mul, r(yk), r(a));
    let xk = b.load("xk", x, r(k), 0);
    let s = b.binary("s", OpKind::Sub, r(xk), r(m));
    b.store(x, r(k), 0, r(s));
    close_loop(&mut b, k, n);
    let mut g = b.finish();
    g.live_out = vec![k];
    g
}

fn ll4_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let mut x = farr(0, len);
    let y = farr(1, len);
    let mut kk = 5usize;
    loop {
        x[kk] -= y[kk] * x[kk - 5];
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    vec![fvals(x), fvals(y)]
}

// ---------------------------------------------------------------------
// LL5 — tridiagonal elimination: xr = z[k]*(y[k] - xr); x[k] = xr
// (register-carried first-order recurrence through sub→mul)
// ---------------------------------------------------------------------
fn ll5_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let x = b.array("x", len);
    let y = b.array("y", len);
    let z = b.array("z", len);
    let xr = b.named_reg("xr");
    b.const_f(xr, 0.25);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let zk = b.load("zk", z, r(k), 0);
    let yk = b.load("yk", y, r(k), 0);
    let s = b.binary("s", OpKind::Sub, r(yk), r(xr));
    b.emit(grip_ir::Operation::new(OpKind::Mul, Some(xr), vec![r(zk), r(s)]));
    b.store(x, r(k), 0, r(xr));
    close_loop(&mut b, k, n);
    let mut g = b.finish();
    g.live_out = vec![xr, k];
    g
}

fn ll5_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let mut x = farr(0, len);
    let y = farr(1, len);
    let z = farr(2, len);
    let mut xr = 0.25f64;
    let mut kk = 0usize;
    loop {
        xr = z[kk] * (y[kk] - xr);
        x[kk] = xr;
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    vec![fvals(x), fvals(y), fvals(z)]
}

// ---------------------------------------------------------------------
// LL6 — general linear recurrence (2nd order):
// w = w1*b[k] + w2*c[k]; w2 = w1; w1 = w; out[k] = w
// ---------------------------------------------------------------------
fn ll6_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let w_arr = b.array("w", len);
    let bb = b.array("b", len);
    let cc = b.array("c", len);
    let w1 = b.named_reg("w1");
    b.const_f(w1, 0.5);
    let w2 = b.named_reg("w2");
    b.const_f(w2, 0.25);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let lb = b.load("lb", bb, r(k), 0);
    let lc = b.load("lc", cc, r(k), 0);
    let m1 = b.binary("m1", OpKind::Mul, r(w1), r(lb));
    let m2 = b.binary("m2", OpKind::Mul, r(w2), r(lc));
    let w = b.binary("w", OpKind::Add, r(m1), r(m2));
    b.store(w_arr, r(k), 0, r(w));
    b.copy(w2, r(w1));
    b.copy(w1, r(w));
    close_loop(&mut b, k, n);
    let mut g = b.finish();
    g.live_out = vec![w1, w2, k];
    g
}

fn ll6_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let mut w_arr = farr(0, len);
    let bb = farr(1, len);
    let cc = farr(2, len);
    let (mut w1, mut w2) = (0.5f64, 0.25f64);
    let mut kk = 0usize;
    loop {
        let w = w1 * bb[kk] + w2 * cc[kk];
        w_arr[kk] = w;
        w2 = w1;
        w1 = w;
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    vec![fvals(w_arr), fvals(bb), fvals(cc)]
}

// ---------------------------------------------------------------------
// LL7 — equation of state fragment (wide vectorizable expression)
// ---------------------------------------------------------------------
const R7: f64 = 0.7;
const T7: f64 = 0.3;

fn ll7_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let x = b.array("x", len);
    let u = b.array("u", len);
    let y = b.array("y", len);
    let z = b.array("z", len);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let u0 = b.load("u0", u, r(k), 0);
    let zk = b.load("zk", z, r(k), 0);
    let yk = b.load("yk", y, r(k), 0);
    let u1 = b.load("u1", u, r(k), 1);
    let u2 = b.load("u2", u, r(k), 2);
    let u3 = b.load("u3", u, r(k), 3);
    let u4 = b.load("u4", u, r(k), 4);
    let u5 = b.load("u5", u, r(k), 5);
    let u6 = b.load("u6", u, r(k), 6);
    let a1 = b.binary("a1", OpKind::Mul, f(R7), r(yk));
    let a2 = b.binary("a2", OpKind::Add, r(zk), r(a1));
    let a3 = b.binary("a3", OpKind::Mul, f(R7), r(a2));
    let b1 = b.binary("b1", OpKind::Mul, f(R7), r(u1));
    let b2 = b.binary("b2", OpKind::Add, r(u2), r(b1));
    let b3 = b.binary("b3", OpKind::Mul, f(R7), r(b2));
    let b4 = b.binary("b4", OpKind::Add, r(u3), r(b3));
    let c1 = b.binary("c1", OpKind::Mul, f(R7), r(u4));
    let c2 = b.binary("c2", OpKind::Add, r(u5), r(c1));
    let c3 = b.binary("c3", OpKind::Mul, f(R7), r(c2));
    let c4 = b.binary("c4", OpKind::Add, r(u6), r(c3));
    let d1 = b.binary("d1", OpKind::Mul, f(T7), r(c4));
    let d2 = b.binary("d2", OpKind::Add, r(b4), r(d1));
    let d3 = b.binary("d3", OpKind::Mul, f(T7), r(d2));
    let e1 = b.binary("e1", OpKind::Add, r(u0), r(a3));
    let e2 = b.binary("e2", OpKind::Add, r(e1), r(d3));
    b.store(x, r(k), 0, r(e2));
    close_loop(&mut b, k, n);
    let mut g = b.finish();
    g.live_out = vec![k];
    g
}

fn ll7_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let mut x = farr(0, len);
    let u = farr(1, len);
    let y = farr(2, len);
    let z = farr(3, len);
    let mut kk = 0usize;
    loop {
        let a3 = R7 * (z[kk] + R7 * y[kk]);
        let b4 = u[kk + 3] + R7 * (u[kk + 2] + R7 * u[kk + 1]);
        let c4 = u[kk + 6] + R7 * (u[kk + 5] + R7 * u[kk + 4]);
        let d3 = T7 * (b4 + T7 * c4);
        x[kk] = (u[kk] + a3) + d3;
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    vec![fvals(x), fvals(u), fvals(y), fvals(z)]
}

// ---------------------------------------------------------------------
// LL8 — ADI sweep excerpt with a distance-1 memory recurrence:
// u1n[k] = A11*(u1[k+1]-u1[k-1]) + A12*u1n[k-1]
// ---------------------------------------------------------------------
const A11: f64 = 0.45;
const A12: f64 = 0.55;

fn ll8_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let u1n = b.array("u1n", len);
    let u1 = b.array("u1", len);
    let k = b.named_reg("k");
    b.const_i(k, 1);
    b.begin_loop();
    let hi = b.load("hi", u1, r(k), 1);
    let lo = b.load("lo", u1, r(k), -1);
    let du = b.binary("du", OpKind::Sub, r(hi), r(lo));
    let t1 = b.binary("t1", OpKind::Mul, f(A11), r(du));
    let prev = b.load("pv", u1n, r(k), -1);
    let t2 = b.binary("t2", OpKind::Mul, f(A12), r(prev));
    let t3 = b.binary("t3", OpKind::Add, r(t1), r(t2));
    b.store(u1n, r(k), 0, r(t3));
    close_loop(&mut b, k, n);
    let mut g = b.finish();
    g.live_out = vec![k];
    g
}

fn ll8_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let mut u1n = farr(0, len);
    let u1 = farr(1, len);
    let mut kk = 1usize;
    loop {
        u1n[kk] = A11 * (u1[kk + 1] - u1[kk - 1]) + A12 * u1n[kk - 1];
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    vec![fvals(u1n), fvals(u1)]
}

// ---------------------------------------------------------------------
// LL9 — integrate predictors (flat vectorizable polynomial)
// ---------------------------------------------------------------------
const C0: f64 = 1.1;
const C1: f64 = 0.9;
const C2: f64 = 0.8;
const C3: f64 = 0.6;
const C4: f64 = 0.4;

fn ll9_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let px = b.array("px", len);
    let p1 = b.array("p1", len);
    let p2 = b.array("p2", len);
    let p3 = b.array("p3", len);
    let p4 = b.array("p4", len);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let l1 = b.load("l1", p1, r(k), 0);
    let m1 = b.binary("m1", OpKind::Mul, f(C1), r(l1));
    let l2 = b.load("l2", p2, r(k), 0);
    let m2 = b.binary("m2", OpKind::Mul, f(C2), r(l2));
    let l3 = b.load("l3", p3, r(k), 0);
    let m3 = b.binary("m3", OpKind::Mul, f(C3), r(l3));
    let l4 = b.load("l4", p4, r(k), 0);
    let m4 = b.binary("m4", OpKind::Mul, f(C4), r(l4));
    let s1 = b.binary("s1", OpKind::Add, f(C0), r(m1));
    let s2 = b.binary("s2", OpKind::Add, r(s1), r(m2));
    let s3 = b.binary("s3", OpKind::Add, r(s2), r(m3));
    let s4 = b.binary("s4", OpKind::Add, r(s3), r(m4));
    b.store(px, r(k), 0, r(s4));
    close_loop(&mut b, k, n);
    let mut g = b.finish();
    g.live_out = vec![k];
    g
}

fn ll9_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let mut px = farr(0, len);
    let p1 = farr(1, len);
    let p2 = farr(2, len);
    let p3 = farr(3, len);
    let p4 = farr(4, len);
    let mut kk = 0usize;
    loop {
        px[kk] = (((C0 + C1 * p1[kk]) + C2 * p2[kk]) + C3 * p3[kk]) + C4 * p4[kk];
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    vec![fvals(px), fvals(p1), fvals(p2), fvals(p3), fvals(p4)]
}

// ---------------------------------------------------------------------
// LL10 — difference predictors (vectorizable, deep intra-iteration chain)
// ---------------------------------------------------------------------
fn ll10_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let cx = b.array("cx", len);
    let px0 = b.array("px0", len);
    let px1 = b.array("px1", len);
    let px2 = b.array("px2", len);
    let px3 = b.array("px3", len);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let ar = b.load("ar", cx, r(k), 0);
    let b0 = b.load("b0", px0, r(k), 0);
    let d0 = b.binary("d0", OpKind::Sub, r(ar), r(b0));
    b.store(px0, r(k), 0, r(ar));
    let b1 = b.load("b1", px1, r(k), 0);
    let d1 = b.binary("d1", OpKind::Sub, r(d0), r(b1));
    b.store(px1, r(k), 0, r(d0));
    let b2 = b.load("b2", px2, r(k), 0);
    let d2 = b.binary("d2", OpKind::Sub, r(d1), r(b2));
    b.store(px2, r(k), 0, r(d1));
    let b3 = b.load("b3", px3, r(k), 0);
    let d3 = b.binary("d3", OpKind::Sub, r(d2), r(b3));
    b.store(px3, r(k), 0, r(d2));
    b.store(cx, r(k), 0, r(d3));
    close_loop(&mut b, k, n);
    let mut g = b.finish();
    g.live_out = vec![k];
    g
}

fn ll10_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let mut cx = farr(0, len);
    let mut px0 = farr(1, len);
    let mut px1 = farr(2, len);
    let mut px2 = farr(3, len);
    let mut px3 = farr(4, len);
    let mut kk = 0usize;
    loop {
        let ar = cx[kk];
        let d0 = ar - px0[kk];
        px0[kk] = ar;
        let d1 = d0 - px1[kk];
        px1[kk] = d0;
        let d2 = d1 - px2[kk];
        px2[kk] = d1;
        let d3 = d2 - px3[kk];
        px3[kk] = d2;
        cx[kk] = d3;
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    vec![fvals(cx), fvals(px0), fvals(px1), fvals(px2), fvals(px3)]
}

// ---------------------------------------------------------------------
// LL11 — first sum (prefix sum): s += y[k]; x[k] = s
// ---------------------------------------------------------------------
fn ll11_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let x = b.array("x", len);
    let y = b.array("y", len);
    let s = b.named_reg("s");
    b.const_f(s, 0.0);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let yk = b.load("yk", y, r(k), 0);
    b.emit(grip_ir::Operation::new(OpKind::Add, Some(s), vec![r(s), r(yk)]));
    b.store(x, r(k), 0, r(s));
    close_loop(&mut b, k, n);
    let mut g = b.finish();
    g.live_out = vec![s, k];
    g
}

fn ll11_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let mut x = farr(0, len);
    let y = farr(1, len);
    let mut s = 0.0f64;
    let mut kk = 0usize;
    loop {
        s += y[kk];
        x[kk] = s;
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    vec![fvals(x), fvals(y)]
}

// ---------------------------------------------------------------------
// LL12 — first difference: x[k] = y[k+1] - y[k]
// ---------------------------------------------------------------------
fn ll12_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let x = b.array("x", len);
    let y = b.array("y", len);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let hi = b.load("hi", y, r(k), 1);
    let lo = b.load("lo", y, r(k), 0);
    let d = b.binary("d", OpKind::Sub, r(hi), r(lo));
    b.store(x, r(k), 0, r(d));
    close_loop(&mut b, k, n);
    let mut g = b.finish();
    g.live_out = vec![k];
    g
}

fn ll12_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let mut x = farr(0, len);
    let y = farr(1, len);
    let mut kk = 0usize;
    loop {
        x[kk] = y[kk + 1] - y[kk];
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    vec![fvals(x), fvals(y)]
}

// ---------------------------------------------------------------------
// LL13 — 2-D particle in cell (indirect gather + scatter on y, parallel
// field update on vxa)
// ---------------------------------------------------------------------
const C13: f64 = 0.99;

fn ll13_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let ix = b.iarray("ix", len);
    let y = b.array("y", len);
    let z = b.array("z", len);
    let vxa = b.array("vxa", len);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let i1 = b.load("i1", ix, r(k), 0);
    let t = b.load("t", y, r(i1), 0);
    let zk = b.load("zk", z, r(k), 0);
    let t2 = b.binary("t2", OpKind::Add, r(t), r(zk));
    b.store(y, r(i1), 0, r(t2));
    let vx = b.load("vx", vxa, r(k), 0);
    let vx2 = b.binary("vx2", OpKind::Mul, r(vx), f(C13));
    b.store(vxa, r(k), 0, r(vx2));
    close_loop(&mut b, k, n);
    let mut g = b.finish();
    g.live_out = vec![k];
    g
}

fn ll13_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let ix: Vec<i64> = (0..len).map(|i| input_ix(0, i, n)).collect();
    let mut y = farr(1, len);
    let z = farr(2, len);
    let mut vxa = farr(3, len);
    let mut kk = 0usize;
    loop {
        let i1 = ix[kk] as usize;
        y[i1] += z[kk];
        vxa[kk] *= C13;
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    vec![ivals(ix), fvals(y), fvals(z), fvals(vxa)]
}

// ---------------------------------------------------------------------
// LL14 — 1-D particle in cell (gather + direct update + scatter-accumulate)
// ---------------------------------------------------------------------
fn ll14_build(n: i64) -> Graph {
    let len = n as usize + SLACK;
    let mut b = ProgramBuilder::new();
    let ix = b.iarray("ix", len);
    let grd = b.array("grd", len);
    let rho = b.array("rho", len);
    let vel = b.array("vel", len);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let ir = b.load("ir", ix, r(k), 0);
    let rx = b.load("rx", grd, r(ir), 0);
    let v = b.load("v", vel, r(k), 0);
    let v2 = b.binary("v2", OpKind::Add, r(v), r(rx));
    b.store(vel, r(k), 0, r(v2));
    let r1 = b.load("r1", rho, r(ir), 0);
    let r2 = b.binary("r2", OpKind::Add, r(r1), r(v2));
    b.store(rho, r(ir), 0, r(r2));
    close_loop(&mut b, k, n);
    let mut g = b.finish();
    g.live_out = vec![k];
    g
}

fn ll14_ref(n: i64) -> Vec<Vec<Value>> {
    let len = n as usize + SLACK;
    let ix: Vec<i64> = (0..len).map(|i| input_ix(0, i, n)).collect();
    let grd = farr(1, len);
    let mut rho = farr(2, len);
    let mut vel = farr(3, len);
    let mut kk = 0usize;
    loop {
        let ir = ix[kk] as usize;
        let v2 = vel[kk] + grd[ir];
        vel[kk] = v2;
        rho[ir] += v2;
        kk += 1;
        if (kk as i64) >= n {
            break;
        }
    }
    vec![ivals(ix), fvals(grd), fvals(rho), fvals(vel)]
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// The fourteen kernels with the paper's Table 1 rows.
pub fn kernels() -> &'static [Kernel] {
    use crate::default_init;
    static KERNELS: std::sync::OnceLock<Vec<Kernel>> = std::sync::OnceLock::new();
    KERNELS.get_or_init(|| {
        vec![
            Kernel {
                name: "LL1",
                description: "hydro fragment x[k]=Q+y[k]*(R*z[k+10]+T*z[k+11])",
                class: "vectorizable",
                paper_grip: [2.0, 4.0, 7.9],
                paper_post: [2.0, 3.5, 7.0],
                build: ll1_build,
                init: default_init,
                reference: ll1_ref,
            },
            Kernel {
                name: "LL2",
                description: "ICCG-like strided excerpt x[k]=u[2k]-v[k]*u[2k+1]",
                class: "strided",
                paper_grip: [2.0, 3.8, 7.3],
                paper_post: [1.9, 3.6, 6.9],
                build: ll2_build,
                init: default_init,
                reference: ll2_ref,
            },
            Kernel {
                name: "LL3",
                description: "inner product q += z[k]*x[k]",
                class: "reduction",
                paper_grip: [2.0, 4.0, 8.0],
                paper_post: [1.8, 3.0, 4.5],
                build: ll3_build,
                init: default_init,
                reference: ll3_ref,
            },
            Kernel {
                name: "LL4",
                description: "banded linear equations x[k]-=y[k]*x[k-5]",
                class: "banded recurrence",
                paper_grip: [2.0, 4.3, 8.4],
                paper_post: [2.0, 3.9, 5.9],
                build: ll4_build,
                init: default_init,
                reference: ll4_ref,
            },
            Kernel {
                name: "LL5",
                description: "tridiagonal elimination xr=z[k]*(y[k]-xr)",
                class: "1st-order recurrence",
                paper_grip: [2.0, 4.4, 5.5],
                paper_post: [2.2, 3.7, 5.5],
                build: ll5_build,
                init: default_init,
                reference: ll5_ref,
            },
            Kernel {
                name: "LL6",
                description: "general linear recurrence w=w1*b[k]+w2*c[k]",
                class: "2nd-order recurrence",
                paper_grip: [2.0, 3.6, 3.6],
                paper_post: [1.8, 2.8, 3.3],
                build: ll6_build,
                init: default_init,
                reference: ll6_ref,
            },
            Kernel {
                name: "LL7",
                description: "equation of state fragment (25-op expression)",
                class: "vectorizable",
                paper_grip: [2.0, 4.0, 7.9],
                paper_post: [1.9, 3.9, 7.6],
                build: ll7_build,
                init: default_init,
                reference: ll7_ref,
            },
            Kernel {
                name: "LL8",
                description: "ADI sweep with distance-1 memory recurrence",
                class: "recurrence",
                paper_grip: [2.0, 3.4, 4.3],
                paper_post: [1.9, 3.1, 4.0],
                build: ll8_build,
                init: default_init,
                reference: ll8_ref,
            },
            Kernel {
                name: "LL9",
                description: "integrate predictors (flat polynomial)",
                class: "vectorizable",
                paper_grip: [2.0, 4.0, 7.9],
                paper_post: [2.0, 3.9, 7.7],
                build: ll9_build,
                init: default_init,
                reference: ll9_ref,
            },
            Kernel {
                name: "LL10",
                description: "difference predictors (deep intra-iteration chain)",
                class: "vectorizable",
                paper_grip: [2.0, 4.0, 7.1],
                paper_post: [2.0, 2.9, 3.6],
                build: ll10_build,
                init: default_init,
                reference: ll10_ref,
            },
            Kernel {
                name: "LL11",
                description: "first sum s += y[k]; x[k] = s",
                class: "1st-order recurrence",
                paper_grip: [2.3, 4.5, 8.9],
                paper_post: [2.3, 4.5, 8.9],
                build: ll11_build,
                init: default_init,
                reference: ll11_ref,
            },
            Kernel {
                name: "LL12",
                description: "first difference x[k] = y[k+1]-y[k]",
                class: "vectorizable",
                paper_grip: [2.0, 4.0, 8.0],
                paper_post: [1.8, 3.0, 4.5],
                build: ll12_build,
                init: default_init,
                reference: ll12_ref,
            },
            Kernel {
                name: "LL13",
                description: "2-D particle in cell (indirect scatter)",
                class: "indirect",
                paper_grip: [2.1, 3.0, 3.0],
                paper_post: [1.9, 2.7, 3.0],
                build: ll13_build,
                init: default_init,
                reference: ll13_ref,
            },
            Kernel {
                name: "LL14",
                description: "1-D particle in cell (gather/scatter mix)",
                class: "indirect",
                paper_grip: [1.9, 3.7, 4.8],
                paper_post: [1.9, 3.2, 4.5],
                build: ll14_build,
                init: default_init,
                reference: ll14_ref,
            },
        ]
    })
}
