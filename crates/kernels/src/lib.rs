//! # grip-kernels — the Livermore Loops workload suite
//!
//! The fourteen Livermore kernels of the paper's Table 1, expressed as
//! canonical sequential program graphs (one operation per instruction, the
//! form the UCI compiler's GCC front end produced), each paired with a
//! native Rust reference implementation and deterministic input data.
//!
//! The kernels keep the *dependence structure* that drives Table 1's
//! shape: vectorizable streams (LL1, LL7, LL9, LL10, LL12), reductions
//! (LL3), first/second-order and banded recurrences (LL4, LL5, LL6, LL8,
//! LL11), strided access (LL2), and indirect particle-in-cell
//! gather/scatter (LL13, LL14). Absolute op counts differ from the 1992
//! Fortran/GCC originals, so EXPERIMENTS.md compares shapes, not cells.
//!
//! Every kernel is validated by running its sequential graph on the VLIW
//! simulator and comparing all memory bitwise against the native
//! reference.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod defs;

pub use defs::kernels;

use grip_ir::{ArrayId, Graph, Value};
use grip_vm::Machine;

/// One Livermore kernel: builder, inputs, native reference, and the
/// paper's Table 1 row for side-by-side reporting.
pub struct Kernel {
    /// Short name, e.g. `"LL1"`.
    pub name: &'static str,
    /// What the loop computes.
    pub description: &'static str,
    /// Dependence class (for the report).
    pub class: &'static str,
    /// Paper Table 1 GRiP speedups at 2/4/8 FUs.
    pub paper_grip: [f64; 3],
    /// Paper Table 1 POST speedups at 2/4/8 FUs.
    pub paper_post: [f64; 3],
    /// Build the sequential program graph for trip count `n`.
    pub build: fn(n: i64) -> Graph,
    /// Fill machine inputs (deterministic).
    pub init: fn(&Graph, &mut Machine, n: i64),
    /// Native result: final contents of every array, in declaration order.
    pub reference: fn(n: i64) -> Vec<Vec<Value>>,
}

/// Extra array headroom shared by builders and references: covers the
/// largest static offset (LL7's `k+6`, LL1's `k+11`) plus speculation
/// depth from deep unwinding.
pub const SLACK: usize = 64;

/// Deterministic input value for float array `ai`, element `i` — shared by
/// the machine initializer and the native references.
pub fn input_f(ai: usize, i: usize) -> f64 {
    // Small magnitudes keep recurrences bounded over hundreds of
    // iterations; the exact values are arbitrary but fixed.
    let x = ((i * 31 + ai * 17 + 7) % 97) as f64;
    0.01 * x + 0.1
}

/// Deterministic in-bounds index for index array `ai`, element `i`.
pub fn input_ix(ai: usize, i: usize, n: i64) -> i64 {
    ((i * 13 + ai * 5 + 3) as i64 * 7) % n.max(1)
}

/// Fill every array of `g` with the standard deterministic inputs
/// (float arrays via [`input_f`], index arrays via [`input_ix`]).
pub fn default_init(g: &Graph, m: &mut Machine, n: i64) {
    for (ai, info) in g.arrays().iter().enumerate() {
        match info.elem {
            grip_ir::ElemKind::F => {
                let vals: Vec<f64> = (0..info.len).map(|i| input_f(ai, i)).collect();
                m.set_array_f(ArrayId::new(ai), &vals);
            }
            grip_ir::ElemKind::I => {
                let vals: Vec<i64> = (0..info.len).map(|i| input_ix(ai, i, n)).collect();
                m.set_array_i(ArrayId::new(ai), &vals);
            }
        }
    }
}

/// Build + run a kernel's sequential graph and compare every array against
/// the native reference, bitwise. Returns the simulator stats on success.
pub fn validate(k: &Kernel, n: i64) -> Result<grip_vm::RunStats, String> {
    let g = (k.build)(n);
    g.validate().map_err(|e| format!("{}: invalid graph: {e}", k.name))?;
    let mut m = Machine::for_graph(&g);
    (k.init)(&g, &mut m, n);
    let stats = m.run(&g).map_err(|e| format!("{}: execution failed: {e}", k.name))?;
    let expect = (k.reference)(n);
    if expect.len() != g.arrays().len() {
        return Err(format!("{}: reference array count mismatch", k.name));
    }
    for (ai, want) in expect.iter().enumerate() {
        for (i, w) in want.iter().enumerate() {
            let got = m.array_cell(ArrayId::new(ai), i);
            if !got.bit_eq(*w) {
                return Err(format!(
                    "{}: array {}[{i}] = {got}, reference says {w}",
                    k.name,
                    g.arrays()[ai].name
                ));
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_named() {
        let ks = kernels();
        assert_eq!(ks.len(), 14);
        for (i, k) in ks.iter().enumerate() {
            assert_eq!(k.name, format!("LL{}", i + 1));
            assert!(!k.description.is_empty());
            assert!(k.paper_grip.iter().all(|&s| s > 1.0));
        }
    }

    #[test]
    fn all_kernels_match_their_references() {
        for k in kernels() {
            for n in [1i64, 7, 33] {
                validate(k, n).unwrap_or_else(|e| panic!("{e}"));
            }
        }
    }

    #[test]
    fn kernels_have_canonical_loop_shape() {
        for k in kernels() {
            let g = (k.build)(16);
            let li = g.loop_info.unwrap_or_else(|| panic!("{}: no loop", k.name));
            // one op per node from head to latch
            let mut cur = li.head;
            while cur != li.latch {
                assert_eq!(g.node_op_count(cur), 1, "{}: node {cur}", k.name);
                cur = g.successors(cur)[0];
            }
        }
    }
}
