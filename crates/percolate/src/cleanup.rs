//! Redundant-operation removal and empty-node deletion.
//!
//! §4: "As a result of compaction, some operations in the original code
//! become redundant and are removed ... best performed incrementally as
//! part of the scheduling process in order to ensure that unnecessary
//! operations do not compete with useful operations for resources."

use crate::ctx::Ctx;
use grip_ir::{Graph, NodeId, OpId};

/// Remove `op` from `n` if its result can never be observed. Pure ops only
/// (loads are removable too: they are non-faulting and side-effect free in
/// this machine model); stores and jumps never die here.
pub fn remove_if_dead(g: &mut Graph, ctx: &Ctx<'_>, n: NodeId, op: OpId) -> bool {
    let o = g.op(op);
    let Some(d) = o.dest else { return false };
    if o.kind.is_cj() || o.kind.is_store() {
        return false;
    }
    if ctx.lv.dest_is_dead(g, n, op, d) {
        g.remove_op_from(n, op);
        true
    } else {
        false
    }
}

/// Sweep `nodes` removing dead pure ops until a fixpoint. Refreshes the
/// context's liveness before each pass (removals expose more removals).
/// Returns the number of ops removed.
pub fn eliminate_dead_ops(g: &mut Graph, ctx: &mut Ctx<'_>, nodes: &[NodeId]) -> usize {
    let mut removed = 0;
    loop {
        ctx.refresh(g);
        let mut pass = 0;
        for &n in nodes {
            if !g.node_exists(n) {
                continue;
            }
            let ops: Vec<OpId> = g.node_ops(n).iter().map(|&(_, o)| o).collect();
            for op in ops {
                if remove_if_dead(g, ctx, n, op) {
                    pass += 1;
                }
            }
        }
        removed += pass;
        if pass == 0 {
            return removed;
        }
    }
}

/// Forward-substitute single-def register copies.
///
/// For a copy `d ← s` where both `d` and `s` have exactly one static
/// definition, a reader of `d` may read `s` instead as long as no
/// execution can pass `s`'s (re)definition — or a fresh execution of the
/// copy — between the copy and the read. On the cyclic window graphs this
/// is computed as forward reachability from the copy that stops at `s`'s
/// defining node and at the copy's own node (readers *in* the stopping
/// nodes still fetch entry values and remain rewritable).
///
/// The copy is removed once nothing reads `d` and `d` is not observable at
/// exit. This is the global form of §2 copy bypassing; it is what lets the
/// carried/renaming copies of the unwound kernels die instead of competing
/// for functional units.
pub fn propagate_copies(g: &mut Graph, ctx: &mut Ctx<'_>) -> usize {
    let mut removed = 0;
    // Epoch-stamped visited marks for the per-copy reachability DFS.
    let mut seen: Vec<u64> = Vec::new();
    let mut epoch = 0u64;
    loop {
        let nodes: Vec<NodeId> = g.node_ids().collect();
        let nreg = g.reg_count();
        // Dense per-register tables: definition counts/sites and reader
        // lists replace the whole-graph rescans the old per-copy loop did.
        let mut def_count: Vec<u32> = vec![0; nreg];
        let mut def_node: Vec<Option<NodeId>> = vec![None; nreg];
        let mut readers: Vec<Vec<OpId>> = vec![Vec::new(); nreg];
        let mut copies: Vec<(NodeId, OpId)> = Vec::new();
        for &n in &nodes {
            for &(_, op) in g.node_ops(n) {
                let o = g.op(op);
                if let Some(d) = o.dest {
                    def_count[d.index()] += 1;
                    def_node[d.index()] = Some(n);
                }
                for r in o.reads() {
                    readers[r.index()].push(op);
                }
                if o.is_reg_copy() {
                    copies.push((n, op));
                }
            }
        }
        if seen.len() < g.node_index_bound() {
            seen.resize(g.node_index_bound(), 0);
        }
        let mut pass = 0;
        for (cn, op) in copies {
            if !g.node_exists(cn) || g.placement(op) != Some(cn) {
                continue;
            }
            // Re-read the copy's operands: earlier rewrites in this pass may
            // have redirected its source.
            let o = g.op(op);
            if !o.is_reg_copy() {
                continue;
            }
            let (Some(d), Some(src)) = (o.dest, o.src[0].reg()) else { continue };
            if d == src || def_count[d.index()] != 1 || def_count[src.index()] != 1 {
                continue;
            }
            let s_def = def_node[src.index()];
            // Forward reachability from the copy, stopping at s's def node
            // and at the copy's node (either resets the value relation).
            epoch += 1;
            let mut stack: Vec<NodeId> = g.unique_successors(cn).to_vec();
            while let Some(m) = stack.pop() {
                if seen[m.index()] == epoch {
                    continue;
                }
                seen[m.index()] = epoch;
                if Some(m) == s_def || m == cn {
                    continue; // include readers here, do not go past
                }
                stack.extend(g.unique_successors(m));
            }
            // Readers co-located with the copy fetch the *previous*
            // execution's value at entry; they must keep reading d.
            // Rewrite readers inside the safe set. The reader list may hold
            // stale entries (ops removed earlier this pass, or slots already
            // rewritten); re-checking placement and operands filters them —
            // exactly what the old whole-graph rescan established.
            let rd = std::mem::take(&mut readers[d.index()]);
            let mut rewritten_all = true;
            for &reader in &rd {
                if reader == op {
                    continue;
                }
                let Some(m) = g.placement(reader) else { continue };
                let reads_d = g.op(reader).src.iter().any(|x| x.reg() == Some(d));
                if !reads_d {
                    continue;
                }
                if seen[m.index()] == epoch && m != cn {
                    let o = g.op_mut(reader);
                    for slot in o.src.iter_mut() {
                        if slot.reg() == Some(d) {
                            *slot = grip_ir::Operand::Reg(src);
                        }
                    }
                    // The reader now reads `src`: a later copy whose dest is
                    // `src` (a copy-of-copy chain) must see it.
                    readers[src.index()].push(reader);
                } else {
                    rewritten_all = false;
                }
            }
            readers[d.index()] = rd;
            if rewritten_all && !g.live_out.contains(&d) && g.node_exists(cn) {
                g.remove_op_from(cn, op);
                // d has no definition now: no later copy in this pass may
                // treat it as single-def.
                def_count[d.index()] = 0;
                pass += 1;
            }
        }
        removed += pass;
        if pass == 0 {
            break;
        }
    }
    if removed > 0 {
        ctx.refresh(g);
    }
    removed
}

/// Delete `n` if it holds no operations and no jumps, splicing its
/// predecessors to its successor. Returns true if deleted.
///
/// Deletion is *not* neutral on a machine with multi-cycle latencies: an
/// empty row between a producer and a consumer is one cycle of issue
/// distance, and removing it can shrink an already-sufficient distance
/// back below the producer's latency (the re-shrink bug). Latency-aware
/// callers must use [`try_delete_empty_if`] with a hazard check instead.
pub fn try_delete_empty(g: &mut Graph, ctx: &mut Ctx<'_>, n: NodeId) -> bool {
    try_delete_empty_if(g, ctx, n, |_, _| true)
}

/// [`try_delete_empty`] guarded by a caller-supplied safety predicate:
/// the node is removed only when it is structurally deletable *and*
/// `safe(g, n)` agrees. The predicate runs after the structural checks,
/// immediately before the splice, so it sees exactly the graph that the
/// deletion would edit. Schedulers pass a producer-distance re-check here
/// (e.g. `grip_core::hazards::delete_would_create_hazard`) to keep their
/// schedules stall-free.
pub fn try_delete_empty_if(
    g: &mut Graph,
    ctx: &mut Ctx<'_>,
    n: NodeId,
    safe: impl FnOnce(&Graph, NodeId) -> bool,
) -> bool {
    if n == g.entry || !g.node_exists(n) {
        return false;
    }
    let instr = g.node(n);
    if !instr.tree.is_empty() {
        return false;
    }
    let succs = instr.tree.successors();
    if succs.first().copied() == Some(n) {
        return false; // degenerate self-loop
    }
    if !safe(g, n) {
        return false;
    }
    g.delete_empty_node(n);
    ctx.refresh_preds(g);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use grip_analysis::Ddg;
    use grip_ir::{OpKind, Operand, ProgramBuilder, Value};

    #[test]
    fn dead_ops_cascade() {
        // a=1; b=a+1; c=b+1 with nothing live: all three die.
        let mut b = ProgramBuilder::new();
        let a = b.named_reg("a");
        b.const_i(a, 1);
        let b1 = b.binary("b", OpKind::IAdd, Operand::Reg(a), Operand::Imm(Value::I(1)));
        let _c = b.binary("c", OpKind::IAdd, Operand::Reg(b1), Operand::Imm(Value::I(1)));
        let mut g = b.finish();
        let ddg = Ddg::build(&g, g.entry);
        let mut ctx = Ctx::new(&g, &ddg);
        let nodes: Vec<_> = g.reachable();
        let removed = eliminate_dead_ops(&mut g, &mut ctx, &nodes);
        assert_eq!(removed, 3);
        g.validate().unwrap();
    }

    #[test]
    fn live_out_protects_chain() {
        let mut b = ProgramBuilder::new();
        let a = b.named_reg("a");
        b.const_i(a, 1);
        let b1 = b.binary("b", OpKind::IAdd, Operand::Reg(a), Operand::Imm(Value::I(1)));
        let c = b.binary("c", OpKind::IAdd, Operand::Reg(b1), Operand::Imm(Value::I(1)));
        b.live_out(c);
        let mut g = b.finish();
        let ddg = Ddg::build(&g, g.entry);
        let mut ctx = Ctx::new(&g, &ddg);
        let nodes: Vec<_> = g.reachable();
        assert_eq!(eliminate_dead_ops(&mut g, &mut ctx, &nodes), 0);
    }

    #[test]
    fn empty_nodes_splice_out() {
        let mut b = ProgramBuilder::new();
        let a = b.named_reg("a");
        b.const_i(a, 1);
        let dead = b.binary("d", OpKind::IAdd, Operand::Reg(a), Operand::Imm(Value::I(1)));
        let c = b.binary("c", OpKind::IAdd, Operand::Reg(a), Operand::Imm(Value::I(2)));
        b.live_out(c);
        let mut g = b.finish();
        let _ = dead;
        let ddg = Ddg::build(&g, g.entry);
        let mut ctx = Ctx::new(&g, &ddg);
        let nodes: Vec<_> = g.reachable();
        let before = g.reachable().len();
        assert_eq!(eliminate_dead_ops(&mut g, &mut ctx, &nodes), 1);
        let empties: Vec<_> = g
            .reachable()
            .into_iter()
            .filter(|&n| g.node(n).tree.is_empty() && n != g.entry)
            .collect();
        for n in empties {
            assert!(try_delete_empty(&mut g, &mut ctx, n));
        }
        assert_eq!(g.reachable().len(), before - 1);
        g.validate().unwrap();
    }
}
