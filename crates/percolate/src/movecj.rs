//! `move-cj` (Figure 3): move a conditional jump one instruction up.
//!
//! The jump must be at the root of its instruction tree. `From` is split
//! into a true-residue and a false-residue (root ops duplicated into both,
//! exactly the figure's `From'`/`From''`), and the target leaf of `To`
//! becomes a branch on the jump whose sides reach the residues. The
//! transformation is never speculative: executions through the moved jump's
//! new position are exactly those that previously reached `From`.

use crate::ctx::Ctx;
use crate::moveop::{ops_on_path, MoveFail, MovePlan};
use grip_ir::{Graph, NodeId, OpId, OpKind, Tree, TreePath};

/// Artifacts of an applied `move-cj`.
#[derive(Clone, Copy, Debug)]
pub struct MoveCjOutcome {
    /// The true-side residue node (reuses `from`'s id).
    pub true_residue: NodeId,
    /// The false-side residue node (fresh clone).
    pub false_residue: NodeId,
    /// Clone of `from` created for its other predecessors, if any.
    pub split: Option<NodeId>,
}

/// Validate moving root jump `cj` of `from` into `to` at leaf `path`.
pub fn plan_move_cj(
    g: &Graph,
    ctx: &Ctx<'_>,
    from: NodeId,
    to: NodeId,
    cj: OpId,
    path: TreePath,
    pretend_removed: Option<OpId>,
) -> Result<MovePlan, MoveFail> {
    debug_assert_eq!(g.placement(cj), Some(from));
    match &g.node(from).tree {
        Tree::Branch { cj: root, .. } if *root == cj => {}
        _ => return Err(MoveFail::CjNotAtRoot),
    }
    let mut path_ops = ops_on_path(g, to, path);
    if let Some(pr) = pretend_removed {
        path_ops.retain(|&o| o != pr);
    }
    // True dependence on the condition register, with copy bypassing.
    let mut src = g.op(cj).src[0];
    let mut rewrites = Vec::new();
    let mut fuel = 8;
    while let Some(r) = src.reg() {
        let writer = path_ops.iter().copied().find(|&p| g.op(p).dest == Some(r));
        let Some(p) = writer else { break };
        let pref = g.op(p);
        if pref.kind == OpKind::Copy && fuel > 0 {
            src = pref.src[0];
            rewrites.push((0, src));
            fuel -= 1;
        } else {
            return Err(MoveFail::TrueDep { reader: cj, writer: p });
        }
    }
    let _ = ctx;
    Ok(MovePlan { rewrites, needs_rename: false, speculative: false })
}

/// Apply a planned `move-cj`.
pub fn apply_move_cj(
    g: &mut Graph,
    ctx: &mut Ctx<'_>,
    from: NodeId,
    to: NodeId,
    cj: OpId,
    path: TreePath,
    plan: &MovePlan,
) -> MoveCjOutcome {
    // Node splitting for other predecessors, exactly as in move-op.
    let mut split = None;
    let entry_edges: usize = ctx
        .preds
        .get(&from)
        .map(|ps| ps.iter().map(|&p| g.node(p).tree.leaf_paths_to(from).len()).sum())
        .unwrap_or(0);
    if entry_edges > 1 {
        let from_b = g.clone_node(from);
        let preds: Vec<NodeId> = ctx.preds.get(&from).cloned().unwrap_or_default();
        for p in preds {
            for lp in g.node(p).tree.leaf_paths_to(from) {
                if p == to && lp == path {
                    continue;
                }
                g.set_succ(p, lp, Some(from_b));
            }
        }
        ctx.lv.adopt(from_b, from);
        split = Some(from_b);
    }

    // False residue: clone keeps the false side (root ops merge into it).
    let false_residue = g.clone_node(from);
    g.remove_branch(false_residue, TreePath::ROOT, false);
    // True residue: `from` itself keeps the true side; the root cj pops out.
    let popped = g.remove_branch(from, TreePath::ROOT, true);
    debug_assert_eq!(popped, cj);

    for &(i, operand) in &plan.rewrites {
        g.op_mut(cj).src[i] = operand;
    }
    g.split_leaf(to, path, cj, Some(from), Some(false_residue));

    ctx.lv.adopt(false_residue, from);
    ctx.refresh_preds(g);
    if let Some(r) = g.op(cj).src[0].reg() {
        let preds = std::mem::take(&mut ctx.preds);
        ctx.lv.add_live_at(g, &preds, to, r);
        ctx.preds = preds;
    }

    MoveCjOutcome { true_residue: from, false_residue, split }
}

/// Plan + apply in one step.
pub fn move_cj(
    g: &mut Graph,
    ctx: &mut Ctx<'_>,
    from: NodeId,
    to: NodeId,
    cj: OpId,
    path: TreePath,
) -> Result<MoveCjOutcome, MoveFail> {
    let plan = plan_move_cj(g, ctx, from, to, cj, path, None)?;
    Ok(apply_move_cj(g, ctx, from, to, cj, path, &plan))
}
