//! Shared analysis state threaded through the core transformations.

use grip_analysis::{Ddg, Liveness, LivenessCache};
use grip_ir::{Graph, NodeId};
use std::collections::HashMap;

/// Analysis context for a percolation session: the (immutable) memory
/// dependence graph plus incrementally-maintained liveness and predecessor
/// maps.
///
/// Liveness is maintained *grow-only* between [`Ctx::refresh`] calls, which
/// can only over-approximate (spurious renamings, never unsound motion);
/// callers refresh at convenient boundaries (e.g. after each scheduled
/// node) to regain precision for dead-code removal.
pub struct Ctx<'a> {
    /// Memory dependences, keyed by `orig` op ids (see `grip-analysis`).
    pub ddg: &'a Ddg,
    /// Live-in register sets.
    pub lv: Liveness,
    /// Predecessor map, refreshed after structural edits.
    pub preds: HashMap<NodeId, Vec<NodeId>>,
    /// Per-node use/def summaries reused across liveness recomputes
    /// (stamp-keyed; see [`LivenessCache`]).
    lv_cache: LivenessCache,
}

impl<'a> Ctx<'a> {
    /// Build a context for the current graph state.
    pub fn new(g: &Graph, ddg: &'a Ddg) -> Ctx<'a> {
        let mut lv_cache = LivenessCache::default();
        let lv = Liveness::compute_with(g, &mut lv_cache);
        Ctx { ddg, lv, preds: g.predecessors(), lv_cache }
    }

    /// Fully recompute liveness and predecessors (precision reset).
    pub fn refresh(&mut self, g: &Graph) {
        self.lv = Liveness::compute_with(g, &mut self.lv_cache);
        self.preds = g.predecessors();
    }

    /// Recompute only the predecessor map (after structural edits).
    pub fn refresh_preds(&mut self, g: &Graph) {
        self.preds = g.predecessors();
    }
}
