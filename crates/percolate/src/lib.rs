//! # grip-percolate — Percolation Scheduling core transformations
//!
//! The semantics-preserving program transformations of §2 (Figures 2–4):
//!
//! * [`move_op`] — move an ordinary operation one instruction up, with
//!   forward substitution through copies, write-live / move-past-read
//!   renaming (fresh register + compensation copy), speculative motion for
//!   renameable ops, and node splitting for multi-predecessor sources;
//! * [`move_cj`] — move a root conditional jump up, splitting its
//!   instruction into true/false residues;
//! * [`plan_move_op`] / [`plan_move_cj`] — side-effect-free legality
//!   oracles (the Gapless-move test and the Unifiable-ops baseline both
//!   reason about hypothetical moves);
//! * dead-code removal and empty-node deletion ([`eliminate_dead_ops`],
//!   [`try_delete_empty`]) — the paper's incremental redundant-operation
//!   removal.
//!
//! Every transformation preserves observable behaviour; the test suites
//! check this by running the simulator before and after each edit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cleanup;
mod ctx;
mod movecj;
mod moveop;

pub use cleanup::{
    eliminate_dead_ops, propagate_copies, remove_if_dead, try_delete_empty, try_delete_empty_if,
};
pub use ctx::Ctx;
pub use movecj::{apply_move_cj, move_cj, plan_move_cj, MoveCjOutcome};
pub use moveop::{apply_move_op, move_op, plan_move_op, MoveFail, MoveOutcome, MovePlan};
