//! `move-op` (Figure 2): move an ordinary operation one instruction up.
//!
//! The transformation is split into a side-effect-free [`plan_move_op`]
//! (also used as the dry-run oracle by the Gapless-move test and the
//! Unifiable-ops baseline) and an [`apply_move_op`] that performs the edit,
//! including renaming and node splitting.

use crate::ctx::Ctx;
use grip_ir::{Graph, NodeId, OpId, OpKind, Operand, Operation, RegId, Tree, TreePath};

/// Why a move is illegal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MoveFail {
    /// `reader` consumes a value produced by `writer` on the target path —
    /// a true data dependence (§2), not removable by renaming.
    TrueDep {
        /// The operation attempting to move.
        reader: OpId,
        /// The producing operation in the target instruction.
        writer: OpId,
    },
    /// A memory dependence (`earlier` must stay before `later`).
    MemDep {
        /// The op that must execute first.
        earlier: OpId,
        /// The op that must execute later (the mover).
        later: OpId,
    },
    /// A store may not move speculatively (its effect cannot be renamed
    /// away or squashed on the unselected paths).
    SpeculativeStore,
    /// The conditional jump is not at the root of its instruction tree,
    /// so `move-cj` does not apply yet.
    CjNotAtRoot,
}

impl std::fmt::Display for MoveFail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MoveFail::TrueDep { reader, writer } => {
                write!(f, "true dependence: {reader} reads result of {writer}")
            }
            MoveFail::MemDep { earlier, later } => {
                write!(f, "memory dependence: {later} may not pass {earlier}")
            }
            MoveFail::SpeculativeStore => write!(f, "stores cannot move speculatively"),
            MoveFail::CjNotAtRoot => write!(f, "conditional jump not at tree root"),
        }
    }
}

/// A validated move, ready to apply.
#[derive(Clone, Debug, Default)]
pub struct MovePlan {
    /// Operand rewrites from copy bypassing: `(src index, new operand)`.
    pub rewrites: Vec<(usize, Operand)>,
    /// Renaming required (write-live / move-past-read / output conflict).
    pub needs_rename: bool,
    /// The op sits under a branch inside `from`: moving it commits it on
    /// paths that previously skipped it.
    pub speculative: bool,
}

/// Result of an applied move.
#[derive(Clone, Copy, Debug, Default)]
pub struct MoveOutcome {
    /// Fresh register and compensation-copy op when renaming fired.
    pub renamed: Option<(RegId, OpId)>,
    /// Clone of `from` created for its other predecessors (node splitting).
    pub split: Option<NodeId>,
}

/// Ops committing on `leaf_path` of `to`'s tree (cj of traversed branches
/// excluded — they write no registers).
pub(crate) fn ops_on_path(g: &Graph, to: NodeId, leaf_path: TreePath) -> Vec<OpId> {
    let mut out = Vec::new();
    g.node(to).tree.walk(&mut |p, t| {
        if p.is_prefix_of(leaf_path) {
            out.extend_from_slice(t.ops());
        }
    });
    out
}

/// Validate moving `op` from `from` into `to` at the end of `path` (a leaf
/// of `to` whose successor is `from`).
///
/// `pretend_removed`: evaluate as if that op had already left `to` — used
/// by the Gapless-move test's hypothetical reasoning ("given that Op
/// succeeded in moving to To", §3.3 condition 4).
pub fn plan_move_op(
    g: &Graph,
    ctx: &Ctx<'_>,
    from: NodeId,
    to: NodeId,
    op: OpId,
    path: TreePath,
    pretend_removed: Option<OpId>,
) -> Result<MovePlan, MoveFail> {
    debug_assert_eq!(g.placement(op), Some(from), "op must be placed in from");
    debug_assert!(
        matches!(g.node(to).tree.get(path), Some(Tree::Leaf { succ: Some(s), .. }) if *s == from),
        "path must be a leaf of to targeting from"
    );
    let opref = g.op(op);
    assert!(!opref.kind.is_cj(), "use plan_move_cj for conditional jumps");

    let q = g.node(from).tree.position_of(op).expect("op placed in from");
    let speculative = !q.is_empty();
    if speculative && opref.kind.is_store() {
        return Err(MoveFail::SpeculativeStore);
    }

    let mut path_ops = ops_on_path(g, to, path);
    if let Some(pr) = pretend_removed {
        path_ops.retain(|&o| o != pr);
    }

    // Memory dependences survive renaming; consult the prebuilt DDG.
    if opref.kind.is_mem() {
        for &p in &path_ops {
            let pref = g.op(p);
            if pref.kind.is_mem() && ctx.ddg.mem_dep(pref.orig, opref.orig) {
                return Err(MoveFail::MemDep { earlier: p, later: op });
            }
        }
    }

    // True dependences, with forward substitution through copies (§2:
    // "copy operations ... do not prevent code motion").
    let mut srcs = opref.src.clone();
    let mut rewrites = Vec::new();
    for (i, slot) in srcs.iter_mut().enumerate() {
        let mut fuel = 8;
        while let Some(r) = slot.reg() {
            let writer = path_ops.iter().copied().find(|&p| g.op(p).dest == Some(r));
            let Some(p) = writer else { break };
            let pk = g.op(p);
            if pk.kind == OpKind::Copy && fuel > 0 {
                *slot = pk.src[0];
                rewrites.push((i, *slot));
                fuel -= 1;
            } else {
                return Err(MoveFail::TrueDep { reader: op, writer: p });
            }
        }
    }

    // Write conflicts, dissolvable by renaming.
    let mut needs_rename = false;
    if let Some(d) = opref.dest {
        // Output conflict: another op on the path writes d.
        if path_ops.iter().any(|&p| g.op(p).dest == Some(d)) {
            needs_rename = true;
        }
        // Move-past-read: another op of `from` reads d at entry; it would
        // observe the new value once op commits one instruction earlier.
        if !needs_rename
            && g.node(from).tree.placed_ops().iter().any(|&(_, o)| o != op && g.op(o).reads_reg(d))
        {
            needs_rename = true;
        }
        // Write-live on the paths newly covered by a speculative move.
        if !needs_rename && speculative && spec_write_live(g, ctx, from, op, q, d) {
            needs_rename = true;
        }
    }

    Ok(MovePlan { rewrites, needs_rename, speculative })
}

/// Is `d` live along some path of `from` that does *not* pass the op's
/// guard position `q`? Those are the executions that newly commit the
/// speculatively moved op.
fn spec_write_live(
    g: &Graph,
    ctx: &Ctx<'_>,
    from: NodeId,
    op: OpId,
    q: TreePath,
    d: RegId,
) -> bool {
    let tree = &g.node(from).tree;
    for (leaf, succ) in tree.leaves() {
        if q.is_prefix_of(leaf) {
            continue; // op already committed here before the move
        }
        let mut redefined = false;
        tree.walk(&mut |p, t| {
            if p.is_prefix_of(leaf) {
                for &o in t.ops() {
                    if o != op && g.op(o).dest == Some(d) {
                        redefined = true;
                    }
                }
            }
        });
        if redefined {
            continue;
        }
        let live = match succ {
            Some(s) => ctx.lv.is_live_in(s, d),
            None => g.live_out.contains(&d),
        };
        if live {
            return true;
        }
    }
    false
}

/// Apply a planned move. Returns renaming/splitting artifacts.
pub fn apply_move_op(
    g: &mut Graph,
    ctx: &mut Ctx<'_>,
    from: NodeId,
    to: NodeId,
    op: OpId,
    path: TreePath,
    plan: &MovePlan,
) -> MoveOutcome {
    let q = g.node(from).tree.position_of(op).expect("op placed in from");

    // Node splitting: if `from` has entry edges other than (to, path), they
    // must keep seeing the op. Clone `from` for them; (to, path) keeps the
    // original, which loses the op below.
    let mut split = None;
    let entry_edges: usize = ctx
        .preds
        .get(&from)
        .map(|ps| ps.iter().map(|&p| g.node(p).tree.leaf_paths_to(from).len()).sum())
        .unwrap_or(0);
    if entry_edges > 1 {
        let from_b = g.clone_node(from);
        let preds: Vec<NodeId> = ctx.preds.get(&from).cloned().unwrap_or_default();
        for p in preds {
            for lp in g.node(p).tree.leaf_paths_to(from) {
                if p == to && lp == path {
                    continue;
                }
                g.set_succ(p, lp, Some(from_b));
            }
        }
        ctx.lv.adopt(from_b, from);
        split = Some(from_b);
    }

    g.remove_op_from(from, op);

    // Renaming: op writes a fresh register; a compensation copy at the old
    // guard position restores the original destination exactly where (and
    // when) the original wrote it.
    let mut renamed = None;
    if plan.needs_rename {
        let d = g.op(op).dest.expect("rename implies dest");
        let r = g.fresh_reg();
        g.op_mut(op).dest = Some(r);
        let mut c = Operation::new(OpKind::Copy, Some(d), vec![Operand::Reg(r)]);
        c.iter = g.op(op).iter;
        c.name = g.op(op).name.as_deref().map(|n| format!("{n}~").into());
        let cid = g.add_op(c);
        // The compensation copy inherits the moved op's ancestry so pattern
        // detection recognizes the copy as part of the same per-iteration
        // shape (and it ranks like the op it compensates for).
        g.op_mut(cid).orig = g.op(op).orig;
        g.insert_op_at(from, q, cid);
        renamed = Some((r, cid));
    }

    for &(i, operand) in &plan.rewrites {
        g.op_mut(op).src[i] = operand;
    }
    g.insert_op_at(to, path, op);

    if split.is_some() {
        ctx.refresh_preds(g);
    }
    let reads: Vec<RegId> = g.op(op).reads().collect();
    let preds = std::mem::take(&mut ctx.preds);
    for r in reads {
        ctx.lv.add_live_at(g, &preds, to, r);
    }
    if let Some((r, _)) = renamed {
        ctx.lv.add_live_at(g, &preds, from, r);
    }
    // The moved def now reaches its downstream readers *through* `from`:
    // its destination becomes live at `from`'s entry (the stale set still
    // has the kill from when the op lived there). Without this, the
    // incremental DCE would see the moved op as dead.
    if let Some(d) = g.op(op).dest {
        ctx.lv.add_live_at(g, &preds, from, d);
    }
    ctx.preds = preds;

    MoveOutcome { renamed, split }
}

/// Plan + apply in one step.
pub fn move_op(
    g: &mut Graph,
    ctx: &mut Ctx<'_>,
    from: NodeId,
    to: NodeId,
    op: OpId,
    path: TreePath,
) -> Result<MoveOutcome, MoveFail> {
    let plan = plan_move_op(g, ctx, from, to, op, path, None)?;
    Ok(apply_move_op(g, ctx, from, to, op, path, &plan))
}
