//! Semantic-equivalence tests for the core transformations: every move is
//! validated by running the program before and after on the simulator and
//! comparing all observable state.

use grip_analysis::Ddg;
use grip_ir::{
    Graph, NodeId, OpId, OpKind, Operand, Operation, ProgramBuilder, Tree, TreePath, Value,
};
use grip_percolate::{move_cj, move_op, plan_move_op, Ctx, MoveFail};
use grip_vm::{EquivReport, Machine};

/// Run `g` with inputs applied by `setup`; return the final machine.
fn run(g: &Graph, setup: &dyn Fn(&mut Machine)) -> Machine {
    let mut m = Machine::for_graph(g);
    setup(&mut m);
    m.run(g).unwrap_or_else(|e| panic!("execution failed: {e}\n{}", grip_ir::print::dump(g)));
    m
}

/// Assert `a` and `b` behave identically on the given inputs.
fn assert_equiv(a: &Graph, b: &Graph, setup: &dyn Fn(&mut Machine)) {
    let ma = run(a, setup);
    let mb = run(b, setup);
    let report = EquivReport::compare(a, &ma, &mb);
    assert!(
        report.is_equal(),
        "graphs diverged: {report:?}\nBEFORE:\n{}\nAFTER:\n{}",
        grip_ir::print::dump(a),
        grip_ir::print::dump(b)
    );
}

/// Find the node currently holding `op`.
fn node_of(g: &Graph, op: OpId) -> NodeId {
    g.placement(op).expect("op placed")
}

/// The (to, path) edge reaching `from` from its unique predecessor.
fn edge_into(g: &Graph, from: NodeId) -> (NodeId, TreePath) {
    let preds = g.predecessors();
    let ps = &preds[&from];
    assert_eq!(ps.len(), 1, "expected unique predecessor");
    let to = ps[0];
    let paths = g.node(to).tree.leaf_paths_to(from);
    assert_eq!(paths.len(), 1);
    (to, paths[0])
}

#[test]
fn independent_op_moves_up() {
    let mut b = ProgramBuilder::new();
    let x = b.named_reg("x");
    let y = b.named_reg("y");
    b.const_i(x, 1);
    let n2 = b.const_i(y, 2);
    let s = b.binary("s", OpKind::IAdd, Operand::Reg(x), Operand::Imm(Value::I(10)));
    b.live_out(s);
    b.live_out(y);
    let g0 = b.finish();
    let mut g = g0.clone();
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);

    // Move `s` (independent of y=2) up into n2.
    let s_op = g.node_ops(node_of(&g, g.node_ops(n2)[0].1)).to_vec();
    let _ = s_op;
    let s_node = g
        .reachable()
        .into_iter()
        .find(|&n| g.node_ops(n).iter().any(|&(_, o)| g.op(o).dest == Some(s)))
        .unwrap();
    let s_id = g.node_ops(s_node)[0].1;
    let (to, path) = edge_into(&g, s_node);
    assert_eq!(to, n2);
    let out = move_op(&mut g, &mut ctx, s_node, to, s_id, path).expect("legal move");
    assert!(out.renamed.is_none());
    assert!(out.split.is_none());
    assert_eq!(g.node_op_count(n2), 2);
    g.validate().unwrap();
    assert_equiv(&g0, &g, &|_| {});
}

#[test]
fn true_dependence_blocks() {
    let mut b = ProgramBuilder::new();
    let x = b.named_reg("x");
    b.const_i(x, 1);
    let y = b.binary("y", OpKind::IAdd, Operand::Reg(x), Operand::Imm(Value::I(1)));
    let z = b.binary("z", OpKind::IAdd, Operand::Reg(y), Operand::Imm(Value::I(1)));
    b.live_out(z);
    let mut g = b.finish();
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let z_node = g
        .reachable()
        .into_iter()
        .find(|&n| g.node_ops(n).iter().any(|&(_, o)| g.op(o).dest == Some(z)))
        .unwrap();
    let z_id = g.node_ops(z_node)[0].1;
    let (to, path) = edge_into(&g, z_node);
    match move_op(&mut g, &mut ctx, z_node, to, z_id, path) {
        Err(MoveFail::TrueDep { .. }) => {}
        other => panic!("expected TrueDep, got {other:?}"),
    }
}

#[test]
fn copy_bypass_rewrites_operand() {
    // n1: x = 7 ; n2: b = copy x ; n3: a = b + 1  — moving a into n2
    // rewrites its use of b into x (§2 renaming example).
    let mut b = ProgramBuilder::new();
    let x = b.named_reg("x");
    b.const_i(x, 7);
    let cpy = b.named_reg("b");
    b.copy(cpy, Operand::Reg(x));
    let a = b.binary("a", OpKind::IAdd, Operand::Reg(cpy), Operand::Imm(Value::I(1)));
    b.live_out(a);
    b.live_out(cpy);
    let g0 = b.finish();
    let mut g = g0.clone();
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let a_node = g
        .reachable()
        .into_iter()
        .find(|&n| g.node_ops(n).iter().any(|&(_, o)| g.op(o).dest == Some(a)))
        .unwrap();
    let a_id = g.node_ops(a_node)[0].1;
    let (to, path) = edge_into(&g, a_node);
    move_op(&mut g, &mut ctx, a_node, to, a_id, path).expect("copy must not block motion");
    assert_eq!(g.op(a_id).src[0], Operand::Reg(x), "use of b rewritten to x");
    g.validate().unwrap();
    assert_equiv(&g0, &g, &|_| {});
}

#[test]
fn same_instruction_read_in_target_needs_no_rename() {
    // Paper footnote 2: an op may write a register that is read in the same
    // instruction (entry-fetch semantics). Node A: r = d + 1; node B: d = 9.
    // Moving `d = 9` from B into A is legal without renaming — A's reader
    // still observes the entry value of d.
    let mut g = Graph::new();
    let d = g.named_reg("d");
    let r = g.named_reg("r");
    let read_op = g.add_op(Operation::new(
        OpKind::IAdd,
        Some(r),
        vec![Operand::Reg(d), Operand::Imm(Value::I(1))],
    ));
    let write_op = g.add_op(Operation::new(OpKind::Copy, Some(d), vec![Operand::Imm(Value::I(9))]));
    let nb = g.add_node(Tree::Leaf { ops: vec![write_op], succ: None });
    let na = g.add_node(Tree::Leaf { ops: vec![read_op], succ: Some(nb) });
    g.set_succ(g.entry, TreePath::ROOT, Some(na));
    g.live_out = vec![d, r];
    g.validate().unwrap();
    let g0 = g.clone();

    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let out = move_op(&mut g, &mut ctx, nb, na, write_op, TreePath::ROOT).expect("legal");
    assert!(out.renamed.is_none(), "reader in To sees entry values: no conflict");
    g.validate().unwrap();
    assert_equiv(&g0, &g, &|m| m.set_reg(d, Value::I(100)));
    let mut m = Machine::for_graph(&g);
    m.set_reg(d, Value::I(100));
    m.run(&g).unwrap();
    assert_eq!(m.reg(r), Some(Value::I(101)), "reader saw the OLD d");
    assert_eq!(m.reg(d), Some(Value::I(9)));
}

#[test]
fn move_past_read_renames() {
    // The real move-past-read: the *source* node still contains a reader of
    // the moved op's destination. B: { r = d + 1 ; d = 9 }, A empty.
    // Moving `d = 9` from B into A without renaming would make B's reader
    // see 9 instead of the entry value.
    let mut g = Graph::new();
    let d = g.named_reg("d");
    let r = g.named_reg("r");
    let read_op = g.add_op(Operation::new(
        OpKind::IAdd,
        Some(r),
        vec![Operand::Reg(d), Operand::Imm(Value::I(1))],
    ));
    let write_op = g.add_op(Operation::new(OpKind::Copy, Some(d), vec![Operand::Imm(Value::I(9))]));
    let nb = g.add_node(Tree::Leaf { ops: vec![read_op, write_op], succ: None });
    let na = g.add_node(Tree::leaf(Some(nb)));
    g.set_succ(g.entry, TreePath::ROOT, Some(na));
    g.live_out = vec![d, r];
    g.validate().unwrap();
    let g0 = g.clone();

    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let out = move_op(&mut g, &mut ctx, nb, na, write_op, TreePath::ROOT).expect("renamable");
    let (fresh, comp) = out.renamed.expect("move-past-read must rename");
    assert_eq!(g.op(write_op).dest, Some(fresh));
    assert_eq!(g.op(comp).kind, OpKind::Copy);
    assert_eq!(g.op(comp).dest, Some(d));
    g.validate().unwrap();
    assert_equiv(&g0, &g, &|m| m.set_reg(d, Value::I(100)));
    let mut m = Machine::for_graph(&g);
    m.set_reg(d, Value::I(100));
    m.run(&g).unwrap();
    assert_eq!(m.reg(r), Some(Value::I(101)), "reader kept the OLD d");
    assert_eq!(m.reg(d), Some(Value::I(9)));
}

#[test]
fn output_conflict_renames() {
    // node A: d = 1 ; node B: d = 2; moving B's op into A double-writes d
    // on one path → renaming with compensation copy preserves final d = 2.
    let mut g = Graph::new();
    let d = g.named_reg("d");
    let w1 = g.add_op(Operation::new(OpKind::Copy, Some(d), vec![Operand::Imm(Value::I(1))]));
    let w2 = g.add_op(Operation::new(OpKind::Copy, Some(d), vec![Operand::Imm(Value::I(2))]));
    let nb = g.add_node(Tree::Leaf { ops: vec![w2], succ: None });
    let na = g.add_node(Tree::Leaf { ops: vec![w1], succ: Some(nb) });
    g.set_succ(g.entry, TreePath::ROOT, Some(na));
    g.live_out = vec![d];
    let g0 = g.clone();
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let out = move_op(&mut g, &mut ctx, nb, na, w2, TreePath::ROOT).expect("renamable");
    assert!(out.renamed.is_some());
    g.validate().unwrap();
    assert_equiv(&g0, &g, &|_| {});
    let mut m = Machine::for_graph(&g);
    m.run(&g).unwrap();
    assert_eq!(m.reg(d), Some(Value::I(2)));
}

/// Build `entry -> hoist_target -> branch(c) { t: s1 } { f: s2 }` where s1
/// holds `vt = 5`, s2 holds `vf = 6`, and the branch node's true-leaf holds
/// a ready-to-hoist op.
fn branchy() -> (Graph, OpId, NodeId, NodeId, grip_ir::RegId, grip_ir::RegId, grip_ir::RegId) {
    let mut g = Graph::new();
    let c = g.named_reg("c");
    let vt = g.named_reg("vt");
    let vf = g.named_reg("vf");
    let cj = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(c)]));
    let opt = g.add_op(Operation::new(OpKind::Copy, Some(vt), vec![Operand::Imm(Value::I(5))]));
    let opf = g.add_op(Operation::new(OpKind::Copy, Some(vf), vec![Operand::Imm(Value::I(6))]));
    let s1 = g.add_node(Tree::Leaf { ops: vec![opt], succ: None });
    let s2 = g.add_node(Tree::Leaf { ops: vec![opf], succ: None });
    let br = g.add_node(Tree::Branch {
        ops: vec![],
        cj,
        on_true: Box::new(Tree::leaf(Some(s1))),
        on_false: Box::new(Tree::leaf(Some(s2))),
    });
    let pre = g.add_node(Tree::leaf(Some(br)));
    g.set_succ(g.entry, TreePath::ROOT, Some(pre));
    g.live_out = vec![vt, vf];
    g.validate().unwrap();
    (g, opt, s1, br, c, vt, vf)
}

#[test]
fn speculative_hoist_above_branch_renames_when_live() {
    // vt is live-out on both paths, so hoisting `vt = 5` from the true arm
    // above the branch must rename (the false path must NOT see vt = 5).
    let (g0, opt, s1, br, c, _vt, _) = branchy();
    let mut g = g0.clone();
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    // First move: s1 -> br (true-leaf position): non-speculative (s1's only
    // entry is that leaf).
    let paths = g.node(br).tree.leaf_paths_to(s1);
    let out = move_op(&mut g, &mut ctx, s1, br, opt, paths[0]).expect("into branch arm");
    assert!(out.renamed.is_none(), "landing on the guarding path needs no rename");
    g.validate().unwrap();
    assert_equiv(&g0, &g, &|m| m.set_reg(c, Value::B(true)));
    assert_equiv(&g0, &g, &|m| m.set_reg(c, Value::B(false)));

    // Second move: from the branch node's true-leaf up to `pre` — now the
    // op sits under the cj inside `br` (speculative) and vt is live on the
    // false path => rename.
    let from = g.placement(opt).unwrap();
    let (to, path) = edge_into(&g, from);
    let out = move_op(&mut g, &mut ctx, from, to, opt, path).expect("speculation is allowed");
    assert!(out.renamed.is_some(), "write-live on the false path forces renaming");
    g.validate().unwrap();
    assert_equiv(&g0, &g, &|m| m.set_reg(c, Value::B(true)));
    assert_equiv(&g0, &g, &|m| m.set_reg(c, Value::B(false)));
}

#[test]
fn speculative_hoist_without_liveness_skips_rename() {
    // Same shape, but vt is NOT observable on the false path (not live-out):
    // speculation needs no rename.
    let (mut g0, opt, s1, br, c, vt, vf) = branchy();
    g0.live_out = vec![vf]; // vt not observable
    let mut g = g0.clone();
    let _ = vt;
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let paths = g.node(br).tree.leaf_paths_to(s1);
    move_op(&mut g, &mut ctx, s1, br, opt, paths[0]).unwrap();
    let from = g.placement(opt).unwrap();
    let (to, path) = edge_into(&g, from);
    let out = move_op(&mut g, &mut ctx, from, to, opt, path).unwrap();
    assert!(out.renamed.is_none(), "dead on the uncovered path: no rename needed");
    g.validate().unwrap();
    assert_equiv(&g0, &g, &|m| m.set_reg(c, Value::B(false)));
}

#[test]
fn speculative_store_refused() {
    let mut g = Graph::new();
    let x = g.array("x", 4);
    let c = g.named_reg("c");
    let cj = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(c)]));
    let st = g.add_op(Operation::new(
        OpKind::Store(x),
        None,
        vec![Operand::Imm(Value::I(0)), Operand::Imm(Value::F(1.0))],
    ));
    let s1 = g.add_node(Tree::Leaf { ops: vec![st], succ: None });
    let s2 = g.add_node(Tree::leaf(None));
    let br = g.add_node(Tree::Branch {
        ops: vec![],
        cj,
        on_true: Box::new(Tree::leaf(Some(s1))),
        on_false: Box::new(Tree::leaf(Some(s2))),
    });
    let pre = g.add_node(Tree::leaf(Some(br)));
    g.set_succ(g.entry, TreePath::ROOT, Some(pre));
    g.validate().unwrap();
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    // Into the arm: fine (still guarded).
    let paths = g.node(br).tree.leaf_paths_to(s1);
    move_op(&mut g, &mut ctx, s1, br, st, paths[0]).expect("guarded store move is legal");
    // Above the branch: refused.
    let from = g.placement(st).unwrap();
    let (to, path) = edge_into(&g, from);
    assert_eq!(
        plan_move_op(&g, &ctx, from, to, st, path, None).unwrap_err(),
        MoveFail::SpeculativeStore
    );
}

#[test]
fn memory_dependence_blocks_load_over_store() {
    let mut b = ProgramBuilder::new();
    let x = b.array("x", 8);
    let k = b.named_reg("k");
    b.const_i(k, 2);
    b.store(x, Operand::Reg(k), 0, Operand::Imm(Value::F(7.0)));
    let t = b.load("t", x, Operand::Reg(k), 0);
    b.live_out(t);
    let mut g = b.finish();
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let t_node = g
        .reachable()
        .into_iter()
        .find(|&n| g.node_ops(n).iter().any(|&(_, o)| g.op(o).dest == Some(t)))
        .unwrap();
    let t_id = g.node_ops(t_node)[0].1;
    let (to, path) = edge_into(&g, t_node);
    match move_op(&mut g, &mut ctx, t_node, to, t_id, path) {
        Err(MoveFail::MemDep { .. }) => {}
        other => panic!("expected MemDep, got {other:?}"),
    }
}

#[test]
fn disambiguated_load_passes_store() {
    let mut b = ProgramBuilder::new();
    let x = b.array("x", 8);
    let k = b.named_reg("k");
    b.const_i(k, 2);
    b.store(x, Operand::Reg(k), 0, Operand::Imm(Value::F(7.0)));
    let t = b.load("t", x, Operand::Reg(k), 1); // x[k+1]: no alias
    b.live_out(t);
    let g0 = b.finish();
    let mut g = g0.clone();
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let t_node = g
        .reachable()
        .into_iter()
        .find(|&n| g.node_ops(n).iter().any(|&(_, o)| g.op(o).dest == Some(t)))
        .unwrap();
    let t_id = g.node_ops(t_node)[0].1;
    let (to, path) = edge_into(&g, t_node);
    move_op(&mut g, &mut ctx, t_node, to, t_id, path).expect("x[k+1] does not alias x[k]");
    g.validate().unwrap();
    assert_equiv(&g0, &g, &|m| m.set_array_f(x, &[0.0; 8]));
}

#[test]
fn multi_predecessor_split_preserves_both_paths() {
    // Two predecessors P1, P2 -> J (holding op) -> exit. Moving op from J
    // into P1 must leave a copy of J (with op) for P2.
    let mut g = Graph::new();
    let c = g.named_reg("c");
    let v = g.named_reg("v");
    let w = g.named_reg("w");
    let cj = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(c)]));
    let j_op = g.add_op(Operation::new(OpKind::Copy, Some(v), vec![Operand::Imm(Value::I(3))]));
    let p1_op = g.add_op(Operation::new(OpKind::Copy, Some(w), vec![Operand::Imm(Value::I(1))]));
    let p2_op = g.add_op(Operation::new(OpKind::Copy, Some(w), vec![Operand::Imm(Value::I(2))]));
    let j = g.add_node(Tree::Leaf { ops: vec![j_op], succ: None });
    let p1 = g.add_node(Tree::Leaf { ops: vec![p1_op], succ: Some(j) });
    let p2 = g.add_node(Tree::Leaf { ops: vec![p2_op], succ: Some(j) });
    let br = g.add_node(Tree::Branch {
        ops: vec![],
        cj,
        on_true: Box::new(Tree::leaf(Some(p1))),
        on_false: Box::new(Tree::leaf(Some(p2))),
    });
    g.set_succ(g.entry, TreePath::ROOT, Some(br));
    g.live_out = vec![v, w];
    g.validate().unwrap();
    let g0 = g.clone();
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let out = move_op(&mut g, &mut ctx, j, p1, j_op, TreePath::ROOT).expect("legal");
    let split = out.split.expect("second predecessor forces a split");
    assert_eq!(g.node_op_count(split), 1, "split copy keeps the op");
    assert_eq!(g.node_op_count(j), 0, "original lost the op");
    g.validate().unwrap();
    assert_equiv(&g0, &g, &|m| m.set_reg(c, Value::B(true)));
    assert_equiv(&g0, &g, &|m| m.set_reg(c, Value::B(false)));
}

#[test]
fn move_cj_hoists_latch_jump() {
    // k=0; loop { k+=1; c = k<3 }  — move the latch cj up into the compare
    // node, then simulate.
    let mut b = ProgramBuilder::new();
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    b.iadd_imm(k, k, 1);
    let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(3)));
    b.end_loop(c);
    let mut g = b.finish();
    g.live_out = vec![k];
    let g0 = g.clone();
    let li = g.loop_info.unwrap();
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    // latch holds the cj; predecessor is the compare node.
    let cj = match &g.node(li.latch).tree {
        Tree::Branch { cj, .. } => *cj,
        _ => panic!("latch must branch"),
    };
    let cmp_node = ctx.preds[&li.latch][0];
    let path = g.node(cmp_node).tree.leaf_paths_to(li.latch)[0];
    // The compare writes c which the cj reads: true dependence blocks.
    assert!(matches!(
        move_cj(&mut g, &mut ctx, li.latch, cmp_node, cj, path),
        Err(MoveFail::TrueDep { .. })
    ));
    // Moving into the iadd node below... instead pick the node above cmp:
    // rebuild: move cj into cmp's predecessor is not adjacent. So instead
    // verify a legal cj move: give cmp node a predecessor holding nothing
    // related: the iadd node writes k which c=cmp(k) reads, but the CJ
    // itself reads c — not written there → legal into iadd node? cj's From
    // is latch; its predecessor is cmp_node only. So test the adjacent legal
    // case by first moving the cj-blocking compare out of the way is
    // overkill here; assert the failure above and exercise a legal move on
    // a crafted pair below.
    let _ = g0;

    // Crafted: n1: a = 1 ; n2: branch(c0) {t: x=1} {f: x=2} with c0 defined
    // before n1. Move the cj from n2 into n1.
    let mut g = Graph::new();
    let c0 = g.named_reg("c0");
    let a = g.named_reg("a");
    let x = g.named_reg("x");
    let cj = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(c0)]));
    let xt = g.add_op(Operation::new(OpKind::Copy, Some(x), vec![Operand::Imm(Value::I(1))]));
    let xf = g.add_op(Operation::new(OpKind::Copy, Some(x), vec![Operand::Imm(Value::I(2))]));
    let a_op = g.add_op(Operation::new(OpKind::Copy, Some(a), vec![Operand::Imm(Value::I(9))]));
    let st = g.add_node(Tree::Leaf { ops: vec![xt], succ: None });
    let sf = g.add_node(Tree::Leaf { ops: vec![xf], succ: None });
    let n2 = g.add_node(Tree::Branch {
        ops: vec![],
        cj,
        on_true: Box::new(Tree::leaf(Some(st))),
        on_false: Box::new(Tree::leaf(Some(sf))),
    });
    let n1 = g.add_node(Tree::Leaf { ops: vec![a_op], succ: Some(n2) });
    g.set_succ(g.entry, TreePath::ROOT, Some(n1));
    g.live_out = vec![a, x];
    g.validate().unwrap();
    let g0 = g.clone();
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let out = move_cj(&mut g, &mut ctx, n2, n1, cj, TreePath::ROOT).expect("legal cj move");
    assert_eq!(g.node_cj_count(n1), 1, "n1 now branches");
    assert!(g.node(out.true_residue).tree.is_empty() || g.node_exists(out.true_residue));
    g.validate().unwrap();
    assert_equiv(&g0, &g, &|m| m.set_reg(c0, Value::B(true)));
    assert_equiv(&g0, &g, &|m| m.set_reg(c0, Value::B(false)));
}

#[test]
fn move_cj_duplicates_root_ops_into_residues() {
    // From: Branch(cj){ops:[r=5]} — the root op must appear in both
    // residues after the cj moves up.
    let mut g = Graph::new();
    let c0 = g.named_reg("c0");
    let r = g.named_reg("r");
    let cj = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(c0)]));
    let root_op = g.add_op(Operation::new(OpKind::Copy, Some(r), vec![Operand::Imm(Value::I(5))]));
    let t_exit = g.add_node(Tree::leaf(None));
    let f_exit = g.add_node(Tree::leaf(None));
    let from = g.add_node(Tree::Branch {
        ops: vec![root_op],
        cj,
        on_true: Box::new(Tree::leaf(Some(t_exit))),
        on_false: Box::new(Tree::leaf(Some(f_exit))),
    });
    let to = g.add_node(Tree::leaf(Some(from)));
    g.set_succ(g.entry, TreePath::ROOT, Some(to));
    g.live_out = vec![r];
    g.validate().unwrap();
    let g0 = g.clone();
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    let out = move_cj(&mut g, &mut ctx, from, to, cj, TreePath::ROOT).unwrap();
    assert_eq!(g.node_op_count(out.true_residue), 1);
    assert_eq!(g.node_op_count(out.false_residue), 1);
    // Both residue instances share the original ancestor.
    let t_ops = g.node_ops(out.true_residue);
    let f_ops = g.node_ops(out.false_residue);
    assert_eq!(g.op(t_ops[0].1).orig, g.op(f_ops[0].1).orig);
    g.validate().unwrap();
    assert_equiv(&g0, &g, &|m| m.set_reg(c0, Value::B(true)));
    assert_equiv(&g0, &g, &|m| m.set_reg(c0, Value::B(false)));
}

#[test]
fn chained_moves_compact_independent_ops_into_entry() {
    // Five independent ops percolate into one instruction via repeated
    // adjacent moves; program behaviour is unchanged and 4 nodes empty out.
    let mut b = ProgramBuilder::new();
    let mut regs = Vec::new();
    for i in 0..5 {
        let r = b.named_reg(&format!("r{i}"));
        b.const_i(r, i as i64);
        regs.push(r);
    }
    for &r in &regs {
        b.live_out(r);
    }
    let g0 = b.finish();
    let mut g = g0.clone();
    let ddg = Ddg::build(&g, g.entry);
    let mut ctx = Ctx::new(&g, &ddg);
    // Repeatedly move each op up until it reaches the first op node.
    let first = g.successors(g.entry)[0];
    let mut changed = true;
    while changed {
        changed = false;
        for n in g.reachable() {
            if n == g.entry || n == first || !g.node_exists(n) {
                continue;
            }
            let ops: Vec<OpId> = g.node_ops(n).iter().map(|&(_, o)| o).collect();
            for op in ops {
                let preds = g.predecessors();
                let Some(ps) = preds.get(&n) else { continue };
                if ps.len() != 1 {
                    continue;
                }
                let to = ps[0];
                if to == g.entry {
                    continue;
                }
                let path = g.node(to).tree.leaf_paths_to(n)[0];
                if move_op(&mut g, &mut ctx, n, to, op, path).is_ok() {
                    changed = true;
                }
            }
        }
    }
    assert_eq!(g.node_op_count(first), 5, "all five ops packed into one instruction");
    g.validate().unwrap();
    assert_equiv(&g0, &g, &|_| {});
}
