//! Property tests: arbitrary sequences of legal percolation moves on
//! randomly generated programs never change observable behaviour.

use grip_analysis::Ddg;
use grip_ir::{Graph, NodeId, OpId, OpKind, Operand, ProgramBuilder, Value};
use grip_percolate::{move_op, try_delete_empty, Ctx};
use grip_vm::{EquivReport, Machine};
use proptest::prelude::*;

/// A recipe for one random straight-line op.
#[derive(Clone, Debug)]
enum OpRecipe {
    /// `fresh = iadd prev_reg, imm`
    AddI(u8, i64),
    /// `fresh = mul prev_freg, imm`
    MulF(u8, i64),
    /// `fresh = load x[prev_reg mod idx]`
    Load(u8),
    /// `x[imm] = prev_freg`
    Store(u8, u8),
    /// `fresh = copy prev_reg`
    Copy(u8),
}

fn recipe_strategy() -> impl Strategy<Value = OpRecipe> {
    prop_oneof![
        (any::<u8>(), -4i64..5).prop_map(|(r, c)| OpRecipe::AddI(r, c)),
        (any::<u8>(), 1i64..4).prop_map(|(r, c)| OpRecipe::MulF(r, c)),
        any::<u8>().prop_map(OpRecipe::Load),
        (any::<u8>(), any::<u8>()).prop_map(|(i, r)| OpRecipe::Store(i, r)),
        any::<u8>().prop_map(OpRecipe::Copy),
    ]
}

/// Materialize a sequential program from recipes. Keeps separate i64 and
/// f64 register pools so programs are type-correct by construction.
fn build_program(recipes: &[OpRecipe]) -> Graph {
    let mut b = ProgramBuilder::new();
    let x = b.array("x", 16);
    let i0 = b.named_reg("i0");
    b.const_i(i0, 3);
    let f0 = b.named_reg("f0");
    b.const_f(f0, 1.5);
    let mut iregs = vec![i0];
    let mut fregs = vec![f0];
    for (n, r) in recipes.iter().enumerate() {
        match *r {
            OpRecipe::AddI(src, c) => {
                let s = iregs[src as usize % iregs.len()];
                let d = b.binary(
                    &format!("i{n}"),
                    OpKind::IAdd,
                    Operand::Reg(s),
                    Operand::Imm(Value::I(c)),
                );
                iregs.push(d);
            }
            OpRecipe::MulF(src, c) => {
                let s = fregs[src as usize % fregs.len()];
                let d = b.binary(
                    &format!("f{n}"),
                    OpKind::Mul,
                    Operand::Reg(s),
                    Operand::Imm(Value::F(c as f64)),
                );
                fregs.push(d);
            }
            OpRecipe::Load(idx) => {
                let d = b.load(&format!("l{n}"), x, Operand::Imm(Value::I((idx % 16) as i64)), 0);
                fregs.push(d);
            }
            OpRecipe::Store(idx, src) => {
                let v = fregs[src as usize % fregs.len()];
                b.store(x, Operand::Imm(Value::I((idx % 16) as i64)), 0, Operand::Reg(v));
            }
            OpRecipe::Copy(src) => {
                let s = iregs[src as usize % iregs.len()];
                let d = b.named_reg(&format!("c{n}"));
                b.copy(d, Operand::Reg(s));
                iregs.push(d);
            }
        }
    }
    for r in iregs.into_iter().chain(fregs) {
        b.live_out(r);
    }
    b.finish()
}

fn final_state(g: &Graph) -> Machine {
    let mut m = Machine::for_graph(g);
    m.run(g).expect("program must execute");
    m
}

/// Attempt `budget` pseudo-random adjacent upward moves; each one either
/// fails legality (fine) or must preserve semantics.
fn churn(g: &mut Graph, seed: u64, budget: usize) {
    let ddg = Ddg::build(g, g.entry);
    let mut ctx = Ctx::new(g, &ddg);
    let mut rng = seed;
    for _ in 0..budget {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let nodes: Vec<NodeId> = g
            .reachable()
            .into_iter()
            .filter(|&n| n != g.entry && g.node_op_count(n) > 0)
            .collect();
        if nodes.is_empty() {
            break;
        }
        let n = nodes[(rng >> 33) as usize % nodes.len()];
        let ops: Vec<OpId> = g.node_ops(n).into_iter().map(|(_, o)| o).collect();
        let op = ops[(rng >> 17) as usize % ops.len()];
        if g.op(op).kind.is_cj() {
            continue;
        }
        let preds = g.predecessors();
        let Some(ps) = preds.get(&n) else { continue };
        if ps.len() != 1 || ps[0] == g.entry {
            continue;
        }
        let to = ps[0];
        let paths = g.node(to).tree.leaf_paths_to(n);
        let _ = move_op(g, &mut ctx, n, to, op, paths[0]);
        if g.node_exists(n) && g.node(n).tree.is_empty() {
            try_delete_empty(g, &mut ctx, n);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_moves_preserve_semantics(
        recipes in proptest::collection::vec(recipe_strategy(), 1..24),
        seed in any::<u64>(),
    ) {
        let g0 = build_program(&recipes);
        g0.validate().unwrap();
        let mut g = g0.clone();
        churn(&mut g, seed, 40);
        g.validate().unwrap();
        let m0 = final_state(&g0);
        let m1 = final_state(&g);
        let report = EquivReport::compare(&g0, &m0, &m1);
        prop_assert!(report.is_equal(), "diverged: {report:?}");
    }

    #[test]
    fn churn_never_grows_program_order(
        recipes in proptest::collection::vec(recipe_strategy(), 1..16),
        seed in any::<u64>(),
    ) {
        // Straight-line programs have unique predecessors; no splits can
        // occur, so the op population must stay constant under churn.
        let g0 = build_program(&recipes);
        let count_ops = |g: &Graph| -> usize {
            g.reachable().iter().map(|&n| g.node_ops(n).len()).sum()
        };
        let before = count_ops(&g0);
        let mut g = g0.clone();
        churn(&mut g, seed, 40);
        // Renaming adds compensation copies; they are the only growth.
        let after = count_ops(&g);
        prop_assert!(after >= before);
        // And the graph still validates.
        g.validate().unwrap();
    }
}
