//! Rolling-window aggregation over the metrics registry: periodic
//! snapshots retained in a bounded deque, and windowed statistics
//! (deltas, rates, p50/p95/p99) computed by *subtracting* the oldest
//! in-window snapshot from a fresh one.
//!
//! Counters and histogram buckets are monotone, so the subtraction is
//! exact: the delta bucket array is precisely the histogram of samples
//! recorded inside the window, and quantiling it (via
//! [`crate::metrics::quantile_from_buckets`]) gives windowed percentiles
//! with the same bucket-bound accuracy as the cumulative histograms.
//! Gauges are not differenced — the newest value is the windowed value.
//!
//! A long-lived `grip-serve` ticks the [`global`] aggregator from a
//! sampler thread (~1 Hz) and answers `{"cmd":"stats"}` with
//! [`WindowStats::to_json`], so operators see "what's happening now",
//! not "since boot".

use crate::metrics::{quantile_from_buckets, Registry, SnapValue, Snapshot, BUCKETS};
use grip_json::Json;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default window width for the [`global`] aggregator.
pub const DEFAULT_WINDOW: Duration = Duration::from_secs(60);
/// Default cap on retained snapshots (at 1 Hz ticks this comfortably
/// covers the default window with room for bursty ticking).
pub const DEFAULT_SLOTS: usize = 128;

/// One windowed counter: how much it grew inside the window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CounterWindow {
    /// Increase over the window.
    pub delta: u64,
    /// `delta / elapsed` per second.
    pub rate: f64,
}

/// One windowed histogram: the distribution of samples recorded inside
/// the window.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistWindow {
    /// Samples recorded inside the window.
    pub count: u64,
    /// Sum of those samples.
    pub sum: u64,
    /// `count / elapsed` per second.
    pub rate: f64,
    /// Windowed p50 (bucket-bound approximate, like the cumulative
    /// quantiles).
    pub p50: u64,
    /// Windowed p95.
    pub p95: u64,
    /// Windowed p99.
    pub p99: u64,
}

/// Windowed statistics over every metric that moved inside the window.
/// Metrics with a zero delta are elided (readers treat absence as 0), so
/// a `stats` answer stays proportional to actual activity.
#[derive(Clone, Debug, Default)]
pub struct WindowStats {
    /// Actual width of the window this was computed over (the gap
    /// between the two snapshots differenced — at most the configured
    /// window, less right after boot).
    pub elapsed_s: f64,
    /// Snapshots currently retained.
    pub samples: usize,
    /// Counter deltas, in registration order.
    pub counters: Vec<(String, CounterWindow)>,
    /// Current gauge values, in registration order.
    pub gauges: Vec<(String, i64)>,
    /// Histogram windows, in registration order.
    pub histograms: Vec<(String, HistWindow)>,
}

impl WindowStats {
    /// Look up a windowed counter.
    pub fn counter(&self, name: &str) -> Option<&CounterWindow> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, w)| w)
    }

    /// Look up a windowed histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistWindow> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, w)| w)
    }

    /// JSON shape:
    /// `{"elapsed_s": …, "samples": …, "counters": {name: {delta, rate}},
    ///   "gauges": {name: v},
    ///   "histograms": {name: {count, sum, rate, p50, p95, p99}}}`.
    pub fn to_json(&self) -> Json {
        let counters = self.counters.iter().fold(Json::obj(), |acc, (name, w)| {
            acc.field(name, Json::obj().field("delta", w.delta).field("rate", w.rate))
        });
        let gauges = self.gauges.iter().fold(Json::obj(), |acc, (name, v)| acc.field(name, *v));
        let histograms = self.histograms.iter().fold(Json::obj(), |acc, (name, w)| {
            acc.field(
                name,
                Json::obj()
                    .field("count", w.count)
                    .field("sum", w.sum)
                    .field("rate", w.rate)
                    .field("p50", w.p50)
                    .field("p95", w.p95)
                    .field("p99", w.p99),
            )
        });
        Json::obj()
            .field("elapsed_s", self.elapsed_s)
            .field("samples", self.samples)
            .field("counters", counters)
            .field("gauges", gauges)
            .field("histograms", histograms)
    }
}

/// The aggregator: a bounded deque of timestamped snapshots.
pub struct WindowAggregator {
    window: Duration,
    max_slots: usize,
    inner: Mutex<VecDeque<(Instant, Snapshot)>>,
}

impl WindowAggregator {
    /// An aggregator over the last `window` of time, retaining at most
    /// `max_slots` snapshots.
    pub fn new(window: Duration, max_slots: usize) -> WindowAggregator {
        WindowAggregator { window, max_slots: max_slots.max(2), inner: Mutex::new(VecDeque::new()) }
    }

    /// Record a snapshot of `reg` now, pruning expired slots. One
    /// snapshot *older* than the window is kept as the subtraction
    /// baseline — without it, a freshly pruned aggregator would only
    /// cover the gap back to the second-oldest tick.
    pub fn tick_registry(&self, reg: &Registry) {
        let now = Instant::now();
        let snap = reg.snapshot();
        let mut slots = self.inner.lock().expect("window aggregator poisoned");
        slots.push_back((now, snap));
        let expired = |t: Instant| now.saturating_duration_since(t) > self.window;
        while slots.len() > 2 && expired(slots[1].0) {
            slots.pop_front();
        }
        while slots.len() > self.max_slots {
            slots.pop_front();
        }
    }

    /// Windowed stats: the difference between a fresh snapshot of `reg`
    /// and the oldest retained one. With no retained snapshots (never
    /// ticked), the window is empty — `elapsed_s` is 0 and every list is
    /// empty.
    pub fn stats_registry(&self, reg: &Registry) -> WindowStats {
        let now = Instant::now();
        let newest = reg.snapshot();
        let slots = self.inner.lock().expect("window aggregator poisoned");
        let Some((base_t, base)) = slots.front() else {
            return WindowStats::default();
        };
        let elapsed = now.saturating_duration_since(*base_t).as_secs_f64();
        let mut stats = window_between(base, &newest, elapsed);
        stats.samples = slots.len();
        stats
    }

    /// Snapshots currently retained (for tests and the sampler's own
    /// telemetry).
    pub fn samples(&self) -> usize {
        self.inner.lock().expect("window aggregator poisoned").len()
    }
}

/// Difference two snapshots of the same registry taken `elapsed_s`
/// apart (`base` first). Names only ever accumulate in registration
/// order, so `base` holds a prefix-set of `newest`'s names; metrics
/// born inside the window difference against an implicit zero.
pub fn window_between(base: &Snapshot, newest: &Snapshot, elapsed_s: f64) -> WindowStats {
    let rate = |n: u64| if elapsed_s > 0.0 { n as f64 / elapsed_s } else { 0.0 };
    let mut stats = WindowStats { elapsed_s, ..WindowStats::default() };
    for (name, v) in &newest.entries {
        let old = base.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v);
        match v {
            SnapValue::Counter(c) => {
                let prev = match old {
                    Some(SnapValue::Counter(p)) => *p,
                    _ => 0,
                };
                let delta = c.saturating_sub(prev);
                if delta > 0 {
                    stats.counters.push((name.clone(), CounterWindow { delta, rate: rate(delta) }));
                }
            }
            SnapValue::Gauge(g) => {
                if *g != 0 {
                    stats.gauges.push((name.clone(), *g));
                }
            }
            SnapValue::Histogram { count, sum, buckets } => {
                let (pc, ps, pb) = match old {
                    Some(SnapValue::Histogram { count, sum, buckets }) => {
                        (*count, *sum, Some(buckets))
                    }
                    _ => (0, 0, None),
                };
                let dcount = count.saturating_sub(pc);
                if dcount == 0 {
                    continue;
                }
                let mut delta = [0u64; BUCKETS];
                for (i, d) in delta.iter_mut().enumerate() {
                    let prev = pb.map_or(0, |b| b[i]);
                    *d = buckets[i].saturating_sub(prev);
                }
                stats.histograms.push((
                    name.clone(),
                    HistWindow {
                        count: dcount,
                        sum: sum.saturating_sub(ps),
                        rate: rate(dcount),
                        p50: quantile_from_buckets(&delta, 0.50),
                        p95: quantile_from_buckets(&delta, 0.95),
                        p99: quantile_from_buckets(&delta, 0.99),
                    },
                ));
            }
        }
    }
    stats
}

/// The process-wide aggregator over the global registry (60 s window),
/// ticked by `grip-serve`'s sampler thread.
pub fn global() -> &'static WindowAggregator {
    static GLOBAL: OnceLock<WindowAggregator> = OnceLock::new();
    GLOBAL.get_or_init(|| WindowAggregator::new(DEFAULT_WINDOW, DEFAULT_SLOTS))
}
