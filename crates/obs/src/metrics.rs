//! The process-wide metrics registry: named atomic counters, gauges, and
//! log2-bucketed histograms, with JSON and Prometheus exposition.
//!
//! Registration is name-keyed and idempotent: asking the registry for an
//! existing name returns a handle to the same underlying atomics, so any
//! code path can `global().counter("grip_hops_total")` without
//! coordination. Handles are `Arc`-backed — clone them out of the
//! registry once (the [`crate::counter!`] family caches per call site)
//! and updates are a single atomic op with no lock.

use grip_json::Json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (negative to decrease).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count for [`Histogram`]: bucket 0 holds zero, bucket `i ≥ 1`
/// holds `2^(i-1) <= v <= 2^i - 1` (inclusive upper bounds
/// `0, 1, 3, 7, 15, …`), and the last bucket catches everything above.
pub const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log2-bucketed histogram of non-negative integer samples
/// (nanoseconds, by convention).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The bucket index a value lands in (see [`BUCKETS`]).
pub fn bucket_index(v: u64) -> usize {
    match v {
        0 => 0,
        v => (64 - (v.leading_zeros() as usize)).min(BUCKETS - 1),
    }
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty, unregistered histogram (registered ones come from
    /// [`Registry::histogram`]).
    pub fn new() -> Histogram {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (index as in [`bucket_index`]).
    pub fn buckets(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }

    /// Approximate quantile (`q` in `0..=1`): the upper bound of the
    /// bucket containing the nearest-rank sample. Exact for samples that
    /// are bucket bounds; within a factor of 2 otherwise — good enough
    /// for the latency summaries this crate feeds.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_from_buckets(&self.buckets(), q)
    }
}

/// The nearest-rank quantile over a raw bucket-count array (index as in
/// [`bucket_index`]): the upper bound of the bucket holding the ranked
/// sample. Shared by [`Histogram::quantile`] and the windowed aggregator,
/// which quantiles over *delta* bucket arrays between two snapshots.
pub fn quantile_from_buckets(buckets: &[u64; BUCKETS], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let rank = ((total - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if c > 0 && seen > rank {
            return bucket_bound(i);
        }
    }
    bucket_bound(BUCKETS - 1)
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Default)]
struct RegInner {
    /// Names in registration order (exposition is deterministic given a
    /// deterministic registration order).
    order: Vec<String>,
    metrics: HashMap<String, Metric>,
    /// Explicit `# HELP` strings; families without one get a derived
    /// default at exposition time.
    help: HashMap<String, String>,
}

/// A named collection of metrics. Most code uses the process-wide
/// [`global`] registry; tests can build private ones.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Attach a `# HELP` string to `name` (first writer wins, so any call
    /// site can describe a metric without coordination). The two-argument
    /// forms of [`crate::counter!`] / [`crate::gauge!`] /
    /// [`crate::histogram!`] route through here.
    pub fn describe(&self, name: &str, help: &str) {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        inner.help.entry(name.to_string()).or_insert_with(|| help.to_string());
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &str,
        wrap: fn(T) -> Metric,
        unwrap: fn(&Metric) -> Option<T>,
        fresh: fn() -> T,
    ) -> T {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(m) = inner.metrics.get(name) {
            return unwrap(m).unwrap_or_else(|| {
                panic!("metric '{name}' already registered with a different type")
            });
        }
        let v = fresh();
        inner.order.push(name.to_string());
        inner.metrics.insert(name.to_string(), wrap(v.clone()));
        v
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(
            name,
            Metric::Counter,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            Counter::default,
        )
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(
            name,
            Metric::Gauge,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            Gauge::default,
        )
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.get_or_insert(
            name,
            Metric::Histogram,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            Histogram::new,
        )
    }

    /// A point-in-time copy of every metric, for exposition.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = Vec::with_capacity(inner.order.len());
        for name in &inner.order {
            let value = match &inner.metrics[name] {
                Metric::Counter(c) => SnapValue::Counter(c.get()),
                Metric::Gauge(g) => SnapValue::Gauge(g.get()),
                Metric::Histogram(h) => SnapValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    buckets: Box::new(h.buckets()),
                },
            };
            out.push((name.clone(), value));
        }
        Snapshot { entries: out, help: inner.help.clone() }
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One metric's value in a [`Snapshot`].
#[derive(Clone, Debug)]
pub enum SnapValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state (boxed: the bucket array dwarfs the other
    /// variants, and snapshots are cold-path).
    Histogram {
        /// Total samples.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Per-bucket counts.
        buckets: Box<[u64; BUCKETS]>,
    },
}

/// A point-in-time copy of a registry, in registration order.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Metric entries in registration order.
    pub entries: Vec<(String, SnapValue)>,
    /// Explicit help strings registered via [`Registry::describe`].
    pub help: HashMap<String, String>,
}

/// The derived `# HELP` text for a family with no explicit description:
/// states the metric kind and the `ns`-by-convention unit for histograms.
pub fn default_help(name: &str, v: &SnapValue) -> String {
    match v {
        SnapValue::Counter(_) => format!("Monotonic counter {name}."),
        SnapValue::Gauge(_) => format!("Gauge {name}."),
        SnapValue::Histogram { .. } => format!("Log2-bucketed histogram {name} (ns)."),
    }
}

impl Snapshot {
    /// Look up a counter by name (for tests and smoke checks).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            SnapValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries.iter().find_map(|(n, v)| match v {
            SnapValue::Gauge(g) if n == name => Some(*g),
            _ => None,
        })
    }

    /// Look up a histogram's `(count, sum)` by name.
    pub fn histogram(&self, name: &str) -> Option<(u64, u64)> {
        self.entries.iter().find_map(|(n, v)| match v {
            SnapValue::Histogram { count, sum, .. } if n == name => Some((*count, *sum)),
            _ => None,
        })
    }

    /// The JSON exposition: one field per metric; histograms become
    /// `{count, sum, buckets: [[bound, count], …]}` with empty buckets
    /// elided.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        for (name, v) in &self.entries {
            let value = match v {
                SnapValue::Counter(c) => Json::Int(*c as i64),
                SnapValue::Gauge(g) => Json::Int(*g),
                SnapValue::Histogram { count, sum, buckets } => {
                    let nonempty: Vec<Json> = buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| {
                            Json::Arr(vec![
                                Json::Int(bucket_bound(i).min(i64::MAX as u64) as i64),
                                Json::Int(c as i64),
                            ])
                        })
                        .collect();
                    Json::obj()
                        .field("count", *count)
                        .field("sum", *sum)
                        .field("buckets", Json::Arr(nonempty))
                }
            };
            j = j.field(name, value);
        }
        j
    }

    /// The Prometheus text exposition (histograms as cumulative
    /// `_bucket{le="…"}` series plus `_sum` / `_count`). Every family is
    /// announced by a `# HELP` / `# TYPE` pair — [`prometheus_lint`]
    /// enforces the pairing — using the registered description or a
    /// derived default.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.entries {
            let help =
                self.help.get(name).map_or_else(|| default_help(name, v), |h| escape_help(h));
            let _ = writeln!(out, "# HELP {name} {help}");
            match v {
                SnapValue::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {c}");
                }
                SnapValue::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {g}");
                }
                SnapValue::Histogram { count, sum, buckets } => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cum = 0u64;
                    for (i, &c) in buckets.iter().enumerate() {
                        cum += c;
                        // Elide empty tail buckets but keep the shape:
                        // always emit at least the +Inf bucket.
                        if c > 0 {
                            let _ =
                                writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_bound(i));
                        }
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                    let _ = writeln!(out, "{name}_sum {sum}");
                    let _ = writeln!(out, "{name}_count {count}");
                }
            }
        }
        out
    }
}

/// Escape a help string for a `# HELP` line: `\` and newline are the two
/// characters the exposition format escapes there.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Parse one `{label="value",…}` block (starting after the `{`), with
/// escape-aware quote scanning: inside a quoted value only `\\`, `\"`,
/// and `\n` are legal escapes. Returns the byte offset just past the
/// closing `}` on success.
fn lint_labels(s: &str) -> Result<usize, String> {
    let b = s.as_bytes();
    let mut i = 0;
    loop {
        // Label name.
        let start = i;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b':') {
            i += 1;
        }
        if i == start {
            return Err(if i < b.len() && b[i] == b'}' {
                // `{}` or a trailing comma: empty block is fine, dangling
                // comma is not (start > 0 means we consumed a comma).
                if start == 0 {
                    return Ok(i + 1);
                }
                "dangling comma in label block".to_string()
            } else {
                "empty label name".to_string()
            });
        }
        if !valid_name(&s[start..i]) {
            return Err(format!("bad label name {:?}", &s[start..i]));
        }
        if i >= b.len() || b[i] != b'=' {
            return Err("label name not followed by '='".to_string());
        }
        i += 1;
        if i >= b.len() || b[i] != b'"' {
            return Err("label value not quoted".to_string());
        }
        i += 1;
        // Scan the quoted value, validating escapes.
        loop {
            match b.get(i) {
                None => return Err("unterminated label value".to_string()),
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(b'\\') => match b.get(i + 1) {
                    Some(b'\\') | Some(b'"') | Some(b'n') => i += 2,
                    other => {
                        return Err(format!(
                            "bad escape \\{} in label value",
                            other.map_or(String::new(), |&c| (c as char).to_string())
                        ))
                    }
                },
                Some(_) => i += 1,
            }
        }
        match b.get(i) {
            Some(b'}') => return Ok(i + 1),
            Some(b',') => i += 1,
            _ => return Err("label pair not followed by ',' or '}'".to_string()),
        }
    }
}

/// The family block a `# TYPE` declaration opens: which sample names may
/// follow it before the next declaration.
struct Family {
    name: String,
    histogram: bool,
    saw_sample: bool,
}

impl Family {
    fn owns(&self, sample: &str) -> bool {
        if sample == self.name {
            return true;
        }
        self.histogram
            && sample
                .strip_prefix(self.name.as_str())
                .is_some_and(|suf| matches!(suf, "_bucket" | "_sum" | "_count"))
    }
}

/// Check a Prometheus text exposition for validity. Beyond per-line
/// shape (`metric_name[{label="value",…}] number`), this enforces the
/// declaration discipline the exposition format specifies and
/// [`Snapshot::to_prometheus`] emits:
///
/// * every `# TYPE` is immediately preceded by a `# HELP` for the same
///   metric, and every `# HELP` is immediately followed by its `# TYPE`
///   (pairing both ways); no family is declared twice;
/// * sample lines between a declaration and the next belong to the
///   declared family (for histograms: the name itself or its `_bucket` /
///   `_sum` / `_count` series), and no declared family is empty;
/// * label values are escape-checked (`\\`, `\"`, `\n` only) with a real
///   quote scanner, so an embedded `"` or stray backslash is caught.
///
/// Returns the first offending line. Used by the CI metrics smoke.
pub fn prometheus_lint(text: &str) -> Result<(), String> {
    let mut pending_help: Option<String> = None;
    let mut family: Option<Family> = None;
    let mut declared: std::collections::HashSet<String> = std::collections::HashSet::new();
    // Close out the current family block, checking it was not empty.
    fn close(family: &mut Option<Family>) -> Result<(), String> {
        match family.take() {
            Some(f) if !f.saw_sample => {
                Err(format!("family {} declared but has no samples", f.name))
            }
            _ => Ok(()),
        }
    }
    for (no, line) in text.lines().enumerate() {
        let at = |msg: String| format!("line {}: {msg}", no + 1);
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
            if !valid_name(name) {
                return Err(at(format!("bad metric name in HELP: {name:?}")));
            }
            if pending_help.is_some() {
                return Err(at(format!("HELP {name} follows a HELP with no TYPE")));
            }
            // HELP text escaping: only `\\` and `\n` are legal.
            let hb = help.as_bytes();
            let mut i = 0;
            while i < hb.len() {
                if hb[i] == b'\\' {
                    match hb.get(i + 1) {
                        Some(b'\\') | Some(b'n') => i += 2,
                        _ => return Err(at(format!("bad escape in HELP text for {name}"))),
                    }
                } else {
                    i += 1;
                }
            }
            close(&mut family).map_err(&at)?;
            pending_help = Some(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| at(format!("TYPE line missing a type: {line:?}")))?;
            if !valid_name(name) {
                return Err(at(format!("bad metric name in TYPE: {name:?}")));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(at(format!("unknown metric type {kind:?}")));
            }
            if pending_help.as_deref() != Some(name) {
                return Err(at(format!("TYPE {name} not immediately preceded by HELP {name}")));
            }
            pending_help = None;
            if !declared.insert(name.to_string()) {
                return Err(at(format!("family {name} declared twice")));
            }
            family = Some(Family {
                name: name.to_string(),
                histogram: matches!(kind, "histogram" | "summary"),
                saw_sample: false,
            });
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            // A plain comment or blank line breaks HELP/TYPE adjacency.
            if let Some(h) = pending_help.take() {
                return Err(at(format!("HELP {h} not immediately followed by TYPE {h}")));
            }
            continue;
        }
        if let Some(h) = pending_help.take() {
            return Err(at(format!("HELP {h} not immediately followed by TYPE {h}")));
        }
        // Sample line: name, optional labels, value.
        let bad = || at(format!("malformed sample line: {line:?}"));
        let (name, rest) = match line.find('{') {
            Some(open) => {
                let consumed =
                    lint_labels(&line[open + 1..]).map_err(|e| at(format!("{e}: {line:?}")))?;
                (&line[..open], &line[open + 1 + consumed..])
            }
            None => {
                let sp = line.find(' ').ok_or_else(bad)?;
                (&line[..sp], &line[sp..])
            }
        };
        if !valid_name(name) {
            return Err(at(format!("bad metric name {name:?}")));
        }
        let value = rest.trim();
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" && value != "NaN" {
            return Err(at(format!("bad sample value {value:?}")));
        }
        match family.as_mut() {
            Some(f) if f.owns(name) => f.saw_sample = true,
            Some(f) => {
                return Err(at(format!(
                    "sample {name} inside family block {} (undeclared family?)",
                    f.name
                )))
            }
            None => {} // untyped samples outside any block are legal
        }
    }
    if let Some(h) = pending_help {
        return Err(format!("HELP {h} not followed by TYPE {h}"));
    }
    close(&mut family).map_err(|e| format!("end of exposition: {e}"))?;
    Ok(())
}
