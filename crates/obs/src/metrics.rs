//! The process-wide metrics registry: named atomic counters, gauges, and
//! log2-bucketed histograms, with JSON and Prometheus exposition.
//!
//! Registration is name-keyed and idempotent: asking the registry for an
//! existing name returns a handle to the same underlying atomics, so any
//! code path can `global().counter("grip_hops_total")` without
//! coordination. Handles are `Arc`-backed — clone them out of the
//! registry once (the [`crate::counter!`] family caches per call site)
//! and updates are a single atomic op with no lock.

use grip_json::Json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `d` (negative to decrease).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count for [`Histogram`]: bucket 0 holds zero, bucket `i ≥ 1`
/// holds `2^(i-1) <= v <= 2^i - 1` (inclusive upper bounds
/// `0, 1, 3, 7, 15, …`), and the last bucket catches everything above.
pub const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log2-bucketed histogram of non-negative integer samples
/// (nanoseconds, by convention).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The bucket index a value lands in (see [`BUCKETS`]).
pub fn bucket_index(v: u64) -> usize {
    match v {
        0 => 0,
        v => (64 - (v.leading_zeros() as usize)).min(BUCKETS - 1),
    }
}

/// The inclusive upper bound of bucket `i` (`u64::MAX` for the last).
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// An empty, unregistered histogram (registered ones come from
    /// [`Registry::histogram`]).
    pub fn new() -> Histogram {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (index as in [`bucket_index`]).
    pub fn buckets(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }

    /// Approximate quantile (`q` in `0..=1`): the upper bound of the
    /// bucket containing the nearest-rank sample. Exact for samples that
    /// are bucket bounds; within a factor of 2 otherwise — good enough
    /// for the latency summaries this crate feeds.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((total - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        let buckets = self.buckets();
        for (i, &c) in buckets.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named collection of metrics. Most code uses the process-wide
/// [`global`] registry; tests can build private ones.
#[derive(Default)]
pub struct Registry {
    // Names in registration order (exposition is deterministic given a
    // deterministic registration order), values shared with handles.
    inner: Mutex<(Vec<String>, HashMap<String, Metric>)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_insert<T: Clone>(
        &self,
        name: &str,
        wrap: fn(T) -> Metric,
        unwrap: fn(&Metric) -> Option<T>,
        fresh: fn() -> T,
    ) -> T {
        let mut inner = self.inner.lock().expect("metrics registry poisoned");
        if let Some(m) = inner.1.get(name) {
            return unwrap(m).unwrap_or_else(|| {
                panic!("metric '{name}' already registered with a different type")
            });
        }
        let v = fresh();
        inner.0.push(name.to_string());
        inner.1.insert(name.to_string(), wrap(v.clone()));
        v
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(
            name,
            Metric::Counter,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            Counter::default,
        )
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(
            name,
            Metric::Gauge,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            Gauge::default,
        )
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.get_or_insert(
            name,
            Metric::Histogram,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            Histogram::new,
        )
    }

    /// A point-in-time copy of every metric, for exposition.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("metrics registry poisoned");
        let mut out = Vec::with_capacity(inner.0.len());
        for name in &inner.0 {
            let value = match &inner.1[name] {
                Metric::Counter(c) => SnapValue::Counter(c.get()),
                Metric::Gauge(g) => SnapValue::Gauge(g.get()),
                Metric::Histogram(h) => SnapValue::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    buckets: Box::new(h.buckets()),
                },
            };
            out.push((name.clone(), value));
        }
        Snapshot(out)
    }
}

/// The process-wide registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One metric's value in a [`Snapshot`].
#[derive(Clone, Debug)]
pub enum SnapValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state (boxed: the bucket array dwarfs the other
    /// variants, and snapshots are cold-path).
    Histogram {
        /// Total samples.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Per-bucket counts.
        buckets: Box<[u64; BUCKETS]>,
    },
}

/// A point-in-time copy of a registry, in registration order.
#[derive(Clone, Debug)]
pub struct Snapshot(pub Vec<(String, SnapValue)>);

impl Snapshot {
    /// Look up a counter by name (for tests and smoke checks).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.0.iter().find_map(|(n, v)| match v {
            SnapValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// The JSON exposition: one field per metric; histograms become
    /// `{count, sum, buckets: [[bound, count], …]}` with empty buckets
    /// elided.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj();
        for (name, v) in &self.0 {
            let value = match v {
                SnapValue::Counter(c) => Json::Int(*c as i64),
                SnapValue::Gauge(g) => Json::Int(*g),
                SnapValue::Histogram { count, sum, buckets } => {
                    let nonempty: Vec<Json> = buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| {
                            Json::Arr(vec![
                                Json::Int(bucket_bound(i).min(i64::MAX as u64) as i64),
                                Json::Int(c as i64),
                            ])
                        })
                        .collect();
                    Json::obj()
                        .field("count", *count)
                        .field("sum", *sum)
                        .field("buckets", Json::Arr(nonempty))
                }
            };
            j = j.field(name, value);
        }
        j
    }

    /// The Prometheus text exposition (histograms as cumulative
    /// `_bucket{le="…"}` series plus `_sum` / `_count`).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.0 {
            match v {
                SnapValue::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {c}");
                }
                SnapValue::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {g}");
                }
                SnapValue::Histogram { count, sum, buckets } => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cum = 0u64;
                    for (i, &c) in buckets.iter().enumerate() {
                        cum += c;
                        // Elide empty tail buckets but keep the shape:
                        // always emit at least the +Inf bucket.
                        if c > 0 {
                            let _ =
                                writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", bucket_bound(i));
                        }
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {count}");
                    let _ = writeln!(out, "{name}_sum {sum}");
                    let _ = writeln!(out, "{name}_count {count}");
                }
            }
        }
        out
    }
}

/// Check a Prometheus text exposition for line-format validity: every
/// line is a `# …` comment or `metric_name[{label="value",…}] number`.
/// Returns the first offending line. Used by the CI metrics smoke.
pub fn prometheus_lint(text: &str) -> Result<(), String> {
    fn valid_name(s: &str) -> bool {
        !s.is_empty()
            && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
            && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
    for (no, line) in text.lines().enumerate() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = || format!("line {}: malformed sample line: {line:?}", no + 1);
        // Split off an optional {labels} block.
        let (name, rest) = match line.find('{') {
            Some(open) => {
                let close = line.find('}').ok_or_else(bad)?;
                if close < open {
                    return Err(bad());
                }
                let labels = &line[open + 1..close];
                for pair in labels.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair.split_once('=').ok_or_else(bad)?;
                    if !valid_name(k) || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                        return Err(bad());
                    }
                }
                (&line[..open], &line[close + 1..])
            }
            None => {
                let sp = line.find(' ').ok_or_else(bad)?;
                (&line[..sp], &line[sp..])
            }
        };
        if !valid_name(name) {
            return Err(format!("line {}: bad metric name {name:?}", no + 1));
        }
        let value = rest.trim();
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" && value != "NaN" {
            return Err(format!("line {}: bad sample value {value:?}", no + 1));
        }
    }
    Ok(())
}
