//! The flight recorder: a bounded ring-buffer journal of structured
//! per-request records, written once per request completion, plus a
//! second ring that retains *slow* requests (wall time over a
//! configurable threshold) with their full span tree and scheduler pass
//! counters for later dump.
//!
//! The write path is deliberately lock-cheap: one short `Mutex` critical
//! section per completed request (push + bounded pop on two `VecDeque`s
//! — no allocation beyond the record itself, no I/O, no formatting).
//! Readout ([`FlightRecorder::recent`] / [`FlightRecorder::slow`]) is
//! cold-path and clones records out, so the protocol's
//! `{"cmd":"events"}` handler never holds the lock while serializing.
//!
//! Timestamps are nanoseconds relative to the recorder's own monotonic
//! epoch (its construction instant), so `enqueue_ns < dequeue_ns <
//! finish_ns` orders events across shards without any wall-clock
//! ambiguity. Records round-trip through `grip-json` for the wire.
//!
//! Like everything in this crate, recording is observation-only: nothing
//! here feeds back into scheduling decisions, so schedules stay
//! bit-identical with the recorder enabled.

use crate::span::StageBreakdown;
use grip_json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default capacity of the main ring (most-recent completions).
pub const DEFAULT_CAPACITY: usize = 1024;
/// Default capacity of the slow-request ring.
pub const DEFAULT_SLOW_CAPACITY: usize = 64;

/// The retained detail of a slow request: the full span tree (every
/// distinct span name with its self time, `build`/`grip`/… included, not
/// just the six folded wire stages) and the scheduler's pass counters.
/// Name/value pairs keep this crate a leaf — it never sees the
/// scheduler's stats struct.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlowCapture {
    /// `(span name, self nanoseconds)` for every span of the request.
    pub spans: Vec<(String, u64)>,
    /// `(counter name, value)` scheduler pass counters (iterations,
    /// moves, probes, sweeps, …).
    pub counters: Vec<(String, u64)>,
}

impl SlowCapture {
    /// JSON shape: `{"spans": {name: ns, …}, "counters": {name: v, …}}`.
    pub fn to_json(&self) -> Json {
        let fold = |pairs: &[(String, u64)]| {
            pairs.iter().fold(Json::obj(), |acc, (k, v)| acc.field(k, *v))
        };
        Json::obj().field("spans", fold(&self.spans)).field("counters", fold(&self.counters))
    }

    /// Parse the [`SlowCapture::to_json`] shape.
    pub fn from_json(j: &Json) -> SlowCapture {
        let unfold = |j: Option<&Json>| -> Vec<(String, u64)> {
            match j {
                Some(Json::Obj(fields)) => fields
                    .iter()
                    .map(|(k, v)| (k.clone(), v.as_i64().unwrap_or(0).max(0) as u64))
                    .collect(),
                _ => Vec::new(),
            }
        };
        SlowCapture { spans: unfold(j.get("spans")), counters: unfold(j.get("counters")) }
    }
}

/// One completed request, as journaled by the engine. Everything the
/// post-hoc questions need: who (trace id, kernel, machine, shard), when
/// (queue and stage timeline), what happened (cache outcome, audit and
/// bounds summary), and what came out (result digest). `slow` is only
/// populated when the request's wall time crossed the recorder's
/// threshold.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlightRecord {
    /// The request's trace id (client-provided or shard-assigned).
    pub trace_id: String,
    /// Kernel name (e.g. `LL5`).
    pub kernel: String,
    /// Machine preset name (e.g. `epic8`).
    pub machine: String,
    /// Shard that processed the request.
    pub shard: u64,
    /// Request completed without error.
    pub ok: bool,
    /// Schedule was VM-verified against sequential execution.
    pub verified: bool,
    /// Cache outcome as the protocol spells it (`cold` / `hit` /
    /// `ddg_hit`).
    pub cache: String,
    /// Submission time (recorder-epoch nanoseconds).
    pub enqueue_ns: u64,
    /// Time a shard worker picked the request up.
    pub dequeue_ns: u64,
    /// Completion time.
    pub finish_ns: u64,
    /// `dequeue - enqueue`: time spent waiting in the shard queue.
    pub queue_wait_ns: u64,
    /// Processing wall time (the engine's collect scope).
    pub wall_ns: u64,
    /// The six-stage wire breakdown of `wall_ns`.
    pub stages: StageBreakdown,
    /// Diagnostic count from the static audit (0 = clean; 0 when the
    /// audit did not run).
    pub audit_diagnostics: u64,
    /// The proven lower bound on steady-window cycles (0 when the
    /// certificate was not computed).
    pub bound_cycles: u64,
    /// The schedule achieved its proven bound exactly.
    pub at_bound: bool,
    /// FNV digest of the verifying VM's final state.
    pub result_digest: u64,
    /// Full span tree + pass counters, retained only for slow requests.
    pub slow: Option<SlowCapture>,
}

impl FlightRecord {
    /// JSON shape (digest as a 16-hex string, matching the protocol's
    /// digest fields; `slow` elided when absent).
    pub fn to_json(&self) -> Json {
        let s = &self.stages;
        let mut j = Json::obj()
            .field("trace", self.trace_id.as_str())
            .field("kernel", self.kernel.as_str())
            .field("machine", self.machine.as_str())
            .field("shard", self.shard)
            .field("ok", self.ok)
            .field("verified", self.verified)
            .field("cache", self.cache.as_str())
            .field("enqueue_ns", self.enqueue_ns)
            .field("dequeue_ns", self.dequeue_ns)
            .field("finish_ns", self.finish_ns)
            .field("queue_wait_ns", self.queue_wait_ns)
            .field("wall_ns", self.wall_ns)
            .field(
                "stages",
                Json::obj()
                    .field("prepare_ns", s.prepare_ns)
                    .field("schedule_ns", s.schedule_ns)
                    .field("hazards_ns", s.hazards_ns)
                    .field("verify_ns", s.verify_ns)
                    .field("audit_ns", s.audit_ns)
                    .field("bounds_ns", s.bounds_ns)
                    .field("total_ns", s.total_ns),
            )
            .field("audit_diagnostics", self.audit_diagnostics)
            .field("bound_cycles", self.bound_cycles)
            .field("at_bound", self.at_bound)
            .field("digest", format!("{:016x}", self.result_digest));
        if let Some(slow) = &self.slow {
            j = j.field("slow", slow.to_json());
        }
        j
    }

    /// Parse the [`FlightRecord::to_json`] shape (missing fields default;
    /// used by `grip-client` to validate the `events` command round-trip).
    pub fn from_json(j: &Json) -> FlightRecord {
        let s = |name: &str| j.get(name).and_then(Json::as_str).unwrap_or("").to_string();
        let u = |name: &str| j.get(name).and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
        let b = |name: &str| j.get(name).and_then(Json::as_bool).unwrap_or(false);
        let stages = j.get("stages").map_or(StageBreakdown::default(), |t| {
            let tu = |name: &str| t.get(name).and_then(Json::as_i64).unwrap_or(0).max(0) as u64;
            StageBreakdown {
                prepare_ns: tu("prepare_ns"),
                schedule_ns: tu("schedule_ns"),
                hazards_ns: tu("hazards_ns"),
                verify_ns: tu("verify_ns"),
                audit_ns: tu("audit_ns"),
                bounds_ns: tu("bounds_ns"),
                total_ns: tu("total_ns"),
            }
        });
        FlightRecord {
            trace_id: s("trace"),
            kernel: s("kernel"),
            machine: s("machine"),
            shard: u("shard"),
            ok: b("ok"),
            verified: b("verified"),
            cache: s("cache"),
            enqueue_ns: u("enqueue_ns"),
            dequeue_ns: u("dequeue_ns"),
            finish_ns: u("finish_ns"),
            queue_wait_ns: u("queue_wait_ns"),
            wall_ns: u("wall_ns"),
            stages,
            audit_diagnostics: u("audit_diagnostics"),
            bound_cycles: u("bound_cycles"),
            at_bound: b("at_bound"),
            result_digest: j
                .get("digest")
                .and_then(Json::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok())
                .unwrap_or(0),
            slow: j.get("slow").map(SlowCapture::from_json),
        }
    }
}

struct Rings {
    recent: VecDeque<FlightRecord>,
    slow: VecDeque<FlightRecord>,
    capacity: usize,
    slow_capacity: usize,
}

/// The journal itself: two bounded rings behind one mutex (see module
/// docs), a monotonic epoch for timestamping, and the slow threshold.
pub struct FlightRecorder {
    epoch: Instant,
    /// Wall-time threshold above which a request's [`SlowCapture`] is
    /// retained; `u64::MAX` disables slow capture.
    slow_threshold_ns: AtomicU64,
    recorded: AtomicU64,
    inner: Mutex<Rings>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_CAPACITY, DEFAULT_SLOW_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder with the given ring capacities (both at least 1).
    pub fn new(capacity: usize, slow_capacity: usize) -> FlightRecorder {
        FlightRecorder {
            epoch: Instant::now(),
            slow_threshold_ns: AtomicU64::new(u64::MAX),
            recorded: AtomicU64::new(0),
            inner: Mutex::new(Rings {
                recent: VecDeque::with_capacity(capacity.max(1)),
                slow: VecDeque::new(),
                capacity: capacity.max(1),
                slow_capacity: slow_capacity.max(1),
            }),
        }
    }

    /// Nanoseconds since the recorder's epoch, for stamping a record
    /// field "now".
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Convert an [`Instant`] captured elsewhere (e.g. the pool's
    /// enqueue time) to recorder-epoch nanoseconds. Instants predating
    /// the epoch clamp to 0.
    pub fn ns_of(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch).as_nanos() as u64
    }

    /// The current slow-capture threshold (`u64::MAX` = disabled).
    pub fn slow_threshold_ns(&self) -> u64 {
        self.slow_threshold_ns.load(Ordering::Relaxed)
    }

    /// Set the slow-capture threshold. The engine consults this *before*
    /// building a record, so the (allocation-heavy) span tree is only
    /// assembled for requests that cross it.
    pub fn set_slow_threshold_ns(&self, ns: u64) {
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Journal one completed request. Records carrying a [`SlowCapture`]
    /// are additionally retained in the slow ring, which the main ring's
    /// wraparound cannot evict.
    pub fn record(&self, rec: FlightRecord) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut rings = self.inner.lock().expect("flight recorder poisoned");
        if rec.slow.is_some() {
            if rings.slow.len() == rings.slow_capacity {
                rings.slow.pop_front();
            }
            rings.slow.push_back(rec.clone());
        }
        if rings.recent.len() == rings.capacity {
            rings.recent.pop_front();
        }
        rings.recent.push_back(rec);
    }

    /// Total records ever journaled (including ones the rings evicted).
    pub fn total_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// The last `n` records, most recent first.
    pub fn recent(&self, n: usize) -> Vec<FlightRecord> {
        let rings = self.inner.lock().expect("flight recorder poisoned");
        rings.recent.iter().rev().take(n).cloned().collect()
    }

    /// The last `n` slow-captured records, most recent first.
    pub fn slow(&self, n: usize) -> Vec<FlightRecord> {
        let rings = self.inner.lock().expect("flight recorder poisoned");
        rings.slow.iter().rev().take(n).cloned().collect()
    }
}

/// The process-wide recorder (default capacities), used by the service
/// engine and the protocol's `events` command.
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(FlightRecorder::default)
}
