//! # grip-obs — observability for the scheduling stack
//!
//! The container is offline, so this crate is std-only (same constraint
//! as `grip-json`). It provides the three layers the rest of the
//! workspace instruments itself with:
//!
//! * **Spans** ([`span`] / the [`span!`] macro): hierarchical scopes
//!   timed with the monotonic clock on a thread-local stack. A guard
//!   records its *self time* (elapsed minus time spent in child spans)
//!   on drop, so a set of nested stage spans always decomposes a wall
//!   interval into disjoint pieces — that is what lets the bench gates
//!   assert "per-stage times sum to wall time".
//! * **Metrics** ([`metrics`]): a process-wide registry of atomic
//!   counters, gauges, and log2-bucketed latency histograms. Handles are
//!   `Arc`-backed and cheap to clone; hot paths cache them in
//!   `OnceLock` statics via [`counter!`] / [`histogram!`].
//! * **Exposition**: a JSON snapshot (via `grip-json`, served by the
//!   protocol's `{"cmd":"metrics"}`) and a Prometheus-style text format
//!   (checked by [`metrics::prometheus_lint`] in CI).
//!
//! The hard rule: instrumentation must not perturb results. Nothing in
//! this crate feeds back into scheduling decisions — spans only read the
//! clock, metrics only bump atomics — so schedules stay bit-identical
//! with tracing on.
//!
//! Naming scheme (see the README's Observability section):
//! counters are `grip_<subsystem>_<what>_total`, gauges are
//! `grip_<what>`, and per-stage latency histograms are
//! `grip_stage_self_ns_<stage>` (self time, nanoseconds).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod events;
pub mod metrics;
pub mod span;
pub mod window;

pub use events::{FlightRecord, FlightRecorder, SlowCapture};
pub use metrics::{global, Counter, Gauge, Histogram, Registry, Snapshot};
pub use span::{collect, enter, SpanGuard, StageBreakdown, StageTimings};
pub use window::{WindowAggregator, WindowStats};

/// Open a named span scope: `let _g = span!("schedule");`. The span ends
/// (and records its self time) when the guard drops, including during
/// unwinding.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

/// A process-wide counter handle, resolved once per call site:
/// `counter!("grip_hops_total").add(n)`. The two-argument form also
/// registers a `# HELP` description for the Prometheus exposition:
/// `counter!("grip_hops_total", "Committed scheduler hops.")`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<$crate::metrics::Counter> = std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::global().counter($name))
    }};
    ($name:expr, $help:expr) => {{
        static HANDLE: std::sync::OnceLock<$crate::metrics::Counter> = std::sync::OnceLock::new();
        HANDLE.get_or_init(|| {
            $crate::metrics::global().describe($name, $help);
            $crate::metrics::global().counter($name)
        })
    }};
}

/// A process-wide gauge handle, resolved once per call site. The
/// two-argument form also registers a `# HELP` description.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<$crate::metrics::Gauge> = std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::global().gauge($name))
    }};
    ($name:expr, $help:expr) => {{
        static HANDLE: std::sync::OnceLock<$crate::metrics::Gauge> = std::sync::OnceLock::new();
        HANDLE.get_or_init(|| {
            $crate::metrics::global().describe($name, $help);
            $crate::metrics::global().gauge($name)
        })
    }};
}

/// A process-wide histogram handle, resolved once per call site. The
/// two-argument form also registers a `# HELP` description.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<$crate::metrics::Histogram> = std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::global().histogram($name))
    }};
    ($name:expr, $help:expr) => {{
        static HANDLE: std::sync::OnceLock<$crate::metrics::Histogram> = std::sync::OnceLock::new();
        HANDLE.get_or_init(|| {
            $crate::metrics::global().describe($name, $help);
            $crate::metrics::global().histogram($name)
        })
    }};
}
