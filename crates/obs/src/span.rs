//! Hierarchical spans on a thread-local stack, with per-request stage
//! collection.
//!
//! A span is opened with [`enter`] (or the [`crate::span!`] macro) and
//! closed by dropping the returned [`SpanGuard`] — including during a
//! panic unwind, so the stack never skews. On close a span records its
//! **self time** (wall elapsed minus the elapsed time of its child
//! spans):
//!
//! * into the thread's active [`StageTimings`] collector, if a
//!   [`collect`] scope is running (this is how the service engine gets a
//!   per-request `prepare`/`schedule`/`hazards`/`verify` breakdown
//!   without threading a context through every pipeline signature), and
//! * into the process-wide registry histogram
//!   `grip_stage_self_ns_<name>`, so long-running servers expose stage
//!   latency distributions over their whole lifetime.
//!
//! Self-time attribution is what makes stage sums meaningful: nested
//! spans (`schedule` → `grip` → `hazards`) decompose an interval into
//! disjoint pieces, so summing every stage of a request can be compared
//! against its wall time — the "no unaccounted time" bench gate.

use std::cell::RefCell;
use std::time::Instant;

struct Frame {
    name: &'static str,
    start: Instant,
    /// Total wall nanoseconds spent in already-closed direct children.
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static COLLECTOR: RefCell<Option<StageTimings>> = const { RefCell::new(None) };
}

/// Per-stage self-time sums collected over one [`collect`] scope,
/// in first-seen order (repeated spans of the same name accumulate).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// `(stage name, self nanoseconds)` per distinct span name.
    pub stages: Vec<(&'static str, u64)>,
    /// Wall nanoseconds of the whole collect scope.
    pub total_ns: u64,
}

impl StageTimings {
    /// Self nanoseconds recorded under `name` (0 if the stage never ran).
    pub fn get(&self, name: &str) -> u64 {
        self.stages.iter().find(|(n, _)| *n == name).map_or(0, |&(_, ns)| ns)
    }

    /// Sum of every recorded stage.
    pub fn stage_sum_ns(&self) -> u64 {
        self.stages.iter().map(|&(_, ns)| ns).sum()
    }

    fn add(&mut self, name: &'static str, ns: u64) {
        match self.stages.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => *total += ns,
            None => self.stages.push((name, ns)),
        }
    }
}

/// The fixed wire shape of a request's stage breakdown: the six stages
/// the protocol and both bench JSONs report, in nanoseconds. `build`
/// (kernel construction + hashing) is folded into `prepare`; `grip`
/// (the scheduler proper) into `schedule`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Kernel build + unwind + induction folding + DDG construction.
    pub prepare_ns: u64,
    /// GRiP scheduling, pattern detection, re-rolling.
    pub schedule_ns: u64,
    /// The hazard-resolution post-pass (delay rows, backfill, reclaim).
    pub hazards_ns: u64,
    /// Model runs of both programs, bitwise comparison, state digest.
    pub verify_ns: u64,
    /// The static audit of the scheduled window (`grip-audit`), when run.
    pub audit_ns: u64,
    /// The optimality-bound certificate (`grip-bounds`), when computed.
    pub bounds_ns: u64,
    /// Wall nanoseconds of the whole measured scope.
    pub total_ns: u64,
}

impl StageBreakdown {
    /// Fold raw stage timings into the wire shape.
    pub fn from_timings(t: &StageTimings) -> StageBreakdown {
        StageBreakdown {
            prepare_ns: t.get("prepare") + t.get("build"),
            schedule_ns: t.get("schedule") + t.get("grip"),
            hazards_ns: t.get("hazards"),
            verify_ns: t.get("verify"),
            audit_ns: t.get("audit"),
            bounds_ns: t.get("bounds"),
            total_ns: t.total_ns,
        }
    }

    /// Sum of the six stages (everything but `total_ns`).
    pub fn stage_sum_ns(&self) -> u64 {
        self.prepare_ns
            + self.schedule_ns
            + self.hazards_ns
            + self.verify_ns
            + self.audit_ns
            + self.bounds_ns
    }
}

/// RAII guard for one span; closing records self time (see module docs).
#[must_use = "a span ends when its guard drops"]
pub struct SpanGuard {
    name: &'static str,
    /// Stack depth this guard expects to pop back to (guards against a
    /// leaked/forgotten inner guard leaving the stack skewed).
    depth: usize,
}

/// Open a span named `name` on this thread's span stack.
pub fn enter(name: &'static str) -> SpanGuard {
    let depth = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(Frame { name, start: Instant::now(), child_ns: 0 });
        s.len() - 1
    });
    SpanGuard { name, depth }
}

/// The current span path, root-first (`["schedule", "grip"]`); empty
/// outside any span. For diagnostics — stage attribution uses leaf names.
pub fn current_path() -> Vec<&'static str> {
    STACK.with(|s| s.borrow().iter().map(|f| f.name).collect())
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let recorded = STACK.with(|s| {
            let mut s = s.borrow_mut();
            // A forgotten inner guard (mem::forget) leaves orphan frames
            // above ours; discard them rather than mis-attributing time.
            s.truncate(self.depth + 1);
            let frame = s.pop()?;
            debug_assert_eq!(frame.name, self.name, "span stack skewed");
            let elapsed = frame.start.elapsed().as_nanos() as u64;
            if let Some(parent) = s.last_mut() {
                parent.child_ns += elapsed;
            }
            Some((frame.name, elapsed.saturating_sub(frame.child_ns)))
        });
        let Some((name, self_ns)) = recorded else { return };
        COLLECTOR.with(|c| {
            if let Some(t) = c.borrow_mut().as_mut() {
                t.add(name, self_ns);
            }
        });
        crate::metrics::global().histogram(&format!("grip_stage_self_ns_{name}")).record(self_ns);
    }
}

/// Run `f` with a fresh stage collector installed on this thread and
/// return its result plus the accumulated [`StageTimings`]. Nested
/// collects stack: the inner scope's stages are invisible to the outer
/// collector (but the inner scope's *spans* still roll up into any open
/// outer span's elapsed time).
pub fn collect<T>(f: impl FnOnce() -> T) -> (T, StageTimings) {
    let prev = COLLECTOR.with(|c| c.borrow_mut().replace(StageTimings::default()));
    let t0 = Instant::now();
    // Restore the outer collector even if `f` panics, so a caught panic
    // (e.g. a shard worker surviving a bad request) cannot leak a stale
    // collector into the next request.
    struct Restore(Option<StageTimings>);
    impl Drop for Restore {
        fn drop(&mut self) {
            COLLECTOR.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let mut restore = Restore(prev);
    let out = f();
    let mut timings = COLLECTOR
        .with(|c| std::mem::replace(&mut *c.borrow_mut(), restore.0.take()))
        .unwrap_or_default();
    std::mem::forget(restore);
    timings.total_ns = t0.elapsed().as_nanos() as u64;
    (out, timings)
}
