//! grip-obs invariants: registry concurrency, histogram bucket
//! boundaries, span nesting self-time accounting, unwind safety, and
//! exposition formats.

use grip_obs::metrics::{bucket_bound, bucket_index, prometheus_lint, Registry, BUCKETS};
use grip_obs::span::{collect, current_path, enter};
use grip_obs::{span, Histogram};

#[test]
fn counters_survive_a_thread_hammering() {
    let reg = Registry::new();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let c = reg.counter("hammered_total");
            let g = reg.gauge("seesaw");
            let h = reg.histogram("hist_ns");
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    g.add(if (i + t as u64) % 2 == 0 { 1 } else { -1 });
                    h.record(i);
                }
            });
        }
    });
    assert_eq!(reg.counter("hammered_total").get(), THREADS as u64 * PER_THREAD);
    assert_eq!(reg.gauge("seesaw").get(), 0, "balanced adds cancel");
    let h = reg.histogram("hist_ns");
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    assert_eq!(h.sum(), THREADS as u64 * (PER_THREAD * (PER_THREAD - 1) / 2));
    // Registration is idempotent: same handle, not a second metric.
    assert_eq!(reg.snapshot().entries.len(), 3);
}

#[test]
fn histogram_bucket_boundaries_are_powers_of_two() {
    // Bucket 0 holds zero; bucket i ≥ 1 holds [2^(i-1), 2^i - 1].
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(7), 3);
    assert_eq!(bucket_index(8), 4);
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    for i in 1..BUCKETS - 1 {
        let hi = bucket_bound(i);
        assert_eq!(bucket_index(hi), i, "upper bound stays in its bucket");
        assert_eq!(bucket_index(hi + 1), i + 1, "bound+1 spills into the next");
    }
    assert_eq!(bucket_bound(0), 0);
    assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);

    let h = Histogram::new();
    for v in [0, 1, 2, 3, 4, 1023, 1024] {
        h.record(v);
    }
    let b = h.buckets();
    assert_eq!(b[0], 1, "zero");
    assert_eq!(b[1], 1, "one");
    assert_eq!(b[2], 2, "two and three");
    assert_eq!(b[3], 1, "four");
    assert_eq!(b[10], 1, "1023 = 2^10 - 1");
    assert_eq!(b[11], 1, "1024 = 2^10");
    assert_eq!(h.count(), 7);
}

#[test]
fn histogram_quantiles_are_bucket_bounds() {
    let h = Histogram::new();
    for _ in 0..99 {
        h.record(10); // bucket 4, bound 15
    }
    h.record(1_000_000);
    assert_eq!(h.quantile(0.5), 15);
    assert!(h.quantile(1.0) >= 1_000_000);
    assert_eq!(Histogram::new().quantile(0.5), 0, "empty histogram");
}

#[test]
fn nested_spans_decompose_into_disjoint_self_times() {
    let ((), t) = collect(|| {
        let _outer = span!("outer_stage");
        assert_eq!(current_path(), vec!["outer_stage"]);
        busy(5);
        {
            let _inner = span!("inner_stage");
            assert_eq!(current_path(), vec!["outer_stage", "inner_stage"]);
            busy(5);
        }
        busy(1);
    });
    assert!(current_path().is_empty(), "stack drains");
    let outer = t.get("outer_stage");
    let inner = t.get("inner_stage");
    assert!(outer > 0 && inner > 0, "both stages recorded: {t:?}");
    // Self times are disjoint: their sum cannot exceed the wall total.
    assert!(
        t.stage_sum_ns() <= t.total_ns,
        "stage sum {} must be within wall {}",
        t.stage_sum_ns(),
        t.total_ns
    );
    // And the two stages cover nearly all of it (the gap is collect's
    // own bookkeeping, well under 20% of a ~10ms scope).
    assert!((outer + inner) as f64 >= 0.8 * t.total_ns as f64, "{t:?}");
}

#[test]
fn repeated_stages_accumulate_and_unknown_stages_read_zero() {
    let ((), t) = collect(|| {
        for _ in 0..3 {
            let _g = span!("loop_stage");
            busy(1);
        }
    });
    assert_eq!(t.stages.len(), 1, "one entry per distinct name");
    assert!(t.get("loop_stage") > 0);
    assert_eq!(t.get("never_ran"), 0);
}

#[test]
fn spans_unwind_safely_through_panics() {
    let ((), t) = collect(|| {
        let caught = std::panic::catch_unwind(|| {
            let _outer = enter("panicking_outer");
            let _inner = enter("panicking_inner");
            busy(1);
            panic!("boom");
        });
        assert!(caught.is_err());
        // Both guards dropped during unwind: the stack is clean and both
        // stages were still recorded.
        assert!(current_path().is_empty(), "unwind drains the stack");
        let _after = span!("after_panic");
        busy(1);
    });
    assert!(t.get("panicking_outer") > 0, "{t:?}");
    assert!(t.get("panicking_inner") > 0, "{t:?}");
    assert!(t.get("after_panic") > 0, "{t:?}");
}

#[test]
fn nested_collects_do_not_leak_into_each_other() {
    let ((), outer) = collect(|| {
        let _g = span!("outer_only");
        busy(1);
        let ((), inner) = collect(|| {
            let _g = span!("inner_only");
            busy(1);
        });
        assert!(inner.get("inner_only") > 0);
        assert_eq!(inner.get("outer_only"), 0);
    });
    assert!(outer.get("outer_only") > 0);
    assert_eq!(outer.get("inner_only"), 0, "inner scope invisible outside: {outer:?}");
}

#[test]
fn snapshot_exposes_json_and_prometheus() {
    let reg = Registry::new();
    reg.counter("grip_test_events_total").add(7);
    reg.gauge("grip_test_depth").set(-3);
    let h = reg.histogram("grip_test_latency_ns");
    h.record(0);
    h.record(100);
    h.record(1 << 40);

    let snap = reg.snapshot();
    assert_eq!(snap.counter("grip_test_events_total"), Some(7));

    // JSON parses back through grip-json and carries the values.
    let j = grip_json::Json::parse(&snap.to_json().line()).expect("snapshot JSON parses");
    assert_eq!(j.get("grip_test_events_total").and_then(grip_json::Json::as_i64), Some(7));
    assert_eq!(j.get("grip_test_depth").and_then(grip_json::Json::as_i64), Some(-3));
    let hist = j.get("grip_test_latency_ns").expect("histogram field");
    assert_eq!(hist.get("count").and_then(grip_json::Json::as_i64), Some(3));

    // Prometheus text passes the lint and carries the series.
    let text = snap.to_prometheus();
    prometheus_lint(&text).expect("well-formed exposition");
    assert!(text.contains("# TYPE grip_test_events_total counter"));
    assert!(text.contains("grip_test_events_total 7"));
    assert!(text.contains("grip_test_depth -3"));
    assert!(text.contains("grip_test_latency_ns_count 3"));
    assert!(text.contains("_bucket{le=\"+Inf\"} 3"));
}

#[test]
fn prometheus_lint_rejects_malformed_lines() {
    assert!(prometheus_lint("ok_metric 1\n# a comment\nwith_labels{le=\"5\"} 2.5\n").is_ok());
    for bad in [
        "no value line\n",     // name with spaces, no numeric value
        "9leading_digit 1\n",  // bad name
        "metric{le=5} 1\n",    // unquoted label value
        "metric{le=\"5\" 1\n", // unclosed brace
        "metric notanumber\n", // bad value
    ] {
        assert!(prometheus_lint(bad).is_err(), "{bad:?} should fail the lint");
    }
}

#[test]
fn prometheus_lint_enforces_help_type_pairing() {
    // The well-formed shape: HELP immediately followed by TYPE, then the
    // family's samples.
    let good = "# HELP m_total What m counts.\n# TYPE m_total counter\nm_total 3\n";
    assert!(prometheus_lint(good).is_ok());
    let good_hist = "# HELP h_ns Latency.\n# TYPE h_ns histogram\n\
                     h_ns_bucket{le=\"1\"} 1\nh_ns_bucket{le=\"+Inf\"} 2\nh_ns_sum 9\nh_ns_count 2\n";
    assert!(prometheus_lint(good_hist).is_ok());
    for (bad, why) in [
        ("# TYPE m_total counter\nm_total 3\n", "TYPE without HELP"),
        ("# HELP m_total Help.\nm_total 3\n", "HELP without TYPE"),
        ("# HELP m_total Help.\n# TYPE other counter\nother 1\n", "HELP/TYPE name mismatch"),
        ("# HELP m Help.\n# TYPE m counter\n", "declared family with no samples"),
        (
            "# HELP m Help.\n# TYPE m counter\nm 1\n# HELP m Help.\n# TYPE m counter\nm 2\n",
            "family declared twice",
        ),
        ("# HELP m Help.\n# TYPE m counter\nintruder 1\n", "foreign sample inside a family"),
        ("# HELP m Help.\n# TYPE m widget\nm 1\n", "unknown metric type"),
        ("# HELP m bad \\q escape.\n# TYPE m counter\nm 1\n", "bad HELP escape"),
    ] {
        assert!(prometheus_lint(bad).is_err(), "{why}: {bad:?} should fail the lint");
    }
}

#[test]
fn prometheus_lint_checks_label_escaping() {
    assert!(prometheus_lint("m{k=\"a\\\\b\\\"c\\nd\"} 1\n").is_ok(), "legal escapes");
    for (bad, why) in [
        ("m{k=\"a\\qb\"} 1\n", "unknown escape"),
        ("m{k=\"a\\\"} 1\n", "escape eats the closing quote"),
        ("m{k=\"v\",} 1\n", "dangling comma"),
        ("m{=\"v\"} 1\n", "empty label name"),
        ("m{k=\"v\"x=\"y\"} 1\n", "missing comma between pairs"),
    ] {
        assert!(prometheus_lint(bad).is_err(), "{why}: {bad:?} should fail the lint");
    }
}

#[test]
fn exposition_emits_paired_help_lines() {
    let reg = Registry::new();
    reg.describe("helped_total", "An explicitly described counter.");
    reg.counter("helped_total").add(1);
    reg.counter("unhelped_total").add(2);
    let text = reg.snapshot().to_prometheus();
    prometheus_lint(&text).expect("exposition passes its own lint");
    assert!(text.contains("# HELP helped_total An explicitly described counter.\n"));
    assert!(text.contains("# HELP unhelped_total "), "derived default HELP for {text}");
    // Pairing: each HELP is directly followed by its TYPE.
    let lines: Vec<&str> = text.lines().collect();
    for (i, l) in lines.iter().enumerate() {
        if let Some(rest) = l.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap();
            assert!(
                lines[i + 1].starts_with(&format!("# TYPE {name} ")),
                "HELP {name} not followed by its TYPE in {text}"
            );
        }
    }
}

/// Spin for at least `ms` milliseconds of wall time (sleep granularity is
/// too coarse for self-time assertions on a loaded CI box).
fn busy(ms: u64) {
    let t0 = std::time::Instant::now();
    while t0.elapsed().as_millis() < ms as u128 {
        std::hint::spin_loop();
    }
}

mod recorder {
    use grip_obs::events::{FlightRecord, FlightRecorder, SlowCapture};
    use grip_obs::StageBreakdown;

    fn rec(trace: &str, wall_ns: u64, slow: bool) -> FlightRecord {
        FlightRecord {
            trace_id: trace.to_string(),
            kernel: "LL5".to_string(),
            machine: "epic8".to_string(),
            shard: 3,
            ok: true,
            verified: true,
            cache: "cold".to_string(),
            enqueue_ns: 10,
            dequeue_ns: 25,
            finish_ns: 25 + wall_ns,
            queue_wait_ns: 15,
            wall_ns,
            stages: StageBreakdown {
                schedule_ns: wall_ns,
                total_ns: wall_ns,
                ..Default::default()
            },
            audit_diagnostics: 0,
            bound_cycles: 7,
            at_bound: true,
            result_digest: 0xdead_beef_cafe_f00d,
            slow: slow.then(|| SlowCapture {
                spans: vec![("grip".to_string(), wall_ns)],
                counters: vec![("iterations".to_string(), 42)],
            }),
        }
    }

    #[test]
    fn ring_wraps_and_keeps_the_most_recent() {
        let r = FlightRecorder::new(8, 4);
        for i in 0..20 {
            r.record(rec(&format!("t{i}"), 100 + i, false));
        }
        assert_eq!(r.total_recorded(), 20);
        let recent = r.recent(100);
        assert_eq!(recent.len(), 8, "ring is bounded");
        // Most recent first, oldest survivors at the tail.
        assert_eq!(recent[0].trace_id, "t19");
        assert_eq!(recent[7].trace_id, "t12");
        assert_eq!(r.recent(3).len(), 3, "n caps the dump");
    }

    #[test]
    fn slow_captures_survive_main_ring_wraparound() {
        let r = FlightRecorder::new(4, 4);
        r.record(rec("slow-one", 9_999, true));
        for i in 0..50 {
            r.record(rec(&format!("fast{i}"), 10, false));
        }
        assert!(r.recent(100).iter().all(|x| x.trace_id != "slow-one"), "evicted from main ring");
        let slow = r.slow(100);
        assert_eq!(slow.len(), 1, "retained in the slow ring");
        assert_eq!(slow[0].trace_id, "slow-one");
        let cap = slow[0].slow.as_ref().expect("capture attached");
        assert_eq!(cap.spans, vec![("grip".to_string(), 9_999)]);
        assert_eq!(cap.counters, vec![("iterations".to_string(), 42)]);
    }

    #[test]
    fn concurrent_writers_never_lose_or_duplicate_under_capacity() {
        let r = FlightRecorder::new(4096, 8);
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 200;
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let r = &r;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        r.record(rec(&format!("w{t}-{i}"), i, false));
                    }
                });
            }
        });
        assert_eq!(r.total_recorded(), THREADS * PER_THREAD);
        let all = r.recent(usize::MAX);
        assert_eq!(all.len(), (THREADS * PER_THREAD) as usize, "under capacity: nothing dropped");
        let distinct: std::collections::HashSet<&str> =
            all.iter().map(|x| x.trace_id.as_str()).collect();
        assert_eq!(distinct.len(), all.len(), "no duplicates");
        // Per-writer order is preserved even under interleaving.
        for t in 0..THREADS {
            let seq: Vec<&str> = all
                .iter()
                .rev() // oldest first
                .filter(|x| x.trace_id.starts_with(&format!("w{t}-")))
                .map(|x| x.trace_id.as_str())
                .collect();
            let expect: Vec<String> = (0..PER_THREAD).map(|i| format!("w{t}-{i}")).collect();
            assert_eq!(seq, expect.iter().map(String::as_str).collect::<Vec<_>>());
        }
    }

    #[test]
    fn flight_records_round_trip_through_json() {
        for slow in [false, true] {
            let before = rec("rt-1", 5_000, slow);
            let j = grip_json::Json::parse(&before.to_json().line()).expect("record JSON parses");
            let after = FlightRecord::from_json(&j);
            assert_eq!(before, after, "slow={slow}");
        }
        assert_eq!(
            rec("d", 1, false).to_json().get("digest").and_then(grip_json::Json::as_str),
            Some("deadbeefcafef00d")
        );
    }

    #[test]
    fn slow_threshold_is_shared_and_defaults_off() {
        let r = FlightRecorder::new(4, 4);
        assert_eq!(r.slow_threshold_ns(), u64::MAX, "disabled by default");
        r.set_slow_threshold_ns(1_000_000);
        assert_eq!(r.slow_threshold_ns(), 1_000_000);
    }
}

mod windowed {
    use grip_obs::metrics::Registry;
    use grip_obs::window::WindowAggregator;
    use std::time::Duration;

    /// splitmix64, same generator the service workload shuffles with.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Exact nearest-rank percentile over a sorted slice.
    fn exact(sorted: &[u64], q: f64) -> u64 {
        let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[rank]
    }

    #[test]
    fn windowed_percentiles_bracket_exact_percentiles_on_prng_data() {
        let reg = Registry::new();
        let agg = WindowAggregator::new(Duration::from_secs(3600), 16);
        let h = reg.histogram("w_lat_ns");
        // Pre-window samples that the delta must exclude: a thick band of
        // huge values that would wreck the percentiles if leaked in.
        for _ in 0..1000 {
            h.record(1 << 40);
        }
        agg.tick_registry(&reg);

        let mut state = 0x5eed_u64;
        let mut samples: Vec<u64> = Vec::new();
        for _ in 0..10_000 {
            // Spread over ~6 decades so many buckets participate.
            let v = splitmix64(&mut state) % 1_000_000;
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();

        let stats = agg.stats_registry(&reg);
        let w = stats.histogram("w_lat_ns").expect("windowed histogram present");
        assert_eq!(w.count, 10_000, "window counts only in-window samples");
        assert_eq!(w.sum, samples.iter().sum::<u64>());
        for (q, got) in [(0.50, w.p50), (0.95, w.p95), (0.99, w.p99)] {
            let want = exact(&samples, q);
            // Bucket-bound accuracy: the answer is the inclusive upper
            // bound of the exact sample's log2 bucket.
            assert!(
                got >= want && got <= want.saturating_mul(2).saturating_add(1),
                "p{q}: windowed {got} vs exact {want}"
            );
        }
    }

    #[test]
    fn counters_and_gauges_window_by_delta_and_current_value() {
        let reg = Registry::new();
        let agg = WindowAggregator::new(Duration::from_secs(3600), 16);
        let c = reg.counter("w_total");
        let g = reg.gauge("w_depth");
        c.add(100);
        agg.tick_registry(&reg);
        c.add(7);
        g.set(-4);
        let stats = agg.stats_registry(&reg);
        assert_eq!(stats.counter("w_total").map(|w| w.delta), Some(7), "pre-window excluded");
        assert_eq!(stats.gauges, vec![("w_depth".to_string(), -4)], "gauges report current");
        assert!(stats.elapsed_s >= 0.0);
        // Metrics born inside the window difference against zero.
        reg.counter("w_born_total").add(3);
        assert_eq!(agg.stats_registry(&reg).counter("w_born_total").map(|w| w.delta), Some(3));
    }

    #[test]
    fn never_ticked_aggregator_reports_an_empty_window() {
        let reg = Registry::new();
        reg.counter("w_x_total").add(5);
        let agg = WindowAggregator::new(Duration::from_secs(1), 4);
        let stats = agg.stats_registry(&reg);
        assert_eq!(stats.samples, 0);
        assert!(stats.counters.is_empty() && stats.histograms.is_empty());
    }

    #[test]
    fn slot_cap_bounds_retention() {
        let reg = Registry::new();
        let agg = WindowAggregator::new(Duration::from_secs(3600), 4);
        for _ in 0..50 {
            agg.tick_registry(&reg);
        }
        assert!(agg.samples() <= 4, "slot cap enforced: {}", agg.samples());
    }
}
