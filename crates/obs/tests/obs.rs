//! grip-obs invariants: registry concurrency, histogram bucket
//! boundaries, span nesting self-time accounting, unwind safety, and
//! exposition formats.

use grip_obs::metrics::{bucket_bound, bucket_index, prometheus_lint, Registry, BUCKETS};
use grip_obs::span::{collect, current_path, enter};
use grip_obs::{span, Histogram};

#[test]
fn counters_survive_a_thread_hammering() {
    let reg = Registry::new();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let c = reg.counter("hammered_total");
            let g = reg.gauge("seesaw");
            let h = reg.histogram("hist_ns");
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    c.inc();
                    g.add(if (i + t as u64) % 2 == 0 { 1 } else { -1 });
                    h.record(i);
                }
            });
        }
    });
    assert_eq!(reg.counter("hammered_total").get(), THREADS as u64 * PER_THREAD);
    assert_eq!(reg.gauge("seesaw").get(), 0, "balanced adds cancel");
    let h = reg.histogram("hist_ns");
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    assert_eq!(h.sum(), THREADS as u64 * (PER_THREAD * (PER_THREAD - 1) / 2));
    // Registration is idempotent: same handle, not a second metric.
    assert_eq!(reg.snapshot().0.len(), 3);
}

#[test]
fn histogram_bucket_boundaries_are_powers_of_two() {
    // Bucket 0 holds zero; bucket i ≥ 1 holds [2^(i-1), 2^i - 1].
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(7), 3);
    assert_eq!(bucket_index(8), 4);
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    for i in 1..BUCKETS - 1 {
        let hi = bucket_bound(i);
        assert_eq!(bucket_index(hi), i, "upper bound stays in its bucket");
        assert_eq!(bucket_index(hi + 1), i + 1, "bound+1 spills into the next");
    }
    assert_eq!(bucket_bound(0), 0);
    assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);

    let h = Histogram::new();
    for v in [0, 1, 2, 3, 4, 1023, 1024] {
        h.record(v);
    }
    let b = h.buckets();
    assert_eq!(b[0], 1, "zero");
    assert_eq!(b[1], 1, "one");
    assert_eq!(b[2], 2, "two and three");
    assert_eq!(b[3], 1, "four");
    assert_eq!(b[10], 1, "1023 = 2^10 - 1");
    assert_eq!(b[11], 1, "1024 = 2^10");
    assert_eq!(h.count(), 7);
}

#[test]
fn histogram_quantiles_are_bucket_bounds() {
    let h = Histogram::new();
    for _ in 0..99 {
        h.record(10); // bucket 4, bound 15
    }
    h.record(1_000_000);
    assert_eq!(h.quantile(0.5), 15);
    assert!(h.quantile(1.0) >= 1_000_000);
    assert_eq!(Histogram::new().quantile(0.5), 0, "empty histogram");
}

#[test]
fn nested_spans_decompose_into_disjoint_self_times() {
    let ((), t) = collect(|| {
        let _outer = span!("outer_stage");
        assert_eq!(current_path(), vec!["outer_stage"]);
        busy(5);
        {
            let _inner = span!("inner_stage");
            assert_eq!(current_path(), vec!["outer_stage", "inner_stage"]);
            busy(5);
        }
        busy(1);
    });
    assert!(current_path().is_empty(), "stack drains");
    let outer = t.get("outer_stage");
    let inner = t.get("inner_stage");
    assert!(outer > 0 && inner > 0, "both stages recorded: {t:?}");
    // Self times are disjoint: their sum cannot exceed the wall total.
    assert!(
        t.stage_sum_ns() <= t.total_ns,
        "stage sum {} must be within wall {}",
        t.stage_sum_ns(),
        t.total_ns
    );
    // And the two stages cover nearly all of it (the gap is collect's
    // own bookkeeping, well under 20% of a ~10ms scope).
    assert!((outer + inner) as f64 >= 0.8 * t.total_ns as f64, "{t:?}");
}

#[test]
fn repeated_stages_accumulate_and_unknown_stages_read_zero() {
    let ((), t) = collect(|| {
        for _ in 0..3 {
            let _g = span!("loop_stage");
            busy(1);
        }
    });
    assert_eq!(t.stages.len(), 1, "one entry per distinct name");
    assert!(t.get("loop_stage") > 0);
    assert_eq!(t.get("never_ran"), 0);
}

#[test]
fn spans_unwind_safely_through_panics() {
    let ((), t) = collect(|| {
        let caught = std::panic::catch_unwind(|| {
            let _outer = enter("panicking_outer");
            let _inner = enter("panicking_inner");
            busy(1);
            panic!("boom");
        });
        assert!(caught.is_err());
        // Both guards dropped during unwind: the stack is clean and both
        // stages were still recorded.
        assert!(current_path().is_empty(), "unwind drains the stack");
        let _after = span!("after_panic");
        busy(1);
    });
    assert!(t.get("panicking_outer") > 0, "{t:?}");
    assert!(t.get("panicking_inner") > 0, "{t:?}");
    assert!(t.get("after_panic") > 0, "{t:?}");
}

#[test]
fn nested_collects_do_not_leak_into_each_other() {
    let ((), outer) = collect(|| {
        let _g = span!("outer_only");
        busy(1);
        let ((), inner) = collect(|| {
            let _g = span!("inner_only");
            busy(1);
        });
        assert!(inner.get("inner_only") > 0);
        assert_eq!(inner.get("outer_only"), 0);
    });
    assert!(outer.get("outer_only") > 0);
    assert_eq!(outer.get("inner_only"), 0, "inner scope invisible outside: {outer:?}");
}

#[test]
fn snapshot_exposes_json_and_prometheus() {
    let reg = Registry::new();
    reg.counter("grip_test_events_total").add(7);
    reg.gauge("grip_test_depth").set(-3);
    let h = reg.histogram("grip_test_latency_ns");
    h.record(0);
    h.record(100);
    h.record(1 << 40);

    let snap = reg.snapshot();
    assert_eq!(snap.counter("grip_test_events_total"), Some(7));

    // JSON parses back through grip-json and carries the values.
    let j = grip_json::Json::parse(&snap.to_json().line()).expect("snapshot JSON parses");
    assert_eq!(j.get("grip_test_events_total").and_then(grip_json::Json::as_i64), Some(7));
    assert_eq!(j.get("grip_test_depth").and_then(grip_json::Json::as_i64), Some(-3));
    let hist = j.get("grip_test_latency_ns").expect("histogram field");
    assert_eq!(hist.get("count").and_then(grip_json::Json::as_i64), Some(3));

    // Prometheus text passes the lint and carries the series.
    let text = snap.to_prometheus();
    prometheus_lint(&text).expect("well-formed exposition");
    assert!(text.contains("# TYPE grip_test_events_total counter"));
    assert!(text.contains("grip_test_events_total 7"));
    assert!(text.contains("grip_test_depth -3"));
    assert!(text.contains("grip_test_latency_ns_count 3"));
    assert!(text.contains("_bucket{le=\"+Inf\"} 3"));
}

#[test]
fn prometheus_lint_rejects_malformed_lines() {
    assert!(prometheus_lint("ok_metric 1\n# a comment\nwith_labels{le=\"5\"} 2.5\n").is_ok());
    for bad in [
        "no value line\n",     // name with spaces, no numeric value
        "9leading_digit 1\n",  // bad name
        "metric{le=5} 1\n",    // unquoted label value
        "metric{le=\"5\" 1\n", // unclosed brace
        "metric notanumber\n", // bad value
    ] {
        assert!(prometheus_lint(bad).is_err(), "{bad:?} should fail the lint");
    }
}

/// Spin for at least `ms` milliseconds of wall time (sleep granularity is
/// too coarse for self-time assertions on a loaded CI box).
fn busy(ms: u64) {
    let t0 = std::time::Instant::now();
    while t0.elapsed().as_millis() < ms as u128 {
        std::hint::spin_loop();
    }
}
