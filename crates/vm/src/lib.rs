//! # grip-vm — the VLIW machine simulator
//!
//! Executes [`grip_ir::Graph`] programs under the paper's §2 instruction
//! semantics and counts cycles (one cycle per instruction):
//!
//! 1. operands of **all** operations in the instruction are fetched;
//! 2. results are computed but not stored; a conditional's "result" selects
//!    a branch in the tree;
//! 3. values are stored — IBM VLIW variant: only results computed **along
//!    the selected path** commit;
//! 4. the next instruction is the one reached by following the selected
//!    branches.
//!
//! The simulator is the repository's ground truth: every scheduling
//! transformation is validated by running the program before and after and
//! comparing observable state (all memory plus `live_out` registers).
//!
//! [`Machine::run_model`] replays the same semantics under a
//! [`grip_machine::MachineDesc`]: instruction issue interlocks on
//! in-flight multi-cycle results (counted as stall cycles) and every
//! executed instruction is checked against the issue template, so a
//! schedule is validated against the same machine model it was built for.
//!
//! Speculatively hoisted loads may execute with out-of-range addresses (the
//! original program would have exited the loop before using their result);
//! such loads yield the array's typed default value instead of faulting
//! ("non-faulting load" semantics) and are tallied in
//! [`RunStats::speculative_oob_loads`]. Out-of-range **stores** are hard
//! errors: stores are never moved speculatively, so one firing means a
//! transformation bug.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod machine;

pub use machine::{EquivReport, ExecError, Machine, ModelRunStats, RunStats};

/// Default cycle budget for a run; generous for every workload in this
/// repository while still catching non-terminating schedules.
pub const DEFAULT_FUEL: u64 = 50_000_000;
