//! Machine state and the execution loop.

use grip_ir::{ArrayId, Graph, NodeId, OpId, OpKind, Operand, RegId, Tree, Value};
use grip_machine::MachineDesc;
use std::fmt;

/// Why an execution stopped abnormally.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecError {
    /// A register was read before any operation defined it.
    UndefinedRegister {
        /// The register read.
        reg: RegId,
        /// The instruction doing the read.
        node: NodeId,
        /// The reading operation.
        op: OpId,
    },
    /// An operation received a value of the wrong type.
    Type {
        /// The failing instruction.
        node: NodeId,
        /// The failing operation.
        op: OpId,
        /// The underlying type mismatch.
        err: grip_ir::TypeError,
    },
    /// A store addressed memory outside its array.
    StoreOutOfBounds {
        /// The array being written.
        array: ArrayId,
        /// The effective index.
        index: i64,
        /// The instruction containing the store.
        node: NodeId,
    },
    /// Two operations on one selected path committed to the same register.
    DoubleWrite {
        /// The register written twice.
        reg: RegId,
        /// The offending instruction.
        node: NodeId,
    },
    /// Two stores on one selected path hit the same address.
    DoubleStore {
        /// The array written twice.
        array: ArrayId,
        /// The effective index.
        index: i64,
        /// The offending instruction.
        node: NodeId,
    },
    /// The cycle budget ran out (non-terminating schedule).
    FuelExhausted {
        /// The budget that was exceeded.
        fuel: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UndefinedRegister { reg, node, op } => {
                write!(f, "{node}/{op}: read of undefined register {reg}")
            }
            ExecError::Type { node, op, err } => write!(f, "{node}/{op}: {err}"),
            ExecError::StoreOutOfBounds { array, index, node } => {
                write!(f, "{node}: store to {array}[{index}] out of bounds")
            }
            ExecError::DoubleWrite { reg, node } => {
                write!(f, "{node}: register {reg} committed twice on one path")
            }
            ExecError::DoubleStore { array, index, node } => {
                write!(f, "{node}: {array}[{index}] stored twice on one path")
            }
            ExecError::FuelExhausted { fuel } => write!(f, "fuel exhausted after {fuel} cycles"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Counters accumulated by a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions executed — the paper's cycle count.
    pub cycles: u64,
    /// Ordinary operations whose results committed.
    pub ops_committed: u64,
    /// Conditional jumps evaluated on selected paths.
    pub cjs_evaluated: u64,
    /// Non-faulting loads that were out of bounds (speculation artifacts).
    pub speculative_oob_loads: u64,
}

/// Register file plus memory arrays.
#[derive(Clone, Debug)]
pub struct Machine {
    regs: Vec<Option<Value>>,
    arrays: Vec<Vec<Value>>,
}

impl Machine {
    /// Allocate state sized for `g`: all registers undefined, every array
    /// filled with its element type's default value.
    pub fn for_graph(g: &Graph) -> Machine {
        Machine {
            regs: vec![None; g.reg_count()],
            arrays: g.arrays().iter().map(|a| vec![a.elem.default_value(); a.len]).collect(),
        }
    }

    /// Define a register before execution (program inputs).
    pub fn set_reg(&mut self, r: RegId, v: Value) {
        if self.regs.len() <= r.index() {
            self.regs.resize(r.index() + 1, None);
        }
        self.regs[r.index()] = Some(v);
    }

    /// Current value of a register, if defined.
    pub fn reg(&self, r: RegId) -> Option<Value> {
        self.regs.get(r.index()).copied().flatten()
    }

    /// Overwrite an array's contents (program inputs). Panics if `vals` is
    /// longer than the declared array.
    pub fn set_array(&mut self, a: ArrayId, vals: &[Value]) {
        let arr = &mut self.arrays[a.index()];
        assert!(vals.len() <= arr.len(), "set_array: too many values");
        arr[..vals.len()].copy_from_slice(vals);
    }

    /// Convenience: fill an `f64` array from a slice.
    pub fn set_array_f(&mut self, a: ArrayId, vals: &[f64]) {
        let arr = &mut self.arrays[a.index()];
        assert!(vals.len() <= arr.len(), "set_array_f: too many values");
        for (cell, &v) in arr.iter_mut().zip(vals) {
            *cell = Value::F(v);
        }
    }

    /// Convenience: fill an `i64` array from a slice.
    pub fn set_array_i(&mut self, a: ArrayId, vals: &[i64]) {
        let arr = &mut self.arrays[a.index()];
        assert!(vals.len() <= arr.len(), "set_array_i: too many values");
        for (cell, &v) in arr.iter_mut().zip(vals) {
            *cell = Value::I(v);
        }
    }

    /// Read an array cell.
    pub fn array_cell(&self, a: ArrayId, i: usize) -> Value {
        self.arrays[a.index()][i]
    }

    /// A whole array as `f64`s (panics on non-float cells).
    pub fn array_f(&self, a: ArrayId) -> Vec<f64> {
        self.arrays[a.index()]
            .iter()
            .map(|v| v.as_f().expect("array_f on non-float cell"))
            .collect()
    }

    /// Execute `g` from its entry until an exit leaf, with the default fuel.
    pub fn run(&mut self, g: &Graph) -> Result<RunStats, ExecError> {
        self.run_fuel(g, crate::DEFAULT_FUEL)
    }

    /// Execute `g` with an explicit cycle budget.
    pub fn run_fuel(&mut self, g: &Graph, fuel: u64) -> Result<RunStats, ExecError> {
        self.run_inner(g, fuel, &mut |_| {})
    }

    /// Execute and invoke `visit` with each executed node id (tracing).
    pub fn run_traced(
        &mut self,
        g: &Graph,
        fuel: u64,
        visit: &mut dyn FnMut(NodeId),
    ) -> Result<RunStats, ExecError> {
        self.run_inner(g, fuel, visit)
    }

    fn run_inner(
        &mut self,
        g: &Graph,
        fuel: u64,
        visit: &mut dyn FnMut(NodeId),
    ) -> Result<RunStats, ExecError> {
        let mut stats = RunStats::default();
        let mut pc = Some(g.entry);
        // Commit buffers, reused across cycles to avoid per-cycle allocation.
        let mut reg_writes: Vec<(RegId, Value)> = Vec::new();
        let mut mem_writes: Vec<(ArrayId, i64, Value)> = Vec::new();
        while let Some(node) = pc {
            if stats.cycles >= fuel {
                return Err(ExecError::FuelExhausted { fuel });
            }
            stats.cycles += 1;
            visit(node);
            pc = self.step(g, node, &mut stats, &mut reg_writes, &mut mem_writes)?;
        }
        Ok(stats)
    }

    /// Execute one instruction; returns the next node.
    fn step(
        &mut self,
        g: &Graph,
        node: NodeId,
        stats: &mut RunStats,
        reg_writes: &mut Vec<(RegId, Value)>,
        mem_writes: &mut Vec<(ArrayId, i64, Value)>,
    ) -> Result<Option<NodeId>, ExecError> {
        reg_writes.clear();
        mem_writes.clear();
        // Walk the selected path. All reads (including branch conditions and
        // loads) observe the pre-instruction state because commits are
        // buffered until the leaf.
        let mut t = &g.node(node).tree;
        loop {
            match t {
                Tree::Leaf { ops, succ } => {
                    for &op in ops {
                        self.exec_op(g, node, op, stats, reg_writes, mem_writes)?;
                    }
                    self.commit(node, reg_writes, mem_writes)?;
                    return Ok(*succ);
                }
                Tree::Branch { ops, cj, on_true, on_false } => {
                    for &op in ops {
                        self.exec_op(g, node, op, stats, reg_writes, mem_writes)?;
                    }
                    let cond = self
                        .fetch(node, *cj, g.op(*cj).src[0])?
                        .as_b()
                        .map_err(|err| ExecError::Type { node, op: *cj, err })?;
                    stats.cjs_evaluated += 1;
                    t = if cond { on_true } else { on_false };
                }
            }
        }
    }

    #[inline]
    fn fetch(&self, node: NodeId, op: OpId, operand: Operand) -> Result<Value, ExecError> {
        match operand {
            Operand::Imm(v) => Ok(v),
            Operand::Reg(r) => self
                .regs
                .get(r.index())
                .copied()
                .flatten()
                .ok_or(ExecError::UndefinedRegister { reg: r, node, op }),
        }
    }

    fn exec_op(
        &self,
        g: &Graph,
        node: NodeId,
        id: OpId,
        stats: &mut RunStats,
        reg_writes: &mut Vec<(RegId, Value)>,
        mem_writes: &mut Vec<(ArrayId, i64, Value)>,
    ) -> Result<(), ExecError> {
        let op = g.op(id);
        stats.ops_committed += 1;
        match op.kind {
            OpKind::Copy => {
                let v = self.fetch(node, id, op.src[0])?;
                reg_writes.push((op.dest.expect("copy has dest"), v));
            }
            OpKind::Load(a) => {
                let idx = self
                    .fetch(node, id, op.src[0])?
                    .as_i()
                    .map_err(|err| ExecError::Type { node, op: id, err })?
                    + op.disp;
                let arr = &self.arrays[a.index()];
                let v = if idx >= 0 && (idx as usize) < arr.len() {
                    arr[idx as usize]
                } else {
                    stats.speculative_oob_loads += 1;
                    g.arrays()[a.index()].elem.default_value()
                };
                reg_writes.push((op.dest.expect("load has dest"), v));
            }
            OpKind::Store(a) => {
                let idx = self
                    .fetch(node, id, op.src[0])?
                    .as_i()
                    .map_err(|err| ExecError::Type { node, op: id, err })?
                    + op.disp;
                let v = self.fetch(node, id, op.src[1])?;
                let len = self.arrays[a.index()].len();
                if idx < 0 || idx as usize >= len {
                    return Err(ExecError::StoreOutOfBounds { array: a, index: idx, node });
                }
                mem_writes.push((a, idx, v));
            }
            OpKind::CondJump => unreachable!("cjs live at branch positions"),
            kind => {
                let mut srcs = [Value::B(false); 2];
                for (i, &s) in op.src.iter().enumerate() {
                    srcs[i] = self.fetch(node, id, s)?;
                }
                let v = kind.eval(&srcs[..op.src.len()]).map_err(|err| ExecError::Type {
                    node,
                    op: id,
                    err,
                })?;
                reg_writes.push((op.dest.expect("pure op has dest"), v));
            }
        }
        Ok(())
    }

    fn commit(
        &mut self,
        node: NodeId,
        reg_writes: &[(RegId, Value)],
        mem_writes: &[(ArrayId, i64, Value)],
    ) -> Result<(), ExecError> {
        for (i, &(r, v)) in reg_writes.iter().enumerate() {
            if reg_writes[..i].iter().any(|&(r2, _)| r2 == r) {
                return Err(ExecError::DoubleWrite { reg: r, node });
            }
            self.regs[r.index()] = Some(v);
        }
        for (i, &(a, idx, v)) in mem_writes.iter().enumerate() {
            if mem_writes[..i].iter().any(|&(a2, i2, _)| a2 == a && i2 == idx) {
                return Err(ExecError::DoubleStore { array: a, index: idx, node });
            }
            self.arrays[a.index()][idx as usize] = v;
        }
        Ok(())
    }
}

/// Counters from a latency-aware model run ([`Machine::run_model`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModelRunStats {
    /// The plain single-cycle counters (instructions issued, commits, …).
    pub base: RunStats,
    /// Interlock stalls: cycles the machine waited for an in-flight
    /// multi-cycle result before an instruction could issue.
    pub stall_cycles: u64,
    /// Instructions whose static shape violated the issue template
    /// (width, class slots, or jump budget) — a scheduler bug for
    /// schedules built against the same description.
    pub template_violations: u64,
}

impl ModelRunStats {
    /// Wall-clock cycles under the model: issued instructions plus stalls.
    pub fn total_cycles(&self) -> u64 {
        self.base.cycles + self.stall_cycles
    }
}

impl Machine {
    /// Execute `g` under a machine description, with the default fuel.
    ///
    /// Semantics are identical to [`Machine::run`] — an interlocked
    /// machine stalls, it does not misread — but the run additionally
    /// charges scoreboard stalls (an instruction cannot issue until every
    /// register it reads has retired from its producer's pipeline) and
    /// checks every executed instruction against the issue template. For
    /// a unit-latency description this degenerates to `run` exactly:
    /// zero stalls, identical cycle count.
    pub fn run_model(&mut self, g: &Graph, desc: &MachineDesc) -> Result<ModelRunStats, ExecError> {
        self.run_model_fuel(g, desc, crate::DEFAULT_FUEL)
    }

    /// [`Machine::run_model`] with an explicit cycle budget (counted in
    /// issued instructions, as in [`Machine::run_fuel`]).
    pub fn run_model_fuel(
        &mut self,
        g: &Graph,
        desc: &MachineDesc,
        fuel: u64,
    ) -> Result<ModelRunStats, ExecError> {
        let mut stats = ModelRunStats::default();
        // Scoreboard: the virtual cycle at which each register's youngest
        // in-flight write retires (readable at cycles >= that time).
        let mut ready: Vec<u64> = vec![0; g.reg_count()];
        // Virtual clock: the cycle the next instruction would issue at.
        let mut now: u64 = 0;
        let mut pc = Some(g.entry);
        let mut reg_writes: Vec<(RegId, Value)> = Vec::new();
        let mut write_lat: Vec<u32> = Vec::new();
        let mut mem_writes: Vec<(ArrayId, i64, Value)> = Vec::new();
        while let Some(node) = pc {
            if stats.base.cycles >= fuel {
                return Err(ExecError::FuelExhausted { fuel });
            }
            stats.base.cycles += 1;
            if !desc.fits(g, node) {
                stats.template_violations += 1;
            }
            reg_writes.clear();
            write_lat.clear();
            mem_writes.clear();
            // Walk the selected path, tracking the latest in-flight
            // producer among everything fetched.
            let mut wait_until: u64 = now;
            let mut t = &g.node(node).tree;
            let next = loop {
                match t {
                    Tree::Leaf { ops, succ } => {
                        for &op in ops {
                            self.exec_op_model(
                                g,
                                node,
                                op,
                                desc,
                                &ready,
                                &mut wait_until,
                                &mut stats.base,
                                &mut reg_writes,
                                &mut write_lat,
                                &mut mem_writes,
                            )?;
                        }
                        break *succ;
                    }
                    Tree::Branch { ops, cj, on_true, on_false } => {
                        for &op in ops {
                            self.exec_op_model(
                                g,
                                node,
                                op,
                                desc,
                                &ready,
                                &mut wait_until,
                                &mut stats.base,
                                &mut reg_writes,
                                &mut write_lat,
                                &mut mem_writes,
                            )?;
                        }
                        let src = g.op(*cj).src[0];
                        if let Operand::Reg(r) = src {
                            wait_until = wait_until.max(ready[r.index()]);
                        }
                        let cond = self
                            .fetch(node, *cj, src)?
                            .as_b()
                            .map_err(|err| ExecError::Type { node, op: *cj, err })?;
                        stats.base.cjs_evaluated += 1;
                        t = if cond { on_true } else { on_false };
                    }
                }
            };
            self.commit(node, &reg_writes, &mem_writes)?;
            // Issue was delayed until every fetched register had retired.
            let stall = wait_until.saturating_sub(now);
            stats.stall_cycles += stall;
            let issue = now + stall;
            for (&(r, _), &lat) in reg_writes.iter().zip(&write_lat) {
                if r.index() >= ready.len() {
                    ready.resize(r.index() + 1, 0);
                }
                ready[r.index()] = issue + lat as u64;
            }
            now = issue + 1;
            pc = next;
        }
        Ok(stats)
    }

    /// `exec_op` plus scoreboard bookkeeping: every register fetch raises
    /// `wait_until` to its producer's retire time; every produced write
    /// records its latency.
    #[allow(clippy::too_many_arguments)]
    fn exec_op_model(
        &self,
        g: &Graph,
        node: NodeId,
        id: OpId,
        desc: &MachineDesc,
        ready: &[u64],
        wait_until: &mut u64,
        stats: &mut RunStats,
        reg_writes: &mut Vec<(RegId, Value)>,
        write_lat: &mut Vec<u32>,
        mem_writes: &mut Vec<(ArrayId, i64, Value)>,
    ) -> Result<(), ExecError> {
        let op = g.op(id);
        for s in &op.src {
            if let Operand::Reg(r) = s {
                if let Some(&t) = ready.get(r.index()) {
                    *wait_until = (*wait_until).max(t);
                }
            }
        }
        let writes_before = reg_writes.len();
        self.exec_op(g, node, id, stats, reg_writes, mem_writes)?;
        for _ in writes_before..reg_writes.len() {
            write_lat.push(desc.latency_of(op.kind));
        }
        Ok(())
    }
}

/// Result of comparing two final machine states.
#[derive(Clone, Debug, PartialEq)]
pub enum EquivReport {
    /// Observable state matched bitwise.
    Equal,
    /// A `live_out` register differed.
    RegMismatch {
        /// The differing register.
        reg: RegId,
        /// Value in the first machine.
        a: Option<Value>,
        /// Value in the second machine.
        b: Option<Value>,
    },
    /// A memory cell differed.
    MemMismatch {
        /// The differing array.
        array: ArrayId,
        /// The differing element index.
        index: usize,
        /// Value in the first machine.
        a: Value,
        /// Value in the second machine.
        b: Value,
    },
}

impl EquivReport {
    /// Compare two machines over all memory and the `live_out` registers of
    /// `g` (bitwise — NaNs compare equal to themselves).
    pub fn compare(g: &Graph, a: &Machine, b: &Machine) -> EquivReport {
        for &r in &g.live_out {
            let (va, vb) = (a.reg(r), b.reg(r));
            let same = match (va, vb) {
                (Some(x), Some(y)) => x.bit_eq(y),
                (None, None) => true,
                _ => false,
            };
            if !same {
                return EquivReport::RegMismatch { reg: r, a: va, b: vb };
            }
        }
        for (ai, (arr_a, arr_b)) in a.arrays.iter().zip(&b.arrays).enumerate() {
            for (i, (&x, &y)) in arr_a.iter().zip(arr_b).enumerate() {
                if !x.bit_eq(y) {
                    return EquivReport::MemMismatch {
                        array: ArrayId::new(ai),
                        index: i,
                        a: x,
                        b: y,
                    };
                }
            }
        }
        EquivReport::Equal
    }

    /// True when the states matched.
    pub fn is_equal(&self) -> bool {
        *self == EquivReport::Equal
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grip_ir::{OpKind, Operand, Operation, ProgramBuilder, Tree, Value};

    /// x[k] = 2*x[k] for k in 0..8
    fn scale_loop(n: i64) -> (Graph, ArrayId) {
        let mut b = ProgramBuilder::new();
        let x = b.array("x", n as usize);
        let k = b.named_reg("k");
        b.const_i(k, 0);
        b.begin_loop();
        let t = b.load("t", x, Operand::Reg(k), 0);
        let t2 = b.binary("t2", OpKind::Mul, Operand::Reg(t), Operand::Imm(Value::F(2.0)));
        b.store(x, Operand::Reg(k), 0, Operand::Reg(t2));
        b.iadd_imm(k, k, 1);
        let c = b.binary("c", OpKind::CmpLt, Operand::Reg(k), Operand::Imm(Value::I(n)));
        b.end_loop(c);
        (b.finish(), x)
    }

    #[test]
    fn runs_a_loop_and_counts_cycles() {
        let (g, x) = scale_loop(8);
        let mut m = Machine::for_graph(&g);
        m.set_array_f(x, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let stats = m.run(&g).unwrap();
        assert_eq!(m.array_f(x), vec![2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0]);
        // entry + const + 8 iterations * (5 op nodes + latch) + exit node
        assert_eq!(stats.cycles, 2 + 8 * 6 + 1);
        assert_eq!(stats.cjs_evaluated, 8);
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let (g, _) = scale_loop(8);
        let mut m = Machine::for_graph(&g);
        assert_eq!(m.run_fuel(&g, 3), Err(ExecError::FuelExhausted { fuel: 3 }));
    }

    #[test]
    fn undefined_register_reported() {
        let mut b = ProgramBuilder::new();
        let ghost = b.named_reg("ghost");
        let s = b.binary("s", OpKind::IAdd, Operand::Reg(ghost), Operand::Imm(Value::I(1)));
        b.live_out(s);
        let g = b.finish();
        let mut m = Machine::for_graph(&g);
        match m.run(&g) {
            Err(ExecError::UndefinedRegister { reg, .. }) => assert_eq!(reg, ghost),
            other => panic!("expected undefined register, got {other:?}"),
        }
    }

    #[test]
    fn store_out_of_bounds_is_fatal_but_load_is_not() {
        let mut b = ProgramBuilder::new();
        let x = b.array("x", 4);
        let t = b.load("t", x, Operand::Imm(Value::I(99)), 0);
        b.live_out(t);
        let g = b.finish();
        let mut m = Machine::for_graph(&g);
        let stats = m.run(&g).unwrap();
        assert_eq!(stats.speculative_oob_loads, 1);
        assert_eq!(m.reg(t), Some(Value::F(0.0)));

        let mut b = ProgramBuilder::new();
        let x = b.array("x", 4);
        b.store(x, Operand::Imm(Value::I(99)), 0, Operand::Imm(Value::F(1.0)));
        let g = b.finish();
        let mut m = Machine::for_graph(&g);
        assert!(matches!(m.run(&g), Err(ExecError::StoreOutOfBounds { index: 99, .. })));
    }

    /// VLIW entry-fetch semantics: an op may read a register written by
    /// another op in the same instruction and must see the *old* value
    /// (paper footnote 2).
    #[test]
    fn same_instruction_reads_see_entry_values() {
        let mut g = Graph::new();
        let a = g.named_reg("a");
        let b_ = g.named_reg("b");
        // node: { a = a+1 ; b = a }  — b must get the OLD a.
        let inc = g.add_op(Operation::new(
            OpKind::IAdd,
            Some(a),
            vec![Operand::Reg(a), Operand::Imm(Value::I(1))],
        ));
        let cp = g.add_op(Operation::new(OpKind::Copy, Some(b_), vec![Operand::Reg(a)]));
        let n = g.add_node(Tree::Leaf { ops: vec![inc, cp], succ: None });
        g.set_succ(g.entry, grip_ir::TreePath::ROOT, Some(n));
        g.live_out = vec![a, b_];
        g.validate().unwrap();
        let mut m = Machine::for_graph(&g);
        m.set_reg(a, Value::I(10));
        m.run(&g).unwrap();
        assert_eq!(m.reg(a), Some(Value::I(11)));
        assert_eq!(m.reg(b_), Some(Value::I(10)));
    }

    /// IBM VLIW semantics: ops on the unselected side of a branch do not
    /// commit.
    #[test]
    fn unselected_path_does_not_commit() {
        let mut g = Graph::new();
        let c = g.named_reg("c");
        let t = g.named_reg("t");
        let f = g.named_reg("f");
        let root = g.named_reg("root");
        let cj = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(c)]));
        let op_root =
            g.add_op(Operation::new(OpKind::Copy, Some(root), vec![Operand::Imm(Value::I(7))]));
        let op_t = g.add_op(Operation::new(OpKind::Copy, Some(t), vec![Operand::Imm(Value::I(1))]));
        let op_f = g.add_op(Operation::new(OpKind::Copy, Some(f), vec![Operand::Imm(Value::I(2))]));
        let n = g.add_node(Tree::Branch {
            ops: vec![op_root],
            cj,
            on_true: Box::new(Tree::Leaf { ops: vec![op_t], succ: None }),
            on_false: Box::new(Tree::Leaf { ops: vec![op_f], succ: None }),
        });
        g.set_succ(g.entry, grip_ir::TreePath::ROOT, Some(n));
        g.live_out = vec![t, f, root];
        g.validate().unwrap();

        let mut m = Machine::for_graph(&g);
        m.set_reg(c, Value::B(true));
        m.run(&g).unwrap();
        assert_eq!(m.reg(root), Some(Value::I(7))); // root ops commit always
        assert_eq!(m.reg(t), Some(Value::I(1)));
        assert_eq!(m.reg(f), None); // unselected side did not commit

        let mut m = Machine::for_graph(&g);
        m.set_reg(c, Value::B(false));
        m.run(&g).unwrap();
        assert_eq!(m.reg(t), None);
        assert_eq!(m.reg(f), Some(Value::I(2)));
    }

    /// Branch conditions also read entry values, even if an op in the same
    /// instruction overwrites the condition register.
    #[test]
    fn branch_condition_uses_entry_value() {
        let mut g = Graph::new();
        let c = g.named_reg("c");
        let out = g.named_reg("out");
        let clobber =
            g.add_op(Operation::new(OpKind::Copy, Some(c), vec![Operand::Imm(Value::B(false))]));
        let cj = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(c)]));
        let op_t =
            g.add_op(Operation::new(OpKind::Copy, Some(out), vec![Operand::Imm(Value::I(1))]));
        let n = g.add_node(Tree::Branch {
            ops: vec![clobber],
            cj,
            on_true: Box::new(Tree::Leaf { ops: vec![op_t], succ: None }),
            on_false: Box::new(Tree::leaf(None)),
        });
        g.set_succ(g.entry, grip_ir::TreePath::ROOT, Some(n));
        g.live_out = vec![c, out];
        g.validate().unwrap();
        let mut m = Machine::for_graph(&g);
        m.set_reg(c, Value::B(true));
        m.run(&g).unwrap();
        // true side taken (entry value), but c itself ends false (commit).
        assert_eq!(m.reg(out), Some(Value::I(1)));
        assert_eq!(m.reg(c), Some(Value::B(false)));
    }

    /// Loads fetch before stores commit, even within one instruction.
    #[test]
    fn load_sees_pre_store_memory() {
        let mut g = Graph::new();
        let x = g.array("x", 2);
        let t = g.named_reg("t");
        let ld = {
            let mut op = Operation::new(OpKind::Load(x), Some(t), vec![Operand::Imm(Value::I(0))]);
            op.disp = 0;
            g.add_op(op)
        };
        let st = g.add_op(Operation::new(
            OpKind::Store(x),
            None,
            vec![Operand::Imm(Value::I(0)), Operand::Imm(Value::F(9.0))],
        ));
        let n = g.add_node(Tree::Leaf { ops: vec![st, ld], succ: None });
        g.set_succ(g.entry, grip_ir::TreePath::ROOT, Some(n));
        g.live_out = vec![t];
        g.validate().unwrap();
        let mut m = Machine::for_graph(&g);
        m.set_array_f(x, &[5.0, 0.0]);
        m.run(&g).unwrap();
        assert_eq!(m.reg(t), Some(Value::F(5.0))); // old value
        assert_eq!(m.array_f(x)[0], 9.0); // store committed
    }

    #[test]
    fn unit_latency_model_matches_plain_run_exactly() {
        let (g, x) = scale_loop(8);
        let mut m0 = Machine::for_graph(&g);
        m0.set_array_f(x, &[1.0; 8]);
        let plain = m0.run(&g).unwrap();
        let mut m1 = Machine::for_graph(&g);
        m1.set_array_f(x, &[1.0; 8]);
        let model = m1.run_model(&g, &grip_machine::MachineDesc::uniform(4)).unwrap();
        assert_eq!(model.base, plain, "unit latencies must not change counters");
        assert_eq!(model.stall_cycles, 0);
        assert_eq!(model.total_cycles(), plain.cycles);
        assert!(EquivReport::compare(&g, &m0, &m1).is_equal());
    }

    #[test]
    fn multi_cycle_latency_charges_interlock_stalls() {
        // t = x[k] (load) immediately feeds t2 = t * 2 in the next
        // instruction: a distance-1 use of a 3-cycle load stalls 2 cycles
        // per iteration; the Mul result feeds the store one row later,
        // another stall under a 2-cycle FPU.
        let (g, x) = scale_loop(4);
        let desc = grip_machine::MachineDesc {
            latency: grip_machine::LatencyTable { alu: 1, fpu: 2, fpu_long: 8, mem: 3, branch: 1 },
            ..grip_machine::MachineDesc::uniform(4)
        };
        let mut m = Machine::for_graph(&g);
        m.set_array_f(x, &[1.0; 4]);
        let stats = m.run_model(&g, &desc).unwrap();
        assert!(stats.stall_cycles >= 4 * 3, "per-iteration stalls: {}", stats.stall_cycles);
        assert!(stats.total_cycles() > stats.base.cycles);
        // Values are unchanged: the machine stalls, it does not misread.
        assert_eq!(m.array_f(x), vec![2.0; 4]);
        assert_eq!(stats.template_violations, 0, "1-op rows fit any preset");
    }

    #[test]
    fn template_violations_are_counted() {
        // A 3-op row on a width-2 machine violates the template every
        // time it executes.
        let mut g = Graph::new();
        let (a, b, c) = (g.named_reg("a"), g.named_reg("b"), g.named_reg("c"));
        let ops: Vec<_> = [(a, 1i64), (b, 2), (c, 3)]
            .into_iter()
            .map(|(r, v)| {
                g.add_op(Operation::new(OpKind::Copy, Some(r), vec![Operand::Imm(Value::I(v))]))
            })
            .collect();
        let n = g.add_node(Tree::Leaf { ops, succ: None });
        g.set_succ(g.entry, grip_ir::TreePath::ROOT, Some(n));
        g.live_out = vec![a, b, c];
        g.validate().unwrap();
        let mut m = Machine::for_graph(&g);
        let stats = m.run_model(&g, &grip_machine::MachineDesc::uniform(2)).unwrap();
        assert_eq!(stats.template_violations, 1);
        let mut m = Machine::for_graph(&g);
        let stats = m.run_model(&g, &grip_machine::MachineDesc::uniform(4)).unwrap();
        assert_eq!(stats.template_violations, 0);
    }

    #[test]
    fn equivalence_report_flags_differences() {
        let (g, x) = scale_loop(4);
        let mut m1 = Machine::for_graph(&g);
        let mut m2 = Machine::for_graph(&g);
        m1.set_array_f(x, &[1.0; 4]);
        m2.set_array_f(x, &[1.0; 4]);
        m1.run(&g).unwrap();
        m2.run(&g).unwrap();
        assert!(EquivReport::compare(&g, &m1, &m2).is_equal());
        m2.set_array_f(x, &[0.0; 4]);
        assert!(matches!(
            EquivReport::compare(&g, &m1, &m2),
            EquivReport::MemMismatch { index: 0, .. }
        ));
    }
}
