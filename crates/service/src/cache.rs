//! A small bounded LRU map with hit/miss/eviction counters.
//!
//! Each worker shard owns its caches outright (sharding by content
//! fingerprint gives cache affinity for free), so there is no interior
//! locking here — just a `HashMap` plus a logical clock. Capacity is
//! enforced on insert by evicting the least-recently-used entry; the
//! counters feed the service's aggregate statistics.

use std::collections::HashMap;
use std::hash::Hash;

/// Bounded least-recently-used cache.
#[derive(Debug)]
pub struct Lru<K, V> {
    cap: usize,
    tick: u64,
    map: HashMap<K, Entry<V>>,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
}

#[derive(Debug)]
struct Entry<V> {
    v: V,
    used: u64,
}

impl<K: Eq + Hash + Clone, V> Lru<K, V> {
    /// An empty cache holding at most `cap` entries (`cap == 0` disables
    /// caching: every lookup misses, every insert is dropped).
    pub fn new(cap: usize) -> Lru<K, V> {
        Lru { cap, tick: 0, map: HashMap::new(), hits: 0, misses: 0, evictions: 0 }
    }

    /// Look up `k`, marking it most-recently-used on a hit.
    pub fn get(&mut self, k: &K) -> Option<&V> {
        self.tick += 1;
        match self.map.get_mut(k) {
            Some(e) => {
                e.used = self.tick;
                self.hits += 1;
                Some(&e.v)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert `k → v`, evicting the least-recently-used entry if the cache
    /// is full. Replacing an existing key is not an eviction.
    pub fn insert(&mut self, k: K, v: V) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&k) && self.map.len() >= self.cap {
            // O(n) victim scan; caches here hold at most a few hundred
            // entries, far below the point where a heap would pay off.
            if let Some(victim) =
                self.map.iter().min_by_key(|(_, e)| e.used).map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
                self.evictions += 1;
            }
        }
        self.map.insert(k, Entry { v, used: self.tick });
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used_and_counts() {
        let mut c: Lru<u32, &str> = Lru::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(&1), Some(&"a")); // 1 is now fresher than 2
        c.insert(3, "c"); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), Some(&"c"));
        assert_eq!((c.hits, c.misses, c.evictions), (3, 1, 1));
        // Overwriting a live key is not an eviction.
        c.insert(3, "c2");
        assert_eq!(c.evictions, 1);
        assert_eq!(c.get(&3), Some(&"c2"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c: Lru<u32, u32> = Lru::new(0);
        c.insert(1, 10);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
        assert_eq!(c.misses, 1);
    }
}
