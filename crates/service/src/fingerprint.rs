//! Content hashing for cache keys and shard routing.
//!
//! Everything the service caches is addressed by *content*, not by name:
//! a kernel is identified by a hash of its sequential program graph (which
//! folds in the trip count — the loop bound is a constant in the graph),
//! and a machine by [`grip_machine::MachineDesc::fingerprint`]. Two
//! requests that describe the same computation hit the same cache lines no
//! matter how they were spelled. All digests come from the workspace's
//! one FNV-1a implementation, [`grip_ir::Fnv`].

use grip_ir::Graph;

pub use grip_ir::Fnv;

/// Stable content fingerprint of a sequential program graph.
///
/// Hashes the full instruction listing (ops, operands, structure, register
/// names — [`grip_ir::print::dump`] is deterministic because every id is
/// allocation-ordered), the array declarations, and the `live_out` set.
/// Graphs built by the same builder calls hash identically across
/// processes; any change to an op, bound, or array moves the hash.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut h = Fnv::new();
    h.str(&grip_ir::print::dump(g));
    for a in g.arrays() {
        h.str(&a.name).word(a.len as u64).word(match a.elem {
            grip_ir::ElemKind::F => 0,
            grip_ir::ElemKind::I => 1,
        });
    }
    for &r in &g.live_out {
        h.word(r.index() as u64);
    }
    h.finish()
}

/// Render a fingerprint the way the wire protocol spells it.
pub fn hex(fp: u64) -> String {
    format!("{fp:016x}")
}

/// Parse the wire spelling back ([`hex`]'s inverse).
pub fn parse_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_graphs_hash_stably_and_distinctly() {
        let ks = grip_kernels::kernels();
        let a = graph_fingerprint(&(ks[0].build)(40));
        let a2 = graph_fingerprint(&(ks[0].build)(40));
        assert_eq!(a, a2, "same builder, same hash");
        let b = graph_fingerprint(&(ks[0].build)(41));
        assert_ne!(a, b, "trip count is part of the content");
        let c = graph_fingerprint(&(ks[1].build)(40));
        assert_ne!(a, c, "different kernels differ");
        assert_eq!(parse_hex(&hex(a)), Some(a));
    }
}
