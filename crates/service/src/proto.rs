//! The JSON-lines wire protocol: one request object per line in, one
//! response object per line out, over stdin/stdout or TCP.
//!
//! Requests:
//!
//! ```json
//! {"id":1,"kernel":"LL3","n":48,"machine":"epic8"}
//! {"id":2,"kernel":"LL5","n":48,"machine":{"width":8,"slots":{"alu":4,"fpu":4,"mem":2},"latency":{"fpu":4,"fpu_long":16,"mem":2}},"unwind":12}
//! {"id":3,"kernel":"LL1","n":48,"machine":"scalar","trace":"req-abc","timings":true}
//! {"id":4,"kernel":"LL7","n":48,"machine":"mem_bound","audit":true}
//! {"cmd":"stats"}
//! {"cmd":"metrics"}
//! {"cmd":"metrics","format":"prometheus"}
//! {"cmd":"events","n":8}
//! ```
//!
//! `machine` is a preset name or an inline description (missing slot caps
//! mean uncapped, missing latencies mean one cycle). `unwind` and the four
//! option toggles are optional, as are `trace` (a client-chosen trace id,
//! echoed back; absent ids are shard-assigned), `timings` (opt into a
//! per-stage breakdown on the response), `audit` (opt into attaching
//! the `grip-audit` static verification report — the engine audits every
//! cold schedule either way), and `bounds` (opt into attaching the
//! `grip-bounds` optimality certificate — likewise proven on every cold
//! schedule). Unknown request keys are rejected, not ignored. `{"cmd":"stats"}` answers with
//! the aggregate cache counters after all in-flight requests drain, plus a
//! `"window"` object — the rolling-window view of the metrics registry
//! (rates and p50/p95/p99 deltas over the server's sampling window);
//! `{"cmd":"metrics"}` dumps the process-wide metrics registry (JSON, or
//! Prometheus text with `"format":"prometheus"`); `{"cmd":"events","n":K}`
//! returns the flight recorder's last `K` per-request records (and up to
//! `K` retained slow-request captures), most-recent-first.
//!
//! Responses echo the request `id` and carry the full measurement
//! (cycles, stalls, scheduler counters, fingerprints, verification flag,
//! cache status, wall time in nanoseconds plus fractional microseconds,
//! the trace id, and — when requested — the per-stage `timings` object).
//! Lines are written in request order; the server keeps a pipeline window
//! in flight across shards, so ordered output does not serialize the
//! pool.

use crate::engine::default_unwind;
use crate::fingerprint;
use crate::service::Service;
use crate::types::{
    inline_machine, CacheStatus, EngineOptions, MachineSpec, ScheduleRequest, ScheduleResponse,
};
use grip_core::ScheduleStats;
use grip_json::Json;
use grip_machine::LatencyTable;
use std::io::{BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{mpsc, Arc};

/// How many output frames (in-flight responses + queued error lines) the
/// line server allows before the reader blocks — bounds memory while
/// keeping every shard busy under a flood.
const PIPELINE_WINDOW: usize = 128;

// ---- requests ----

/// Serialize a request to its wire object.
pub fn request_to_json(req: &ScheduleRequest) -> Json {
    let machine = match &req.machine {
        MachineSpec::Preset(name) => Json::Str(name.clone()),
        MachineSpec::Inline(d) => {
            let cap = |v: usize| {
                if v == grip_machine::UNCAPPED {
                    Json::Null
                } else {
                    Json::Int(v as i64)
                }
            };
            Json::obj()
                .field("width", cap(d.width))
                .field("cjs", cap(d.cjs))
                .field(
                    "slots",
                    Json::obj()
                        .field("alu", cap(d.class_slots[0]))
                        .field("fpu", cap(d.class_slots[1]))
                        .field("mem", cap(d.class_slots[2]))
                        .field("branch", cap(d.class_slots[3])),
                )
                .field(
                    "latency",
                    Json::obj()
                        .field("alu", u64::from(d.latency.alu))
                        .field("fpu", u64::from(d.latency.fpu))
                        .field("fpu_long", u64::from(d.latency.fpu_long))
                        .field("mem", u64::from(d.latency.mem))
                        .field("branch", u64::from(d.latency.branch)),
                )
        }
    };
    let mut j = Json::obj()
        .field("id", req.id)
        .field("kernel", req.kernel.as_str())
        .field("n", req.n as u64)
        .field("machine", machine);
    if let Some(u) = req.unwind {
        j = j.field("unwind", u);
    }
    if let Some(t) = &req.trace {
        j = j.field("trace", t.as_str());
    }
    if req.want_timings {
        j = j.field("timings", true);
    }
    if req.want_audit {
        j = j.field("audit", true);
    }
    if req.want_bounds {
        j = j.field("bounds", true);
    }
    let d = EngineOptions::default();
    let o = req.options;
    if o.fold_inductions != d.fold_inductions {
        j = j.field("fold_inductions", o.fold_inductions);
    }
    if o.gap_prevention != d.gap_prevention {
        j = j.field("gap_prevention", o.gap_prevention);
    }
    if o.dce != d.dce {
        j = j.field("dce", o.dce);
    }
    if o.try_roll != d.try_roll {
        j = j.field("try_roll", o.try_roll);
    }
    j
}

fn cap_of(j: Option<&Json>) -> Result<Option<usize>, String> {
    match j {
        None => Ok(None),
        Some(Json::Null) => Ok(None),
        Some(v) => match v.as_i64() {
            Some(i) if i >= 0 => Ok(Some(i as usize)),
            Some(-1) => Ok(None),
            _ => Err("caps must be non-negative integers or null".to_string()),
        },
    }
}

fn lat_of(j: Option<&Json>, field: &str) -> Result<u32, String> {
    match j.and_then(|l| l.get(field)) {
        None => Ok(1),
        Some(v) => match v.as_i64() {
            Some(i) if i >= 1 && i <= u32::MAX as i64 => Ok(i as u32),
            _ => Err(format!("latency.{field} must be a positive integer")),
        },
    }
}

/// Every key a request object may carry. Anything else is rejected —
/// silently ignoring a misspelled `"audti": true` would quietly serve a
/// different request than the caller believes they made.
const REQUEST_KEYS: [&str; 13] = [
    "id",
    "kernel",
    "n",
    "machine",
    "unwind",
    "trace",
    "timings",
    "audit",
    "bounds",
    "fold_inductions",
    "gap_prevention",
    "dce",
    "try_roll",
];

/// Parse a wire object into a request.
pub fn request_from_json(j: &Json) -> Result<ScheduleRequest, String> {
    if let Json::Obj(fields) = j {
        for (key, _) in fields {
            if !REQUEST_KEYS.contains(&key.as_str()) {
                return Err(format!("unknown request key \"{key}\""));
            }
        }
    }
    let kernel = j
        .get("kernel")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a \"kernel\" string".to_string())?
        .to_string();
    let n = j.get("n").and_then(Json::as_i64).ok_or("request needs an integer \"n\"")?;
    let machine = match j.get("machine") {
        Some(Json::Str(name)) => MachineSpec::Preset(name.clone()),
        Some(m @ Json::Obj(_)) => {
            // `width` must be present, but `null` means uncapped (pure
            // percolation), matching how the writer spells it.
            if m.get("width").is_none() {
                return Err("inline machine needs a \"width\"".to_string());
            }
            let width = cap_of(m.get("width"))?.unwrap_or(grip_machine::UNCAPPED);
            let cjs = cap_of(m.get("cjs"))?;
            let slots = m.get("slots");
            let slot = |name: &str| cap_of(slots.and_then(|s| s.get(name)));
            let lat = m.get("latency");
            let latency = LatencyTable {
                alu: lat_of(lat, "alu")?,
                fpu: lat_of(lat, "fpu")?,
                fpu_long: lat_of(lat, "fpu_long")?,
                mem: lat_of(lat, "mem")?,
                branch: lat_of(lat, "branch")?,
            };
            let mut desc =
                inline_machine(width, cjs, [slot("alu")?, slot("fpu")?, slot("mem")?], latency);
            if let Some(b) = slot("branch")? {
                desc.class_slots[3] = b;
            }
            MachineSpec::Inline(desc)
        }
        _ => return Err("request needs a \"machine\" (preset name or object)".to_string()),
    };
    let unwind = match j.get("unwind") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_i64()
                .filter(|&u| u >= 0)
                .map(|u| u as usize)
                .ok_or_else(|| "\"unwind\" must be a non-negative integer".to_string())?,
        ),
    };
    let mut options = EngineOptions::default();
    let flag = |key: &str, dflt: bool| -> Result<bool, String> {
        match j.get(key) {
            None => Ok(dflt),
            Some(v) => v.as_bool().ok_or_else(|| format!("\"{key}\" must be a boolean")),
        }
    };
    options.fold_inductions = flag("fold_inductions", options.fold_inductions)?;
    options.gap_prevention = flag("gap_prevention", options.gap_prevention)?;
    options.dce = flag("dce", options.dce)?;
    options.try_roll = flag("try_roll", options.try_roll)?;
    let trace = match j.get("trace") {
        None | Some(Json::Null) => None,
        Some(Json::Str(t)) => Some(t.clone()),
        Some(_) => return Err("\"trace\" must be a string".to_string()),
    };
    let want_timings = flag("timings", false)?;
    let want_audit = flag("audit", false)?;
    let want_bounds = flag("bounds", false)?;
    Ok(ScheduleRequest {
        id: j.get("id").and_then(Json::as_i64).unwrap_or(0) as u64,
        kernel,
        n,
        machine,
        unwind,
        options,
        trace,
        want_timings,
        want_audit,
        want_bounds,
    })
}

// ---- responses ----

fn stats_to_json(s: &ScheduleStats) -> Json {
    Json::obj()
        .field("hops", s.hops)
        .field("arrivals", s.arrivals)
        .field("renames", s.renames)
        .field("splits", s.splits)
        .field("suspensions", s.suspensions)
        .field("gap_rejections", s.gap_rejections)
        .field("resource_blocks", s.resource_blocks)
        .field("latency_blocks", s.latency_blocks)
        .field("dce_removed", s.dce_removed)
        .field("nodes_deleted", s.nodes_deleted)
        .field("deletions_blocked", s.deletions_blocked)
        .field("picks", s.picks)
        .field("speculation_vetoes", s.speculation_vetoes)
        .field("hazard_delay_rows", s.hazard_delay_rows)
        .field("hazard_backfills", s.hazard_backfills)
        .field("hazard_reclaimed_rows", s.hazard_reclaimed_rows)
        .field("bound_exits", s.bound_exits)
}

fn stats_from_json(j: Option<&Json>) -> ScheduleStats {
    let f = |name: &str| -> u64 {
        j.and_then(|s| s.get(name)).and_then(Json::as_i64).unwrap_or(0) as u64
    };
    ScheduleStats {
        hops: f("hops"),
        arrivals: f("arrivals"),
        renames: f("renames"),
        splits: f("splits"),
        suspensions: f("suspensions"),
        gap_rejections: f("gap_rejections"),
        resource_blocks: f("resource_blocks"),
        latency_blocks: f("latency_blocks"),
        dce_removed: f("dce_removed"),
        nodes_deleted: f("nodes_deleted"),
        deletions_blocked: f("deletions_blocked"),
        picks: f("picks"),
        speculation_vetoes: f("speculation_vetoes"),
        hazard_delay_rows: f("hazard_delay_rows"),
        hazard_backfills: f("hazard_backfills"),
        hazard_reclaimed_rows: f("hazard_reclaimed_rows"),
        bound_exits: f("bound_exits"),
    }
}

/// Serialize a response to its wire object. `wall_ns` is the source of
/// truth (integer nanoseconds); `wall_us` rides along as fractional
/// microseconds for human readers, so cache hits no longer flatten to
/// `0`. The `timings` breakdown is emitted only when the request opted
/// in (`"timings": true`).
pub fn response_to_json(r: &ScheduleResponse) -> Json {
    let mut j = Json::obj().field("id", r.id).field("ok", r.ok);
    if let Some(e) = &r.error {
        j = j.field("error", e.as_str());
    }
    let j = j
        .field("kernel", r.kernel.as_str())
        .field("machine", r.machine.as_str())
        .field("n", r.n as u64)
        .field("unwind", r.unwind)
        .field("kernel_hash", fingerprint::hex(r.kernel_hash))
        .field("machine_fp", fingerprint::hex(r.machine_fp))
        .field("schedule_rows", r.schedule_rows)
        .field("seq_cycles", r.seq_cycles)
        .field("sched_cycles", r.sched_cycles)
        .field("sched_stalls", r.sched_stalls)
        .field("template_violations", r.template_violations)
        .field("speedup", r.speedup)
        .field("body_speedup", r.body_speedup)
        .field("verified", r.verified)
        .field("state_digest", fingerprint::hex(r.state_digest))
        .field("cache", r.cache.as_str())
        .field("wall_ns", r.wall_ns)
        .field("wall_us", r.wall_ns as f64 / 1000.0)
        .field("shard", r.shard)
        .field("trace", r.trace_id.as_str())
        .field("stats", stats_to_json(&r.stats));
    let j = match &r.timings {
        Some(t) => j.field(
            "timings",
            Json::obj()
                .field("prepare_ns", t.prepare_ns)
                .field("schedule_ns", t.schedule_ns)
                .field("hazards_ns", t.hazards_ns)
                .field("verify_ns", t.verify_ns)
                .field("audit_ns", t.audit_ns)
                .field("bounds_ns", t.bounds_ns)
                .field("total_ns", t.total_ns),
        ),
        None => j,
    };
    let j = match &r.audit {
        Some(a) => j.field("audit", a.to_json()),
        None => j,
    };
    match &r.bounds {
        Some(b) => j.field("bounds", b.to_json()),
        None => j,
    }
}

/// Parse a wire object back into a response (what `grip-client` does with
/// the server's output).
pub fn response_from_json(j: &Json) -> Result<ScheduleResponse, String> {
    let int = |name: &str| j.get(name).and_then(Json::as_i64).unwrap_or(0);
    let hexf = |name: &str| {
        j.get(name).and_then(Json::as_str).and_then(fingerprint::parse_hex).unwrap_or(0)
    };
    // `null` is the wire form of a non-finite float.
    let fl = |name: &str| match j.get(name) {
        Some(v) => v.as_f64().unwrap_or(f64::NAN),
        None => f64::NAN,
    };
    Ok(ScheduleResponse {
        id: int("id") as u64,
        ok: j.get("ok").and_then(Json::as_bool).ok_or("response needs \"ok\"")?,
        error: j.get("error").and_then(Json::as_str).map(str::to_string),
        kernel: j.get("kernel").and_then(Json::as_str).unwrap_or("").to_string(),
        machine: j.get("machine").and_then(Json::as_str).unwrap_or("").to_string(),
        n: int("n"),
        unwind: int("unwind") as usize,
        kernel_hash: hexf("kernel_hash"),
        machine_fp: hexf("machine_fp"),
        schedule_rows: int("schedule_rows") as usize,
        seq_cycles: int("seq_cycles") as u64,
        sched_cycles: int("sched_cycles") as u64,
        sched_stalls: int("sched_stalls") as u64,
        template_violations: int("template_violations") as u64,
        speedup: fl("speedup"),
        body_speedup: fl("body_speedup"),
        stats: stats_from_json(j.get("stats")),
        verified: j.get("verified").and_then(Json::as_bool).unwrap_or(false),
        state_digest: hexf("state_digest"),
        cache: j
            .get("cache")
            .and_then(Json::as_str)
            .and_then(CacheStatus::parse)
            .unwrap_or(CacheStatus::Miss),
        // `wall_ns` is authoritative; fall back to the fractional
        // microsecond field for responses from older peers.
        wall_ns: match j.get("wall_ns") {
            Some(v) => v.as_i64().unwrap_or(0) as u64,
            None => (fl("wall_us").max(0.0) * 1000.0) as u64,
        },
        shard: int("shard") as usize,
        trace_id: j.get("trace").and_then(Json::as_str).unwrap_or("").to_string(),
        timings: j.get("timings").map(|t| {
            let ns = |name: &str| t.get(name).and_then(Json::as_i64).unwrap_or(0) as u64;
            grip_obs::StageBreakdown {
                prepare_ns: ns("prepare_ns"),
                schedule_ns: ns("schedule_ns"),
                hazards_ns: ns("hazards_ns"),
                verify_ns: ns("verify_ns"),
                audit_ns: ns("audit_ns"),
                bounds_ns: ns("bounds_ns"),
                total_ns: ns("total_ns"),
            }
        }),
        audit: match j.get("audit") {
            None | Some(Json::Null) => None,
            Some(a) => Some(grip_audit::AuditReport::from_json(a)?),
        },
        bounds: match j.get("bounds") {
            None | Some(Json::Null) => None,
            Some(b) => Some(grip_bounds::BoundCertificate::from_json(b)?),
        },
    })
}

// ---- the line server ----

/// What a [`serve_lines`] session did.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeSummary {
    /// Scheduling responses written.
    pub served: u64,
    /// Lines rejected before reaching the scheduler.
    pub rejected: u64,
}

/// One queued output line: either a response still being computed or a
/// line that is already text (errors, stats).
enum Frame {
    Resp(mpsc::Receiver<ScheduleResponse>),
    Line(String),
    /// Quiesce marker: acknowledged by the writer once every frame before
    /// it has been written and flushed.
    Sync(mpsc::SyncSender<()>),
}

/// Serve the JSON-lines protocol from `reader` to `writer` until EOF.
///
/// A dedicated writer thread drains responses **in request order as soon
/// as each is ready** (flushing per line), while the reader keeps
/// accepting new requests — so lockstep request/response clients get
/// their answer immediately, and floods still pipeline up to
/// [`PIPELINE_WINDOW`] requests across the shards. Malformed lines get an
/// in-order `ok:false` line; `{"cmd":"stats"}` quiesces the pipeline and
/// answers with aggregate counters. A shard worker dying mid-request
/// yields an in-band `ok:false` line for that request, not a dead server.
pub fn serve_lines(
    service: &Service,
    reader: impl BufRead,
    mut writer: impl Write + Send,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    // Bounded: enqueueing blocks once PIPELINE_WINDOW frames are unwritten,
    // which caps the in-flight pipeline.
    let (frames, frame_rx) = mpsc::sync_channel::<Frame>(PIPELINE_WINDOW);
    fn send(frames: &mpsc::SyncSender<Frame>, frame: Frame) {
        frames.send(frame).expect("writer thread gone");
    }

    std::thread::scope(|scope| -> std::io::Result<ServeSummary> {
        let writer_thread = scope.spawn(move || -> std::io::Result<()> {
            for frame in frame_rx {
                match frame {
                    Frame::Resp(rx) => match rx.recv() {
                        Ok(resp) => writeln!(writer, "{}", response_to_json(&resp).line())?,
                        // A dead shard worker must not take the whole
                        // session (in stdin mode, the whole server) down:
                        // report the loss in-band and keep going.
                        Err(_) => {
                            let out = Json::obj()
                                .field("ok", false)
                                .field("error", "internal: shard worker died serving this request");
                            writeln!(writer, "{}", out.line())?;
                        }
                    },
                    Frame::Line(s) => writeln!(writer, "{s}")?,
                    Frame::Sync(ack) => {
                        writer.flush()?;
                        let _ = ack.send(());
                        continue;
                    }
                }
                writer.flush()?;
            }
            writer.flush()
        });

        for line in reader.lines() {
            let line = line?;
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            match Json::parse(text) {
                Ok(j) if j.get("cmd").is_some() => {
                    // Control commands see a quiesced service: wait until
                    // every earlier frame is on the wire.
                    let (ack, ack_rx) = mpsc::sync_channel(1);
                    send(&frames, Frame::Sync(ack));
                    let _ = ack_rx.recv();
                    match j.get("cmd").and_then(Json::as_str) {
                        Some("stats") => {
                            // The windowed view diffs the current registry
                            // against the sampler's oldest retained
                            // snapshot (empty until the first tick — the
                            // serve binary ticks at boot and ~1 Hz).
                            let window =
                                grip_obs::window::global().stats_registry(grip_obs::global());
                            let out = Json::obj()
                                .field("cmd", "stats")
                                .field("ok", true)
                                .field("stats", service.stats().to_json())
                                .field("window", window.to_json());
                            send(&frames, Frame::Line(out.line()));
                        }
                        // `{"cmd":"events","n":K}` dumps the flight
                        // recorder: the last K completion records plus up
                        // to K retained slow-request captures, newest
                        // first. The pipeline is quiesced, so every
                        // request answered before this line is journaled.
                        Some("events") => {
                            let rec = grip_obs::events::global();
                            let n = match j.get("n") {
                                None | Some(Json::Null) => 16,
                                Some(v) => match v.as_i64() {
                                    Some(k) if k >= 0 => k as usize,
                                    _ => {
                                        summary.rejected += 1;
                                        let out = Json::obj()
                                            .field("ok", false)
                                            .field("error", "\"n\" must be a non-negative integer");
                                        send(&frames, Frame::Line(out.line()));
                                        continue;
                                    }
                                },
                            };
                            let events: Vec<Json> =
                                rec.recent(n).iter().map(|r| r.to_json()).collect();
                            let slow: Vec<Json> = rec.slow(n).iter().map(|r| r.to_json()).collect();
                            let out = Json::obj()
                                .field("cmd", "events")
                                .field("ok", true)
                                .field("total", rec.total_recorded())
                                .field("events", Json::Arr(events))
                                .field("slow", Json::Arr(slow));
                            send(&frames, Frame::Line(out.line()));
                        }
                        // `{"cmd":"metrics"}` dumps the process-wide
                        // grip-obs registry (stage histograms, pass
                        // counters, cache counters) as JSON, or — with
                        // `"format":"prometheus"` — as a Prometheus text
                        // exposition in the `text` field.
                        Some("metrics") => {
                            let snap = grip_obs::global().snapshot();
                            let out = Json::obj().field("cmd", "metrics").field("ok", true);
                            let out = match j.get("format").and_then(Json::as_str) {
                                Some("prometheus") => out
                                    .field("format", "prometheus")
                                    .field("text", snap.to_prometheus()),
                                _ => out.field("metrics", snap.to_json()),
                            };
                            send(&frames, Frame::Line(out.line()));
                        }
                        other => {
                            summary.rejected += 1;
                            let out = Json::obj()
                                .field("ok", false)
                                .field("error", format!("unknown cmd {other:?}"));
                            send(&frames, Frame::Line(out.line()));
                        }
                    }
                }
                Ok(j) => match request_from_json(&j) {
                    Ok(req) => {
                        summary.served += 1;
                        send(&frames, Frame::Resp(service.submit_async(req)));
                    }
                    Err(e) => {
                        summary.rejected += 1;
                        let id = j.get("id").and_then(Json::as_i64).unwrap_or(0);
                        let out =
                            Json::obj().field("id", id as u64).field("ok", false).field("error", e);
                        send(&frames, Frame::Line(out.line()));
                    }
                },
                Err(e) => {
                    summary.rejected += 1;
                    let out =
                        Json::obj().field("ok", false).field("error", format!("bad JSON: {e}"));
                    send(&frames, Frame::Line(out.line()));
                }
            }
        }
        drop(frames);
        writer_thread.join().expect("writer thread panicked")?;
        Ok(summary)
    })
}

/// Accept TCP connections forever, each served by [`serve_lines`] on its
/// own thread (connections share the service and its caches).
pub fn serve_tcp(service: Arc<Service>, listener: TcpListener) -> std::io::Result<()> {
    for conn in listener.incoming() {
        let stream: TcpStream = conn?;
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_default();
            let reader = std::io::BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            let writer = std::io::BufWriter::new(stream);
            match serve_lines(&service, reader, writer) {
                Ok(s) => {
                    eprintln!("[grip-serve] {peer}: served {}, rejected {}", s.served, s.rejected)
                }
                Err(e) => eprintln!("[grip-serve] {peer}: connection error: {e}"),
            }
        });
    }
    Ok(())
}

/// The default unwind the protocol documents for a preset width (exposed
/// so clients can pre-compute cache keys if they care).
pub fn protocol_default_unwind(width: usize) -> usize {
    default_unwind(width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        let mut req = ScheduleRequest::new("LL7", 33, MachineSpec::Preset("mem_bound".into()));
        req.id = 42;
        req.unwind = Some(9);
        req.options.try_roll = true;
        req.trace = Some("client-trace-7".into());
        req.want_timings = true;
        let j = request_to_json(&req);
        let back = request_from_json(&Json::parse(&j.line()).unwrap()).unwrap();
        assert_eq!(back, req);

        let inline = ScheduleRequest::new(
            "LL1",
            10,
            MachineSpec::Inline(inline_machine(
                4,
                Some(2),
                [Some(2), None, Some(1)],
                LatencyTable { alu: 1, fpu: 2, fpu_long: 8, mem: 2, branch: 1 },
            )),
        );
        let back = request_from_json(&request_to_json(&inline)).unwrap();
        assert_eq!(back, inline);

        // The branch-class cap and an uncapped width survive the wire too
        // (same fingerprint ⇒ same cache lines on the other side).
        let mut desc = inline_machine(4, Some(1), [Some(2), None, Some(1)], LatencyTable::UNIT);
        desc.class_slots[3] = 1;
        let branchy = ScheduleRequest::new("LL2", 8, MachineSpec::Inline(desc));
        let back = request_from_json(&request_to_json(&branchy)).unwrap();
        assert_eq!(back, branchy);
        match (&back.machine, &branchy.machine) {
            (MachineSpec::Inline(a), MachineSpec::Inline(b)) => {
                assert_eq!(a.fingerprint(), b.fingerprint())
            }
            _ => unreachable!(),
        }
        let mut unlimited = grip_machine::MachineDesc::UNLIMITED;
        unlimited.name = "inline";
        let wide = ScheduleRequest::new("LL3", 8, MachineSpec::Inline(unlimited));
        let back = request_from_json(&request_to_json(&wide)).unwrap();
        assert_eq!(back, wide);
    }

    #[test]
    fn malformed_requests_are_described() {
        for bad in [
            r#"{"n":4,"machine":"epic8"}"#,
            r#"{"kernel":"LL1","machine":"epic8"}"#,
            r#"{"kernel":"LL1","n":4}"#,
            r#"{"kernel":"LL1","n":4,"machine":{"slots":{}}}"#,
            r#"{"kernel":"LL1","n":4,"machine":"epic8","unwind":"yes"}"#,
        ] {
            let j = Json::parse(bad).unwrap();
            assert!(request_from_json(&j).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn line_server_answers_in_order_with_stats() {
        let svc = Service::new(ServiceConfig { shards: 2, ..Default::default() });
        let input = "\n\
            {\"id\":1,\"kernel\":\"LL12\",\"n\":12,\"machine\":\"uniform4\"}\n\
            not json\n\
            {\"id\":2,\"kernel\":\"LL12\",\"n\":12,\"machine\":\"uniform4\"}\n\
            {\"cmd\":\"stats\"}\n\
            {\"id\":3,\"kernel\":\"LL98\",\"n\":12,\"machine\":\"uniform4\"}\n";
        let mut out = Vec::new();
        let summary = serve_lines(&svc, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.served, 3);
        assert_eq!(summary.rejected, 1);
        let lines: Vec<Json> =
            String::from_utf8(out).unwrap().lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 5);
        // Every answer comes back in input-line order: response, the bad
        // JSON's in-order error, response, stats, response.
        let r1 = response_from_json(&lines[0]).unwrap();
        assert_eq!(lines[1].get("ok").and_then(Json::as_bool), Some(false), "bad JSON line");
        let r2 = response_from_json(&lines[2]).unwrap();
        assert_eq!((r1.id, r2.id), (1, 2));
        assert!(r1.ok && r1.verified && r2.ok);
        assert_eq!(r2.cache, CacheStatus::Hit, "repeat of id 1");
        assert!(r1.bits_eq(&r2));
        // Stats reflect both requests; the unknown kernel errors in-band.
        let st = lines[3].get("stats").unwrap();
        assert_eq!(st.get("processed").and_then(Json::as_i64), Some(2));
        assert_eq!(st.get("sched_hits").and_then(Json::as_i64), Some(1));
        let r3 = response_from_json(&lines[4]).unwrap();
        assert!(!r3.ok && r3.error.unwrap().contains("unknown kernel"));
    }

    #[test]
    fn events_command_dumps_journaled_flight_records() {
        let svc = Service::new(ServiceConfig { shards: 1, ..Default::default() });
        let input = "\
            {\"id\":1,\"kernel\":\"LL1\",\"n\":12,\"machine\":\"uniform4\",\"trace\":\"ev-a\"}\n\
            {\"id\":2,\"kernel\":\"LL1\",\"n\":12,\"machine\":\"uniform4\",\"trace\":\"ev-b\"}\n\
            {\"cmd\":\"events\",\"n\":2}\n\
            {\"cmd\":\"events\",\"n\":-3}\n\
            {\"cmd\":\"stats\"}\n";
        let mut out = Vec::new();
        serve_lines(&svc, input.as_bytes(), &mut out).unwrap();
        let lines: Vec<Json> =
            String::from_utf8(out).unwrap().lines().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(lines.len(), 5);
        let ev = &lines[2];
        assert_eq!(ev.get("ok").and_then(Json::as_bool), Some(true));
        assert!(ev.get("total").and_then(Json::as_i64).unwrap() >= 2, "both requests journaled");
        let events = match ev.get("events") {
            Some(Json::Arr(a)) => a,
            other => panic!("events must be an array, got {other:?}"),
        };
        // The recorder is process-global (other tests may interleave), so
        // check shape, not identity: the dump honours `n`, and every
        // record is a lossless FlightRecord wire form.
        assert_eq!(events.len(), 2, "the dump honours n");
        for e in events {
            let rec = grip_obs::FlightRecord::from_json(e);
            assert!(!rec.trace_id.is_empty());
            assert!(rec.finish_ns >= rec.dequeue_ns && rec.dequeue_ns >= rec.enqueue_ns);
            assert_eq!(rec.to_json().line(), e.line(), "record round-trips losslessly");
        }
        // A negative n is a protocol error, answered in-band.
        assert_eq!(lines[3].get("ok").and_then(Json::as_bool), Some(false));
        // The stats answer now carries the rolling-window object (empty
        // here: nothing ticks the sampler in stdin tests).
        assert!(lines[4].get("window").is_some(), "stats carries the windowed view");
    }

    #[test]
    fn malformed_audit_flags_and_unknown_keys_are_rejected() {
        // "audit" must be a strict JSON boolean — truthy strings and
        // numbers are protocol errors, not coercions.
        for bad in [
            r#"{"kernel":"LL1","n":4,"machine":"epic8","audit":"yes"}"#,
            r#"{"kernel":"LL1","n":4,"machine":"epic8","audit":1}"#,
            r#"{"kernel":"LL1","n":4,"machine":"epic8","audit":null}"#,
        ] {
            let err = request_from_json(&Json::parse(bad).unwrap()).unwrap_err();
            assert!(err.contains("boolean"), "{bad}: {err}");
        }
        // Unknown keys are rejected by name, so a typo cannot silently
        // drop an option on the floor.
        for (bad, key) in [
            (r#"{"kernel":"LL1","n":4,"machine":"epic8","audti":true}"#, "audti"),
            (r#"{"kernel":"LL1","n":4,"machine":"epic8","wants_timings":true}"#, "wants_timings"),
        ] {
            let err = request_from_json(&Json::parse(bad).unwrap()).unwrap_err();
            assert!(err.contains("unknown request key") && err.contains(key), "{bad}: {err}");
        }
        // The canonical spelling parses.
        let good = r#"{"kernel":"LL1","n":4,"machine":"epic8","audit":true}"#;
        let req = request_from_json(&Json::parse(good).unwrap()).unwrap();
        assert!(req.want_audit);
    }

    #[test]
    fn audit_reports_survive_the_wire() {
        let svc = Service::new(ServiceConfig { shards: 1, ..Default::default() });
        let mut req = ScheduleRequest::new("LL5", 16, MachineSpec::Preset("epic8".into()));
        req.want_audit = true;
        let resp = svc.submit(req.clone());
        assert!(resp.ok && resp.verified);
        let rep = resp.audit.as_ref().expect("opted-in audit report is delivered");
        assert!(rep.is_clean(), "service schedules audit clean: {rep}");
        assert!(rep.rows > 0 && rep.ops > 0, "report carries the audit's coverage counts");
        let back =
            response_from_json(&Json::parse(&response_to_json(&resp).line()).unwrap()).unwrap();
        assert!(back.bits_eq(&resp));
        assert_eq!(back.audit, resp.audit, "audit report is lossless on the wire");

        // Without the opt-in the response wire form has no audit field at
        // all, and parses back to None.
        req.want_audit = false;
        req.id += 1;
        let bare = svc.submit(req);
        assert!(bare.audit.is_none(), "audit delivery is opt-in");
        let j = response_to_json(&bare);
        assert!(j.line().find("\"audit\"").is_none(), "no audit key on the default wire form");
        let back = response_from_json(&Json::parse(&j.line()).unwrap()).unwrap();
        assert!(back.audit.is_none());
        assert!(back.bits_eq(&bare), "audit delivery does not perturb bit-identity");
    }

    #[test]
    fn dirty_audit_reports_round_trip() {
        // Failure shape: a report with structured diagnostics (the form
        // `grip-client --check` fails on) survives to_json/from_json.
        let rep = grip_audit::AuditReport {
            diagnostics: vec![grip_audit::Diagnostic {
                code: grip_audit::AuditCode::LatencyShadow,
                row: 7,
                op: Some("load x".into()),
                register: Some("r12".into()),
                message: "row 7 reads r12 2 cycles early".into(),
            }],
            rows: 9,
            ops: 31,
            mem_deps: 4,
            reg_deps: 18,
        };
        let back = grip_audit::AuditReport::from_json(&Json::parse(&rep.to_json().line()).unwrap())
            .unwrap();
        assert_eq!(back, rep);
        assert!(!back.is_clean());
    }

    #[test]
    fn malformed_bounds_flags_are_rejected() {
        // "bounds", like "audit", is a strict JSON boolean.
        for bad in [
            r#"{"kernel":"LL1","n":4,"machine":"epic8","bounds":"yes"}"#,
            r#"{"kernel":"LL1","n":4,"machine":"epic8","bounds":1}"#,
            r#"{"kernel":"LL1","n":4,"machine":"epic8","bounds":null}"#,
        ] {
            let err = request_from_json(&Json::parse(bad).unwrap()).unwrap_err();
            assert!(err.contains("boolean"), "{bad}: {err}");
        }
        let err = request_from_json(
            &Json::parse(r#"{"kernel":"LL1","n":4,"machine":"epic8","bouns":true}"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown request key") && err.contains("bouns"), "{err}");
        // The canonical spelling parses and round-trips.
        let good = r#"{"kernel":"LL1","n":4,"machine":"epic8","bounds":true}"#;
        let req = request_from_json(&Json::parse(good).unwrap()).unwrap();
        assert!(req.want_bounds);
        let back = request_from_json(&Json::parse(&request_to_json(&req).line()).unwrap()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn bound_certificates_survive_the_wire() {
        let svc = Service::new(ServiceConfig { shards: 1, ..Default::default() });
        let mut req = ScheduleRequest::new("LL5", 16, MachineSpec::Preset("epic8".into()));
        req.want_bounds = true;
        let resp = svc.submit(req.clone());
        assert!(resp.ok && resp.verified);
        let cert = resp.bounds.expect("opted-in certificate is delivered");
        assert!(cert.bound_cycles > 0, "a scheduled loop has a nonzero bound");
        assert!(
            (resp.schedule_rows as u64) >= cert.bound_cycles,
            "service schedules never beat their own certificate: {cert:?}"
        );
        let back =
            response_from_json(&Json::parse(&response_to_json(&resp).line()).unwrap()).unwrap();
        assert!(back.bits_eq(&resp));
        assert_eq!(back.bounds, resp.bounds, "certificate is lossless on the wire");

        // Every binding-constraint label survives the response wire form.
        for bc in grip_bounds::BindingConstraint::ALL {
            let mut tagged = resp.clone();
            tagged.bounds = Some(grip_bounds::BoundCertificate {
                bound_cycles: 17,
                binding_constraint: bc,
                gap_pct: 6.25,
                at_bound: false,
            });
            let wire = response_to_json(&tagged).line();
            let back = response_from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(back.bounds, tagged.bounds, "{bc} must survive the wire");
        }

        // Without the opt-in the wire form has no bounds key at all, and
        // delivery does not perturb bit-identity.
        req.want_bounds = false;
        req.id += 1;
        let bare = svc.submit(req);
        assert!(bare.bounds.is_none(), "bounds delivery is opt-in");
        let j = response_to_json(&bare).line();
        assert!(j.find("\"bounds\"").is_none(), "no bounds key on the default wire form");
        let back = response_from_json(&Json::parse(&j).unwrap()).unwrap();
        assert!(back.bounds.is_none());
        assert!(back.bits_eq(&bare), "bounds delivery does not perturb bit-identity");
    }

    #[test]
    fn responses_round_trip_bit_identically() {
        let svc = Service::new(ServiceConfig { shards: 1, ..Default::default() });
        let mut req = ScheduleRequest::new("LL3", 16, MachineSpec::Preset("clustered".into()));
        req.want_timings = true;
        let resp = svc.submit(req);
        assert!(resp.ok && resp.verified);
        let j = response_to_json(&resp);
        let back = response_from_json(&Json::parse(&j.line()).unwrap()).unwrap();
        assert!(back.bits_eq(&resp), "wire round-trip must not lose bits");
        assert_eq!(back.wall_ns, resp.wall_ns, "nanosecond wall time is lossless");
        assert_eq!(back.shard, resp.shard);
        assert_eq!(back.cache, resp.cache);
        assert_eq!(back.trace_id, resp.trace_id, "shard-assigned trace id survives");
        assert!(!back.trace_id.is_empty());
        assert_eq!(back.timings, resp.timings, "opted-in stage breakdown survives");
        let t = back.timings.expect("requested timings");
        assert!(t.total_ns > 0);
        assert!(t.schedule_ns > 0, "a cold schedule spends time scheduling: {t:?}");
    }
}
