//! Deterministic workload generation: the mixed sweep every load driver
//! (the `service` bench, `grip-client`, CI) shares.

use crate::types::{MachineSpec, ScheduleRequest};

/// The preset labels of the standard sweep (the same six machines as
/// `BENCH_machines.json`).
pub const SWEEP_PRESETS: [&str; 6] =
    ["uniform2", "uniform4", "uniform8", "clustered", "mem_bound", "epic8"];

/// SplitMix64: the workspace's standard seedable PRNG step.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Nearest-rank percentile over an already-sorted latency sample
/// (`p` in 0..=1; 0 for an empty sample). Shared by every load driver
/// that reports p50/p99.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// The mixed sweep: every sweep preset × every Livermore kernel, repeated
/// `repeat` times, deterministically shuffled by `seed`, ids `1..=len`.
/// With `repeat` ≥ 2 the stream mixes cold and cache-hit requests the way
/// steady service traffic would.
pub fn mixed_workload(n: i64, repeat: usize, seed: u64) -> Vec<ScheduleRequest> {
    let mut reqs: Vec<ScheduleRequest> = Vec::new();
    for _ in 0..repeat {
        for k in grip_kernels::kernels() {
            for preset in SWEEP_PRESETS {
                reqs.push(ScheduleRequest::new(k.name, n, MachineSpec::Preset(preset.into())));
            }
        }
    }
    // Fisher–Yates with a deterministic stream.
    let mut state = seed ^ 0x5851_f42d_4c95_7f2d;
    for i in (1..reqs.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        reqs.swap(i, j);
    }
    for (i, r) in reqs.iter_mut().enumerate() {
        r.id = i as u64 + 1;
    }
    reqs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_complete() {
        let a = mixed_workload(48, 2, 7);
        let b = mixed_workload(48, 2, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2 * 14 * SWEEP_PRESETS.len());
        // Every (kernel, preset) pair appears exactly `repeat` times.
        let mut counts = std::collections::HashMap::new();
        for r in &a {
            *counts.entry((r.kernel.clone(), r.machine.label())).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 14 * SWEEP_PRESETS.len());
        assert!(counts.values().all(|&c| c == 2));
        // Ids are 1..=len, and a different seed reorders.
        assert_eq!(a.iter().map(|r| r.id).max(), Some(a.len() as u64));
        let c = mixed_workload(48, 2, 8);
        assert_ne!(
            a.iter().map(|r| (r.kernel.clone(), r.machine.label())).collect::<Vec<_>>(),
            c.iter().map(|r| (r.kernel.clone(), r.machine.label())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.5), 0);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 0.0), 1);
        assert_eq!(percentile(&v, 0.5), 51);
        assert_eq!(percentile(&v, 0.99), 99);
        assert_eq!(percentile(&v, 1.0), 100);
    }
}
