//! The long-lived scheduling service: a [`ShardedPool`] of [`Engine`]s
//! plus content-fingerprint routing.
//!
//! Requests are routed by `hash(kernel name, trip count, machine
//! fingerprint)`, so every request for the same (kernel, machine) lands on
//! the shard whose caches already hold its prepared window and schedule —
//! cache affinity without any cross-shard coordination.

use crate::engine::{CacheCounters, Engine, EngineConfig};
use crate::fingerprint::Fnv;
use crate::pool::ShardedPool;
use crate::types::{ScheduleRequest, ScheduleResponse};
use grip_json::Json;
use std::sync::{mpsc, Arc, Mutex};

/// Service sizing.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceConfig {
    /// Worker shards; 0 (the default) picks the available parallelism
    /// (capped at 8).
    pub shards: usize,
    /// Per-shard engine/cache sizing.
    pub engine: EngineConfig,
}

/// Aggregate service statistics (summed over shards).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Shard count.
    pub shards: usize,
    /// Summed cache counters.
    pub counters: CacheCounters,
}

impl ServiceStats {
    /// Serialize for the protocol's `{"cmd":"stats"}` answer and the
    /// bench report.
    pub fn to_json(&self) -> Json {
        let c = &self.counters;
        Json::obj()
            .field("shards", self.shards)
            .field("processed", c.processed)
            .field("sched_hits", c.sched_hits)
            .field("sched_misses", c.sched_misses)
            .field("sched_evictions", c.sched_evictions)
            .field("ddg_hits", c.ddg_hits)
            .field("ddg_misses", c.ddg_misses)
            .field("ddg_evictions", c.ddg_evictions)
            .field("hit_rate", c.hit_rate())
    }
}

/// A running scheduling service.
pub struct Service {
    pool: ShardedPool<ScheduleRequest, ScheduleResponse>,
    counters: Arc<Vec<Mutex<CacheCounters>>>,
}

impl Service {
    /// Spin up the worker shards.
    pub fn new(cfg: ServiceConfig) -> Service {
        let shards = if cfg.shards > 0 {
            cfg.shards
        } else {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4).min(8)
        };
        let counters: Arc<Vec<Mutex<CacheCounters>>> =
            Arc::new((0..shards).map(|_| Mutex::new(CacheCounters::default())).collect());
        let engine_cfg = cfg.engine;
        let counters_w = Arc::clone(&counters);
        let pool = ShardedPool::new(
            shards,
            move |_| Engine::new(engine_cfg),
            move |shard, engine: &mut Engine, req: ScheduleRequest, meta| {
                let resp = engine.process(shard, &req, meta);
                *counters_w[shard].lock().expect("counter lock poisoned") = engine.counters();
                resp
            },
        );
        Service { pool, counters }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.pool.shards()
    }

    /// The shard a request routes to: content-hash of (kernel, n, machine
    /// fingerprint), so identical work always lands where its cache lines
    /// live. Unresolvable machines route by label — the shard only
    /// matters for affinity, and the engine reports the error either way.
    pub fn route(&self, req: &ScheduleRequest) -> usize {
        let mut h = Fnv::new();
        h.str(&req.kernel).word(req.n as u64);
        match req.machine.resolve() {
            Ok(desc) => h.word(desc.fingerprint()),
            Err(_) => h.str(&req.machine.label()),
        };
        (h.finish() % self.shards() as u64) as usize
    }

    /// Schedule one request, blocking for the response.
    pub fn submit(&self, req: ScheduleRequest) -> ScheduleResponse {
        let shard = self.route(&req);
        self.pool.run_on(shard, req)
    }

    /// Enqueue one request; the response arrives on the returned channel.
    pub fn submit_async(&self, req: ScheduleRequest) -> mpsc::Receiver<ScheduleResponse> {
        let shard = self.route(&req);
        self.pool.submit_to(shard, req)
    }

    /// Schedule a batch, all shards in flight, responses in request order.
    pub fn submit_batch(&self, reqs: Vec<ScheduleRequest>) -> Vec<ScheduleResponse> {
        let routed: Vec<(usize, ScheduleRequest)> =
            reqs.into_iter().map(|r| (self.route(&r), r)).collect();
        self.pool.map_batch(routed)
    }

    /// Aggregate statistics over all shards.
    pub fn stats(&self) -> ServiceStats {
        let mut sum = CacheCounters::default();
        for c in self.counters.iter() {
            sum.add(&c.lock().expect("counter lock poisoned"));
        }
        ServiceStats { shards: self.shards(), counters: sum }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MachineSpec;

    fn req(kernel: &str, n: i64, machine: &str) -> ScheduleRequest {
        ScheduleRequest::new(kernel, n, MachineSpec::Preset(machine.to_string()))
    }

    #[test]
    fn batch_over_shards_preserves_order_and_counts() {
        let svc = Service::new(ServiceConfig { shards: 3, engine: EngineConfig::default() });
        let reqs: Vec<ScheduleRequest> = ["LL1", "LL3", "LL12"]
            .iter()
            .flat_map(|k| ["uniform4", "clustered"].iter().map(|m| req(k, 12, m)))
            .collect();
        let out = svc.submit_batch(reqs.clone());
        assert_eq!(out.len(), 6);
        for (q, r) in reqs.iter().zip(&out) {
            assert_eq!(q.kernel, r.kernel);
            assert!(r.ok && r.verified, "{}/{}: {:?}", r.kernel, r.machine, r.error);
            assert_eq!(r.sched_stalls, 0);
        }
        // Resubmitting the same batch is all schedule-cache hits, served
        // by the same shards (affinity), bit-identical.
        let again = svc.submit_batch(reqs);
        for (a, b) in out.iter().zip(&again) {
            assert_eq!(b.cache, crate::types::CacheStatus::Hit);
            assert_eq!(a.shard, b.shard, "affine routing");
            assert!(a.bits_eq(b));
        }
        let st = svc.stats();
        assert_eq!(st.counters.processed, 12);
        assert_eq!(st.counters.sched_hits, 6);
        assert!((st.counters.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn routing_is_content_addressed() {
        let svc = Service::new(ServiceConfig { shards: 5, engine: EngineConfig::default() });
        // An inline spelling of epic8 routes to the preset's shard.
        let preset = req("LL2", 20, "epic8");
        let inline = ScheduleRequest::new(
            "LL2",
            20,
            MachineSpec::Inline(crate::types::inline_machine(
                8,
                None,
                [Some(4), Some(4), Some(2)],
                grip_machine::LatencyTable { alu: 1, fpu: 4, fpu_long: 16, mem: 2, branch: 1 },
            )),
        );
        assert_eq!(svc.route(&preset), svc.route(&inline));
    }
}
