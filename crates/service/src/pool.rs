//! The sharded worker pool: long-lived `std::thread` workers, one queue
//! per shard.
//!
//! Jobs are routed to an explicit shard; each worker owns per-shard state
//! (built once on its own thread by a state factory), so shard-affine
//! routing makes that state — the service's schedule and DDG caches — hot
//! without any cross-shard locking. Results come back over per-job
//! `mpsc` channels, so callers can block ([`ShardedPool::run_on`]), batch
//! in submission order ([`ShardedPool::map_batch`]), or pipeline
//! ([`ShardedPool::submit_to`]).
//!
//! The pool is also the workspace's one parallel-map substrate: the bench
//! sweeps that used to carry their own scoped-thread loops now run on it
//! (one shard per kernel reproduces their old one-worker-per-kernel
//! layout).
//!
//! ## Queue observability
//!
//! Every job is stamped at enqueue and dequeue, and the pool maintains,
//! per shard `i`: a depth gauge `grip_queue_depth_s<i>` and a queue-wait
//! histogram `grip_queue_wait_ns_s<i>` (enqueue→dequeue), plus the
//! aggregates `grip_queue_depth` / `grip_queue_wait_ns` and the inflight
//! gauge `grip_pool_inflight` (jobs dequeued but not yet finished).
//! Handles are resolved once at pool construction, so the hot path pays
//! two atomics per transition and no registry lookups. The stamps ride to
//! the work closure as a [`JobMeta`], which the service engine copies
//! into its flight-recorder records.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The pool's timing stamps for one job, handed to the work closure and
/// (in the service) journaled into the flight recorder.
#[derive(Clone, Copy, Debug)]
pub struct JobMeta {
    /// When the job entered its shard queue.
    pub enqueued_at: Instant,
    /// When a worker popped it.
    pub dequeued_at: Instant,
}

impl JobMeta {
    /// Stamps for a job that never queued (both stamps "now") — direct
    /// engine calls in tests and single-threaded tools.
    pub fn immediate() -> JobMeta {
        let now = Instant::now();
        JobMeta { enqueued_at: now, dequeued_at: now }
    }

    /// Nanoseconds the job waited in its shard queue.
    pub fn queue_wait_ns(&self) -> u64 {
        self.dequeued_at.saturating_duration_since(self.enqueued_at).as_nanos() as u64
    }
}

/// A fixed set of worker threads with one FIFO queue per shard.
pub struct ShardedPool<J: Send + 'static, R: Send + 'static> {
    inner: Arc<Inner<J, R>>,
    handles: Vec<JoinHandle<()>>,
}

struct Inner<J, R> {
    shards: Vec<ShardQueue<J, R>>,
    shutdown: AtomicBool,
    /// Aggregate queue metrics (cross-shard), resolved once.
    depth_all: grip_obs::Gauge,
    wait_all: grip_obs::Histogram,
    inflight: grip_obs::Gauge,
}

struct ShardQueue<J, R> {
    q: Mutex<VecDeque<(J, mpsc::Sender<R>, Instant)>>,
    cv: Condvar,
    /// Per-shard queue metrics, resolved once at pool construction.
    depth: grip_obs::Gauge,
    wait: grip_obs::Histogram,
}

/// Resolve the pool's aggregate metric handles (and describe them for the
/// Prometheus exposition).
fn aggregate_metrics() -> (grip_obs::Gauge, grip_obs::Histogram, grip_obs::Gauge) {
    let reg = grip_obs::metrics::global();
    reg.describe("grip_queue_depth", "Jobs waiting across all shard queues.");
    reg.describe("grip_queue_wait_ns", "Enqueue-to-dequeue wait across all shards, ns.");
    reg.describe("grip_pool_inflight", "Jobs dequeued but not yet finished, across all shards.");
    (
        reg.gauge("grip_queue_depth"),
        reg.histogram("grip_queue_wait_ns"),
        reg.gauge("grip_pool_inflight"),
    )
}

/// Resolve shard `i`'s metric handles.
fn shard_metrics(i: usize) -> (grip_obs::Gauge, grip_obs::Histogram) {
    let reg = grip_obs::metrics::global();
    let depth = format!("grip_queue_depth_s{i}");
    let wait = format!("grip_queue_wait_ns_s{i}");
    reg.describe(&depth, "Jobs waiting in this shard's queue.");
    reg.describe(&wait, "Enqueue-to-dequeue wait in this shard's queue, ns.");
    (reg.gauge(&depth), reg.histogram(&wait))
}

impl<J: Send + 'static, R: Send + 'static> ShardedPool<J, R> {
    /// Spawn `shards` workers. `state(i)` runs **on worker `i`'s thread**
    /// to build its private state; `work(i, &mut state, job, &meta)`
    /// handles one job (`meta` carries the queue timing stamps). Worker
    /// panics poison only their own shard's jobs (the caller's receiver
    /// disconnects); the pool itself keeps serving other shards. The
    /// blocking helpers ([`ShardedPool::run_on`] /
    /// [`ShardedPool::map_batch`]) surface such a loss as a panic in the
    /// *caller*; callers that must outlive worker crashes (the protocol
    /// server) use [`ShardedPool::submit_to`] and handle the recv error.
    pub fn new<S, FS, FW>(shards: usize, state: FS, work: FW) -> ShardedPool<J, R>
    where
        S: 'static,
        FS: Fn(usize) -> S + Send + Sync + 'static,
        FW: Fn(usize, &mut S, J, &JobMeta) -> R + Send + Sync + 'static,
    {
        assert!(shards >= 1, "a pool needs at least one shard");
        let (depth_all, wait_all, inflight) = aggregate_metrics();
        let inner = Arc::new(Inner {
            shards: (0..shards)
                .map(|i| {
                    let (depth, wait) = shard_metrics(i);
                    ShardQueue { q: Mutex::new(VecDeque::new()), cv: Condvar::new(), depth, wait }
                })
                .collect(),
            shutdown: AtomicBool::new(false),
            depth_all,
            wait_all,
            inflight,
        });
        let state = Arc::new(state);
        let work = Arc::new(work);
        let handles = (0..shards)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let state = Arc::clone(&state);
                let work = Arc::clone(&work);
                std::thread::Builder::new()
                    .name(format!("grip-shard-{i}"))
                    .spawn(move || {
                        let mut s = state(i);
                        let shard = &inner.shards[i];
                        loop {
                            let job = {
                                let mut q = shard.q.lock().expect("shard queue poisoned");
                                loop {
                                    if let Some(j) = q.pop_front() {
                                        break Some(j);
                                    }
                                    if inner.shutdown.load(Ordering::Acquire) {
                                        break None;
                                    }
                                    q = shard.cv.wait(q).expect("shard queue poisoned");
                                }
                            };
                            match job {
                                Some((j, tx, enqueued_at)) => {
                                    let meta = JobMeta { enqueued_at, dequeued_at: Instant::now() };
                                    shard.depth.add(-1);
                                    inner.depth_all.add(-1);
                                    let wait = meta.queue_wait_ns();
                                    shard.wait.record(wait);
                                    inner.wait_all.record(wait);
                                    inner.inflight.add(1);
                                    // A dropped receiver just means the
                                    // caller stopped waiting.
                                    let _ = tx.send(work(i, &mut s, j, &meta));
                                    inner.inflight.add(-1);
                                }
                                None => return,
                            }
                        }
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        ShardedPool { inner, handles }
    }

    /// Number of shards (== worker threads).
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Jobs currently waiting in shard queues (not yet dequeued).
    pub fn queue_depth(&self) -> i64 {
        self.inner.depth_all.get()
    }

    /// Enqueue `job` on `shard` (modulo the shard count) and return the
    /// receiver its result will arrive on.
    pub fn submit_to(&self, shard: usize, job: J) -> mpsc::Receiver<R> {
        let (tx, rx) = mpsc::channel();
        let s = &self.inner.shards[shard % self.shards()];
        s.q.lock().expect("shard queue poisoned").push_back((job, tx, Instant::now()));
        s.depth.add(1);
        self.inner.depth_all.add(1);
        s.cv.notify_one();
        rx
    }

    /// Submit and block for the result.
    pub fn run_on(&self, shard: usize, job: J) -> R {
        self.submit_to(shard, job).recv().expect("shard worker dropped the job")
    }

    /// Submit every `(shard, job)` pair up front, then collect results in
    /// submission order — the parallel-map the bench sweeps run on.
    pub fn map_batch(&self, jobs: impl IntoIterator<Item = (usize, J)>) -> Vec<R> {
        let rxs: Vec<mpsc::Receiver<R>> =
            jobs.into_iter().map(|(shard, job)| self.submit_to(shard, job)).collect();
        rxs.into_iter().map(|rx| rx.recv().expect("shard worker dropped the job")).collect()
    }
}

impl<J: Send + 'static, R: Send + 'static> Drop for ShardedPool<J, R> {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for s in &self.inner.shards {
            s.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Jobs abandoned in queues at shutdown would otherwise leave the
        // depth gauges skewed for the process lifetime.
        for s in &self.inner.shards {
            let dropped = s.q.lock().expect("shard queue poisoned").len() as i64;
            if dropped > 0 {
                s.depth.add(-dropped);
                self.inner.depth_all.add(-dropped);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_batch_preserves_submission_order() {
        let pool: ShardedPool<u64, u64> = ShardedPool::new(4, |_| (), |_, _, j, _| j * 2);
        let out = pool.map_batch((0..100u64).map(|j| ((j % 4) as usize, j)));
        assert_eq!(out, (0..100u64).map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn shard_state_is_private_and_persistent() {
        // Each shard counts its own jobs; affine routing must keep the
        // counts disjoint and cumulative.
        let pool: ShardedPool<(), usize> = ShardedPool::new(
            2,
            |_| 0usize,
            |_, seen, (), _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(pool.run_on(0, ()), 1);
        assert_eq!(pool.run_on(0, ()), 2);
        assert_eq!(pool.run_on(1, ()), 1, "shard 1 has its own state");
        assert_eq!(pool.run_on(5, ()), 2, "shard index wraps modulo the pool");
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool: ShardedPool<u32, u32> = ShardedPool::new(3, |_| (), |_, _, j, _| j);
        let _ = pool.map_batch([(0, 1u32), (1, 2), (2, 3)]);
        drop(pool); // must not hang
    }

    #[test]
    fn job_meta_orders_stamps_and_measures_wait() {
        let pool: ShardedPool<(), u64> =
            ShardedPool::new(1, |_| (), |_, _, (), meta: &JobMeta| meta.queue_wait_ns());
        // Even an uncontended submit→pop transition takes nonzero time.
        let wait = pool.run_on(0, ());
        assert!(wait > 0, "queue wait is measured: {wait}");
        let m = JobMeta::immediate();
        assert_eq!(m.queue_wait_ns(), 0, "immediate meta waits zero");
    }

    #[test]
    fn queue_depth_drains_back_to_zero() {
        let pool: ShardedPool<u64, u64> = ShardedPool::new(2, |_| (), |_, _, j, _| j);
        let before = pool.queue_depth();
        let _ = pool.map_batch((0..64u64).map(|j| ((j % 2) as usize, j)));
        // All jobs dequeued: the aggregate depth gauge is back where it
        // started (other concurrently running pools share the gauge, so
        // compare against the entry value, not zero).
        assert_eq!(pool.queue_depth(), before);
    }
}
