//! The sharded worker pool: long-lived `std::thread` workers, one queue
//! per shard.
//!
//! Jobs are routed to an explicit shard; each worker owns per-shard state
//! (built once on its own thread by a state factory), so shard-affine
//! routing makes that state — the service's schedule and DDG caches — hot
//! without any cross-shard locking. Results come back over per-job
//! `mpsc` channels, so callers can block ([`ShardedPool::run_on`]), batch
//! in submission order ([`ShardedPool::map_batch`]), or pipeline
//! ([`ShardedPool::submit_to`]).
//!
//! The pool is also the workspace's one parallel-map substrate: the bench
//! sweeps that used to carry their own scoped-thread loops now run on it
//! (one shard per kernel reproduces their old one-worker-per-kernel
//! layout).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A fixed set of worker threads with one FIFO queue per shard.
pub struct ShardedPool<J: Send + 'static, R: Send + 'static> {
    inner: Arc<Inner<J, R>>,
    handles: Vec<JoinHandle<()>>,
}

struct Inner<J, R> {
    shards: Vec<ShardQueue<J, R>>,
    shutdown: AtomicBool,
}

struct ShardQueue<J, R> {
    q: Mutex<VecDeque<(J, mpsc::Sender<R>)>>,
    cv: Condvar,
}

impl<J: Send + 'static, R: Send + 'static> ShardedPool<J, R> {
    /// Spawn `shards` workers. `state(i)` runs **on worker `i`'s thread**
    /// to build its private state; `work(i, &mut state, job)` handles one
    /// job. Worker panics poison only their own shard's jobs (the caller's
    /// receiver disconnects); the pool itself keeps serving other shards.
    /// The blocking helpers ([`ShardedPool::run_on`] /
    /// [`ShardedPool::map_batch`]) surface such a loss as a panic in the
    /// *caller*; callers that must outlive worker crashes (the protocol
    /// server) use [`ShardedPool::submit_to`] and handle the recv error.
    pub fn new<S, FS, FW>(shards: usize, state: FS, work: FW) -> ShardedPool<J, R>
    where
        S: 'static,
        FS: Fn(usize) -> S + Send + Sync + 'static,
        FW: Fn(usize, &mut S, J) -> R + Send + Sync + 'static,
    {
        assert!(shards >= 1, "a pool needs at least one shard");
        let inner = Arc::new(Inner {
            shards: (0..shards)
                .map(|_| ShardQueue { q: Mutex::new(VecDeque::new()), cv: Condvar::new() })
                .collect(),
            shutdown: AtomicBool::new(false),
        });
        let state = Arc::new(state);
        let work = Arc::new(work);
        let handles = (0..shards)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let state = Arc::clone(&state);
                let work = Arc::clone(&work);
                std::thread::Builder::new()
                    .name(format!("grip-shard-{i}"))
                    .spawn(move || {
                        let mut s = state(i);
                        let shard = &inner.shards[i];
                        loop {
                            let job = {
                                let mut q = shard.q.lock().expect("shard queue poisoned");
                                loop {
                                    if let Some(j) = q.pop_front() {
                                        break Some(j);
                                    }
                                    if inner.shutdown.load(Ordering::Acquire) {
                                        break None;
                                    }
                                    q = shard.cv.wait(q).expect("shard queue poisoned");
                                }
                            };
                            match job {
                                Some((j, tx)) => {
                                    // A dropped receiver just means the
                                    // caller stopped waiting.
                                    let _ = tx.send(work(i, &mut s, j));
                                }
                                None => return,
                            }
                        }
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        ShardedPool { inner, handles }
    }

    /// Number of shards (== worker threads).
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Enqueue `job` on `shard` (modulo the shard count) and return the
    /// receiver its result will arrive on.
    pub fn submit_to(&self, shard: usize, job: J) -> mpsc::Receiver<R> {
        let (tx, rx) = mpsc::channel();
        let s = &self.inner.shards[shard % self.shards()];
        s.q.lock().expect("shard queue poisoned").push_back((job, tx));
        s.cv.notify_one();
        rx
    }

    /// Submit and block for the result.
    pub fn run_on(&self, shard: usize, job: J) -> R {
        self.submit_to(shard, job).recv().expect("shard worker dropped the job")
    }

    /// Submit every `(shard, job)` pair up front, then collect results in
    /// submission order — the parallel-map the bench sweeps run on.
    pub fn map_batch(&self, jobs: impl IntoIterator<Item = (usize, J)>) -> Vec<R> {
        let rxs: Vec<mpsc::Receiver<R>> =
            jobs.into_iter().map(|(shard, job)| self.submit_to(shard, job)).collect();
        rxs.into_iter().map(|rx| rx.recv().expect("shard worker dropped the job")).collect()
    }
}

impl<J: Send + 'static, R: Send + 'static> Drop for ShardedPool<J, R> {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for s in &self.inner.shards {
            s.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_batch_preserves_submission_order() {
        let pool: ShardedPool<u64, u64> = ShardedPool::new(4, |_| (), |_, _, j| j * 2);
        let out = pool.map_batch((0..100u64).map(|j| ((j % 4) as usize, j)));
        assert_eq!(out, (0..100u64).map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn shard_state_is_private_and_persistent() {
        // Each shard counts its own jobs; affine routing must keep the
        // counts disjoint and cumulative.
        let pool: ShardedPool<(), usize> = ShardedPool::new(
            2,
            |_| 0usize,
            |_, seen, ()| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(pool.run_on(0, ()), 1);
        assert_eq!(pool.run_on(0, ()), 2);
        assert_eq!(pool.run_on(1, ()), 1, "shard 1 has its own state");
        assert_eq!(pool.run_on(5, ()), 2, "shard index wraps modulo the pool");
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool: ShardedPool<u32, u32> = ShardedPool::new(3, |_| (), |_, _, j| j);
        let _ = pool.map_batch([(0, 1u32), (1, 2), (2, 3)]);
        drop(pool); // must not hang
    }
}
