//! The service's job shapes: [`ScheduleRequest`] in, [`ScheduleResponse`]
//! out.

use grip_core::ScheduleStats;
use grip_machine::{LatencyTable, MachineDesc, UNCAPPED};
use grip_obs::StageBreakdown;

/// Which machine a request schedules for.
#[derive(Clone, Debug, PartialEq)]
pub enum MachineSpec {
    /// A ready-made preset by name: `scalar`, `clustered`, `mem_bound`,
    /// `epic8`, `unlimited`, or `uniformN` for any width `N ≥ 1`.
    Preset(String),
    /// An inline description (the wire form spells out slots/latencies).
    Inline(MachineDesc),
}

impl MachineSpec {
    /// Resolve to a validated [`MachineDesc`].
    pub fn resolve(&self) -> Result<MachineDesc, String> {
        let desc = match self {
            MachineSpec::Inline(d) => *d,
            MachineSpec::Preset(name) => match name.as_str() {
                "scalar" => MachineDesc::scalar(),
                "clustered" => MachineDesc::clustered(),
                "mem_bound" => MachineDesc::mem_bound(),
                "epic8" => MachineDesc::epic8(),
                "unlimited" => MachineDesc::UNLIMITED,
                other => {
                    match other.strip_prefix("uniform").and_then(|w| w.parse::<usize>().ok()) {
                        Some(w) => MachineDesc::uniform(w),
                        None => return Err(format!("unknown machine preset '{other}'")),
                    }
                }
            },
        };
        desc.validate().map_err(|e| format!("invalid machine: {e}"))?;
        Ok(desc)
    }

    /// Display label for reports (`uniform` widths get the width appended,
    /// inline machines are labelled `inline`).
    pub fn label(&self) -> String {
        match self {
            MachineSpec::Preset(name) => name.clone(),
            MachineSpec::Inline(_) => "inline".to_string(),
        }
    }
}

/// Build an inline [`MachineDesc`] from wire-shaped parts (`None` caps
/// mean uncapped, `None` latencies mean one cycle).
pub fn inline_machine(
    width: usize,
    cjs: Option<usize>,
    slots: [Option<usize>; 3],
    latency: LatencyTable,
) -> MachineDesc {
    let mut desc = MachineDesc::uniform(width);
    desc.name = "inline";
    desc.cjs = cjs.unwrap_or(UNCAPPED);
    for (i, s) in slots.into_iter().enumerate() {
        desc.class_slots[i] = s.unwrap_or(UNCAPPED);
    }
    desc.latency = latency;
    desc
}

/// Pipeline toggles a request may set (all have the Table 1 defaults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineOptions {
    /// Fold unwound induction chains (cross-iteration parallelism).
    pub fold_inductions: bool,
    /// §3.3 gap prediction and prevention.
    pub gap_prevention: bool,
    /// Incremental dead-code removal.
    pub dce: bool,
    /// Attempt to re-roll the detected pattern into a real loop.
    pub try_roll: bool,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions { fold_inductions: true, gap_prevention: true, dce: true, try_roll: false }
    }
}

impl EngineOptions {
    /// Pack into the schedule-cache key.
    pub fn bits(&self) -> u8 {
        u8::from(self.fold_inductions)
            | u8::from(self.gap_prevention) << 1
            | u8::from(self.dce) << 2
            | u8::from(self.try_roll) << 3
    }
}

/// One scheduling job: which kernel, at what trip count, for which
/// machine, unwound how far.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleRequest {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Kernel name (`LL1`…`LL14`).
    pub kernel: String,
    /// Trip count (drives the loop bound and the verification inputs).
    pub n: i64,
    /// Target machine.
    pub machine: MachineSpec,
    /// Unwind factor; `None` picks the width-matched default
    /// ([`crate::default_unwind`]).
    pub unwind: Option<usize>,
    /// Pipeline toggles.
    pub options: EngineOptions,
    /// Client-supplied trace id, echoed on the response; `None` lets the
    /// serving shard assign one (`s<shard>-<seq>`).
    pub trace: Option<String>,
    /// Opt in to the per-stage `timings` breakdown on the wire response
    /// (in-process responses always carry it).
    pub want_timings: bool,
    /// Opt in to attaching the `grip-audit` static-verification report to
    /// the response. The engine audits every cold schedule regardless (and
    /// counts runs/diagnostics in the metrics registry); this flag only
    /// controls delivery of the report object.
    pub want_audit: bool,
    /// Opt in to attaching the `grip-bounds` optimality certificate. The
    /// engine proves the bound on every cold schedule regardless (and the
    /// scheduler uses it for early exit); this flag only controls delivery
    /// of the certificate object.
    pub want_bounds: bool,
}

impl ScheduleRequest {
    /// A Table 1-configured request for `kernel` on `machine` at trip
    /// count `n`.
    pub fn new(kernel: &str, n: i64, machine: MachineSpec) -> ScheduleRequest {
        ScheduleRequest {
            id: 0,
            kernel: kernel.to_string(),
            n,
            machine,
            unwind: None,
            options: EngineOptions::default(),
            trace: None,
            want_timings: false,
            want_audit: false,
            want_bounds: false,
        }
    }
}

/// How a response was produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Cold: window prepared, schedule computed.
    Miss,
    /// The schedule was computed, but the prepared window (unwound graph +
    /// DDG) came from the DDG cache.
    DdgHit,
    /// Served verbatim from the schedule cache.
    Hit,
}

impl CacheStatus {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheStatus::Miss => "miss",
            CacheStatus::DdgHit => "ddg_hit",
            CacheStatus::Hit => "hit",
        }
    }

    /// Parse the wire spelling.
    pub fn parse(s: &str) -> Option<CacheStatus> {
        match s {
            "miss" => Some(CacheStatus::Miss),
            "ddg_hit" => Some(CacheStatus::DdgHit),
            "hit" => Some(CacheStatus::Hit),
            _ => None,
        }
    }
}

/// The answer to one [`ScheduleRequest`].
///
/// Everything except the per-delivery fields (`id`, `cache`, `wall_ns`,
/// `shard`, `trace_id`, `timings`) is a pure function of the request
/// content — that is the cache-correctness invariant, checked by
/// [`ScheduleResponse::bits_eq`].
#[derive(Clone, Debug)]
pub struct ScheduleResponse {
    /// Echoed request id.
    pub id: u64,
    /// False when the request could not be served; see `error`.
    pub ok: bool,
    /// What went wrong, when `ok` is false.
    pub error: Option<String>,
    /// Kernel name.
    pub kernel: String,
    /// Machine label (preset name or `inline`).
    pub machine: String,
    /// Trip count.
    pub n: i64,
    /// Unwind factor actually used.
    pub unwind: usize,
    /// Content hash of the sequential kernel graph.
    pub kernel_hash: u64,
    /// Machine description fingerprint.
    pub machine_fp: u64,
    /// Steady rows of the scheduled window (schedule length).
    pub schedule_rows: usize,
    /// Model cycles of the sequential program on this machine.
    pub seq_cycles: u64,
    /// Model cycles of the scheduled program.
    pub sched_cycles: u64,
    /// Interlock stalls charged to the schedule (0 is an invariant).
    pub sched_stalls: u64,
    /// Issue-template violations observed in simulation (0 likewise).
    pub template_violations: u64,
    /// Wall-clock speedup `seq_cycles / sched_cycles`.
    pub speedup: f64,
    /// Loop-body CPI speedup (the paper's unit-cycle view).
    pub body_speedup: f64,
    /// Scheduler counters.
    pub stats: ScheduleStats,
    /// Scheduled program matched the sequential program bitwise, and both
    /// model runs completed.
    pub verified: bool,
    /// FNV-1a digest of the scheduled run's final observable state (all
    /// memory + `live_out` registers).
    pub state_digest: u64,
    /// How this response was produced.
    pub cache: CacheStatus,
    /// Service-side wall time for this request, in **nanoseconds**
    /// (recorded at full clock resolution so cache hits — single-digit
    /// microseconds — stay measurable; the wire emits fractional
    /// microseconds alongside).
    pub wall_ns: u64,
    /// Shard that served the request.
    pub shard: usize,
    /// Trace id: the request's, or shard-assigned (`s<shard>-<seq>`).
    pub trace_id: String,
    /// Per-stage self-time breakdown of serving this request (stages are
    /// ~zero on a schedule-cache hit). Present iff the request opted in
    /// via [`ScheduleRequest::want_timings`].
    pub timings: Option<StageBreakdown>,
    /// The `grip-audit` static verification report for the scheduled
    /// window. Computed on every cold run and cached with the response;
    /// delivered iff the request opted in via
    /// [`ScheduleRequest::want_audit`].
    pub audit: Option<grip_audit::AuditReport>,
    /// The `grip-bounds` optimality certificate for the scheduled window.
    /// Proven on every cold run and cached with the response; delivered
    /// iff the request opted in via [`ScheduleRequest::want_bounds`].
    pub bounds: Option<grip_bounds::BoundCertificate>,
}

impl ScheduleResponse {
    /// An error response for a request that never reached the scheduler.
    pub fn failure(req: &ScheduleRequest, error: String) -> ScheduleResponse {
        ScheduleResponse {
            id: req.id,
            ok: false,
            error: Some(error),
            kernel: req.kernel.clone(),
            machine: req.machine.label(),
            n: req.n,
            unwind: req.unwind.unwrap_or(0),
            kernel_hash: 0,
            machine_fp: 0,
            schedule_rows: 0,
            seq_cycles: 0,
            sched_cycles: 0,
            sched_stalls: 0,
            template_violations: 0,
            speedup: f64::NAN,
            body_speedup: f64::NAN,
            stats: ScheduleStats::default(),
            verified: false,
            state_digest: 0,
            cache: CacheStatus::Miss,
            wall_ns: 0,
            shard: 0,
            trace_id: String::new(),
            timings: None,
            audit: None,
            bounds: None,
        }
    }

    /// Bitwise content equality: every field that must be identical
    /// between a cache hit and a cold run (floats compared by bit
    /// pattern; the per-delivery fields
    /// `id`/`cache`/`wall_ns`/`shard`/`trace_id`/`timings`/`audit`/
    /// `bounds` excluded — the audit report and bound certificate are
    /// delivery-gated by `want_audit`/`want_bounds`, though their content
    /// is itself a pure function of the request).
    pub fn bits_eq(&self, other: &ScheduleResponse) -> bool {
        self.ok == other.ok
            && self.error == other.error
            && self.kernel == other.kernel
            && self.machine == other.machine
            && self.n == other.n
            && self.unwind == other.unwind
            && self.kernel_hash == other.kernel_hash
            && self.machine_fp == other.machine_fp
            && self.schedule_rows == other.schedule_rows
            && self.seq_cycles == other.seq_cycles
            && self.sched_cycles == other.sched_cycles
            && self.sched_stalls == other.sched_stalls
            && self.template_violations == other.template_violations
            && self.speedup.to_bits() == other.speedup.to_bits()
            && self.body_speedup.to_bits() == other.body_speedup.to_bits()
            && self.stats == other.stats
            && self.verified == other.verified
            && self.state_digest == other.state_digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_and_labels_round_trip() {
        for name in ["scalar", "clustered", "mem_bound", "epic8", "uniform4", "uniform16"] {
            let spec = MachineSpec::Preset(name.to_string());
            let desc = spec.resolve().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(desc.validate().is_ok());
            assert_eq!(spec.label(), name);
        }
        assert!(MachineSpec::Preset("uniform0".into()).resolve().is_err(), "zero width");
        assert!(MachineSpec::Preset("widevliw".into()).resolve().is_err());
    }

    #[test]
    fn inline_machines_default_to_uncapped_slots() {
        let d = inline_machine(4, None, [Some(2), None, Some(1)], LatencyTable::UNIT);
        assert_eq!(d.width, 4);
        assert_eq!(d.cjs, UNCAPPED);
        assert_eq!(d.class_slots[0], 2);
        assert_eq!(d.class_slots[1], UNCAPPED);
        assert_eq!(d.class_slots[2], 1);
        // Content-addressing: an inline spelling of a preset shares its
        // fingerprint.
        let epic = inline_machine(
            8,
            None,
            [Some(4), Some(4), Some(2)],
            grip_machine::LatencyTable { alu: 1, fpu: 4, fpu_long: 16, mem: 2, branch: 1 },
        );
        assert_eq!(epic.fingerprint(), MachineDesc::epic8().fingerprint());
    }

    #[test]
    fn option_bits_distinguish_all_toggles() {
        let mut seen = std::collections::HashSet::new();
        for fold in [false, true] {
            for gap in [false, true] {
                for dce in [false, true] {
                    for roll in [false, true] {
                        let o = EngineOptions {
                            fold_inductions: fold,
                            gap_prevention: gap,
                            dce,
                            try_roll: roll,
                        };
                        assert!(seen.insert(o.bits()), "bits collide: {o:?}");
                    }
                }
            }
        }
        assert_eq!(EngineOptions::default().bits(), 0b0111);
    }
}
