//! `grip-client` — scripted load for `grip-serve`.
//!
//! Three modes, composable into shell pipelines:
//!
//! ```text
//! grip-client --emit [--repeat K] [--n N] [--seed S] [--metrics]
//!     print the mixed sweep (all presets × LL1–LL14, repeated K times,
//!     shuffled) as JSON-lines requests on stdout, every request opting
//!     into the grip-audit report; --metrics appends {"cmd":"metrics"}
//!     (JSON and Prometheus forms) after the sweep
//!
//! grip-client --check [--expect-hits] [--metrics] [--latency-summary]
//!     read responses from stdin; fail (exit 1) on any !ok, unverified,
//!     stalled, or template-violating response, or any grip-audit
//!     report carrying diagnostics — and, with
//!     --expect-hits, if no response was served from the schedule
//!     cache; with --metrics, validate the metrics frames (nonzero
//!     stage counters, lint-clean Prometheus text); print a
//!     throughput/latency summary
//!
//! grip-client --addr HOST:PORT [--repeat K] [--n N] [--seed S]
//!             [--metrics] [--latency-summary]
//!     drive a TCP server with the same sweep and check + summarize the
//!     responses
//! ```
//!
//! `--latency-summary` prints a per-request latency histogram (the
//! `grip-obs` log2 histogram) plus the cold/hit latency split.
//!
//! CI runs `grip-client --emit --metrics | grip-serve | grip-client
//! --check --expect-hits --metrics` as the protocol + metrics smoke.

#![forbid(unsafe_code)]

use grip_json::Json;
use grip_obs::metrics::{bucket_bound, prometheus_lint};
use grip_obs::Histogram;
use grip_service::workload::{mixed_workload, percentile};
use grip_service::{proto, CacheStatus, ScheduleResponse};
use std::io::{BufRead, BufWriter, Write};

struct Opts {
    mode: Mode,
    repeat: usize,
    n: i64,
    seed: u64,
    expect_hits: bool,
    metrics: bool,
    latency_summary: bool,
}

enum Mode {
    Emit,
    Check,
    Addr(String),
}

fn usage() -> ! {
    eprintln!(
        "usage: grip-client (--emit | --check [--expect-hits] | --addr HOST:PORT) \
         [--repeat K] [--n N] [--seed S] [--metrics] [--latency-summary]"
    );
    std::process::exit(2)
}

fn parse_args() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = None;
    let mut opts = Opts {
        mode: Mode::Check,
        repeat: 3,
        n: 48,
        seed: 0x9fb3,
        expect_hits: false,
        metrics: false,
        latency_summary: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit" => mode = Some(Mode::Emit),
            "--check" => mode = Some(Mode::Check),
            "--addr" => mode = Some(Mode::Addr(it.next().cloned().unwrap_or_else(|| usage()))),
            "--repeat" => {
                opts.repeat = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--n" => opts.n = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--seed" => {
                opts.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--expect-hits" => opts.expect_hits = true,
            "--metrics" => opts.metrics = true,
            "--latency-summary" => opts.latency_summary = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    opts.mode = mode.unwrap_or_else(|| usage());
    opts
}

/// The two metrics probes `--metrics` appends after a sweep: the JSON
/// snapshot and the Prometheus text form.
fn metrics_probe_lines() -> [String; 2] {
    [
        Json::obj().field("cmd", "metrics").line(),
        Json::obj().field("cmd", "metrics").field("format", "prometheus").line(),
    ]
}

fn main() {
    let opts = parse_args();
    match &opts.mode {
        Mode::Emit => emit(&opts),
        Mode::Check => {
            let stdin = std::io::stdin();
            let (responses, metrics) = read_responses(stdin.lock());
            finish(&opts, &responses, &metrics, None);
        }
        Mode::Addr(addr) => drive_tcp(&opts, addr),
    }
}

/// The sweep `--emit` and `--addr` drive: the mixed workload with every
/// request opting into the grip-audit report and the grip-bounds
/// certificate, so `--check` can gate on audit-clean, bound-sound
/// responses end to end.
fn audit_workload(opts: &Opts) -> Vec<grip_service::ScheduleRequest> {
    mixed_workload(opts.n, opts.repeat, opts.seed)
        .into_iter()
        .map(|mut r| {
            r.want_audit = true;
            r.want_bounds = true;
            r
        })
        .collect()
}

fn emit(opts: &Opts) {
    let stdout = std::io::stdout();
    let mut w = BufWriter::new(stdout.lock());
    for req in audit_workload(opts) {
        writeln!(w, "{}", proto::request_to_json(&req).line()).expect("stdout");
    }
    if opts.metrics {
        for line in metrics_probe_lines() {
            writeln!(w, "{line}").expect("stdout");
        }
    }
    w.flush().expect("stdout");
}

fn read_responses(reader: impl BufRead) -> (Vec<ScheduleResponse>, Vec<Json>) {
    let mut out = Vec::new();
    let mut metrics = Vec::new();
    for line in reader.lines() {
        let line = line.expect("read responses");
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let j = Json::parse(text).unwrap_or_else(|e| {
            eprintln!("[grip-client] response is not JSON ({e}): {text}");
            std::process::exit(1);
        });
        if j.get("cmd").is_some() {
            if j.get("cmd").and_then(Json::as_str) == Some("metrics") {
                metrics.push(j);
            }
            continue; // other command frames pass through unchecked
        }
        match proto::response_from_json(&j) {
            Ok(r) => out.push(r),
            Err(e) => {
                eprintln!("[grip-client] bad response line ({e}): {text}");
                std::process::exit(1);
            }
        }
    }
    (out, metrics)
}

fn drive_tcp(opts: &Opts, addr: &str) {
    let reqs = audit_workload(opts);
    let total = reqs.len();
    let want_metrics = opts.metrics;
    let stream = std::net::TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("[grip-client] cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
    let t0 = std::time::Instant::now();
    // Writer thread streams every request; the server pipelines across
    // its shards and answers in order. With --metrics the two probe
    // commands follow the sweep, so their answers arrive last.
    let writer = std::thread::spawn(move || {
        let mut w = BufWriter::new(stream.try_clone().expect("clone stream"));
        for req in reqs {
            writeln!(w, "{}", proto::request_to_json(&req).line()).expect("send request");
        }
        if want_metrics {
            for line in metrics_probe_lines() {
                writeln!(w, "{line}").expect("send metrics probe");
            }
        }
        w.flush().expect("flush requests");
        // Dropping a try_clone'd handle does NOT close the socket (the
        // reader clone keeps the fd alive); send an explicit write-side
        // FIN so the server sees EOF once everything is answered.
        let _ = stream.shutdown(std::net::Shutdown::Write);
    });
    let mut responses = Vec::with_capacity(total);
    let mut metrics = Vec::new();
    let mut lines = reader.lines();
    let expected_metrics = if opts.metrics { metrics_probe_lines().len() } else { 0 };
    while responses.len() < total || metrics.len() < expected_metrics {
        match lines.next() {
            Some(Ok(line)) => {
                let text = line.trim();
                if text.is_empty() {
                    continue;
                }
                let j = Json::parse(text).unwrap_or_else(|e| {
                    eprintln!("[grip-client] response is not JSON ({e}): {text}");
                    std::process::exit(1);
                });
                if j.get("cmd").is_some() {
                    if j.get("cmd").and_then(Json::as_str) == Some("metrics") {
                        metrics.push(j);
                    }
                    continue;
                }
                responses.push(proto::response_from_json(&j).unwrap_or_else(|e| {
                    eprintln!("[grip-client] bad response ({e}): {text}");
                    std::process::exit(1);
                }));
            }
            _ => {
                eprintln!(
                    "[grip-client] connection closed after {}/{total} responses",
                    responses.len()
                );
                std::process::exit(1);
            }
        }
    }
    writer.join().expect("writer thread");
    finish(opts, &responses, &metrics, Some(t0.elapsed()));
}

/// Validate the `metrics` command answers: the JSON snapshot must carry
/// nonzero request and scheduler-stage counters, and the Prometheus text
/// must pass the line-format lint. Returns a description of the first
/// problem.
fn check_metrics_frames(frames: &[Json]) -> Result<(), String> {
    let snapshot = frames
        .iter()
        .find_map(|f| f.get("metrics"))
        .ok_or("no JSON metrics frame seen (is the server instrumented?)")?;
    let counter = |name: &str| snapshot.get(name).and_then(Json::as_i64).unwrap_or(0);
    for name in ["grip_requests_total", "grip_iterations_total", "grip_moves_committed_total"] {
        if counter(name) <= 0 {
            return Err(format!("stage counter {name} is zero in the metrics snapshot"));
        }
    }
    for stage in ["prepare", "schedule"] {
        let count = snapshot
            .get(&format!("grip_stage_self_ns_{stage}"))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_i64)
            .unwrap_or(0);
        if count <= 0 {
            return Err(format!("stage histogram grip_stage_self_ns_{stage} has no samples"));
        }
    }
    let text = frames
        .iter()
        .find(|f| f.get("format").and_then(Json::as_str) == Some("prometheus"))
        .and_then(|f| f.get("text"))
        .and_then(Json::as_str)
        .ok_or("no Prometheus metrics frame seen")?;
    prometheus_lint(text).map_err(|e| format!("Prometheus exposition failed the lint: {e}"))?;
    if !text.contains("grip_requests_total") {
        return Err("Prometheus exposition is missing grip_requests_total".to_string());
    }
    Ok(())
}

/// Render the `--latency-summary` block: a log2 latency histogram over
/// all responses plus the cold/hit split.
fn latency_summary(responses: &[ScheduleResponse]) -> String {
    use std::fmt::Write as _;
    let all = Histogram::new();
    let cold = Histogram::new();
    let hit = Histogram::new();
    for r in responses {
        all.record(r.wall_ns);
        match r.cache {
            CacheStatus::Hit => hit.record(r.wall_ns),
            _ => cold.record(r.wall_ns),
        }
    }
    let us = |ns: u64| ns as f64 / 1000.0;
    let mut s = String::new();
    let _ = writeln!(s, "request latency ({} responses, log2 buckets):", responses.len());
    let buckets = all.buckets();
    let width = buckets.iter().copied().max().unwrap_or(1).max(1);
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let lo = if i == 0 { 0 } else { bucket_bound(i - 1) + 1 };
        let bar = "#".repeat(((c as f64 / width as f64) * 40.0).ceil() as usize);
        let _ =
            writeln!(s, "  [{:>12.1} .. {:>12.1}] us {:>6}  {bar}", us(lo), us(bucket_bound(i)), c);
    }
    for (label, h) in [("cold", &cold), ("hit", &hit)] {
        let _ = writeln!(
            s,
            "  {label:<4} {:>6} responses, p50 ~{:.1} us, p99 ~{:.1} us",
            h.count(),
            us(h.quantile(0.50)),
            us(h.quantile(0.99)),
        );
    }
    s
}

fn finish(
    opts: &Opts,
    responses: &[ScheduleResponse],
    metrics: &[Json],
    wall: Option<std::time::Duration>,
) {
    let mut violations = 0usize;
    for r in responses {
        // Any non-empty diagnostic list fails the run, whatever its
        // codes: the auditor proved something about this schedule that
        // the dynamic checks did not see.
        let audit_dirty = r.audit.as_ref().is_some_and(|a| !a.diagnostics.is_empty());
        // Bound soundness: the certificate bounds one full traversal of
        // the steady window, and a trip count of at least `n - 5` (the
        // deepest kernel induction offset) forces `trip/unwind - 2`
        // complete traversals — no response may report fewer VM cycles
        // than the scaled proven bound.
        let bound_unsound = r.bounds.as_ref().is_some_and(|b| {
            let trip = (r.n.max(5) - 5) as u64;
            let traversals = if r.unwind > 0 && trip >= r.unwind as u64 {
                (trip / r.unwind as u64).saturating_sub(2).max(1)
            } else {
                0
            };
            r.ok && r.sched_cycles < traversals * b.bound_cycles
        });
        let bad = !r.ok
            || !r.verified
            || r.sched_stalls != 0
            || r.template_violations != 0
            || audit_dirty
            || bound_unsound;
        if bad {
            violations += 1;
            eprintln!(
                "[grip-client] VIOLATION {} on {}: ok={} verified={} stalls={} templates={} \
                 audit={} bounds={} {}",
                r.kernel,
                r.machine,
                r.ok,
                r.verified,
                r.sched_stalls,
                r.template_violations,
                r.audit.as_ref().map_or("absent".to_string(), |a| a.summary()),
                r.bounds.as_ref().map_or("absent".to_string(), |b| b.summary()),
                r.error.as_deref().unwrap_or(""),
            );
        }
    }
    let hits = responses.iter().filter(|r| r.cache == CacheStatus::Hit).count();
    let ddg_hits = responses.iter().filter(|r| r.cache == CacheStatus::DdgHit).count();
    let mut lat_ns: Vec<u64> = responses.iter().map(|r| r.wall_ns).collect();
    lat_ns.sort_unstable();
    let us = |ns: u64| ns as f64 / 1000.0;
    let summary = Json::obj()
        .field("responses", responses.len())
        .field("violations", violations)
        .field("cache_hits", hits)
        .field("ddg_hits", ddg_hits)
        .field(
            "hit_rate",
            if responses.is_empty() { 0.0 } else { hits as f64 / responses.len() as f64 },
        )
        .field("p50_us", us(percentile(&lat_ns, 0.50)))
        .field("p99_us", us(percentile(&lat_ns, 0.99)));
    let summary = match wall {
        Some(d) => summary.field("wall_s", d.as_secs_f64()).field(
            "requests_per_sec",
            if d.as_secs_f64() > 0.0 { responses.len() as f64 / d.as_secs_f64() } else { 0.0 },
        ),
        None => summary,
    };
    println!("{}", summary.line());
    if opts.latency_summary {
        print!("{}", latency_summary(responses));
    }
    if responses.is_empty() {
        eprintln!("[grip-client] no responses seen");
        std::process::exit(1);
    }
    if violations > 0 {
        std::process::exit(1);
    }
    if opts.expect_hits && hits == 0 {
        eprintln!("[grip-client] expected schedule-cache hits, saw none");
        std::process::exit(1);
    }
    if opts.metrics {
        if let Err(e) = check_metrics_frames(metrics) {
            eprintln!("[grip-client] metrics check failed: {e}");
            std::process::exit(1);
        }
        eprintln!("[grip-client] metrics OK: stage counters nonzero, Prometheus lint clean");
    }
    eprintln!("[grip-client] OK: {} responses, {hits} cache hits, 0 violations", responses.len());
}
