//! `grip-client` — scripted load for `grip-serve`.
//!
//! Three modes, composable into shell pipelines:
//!
//! ```text
//! grip-client --emit [--repeat K] [--n N] [--seed S]
//!     print the mixed sweep (all presets × LL1–LL14, repeated K times,
//!     shuffled) as JSON-lines requests on stdout
//!
//! grip-client --check [--expect-hits]
//!     read responses from stdin; fail (exit 1) on any !ok, unverified,
//!     stalled, or template-violating response — and, with
//!     --expect-hits, if no response was served from the schedule cache;
//!     print a throughput/latency summary
//!
//! grip-client --addr HOST:PORT [--repeat K] [--n N] [--seed S]
//!     drive a TCP server with the same sweep and check + summarize the
//!     responses
//! ```
//!
//! CI runs `grip-client --emit | grip-serve | grip-client --check
//! --expect-hits` as the protocol smoke test.

use grip_json::Json;
use grip_service::workload::{mixed_workload, percentile};
use grip_service::{proto, CacheStatus, ScheduleResponse};
use std::io::{BufRead, BufWriter, Write};

struct Opts {
    mode: Mode,
    repeat: usize,
    n: i64,
    seed: u64,
    expect_hits: bool,
}

enum Mode {
    Emit,
    Check,
    Addr(String),
}

fn usage() -> ! {
    eprintln!(
        "usage: grip-client (--emit | --check [--expect-hits] | --addr HOST:PORT) \
         [--repeat K] [--n N] [--seed S]"
    );
    std::process::exit(2)
}

fn parse_args() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = None;
    let mut opts = Opts { mode: Mode::Check, repeat: 3, n: 48, seed: 0x9fb3, expect_hits: false };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit" => mode = Some(Mode::Emit),
            "--check" => mode = Some(Mode::Check),
            "--addr" => mode = Some(Mode::Addr(it.next().cloned().unwrap_or_else(|| usage()))),
            "--repeat" => {
                opts.repeat = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--n" => opts.n = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--seed" => {
                opts.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--expect-hits" => opts.expect_hits = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    opts.mode = mode.unwrap_or_else(|| usage());
    opts
}

fn main() {
    let opts = parse_args();
    match &opts.mode {
        Mode::Emit => emit(&opts),
        Mode::Check => {
            let stdin = std::io::stdin();
            let responses = read_responses(stdin.lock());
            finish(&opts, &responses, None);
        }
        Mode::Addr(addr) => drive_tcp(&opts, addr),
    }
}

fn emit(opts: &Opts) {
    let stdout = std::io::stdout();
    let mut w = BufWriter::new(stdout.lock());
    for req in mixed_workload(opts.n, opts.repeat, opts.seed) {
        writeln!(w, "{}", proto::request_to_json(&req).line()).expect("stdout");
    }
    w.flush().expect("stdout");
}

fn read_responses(reader: impl BufRead) -> Vec<ScheduleResponse> {
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line.expect("read responses");
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let j = Json::parse(text).unwrap_or_else(|e| {
            eprintln!("[grip-client] response is not JSON ({e}): {text}");
            std::process::exit(1);
        });
        if j.get("cmd").is_some() {
            continue; // stats frames pass through unchecked
        }
        match proto::response_from_json(&j) {
            Ok(r) => out.push(r),
            Err(e) => {
                eprintln!("[grip-client] bad response line ({e}): {text}");
                std::process::exit(1);
            }
        }
    }
    out
}

fn drive_tcp(opts: &Opts, addr: &str) {
    let reqs = mixed_workload(opts.n, opts.repeat, opts.seed);
    let total = reqs.len();
    let stream = std::net::TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("[grip-client] cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
    let t0 = std::time::Instant::now();
    // Writer thread streams every request; the server pipelines across
    // its shards and answers in order.
    let writer = std::thread::spawn(move || {
        let mut w = BufWriter::new(stream.try_clone().expect("clone stream"));
        for req in reqs {
            writeln!(w, "{}", proto::request_to_json(&req).line()).expect("send request");
        }
        w.flush().expect("flush requests");
        // Dropping a try_clone'd handle does NOT close the socket (the
        // reader clone keeps the fd alive); send an explicit write-side
        // FIN so the server sees EOF once everything is answered.
        let _ = stream.shutdown(std::net::Shutdown::Write);
    });
    let mut responses = Vec::with_capacity(total);
    let mut lines = reader.lines();
    while responses.len() < total {
        match lines.next() {
            Some(Ok(line)) => {
                let text = line.trim();
                if text.is_empty() {
                    continue;
                }
                let j = Json::parse(text).unwrap_or_else(|e| {
                    eprintln!("[grip-client] response is not JSON ({e}): {text}");
                    std::process::exit(1);
                });
                if j.get("cmd").is_some() {
                    continue;
                }
                responses.push(proto::response_from_json(&j).unwrap_or_else(|e| {
                    eprintln!("[grip-client] bad response ({e}): {text}");
                    std::process::exit(1);
                }));
            }
            _ => {
                eprintln!(
                    "[grip-client] connection closed after {}/{total} responses",
                    responses.len()
                );
                std::process::exit(1);
            }
        }
    }
    writer.join().expect("writer thread");
    finish(opts, &responses, Some(t0.elapsed()));
}

fn finish(opts: &Opts, responses: &[ScheduleResponse], wall: Option<std::time::Duration>) {
    let mut violations = 0usize;
    for r in responses {
        let bad = !r.ok || !r.verified || r.sched_stalls != 0 || r.template_violations != 0;
        if bad {
            violations += 1;
            eprintln!(
                "[grip-client] VIOLATION {} on {}: ok={} verified={} stalls={} templates={} {}",
                r.kernel,
                r.machine,
                r.ok,
                r.verified,
                r.sched_stalls,
                r.template_violations,
                r.error.as_deref().unwrap_or(""),
            );
        }
    }
    let hits = responses.iter().filter(|r| r.cache == CacheStatus::Hit).count();
    let ddg_hits = responses.iter().filter(|r| r.cache == CacheStatus::DdgHit).count();
    let mut lat: Vec<u64> = responses.iter().map(|r| r.wall_us).collect();
    lat.sort_unstable();
    let summary = Json::obj()
        .field("responses", responses.len())
        .field("violations", violations)
        .field("cache_hits", hits)
        .field("ddg_hits", ddg_hits)
        .field(
            "hit_rate",
            if responses.is_empty() { 0.0 } else { hits as f64 / responses.len() as f64 },
        )
        .field("p50_us", percentile(&lat, 0.50))
        .field("p99_us", percentile(&lat, 0.99));
    let summary = match wall {
        Some(d) => summary.field("wall_s", d.as_secs_f64()).field(
            "requests_per_sec",
            if d.as_secs_f64() > 0.0 { responses.len() as f64 / d.as_secs_f64() } else { 0.0 },
        ),
        None => summary,
    };
    println!("{}", summary.line());
    if responses.is_empty() {
        eprintln!("[grip-client] no responses seen");
        std::process::exit(1);
    }
    if violations > 0 {
        std::process::exit(1);
    }
    if opts.expect_hits && hits == 0 {
        eprintln!("[grip-client] expected schedule-cache hits, saw none");
        std::process::exit(1);
    }
    eprintln!("[grip-client] OK: {} responses, {hits} cache hits, 0 violations", responses.len());
}
