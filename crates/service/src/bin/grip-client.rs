//! `grip-client` — scripted load for `grip-serve`.
//!
//! Three modes, composable into shell pipelines:
//!
//! ```text
//! grip-client --emit [--repeat K] [--n N] [--seed S] [--metrics] [--probes]
//!             [--rate R --duration S]
//!     print the mixed sweep (all presets × LL1–LL14, repeated K times,
//!     shuffled) as JSON-lines requests on stdout, every request opting
//!     into the grip-audit report; with --rate/--duration the emitter
//!     goes open-loop instead: it cycles the sweep at a fixed arrival
//!     rate of R requests/s for S seconds, flushing per line, so the
//!     server's shard queues see real arrival pressure; --metrics
//!     appends {"cmd":"metrics"} (JSON and Prometheus forms) and
//!     --probes appends {"cmd":"events"} + {"cmd":"stats"} after the
//!     sweep
//!
//! grip-client --check [--expect-hits] [--metrics] [--probes]
//!             [--latency-summary]
//!     read responses from stdin; fail (exit 1) on any !ok, unverified,
//!     stalled, or template-violating response, or any grip-audit
//!     report carrying diagnostics — and, with
//!     --expect-hits, if no response was served from the schedule
//!     cache; with --metrics, validate the metrics frames (nonzero
//!     stage counters, lint-clean Prometheus text); with --probes,
//!     validate the flight-recorder events frame (lossless round-trips,
//!     nonzero queue waits) and the windowed stats frame (per-shard
//!     queue-wait histograms populated, stage self-times summing to
//!     >= 95% of the windowed request wall); print a throughput/latency
//!     summary
//!
//! grip-client --addr HOST:PORT [--repeat K] [--n N] [--seed S]
//!             [--rate R --duration S] [--deadline-ms D]
//!             [--max-inflight M] [--metrics] [--probes]
//!             [--latency-summary]
//!     drive a TCP server with the same sweep and check + summarize the
//!     responses; with --rate/--duration the driver goes open-loop
//!     (fixed arrival rate, never waiting for responses), reporting
//!     client-side sojourn latency, the over-deadline count
//!     (--deadline-ms), and arrivals shed because --max-inflight
//!     requests were already outstanding
//! ```
//!
//! `--latency-summary` prints a per-request latency histogram (the
//! `grip-obs` log2 histogram) plus the cold/hit latency split.
//!
//! CI runs the open-loop pipe `grip-client --emit --rate … --duration …
//! --metrics --probes | grip-serve | grip-client --check --expect-hits
//! --metrics --probes` as the protocol + telemetry smoke.

#![forbid(unsafe_code)]

use grip_json::Json;
use grip_obs::metrics::{bucket_bound, prometheus_lint};
use grip_obs::{FlightRecord, Histogram};
use grip_service::workload::{mixed_workload, percentile};
use grip_service::{proto, CacheStatus, ScheduleResponse};
use std::io::{BufRead, BufWriter, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

struct Opts {
    mode: Mode,
    repeat: usize,
    n: i64,
    seed: u64,
    expect_hits: bool,
    metrics: bool,
    probes: bool,
    latency_summary: bool,
    /// Open-loop arrival rate (requests per second).
    rate: Option<f64>,
    /// Open-loop run length, seconds.
    duration: Option<f64>,
    /// Sojourn budget for the open-loop TCP driver; 0 disables.
    deadline_ms: u64,
    /// Open-loop TCP arrivals are shed (skipped, counted) beyond this
    /// many outstanding requests; 0 means unbounded.
    max_inflight: usize,
}

enum Mode {
    Emit,
    Check,
    Addr(String),
}

fn usage() -> ! {
    eprintln!(
        "usage: grip-client (--emit | --check [--expect-hits] | --addr HOST:PORT) \
         [--repeat K] [--n N] [--seed S] [--rate R --duration S] [--deadline-ms D] \
         [--max-inflight M] [--metrics] [--probes] [--latency-summary]"
    );
    std::process::exit(2)
}

fn parse_args() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = None;
    let mut opts = Opts {
        mode: Mode::Check,
        repeat: 3,
        n: 48,
        seed: 0x9fb3,
        expect_hits: false,
        metrics: false,
        probes: false,
        latency_summary: false,
        rate: None,
        duration: None,
        deadline_ms: 0,
        max_inflight: 0,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--emit" => mode = Some(Mode::Emit),
            "--check" => mode = Some(Mode::Check),
            "--addr" => mode = Some(Mode::Addr(it.next().cloned().unwrap_or_else(|| usage()))),
            "--repeat" => {
                opts.repeat = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--n" => opts.n = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()),
            "--seed" => {
                opts.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--rate" => {
                opts.rate = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|r: &f64| *r > 0.0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--duration" => {
                opts.duration = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|s: &f64| *s > 0.0)
                        .unwrap_or_else(|| usage()),
                )
            }
            "--deadline-ms" => {
                opts.deadline_ms = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--max-inflight" => {
                opts.max_inflight =
                    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--expect-hits" => opts.expect_hits = true,
            "--metrics" => opts.metrics = true,
            "--probes" => opts.probes = true,
            "--latency-summary" => opts.latency_summary = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    opts.mode = mode.unwrap_or_else(|| usage());
    if opts.rate.is_some() != opts.duration.is_some() {
        eprintln!("--rate and --duration must be given together");
        usage()
    }
    opts
}

/// The two metrics probes `--metrics` appends after a sweep: the JSON
/// snapshot and the Prometheus text form.
fn metrics_probe_lines() -> [String; 2] {
    [
        Json::obj().field("cmd", "metrics").line(),
        Json::obj().field("cmd", "metrics").field("format", "prometheus").line(),
    ]
}

/// The telemetry probes `--probes` appends: the flight-recorder dump and
/// the windowed stats frame.
fn telemetry_probe_lines() -> [String; 2] {
    [
        Json::obj().field("cmd", "events").field("n", 32u64).line(),
        Json::obj().field("cmd", "stats").line(),
    ]
}

/// Everything a response stream can carry, split by frame kind.
#[derive(Default)]
struct Frames {
    responses: Vec<ScheduleResponse>,
    metrics: Vec<Json>,
    events: Vec<Json>,
    stats: Vec<Json>,
}

impl Frames {
    /// Route one parsed line into the right bucket. Non-JSON or malformed
    /// response lines are fatal.
    fn take(&mut self, text: &str) {
        let j = Json::parse(text).unwrap_or_else(|e| {
            eprintln!("[grip-client] response is not JSON ({e}): {text}");
            std::process::exit(1);
        });
        if j.get("cmd").is_some() {
            match j.get("cmd").and_then(Json::as_str) {
                Some("metrics") => self.metrics.push(j),
                Some("events") => self.events.push(j),
                Some("stats") => self.stats.push(j),
                _ => {} // other command frames pass through unchecked
            }
            return;
        }
        match proto::response_from_json(&j) {
            Ok(r) => self.responses.push(r),
            Err(e) => {
                eprintln!("[grip-client] bad response line ({e}): {text}");
                std::process::exit(1);
            }
        }
    }
}

/// Client-side accounting for one open-loop run.
#[derive(Clone, Copy, Debug, Default)]
struct OpenLoopStats {
    /// Arrivals the rate schedule generated.
    offered: usize,
    /// Requests actually written.
    sent: usize,
    /// Arrivals skipped because `--max-inflight` was reached.
    shed: usize,
    /// Responses whose client-side sojourn exceeded `--deadline-ms`.
    over_budget: usize,
    /// Largest outstanding-request count observed at an arrival instant.
    max_inflight_seen: usize,
}

fn main() {
    let opts = parse_args();
    match &opts.mode {
        Mode::Emit => emit(&opts),
        Mode::Check => {
            let stdin = std::io::stdin();
            let mut frames = Frames::default();
            for line in stdin.lock().lines() {
                let line = line.expect("read responses");
                let text = line.trim();
                if !text.is_empty() {
                    frames.take(text);
                }
            }
            finish(&opts, &frames, None, None);
        }
        Mode::Addr(addr) => drive_tcp(&opts, addr),
    }
}

/// The sweep `--emit` and `--addr` drive: the mixed workload with every
/// request opting into the grip-audit report and the grip-bounds
/// certificate, so `--check` can gate on audit-clean, bound-sound
/// responses end to end.
fn audit_workload(opts: &Opts) -> Vec<grip_service::ScheduleRequest> {
    mixed_workload(opts.n, opts.repeat, opts.seed)
        .into_iter()
        .map(|mut r| {
            r.want_audit = true;
            r.want_bounds = true;
            r
        })
        .collect()
}

/// Sleep until the absolute deadline of the next open-loop arrival.
fn pace_until(next: Instant) {
    if let Some(d) = next.checked_duration_since(Instant::now()) {
        std::thread::sleep(d);
    }
}

fn emit(opts: &Opts) {
    let stdout = std::io::stdout();
    let mut w = BufWriter::new(stdout.lock());
    let reqs = audit_workload(opts);
    match (opts.rate, opts.duration) {
        (Some(rate), Some(secs)) => {
            // Open-loop: cycle the sweep at a fixed arrival rate,
            // flushing per line so the server sees each arrival when the
            // schedule says so, not when the pipe buffer fills.
            let period = Duration::from_secs_f64(1.0 / rate);
            let t0 = Instant::now();
            let mut next = t0;
            let mut i = 0usize;
            while t0.elapsed().as_secs_f64() < secs {
                let mut req = reqs[i % reqs.len()].clone();
                req.id = i as u64 + 1;
                writeln!(w, "{}", proto::request_to_json(&req).line()).expect("stdout");
                w.flush().expect("stdout");
                i += 1;
                next += period;
                pace_until(next);
            }
            eprintln!("[grip-client] open-loop emit: {i} requests at {rate}/s over {secs}s");
        }
        _ => {
            for req in reqs {
                writeln!(w, "{}", proto::request_to_json(&req).line()).expect("stdout");
            }
        }
    }
    if opts.probes {
        for line in telemetry_probe_lines() {
            writeln!(w, "{line}").expect("stdout");
        }
    }
    if opts.metrics {
        for line in metrics_probe_lines() {
            writeln!(w, "{line}").expect("stdout");
        }
    }
    w.flush().expect("stdout");
}

fn drive_tcp(opts: &Opts, addr: &str) {
    let stream = std::net::TcpStream::connect(addr).unwrap_or_else(|e| {
        eprintln!("[grip-client] cannot connect to {addr}: {e}");
        std::process::exit(1);
    });
    let reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
    // Outstanding-request count, shared between the paced writer (inc)
    // and the reader (dec) — the open-loop shed decision and the
    // queue-pressure sample both read it at arrival instants.
    let inflight = Arc::new(AtomicUsize::new(0));
    // Send timestamps ride to the reader in request order (responses are
    // answered in order), giving client-side sojourn latency.
    let (stamp_tx, stamp_rx) = mpsc::channel::<Instant>();
    let t0 = Instant::now();

    let reqs = audit_workload(opts);
    let open_loop = opts.rate.zip(opts.duration);
    let max_inflight = opts.max_inflight;
    let want_metrics = opts.metrics;
    let want_probes = opts.probes;
    let inflight_w = Arc::clone(&inflight);
    let writer = std::thread::spawn(move || -> OpenLoopStats {
        let mut w = BufWriter::new(stream.try_clone().expect("clone stream"));
        let mut ol = OpenLoopStats::default();
        match open_loop {
            Some((rate, secs)) => {
                let period = Duration::from_secs_f64(1.0 / rate);
                let start = Instant::now();
                let mut next = start;
                let mut i = 0usize;
                while start.elapsed().as_secs_f64() < secs {
                    ol.offered += 1;
                    let outstanding = inflight_w.load(Ordering::Acquire);
                    ol.max_inflight_seen = ol.max_inflight_seen.max(outstanding);
                    if max_inflight > 0 && outstanding >= max_inflight {
                        // Open-loop semantics: a full pipeline sheds the
                        // arrival instead of delaying the schedule.
                        ol.shed += 1;
                    } else {
                        let mut req = reqs[i % reqs.len()].clone();
                        req.id = i as u64 + 1;
                        i += 1;
                        inflight_w.fetch_add(1, Ordering::AcqRel);
                        stamp_tx.send(Instant::now()).expect("reader gone");
                        writeln!(w, "{}", proto::request_to_json(&req).line())
                            .expect("send request");
                        w.flush().expect("flush request");
                        ol.sent += 1;
                    }
                    next += period;
                    pace_until(next);
                }
            }
            None => {
                for req in reqs {
                    inflight_w.fetch_add(1, Ordering::AcqRel);
                    stamp_tx.send(Instant::now()).expect("reader gone");
                    writeln!(w, "{}", proto::request_to_json(&req).line()).expect("send request");
                    ol.offered += 1;
                    ol.sent += 1;
                }
            }
        }
        if want_probes {
            for line in telemetry_probe_lines() {
                writeln!(w, "{line}").expect("send telemetry probe");
            }
        }
        if want_metrics {
            for line in metrics_probe_lines() {
                writeln!(w, "{line}").expect("send metrics probe");
            }
        }
        w.flush().expect("flush requests");
        // Dropping a try_clone'd handle does NOT close the socket (the
        // reader clone keeps the fd alive); send an explicit write-side
        // FIN so the server sees EOF once everything is answered.
        let _ = stream.shutdown(std::net::Shutdown::Write);
        ol
    });

    // Read until the server closes (it drains everything before EOF).
    let mut frames = Frames::default();
    let mut sojourn_ns: Vec<u64> = Vec::new();
    for line in reader.lines() {
        let line = line.unwrap_or_else(|e| {
            eprintln!("[grip-client] connection error after {} responses: {e}", sojourn_ns.len());
            std::process::exit(1);
        });
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let before = frames.responses.len();
        frames.take(text);
        if frames.responses.len() > before {
            inflight.fetch_sub(1, Ordering::AcqRel);
            let sent_at = stamp_rx.recv().expect("writer stamps every request");
            sojourn_ns.push(sent_at.elapsed().as_nanos() as u64);
        }
    }
    let mut ol = writer.join().expect("writer thread");
    if frames.responses.len() != ol.sent {
        eprintln!(
            "[grip-client] connection closed after {}/{} responses",
            frames.responses.len(),
            ol.sent
        );
        std::process::exit(1);
    }
    if opts.deadline_ms > 0 {
        let budget = opts.deadline_ms.saturating_mul(1_000_000);
        ol.over_budget = sojourn_ns.iter().filter(|&&ns| ns > budget).count();
    }
    let open = opts.rate.is_some() || opts.deadline_ms > 0 || opts.max_inflight > 0;
    finish(opts, &frames, Some(t0.elapsed()), open.then_some((ol, sojourn_ns)));
}

/// Validate the `metrics` command answers: the JSON snapshot must carry
/// nonzero request and scheduler-stage counters, and the Prometheus text
/// must pass the line-format lint. Returns a description of the first
/// problem.
fn check_metrics_frames(frames: &[Json]) -> Result<(), String> {
    let snapshot = frames
        .iter()
        .find_map(|f| f.get("metrics"))
        .ok_or("no JSON metrics frame seen (is the server instrumented?)")?;
    let counter = |name: &str| snapshot.get(name).and_then(Json::as_i64).unwrap_or(0);
    for name in ["grip_requests_total", "grip_iterations_total", "grip_moves_committed_total"] {
        if counter(name) <= 0 {
            return Err(format!("stage counter {name} is zero in the metrics snapshot"));
        }
    }
    for stage in ["prepare", "schedule"] {
        let count = snapshot
            .get(&format!("grip_stage_self_ns_{stage}"))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_i64)
            .unwrap_or(0);
        if count <= 0 {
            return Err(format!("stage histogram grip_stage_self_ns_{stage} has no samples"));
        }
    }
    let text = frames
        .iter()
        .find(|f| f.get("format").and_then(Json::as_str) == Some("prometheus"))
        .and_then(|f| f.get("text"))
        .and_then(Json::as_str)
        .ok_or("no Prometheus metrics frame seen")?;
    prometheus_lint(text).map_err(|e| format!("Prometheus exposition failed the lint: {e}"))?;
    if !text.contains("grip_requests_total") {
        return Err("Prometheus exposition is missing grip_requests_total".to_string());
    }
    Ok(())
}

/// Validate the `--probes` answers end to end.
///
/// Events frame: non-empty, every record a lossless `FlightRecord` wire
/// round-trip with ordered timestamps, and at least one nonzero queue
/// wait (jobs really crossed a shard queue).
///
/// Windowed stats frame: the aggregate **and** at least one per-shard
/// queue-wait histogram saw samples, and the windowed stage self-times
/// sum to at least 95% of the windowed request wall — the rolling window
/// accounts for where the time actually went.
fn check_probe_frames(frames: &Frames) -> Result<(), String> {
    let ev = frames.events.last().ok_or("no events frame seen")?;
    let records = match ev.get("events") {
        Some(Json::Arr(a)) if !a.is_empty() => a,
        Some(Json::Arr(_)) => return Err("events frame is empty".to_string()),
        _ => return Err("events frame has no events array".to_string()),
    };
    let mut queue_waited = false;
    for e in records {
        let rec = FlightRecord::from_json(e);
        if rec.to_json().line() != e.line() {
            return Err(format!("flight record is not a lossless round-trip: {}", e.line()));
        }
        if rec.trace_id.is_empty() {
            return Err("flight record is missing its trace id".to_string());
        }
        if rec.enqueue_ns > rec.dequeue_ns || rec.dequeue_ns > rec.finish_ns {
            return Err(format!("flight record timestamps are unordered: {}", e.line()));
        }
        queue_waited |= rec.queue_wait_ns > 0;
    }
    if !queue_waited {
        return Err("no flight record shows a nonzero queue wait".to_string());
    }

    let st = frames.stats.last().ok_or("no stats frame seen")?;
    let window = st.get("window").ok_or("stats frame has no window object")?;
    let hists = match window.get("histograms") {
        Some(Json::Obj(fields)) => fields,
        _ => return Err("windowed stats carry no histograms".to_string()),
    };
    let count_of = |j: &Json| j.get("count").and_then(Json::as_i64).unwrap_or(0);
    let sum_of = |j: &Json| j.get("sum").and_then(Json::as_i64).unwrap_or(0);
    let aggregate = hists
        .iter()
        .find(|(n, _)| n == "grip_queue_wait_ns")
        .ok_or("window has no aggregate queue-wait histogram")?;
    if count_of(&aggregate.1) <= 0 {
        return Err("aggregate queue-wait histogram saw no samples in the window".to_string());
    }
    if !hists.iter().any(|(n, j)| n.starts_with("grip_queue_wait_ns_s") && count_of(j) > 0) {
        return Err("no per-shard queue-wait histogram saw samples in the window".to_string());
    }
    let wall = hists
        .iter()
        .find(|(n, _)| n == "grip_request_wall_ns")
        .map(|(_, j)| sum_of(j))
        .unwrap_or(0);
    if wall <= 0 {
        return Err("windowed request wall histogram is empty".to_string());
    }
    let stage_sum: i64 = hists
        .iter()
        .filter(|(n, _)| n.starts_with("grip_stage_self_ns_"))
        .map(|(_, j)| sum_of(j))
        .sum();
    if (stage_sum as f64) < 0.95 * wall as f64 {
        return Err(format!(
            "windowed stage self-times cover only {:.1}% of the windowed wall \
             ({stage_sum} of {wall} ns)",
            100.0 * stage_sum as f64 / wall as f64
        ));
    }
    Ok(())
}

/// Render the `--latency-summary` block: a log2 latency histogram over
/// all responses plus the cold/hit split.
fn latency_summary(responses: &[ScheduleResponse]) -> String {
    use std::fmt::Write as _;
    let all = Histogram::new();
    let cold = Histogram::new();
    let hit = Histogram::new();
    for r in responses {
        all.record(r.wall_ns);
        match r.cache {
            CacheStatus::Hit => hit.record(r.wall_ns),
            _ => cold.record(r.wall_ns),
        }
    }
    let us = |ns: u64| ns as f64 / 1000.0;
    let mut s = String::new();
    let _ = writeln!(s, "request latency ({} responses, log2 buckets):", responses.len());
    let buckets = all.buckets();
    let width = buckets.iter().copied().max().unwrap_or(1).max(1);
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let lo = if i == 0 { 0 } else { bucket_bound(i - 1) + 1 };
        let bar = "#".repeat(((c as f64 / width as f64) * 40.0).ceil() as usize);
        let _ =
            writeln!(s, "  [{:>12.1} .. {:>12.1}] us {:>6}  {bar}", us(lo), us(bucket_bound(i)), c);
    }
    for (label, h) in [("cold", &cold), ("hit", &hit)] {
        let _ = writeln!(
            s,
            "  {label:<4} {:>6} responses, p50 ~{:.1} us, p99 ~{:.1} us",
            h.count(),
            us(h.quantile(0.50)),
            us(h.quantile(0.99)),
        );
    }
    s
}

fn finish(
    opts: &Opts,
    frames: &Frames,
    wall: Option<std::time::Duration>,
    open_loop: Option<(OpenLoopStats, Vec<u64>)>,
) {
    let responses = &frames.responses;
    let mut violations = 0usize;
    for r in responses {
        // Any non-empty diagnostic list fails the run, whatever its
        // codes: the auditor proved something about this schedule that
        // the dynamic checks did not see.
        let audit_dirty = r.audit.as_ref().is_some_and(|a| !a.diagnostics.is_empty());
        // Bound soundness: the certificate bounds one full traversal of
        // the steady window, and a trip count of at least `n - 5` (the
        // deepest kernel induction offset) forces `trip/unwind - 2`
        // complete traversals — no response may report fewer VM cycles
        // than the scaled proven bound.
        let bound_unsound = r.bounds.as_ref().is_some_and(|b| {
            let trip = (r.n.max(5) - 5) as u64;
            let traversals = if r.unwind > 0 && trip >= r.unwind as u64 {
                (trip / r.unwind as u64).saturating_sub(2).max(1)
            } else {
                0
            };
            r.ok && r.sched_cycles < traversals * b.bound_cycles
        });
        let bad = !r.ok
            || !r.verified
            || r.sched_stalls != 0
            || r.template_violations != 0
            || audit_dirty
            || bound_unsound;
        if bad {
            violations += 1;
            eprintln!(
                "[grip-client] VIOLATION {} on {}: ok={} verified={} stalls={} templates={} \
                 audit={} bounds={} {}",
                r.kernel,
                r.machine,
                r.ok,
                r.verified,
                r.sched_stalls,
                r.template_violations,
                r.audit.as_ref().map_or("absent".to_string(), |a| a.summary()),
                r.bounds.as_ref().map_or("absent".to_string(), |b| b.summary()),
                r.error.as_deref().unwrap_or(""),
            );
        }
    }
    let hits = responses.iter().filter(|r| r.cache == CacheStatus::Hit).count();
    let ddg_hits = responses.iter().filter(|r| r.cache == CacheStatus::DdgHit).count();
    let mut lat_ns: Vec<u64> = responses.iter().map(|r| r.wall_ns).collect();
    lat_ns.sort_unstable();
    let us = |ns: u64| ns as f64 / 1000.0;
    let mut summary = Json::obj()
        .field("responses", responses.len())
        .field("violations", violations)
        .field("cache_hits", hits)
        .field("ddg_hits", ddg_hits)
        .field(
            "hit_rate",
            if responses.is_empty() { 0.0 } else { hits as f64 / responses.len() as f64 },
        )
        .field("p50_us", us(percentile(&lat_ns, 0.50)))
        .field("p99_us", us(percentile(&lat_ns, 0.99)));
    if let Some(d) = wall {
        summary = summary.field("wall_s", d.as_secs_f64()).field(
            "requests_per_sec",
            if d.as_secs_f64() > 0.0 { responses.len() as f64 / d.as_secs_f64() } else { 0.0 },
        );
    }
    if let Some((ol, sojourn_ns)) = &open_loop {
        let mut sorted = sojourn_ns.clone();
        sorted.sort_unstable();
        summary = summary.field(
            "open_loop",
            Json::obj()
                .field("offered", ol.offered)
                .field("sent", ol.sent)
                .field("shed", ol.shed)
                .field("over_budget", ol.over_budget)
                .field("deadline_ms", opts.deadline_ms)
                .field("max_inflight_seen", ol.max_inflight_seen)
                .field("sojourn_p50_us", us(percentile(&sorted, 0.50)))
                .field("sojourn_p99_us", us(percentile(&sorted, 0.99))),
        );
    }
    println!("{}", summary.line());
    if opts.latency_summary {
        print!("{}", latency_summary(responses));
    }
    if responses.is_empty() {
        eprintln!("[grip-client] no responses seen");
        std::process::exit(1);
    }
    if violations > 0 {
        std::process::exit(1);
    }
    if opts.expect_hits && hits == 0 {
        eprintln!("[grip-client] expected schedule-cache hits, saw none");
        std::process::exit(1);
    }
    if opts.metrics {
        if let Err(e) = check_metrics_frames(&frames.metrics) {
            eprintln!("[grip-client] metrics check failed: {e}");
            std::process::exit(1);
        }
        eprintln!("[grip-client] metrics OK: stage counters nonzero, Prometheus lint clean");
    }
    if opts.probes {
        if let Err(e) = check_probe_frames(frames) {
            eprintln!("[grip-client] telemetry probe check failed: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "[grip-client] telemetry OK: flight records lossless, queue waits nonzero, \
             windowed stage times cover the windowed wall"
        );
    }
    eprintln!("[grip-client] OK: {} responses, {hits} cache hits, 0 violations", responses.len());
}
