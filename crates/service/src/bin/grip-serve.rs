//! `grip-serve` — the scheduling server.
//!
//! Speaks the JSON-lines protocol (one request per line, one response per
//! line, request order preserved; see `grip_service::proto`).
//!
//! ```text
//! grip-serve                      # serve stdin → stdout until EOF
//! grip-serve --tcp 127.0.0.1:7411 # serve TCP connections forever
//!   --shards N                    # worker shards (default: cores, ≤ 8)
//!   --ddg-cache N                 # prepared-window entries per shard
//!   --sched-cache N               # schedule entries per shard
//! ```
//!
//! The stdin mode prints aggregate cache statistics to stderr at EOF, so
//! `emit | grip-serve | check` pipelines get a throughput summary for
//! free.

#![forbid(unsafe_code)]

use grip_service::{proto, Service, ServiceConfig};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!("usage: grip-serve [--tcp ADDR] [--shards N] [--ddg-cache N] [--sched-cache N]");
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServiceConfig::default();
    let mut tcp: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> usize {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--{what} needs a number");
                usage()
            })
        };
        match a.as_str() {
            "--tcp" => tcp = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--shards" => cfg.shards = num("shards"),
            "--ddg-cache" => cfg.engine.ddg_cache_cap = num("ddg-cache"),
            "--sched-cache" => cfg.engine.sched_cache_cap = num("sched-cache"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    let service = Service::new(cfg);
    eprintln!("[grip-serve] {} shards", service.shards());

    match tcp {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
                eprintln!("[grip-serve] cannot bind {addr}: {e}");
                std::process::exit(1);
            });
            eprintln!("[grip-serve] listening on {}", listener.local_addr().unwrap());
            if let Err(e) = proto::serve_tcp(Arc::new(service), listener) {
                eprintln!("[grip-serve] accept loop failed: {e}");
                std::process::exit(1);
            }
        }
        None => {
            let stdin = std::io::stdin();
            // The writer moves to the server's ordered-output thread, so
            // hand it the (Send) handle rather than a lock guard.
            let stdout = std::io::BufWriter::new(std::io::stdout());
            let summary = proto::serve_lines(&service, stdin.lock(), stdout).unwrap_or_else(|e| {
                eprintln!("[grip-serve] stream error: {e}");
                std::process::exit(1);
            });
            let stats = service.stats();
            eprintln!(
                "[grip-serve] served {} (rejected {}): {}",
                summary.served,
                summary.rejected,
                stats.to_json().line()
            );
        }
    }
}
