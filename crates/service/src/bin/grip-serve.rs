//! `grip-serve` — the scheduling server.
//!
//! Speaks the JSON-lines protocol (one request per line, one response per
//! line, request order preserved; see `grip_service::proto`).
//!
//! ```text
//! grip-serve                      # serve stdin → stdout until EOF
//! grip-serve --tcp 127.0.0.1:7411 # serve TCP connections forever
//!   --shards N                    # worker shards (default: cores, ≤ 8)
//!   --ddg-cache N                 # prepared-window entries per shard
//!   --sched-cache N               # schedule entries per shard
//!   --slow-ms N                   # flight-recorder slow threshold: any
//!                                 # request slower than N ms retains its
//!                                 # full span list and pass counters
//!   --sample-ms N                 # metrics sampling period for the
//!                                 # rolling window (default 1000)
//! ```
//!
//! The server ticks the process-wide window aggregator once at boot and
//! then every `--sample-ms`, so `{"cmd":"stats"}` answers carry windowed
//! rates and percentiles from the first request on. The stdin mode prints
//! aggregate cache statistics to stderr at EOF, so `emit | grip-serve |
//! check` pipelines get a throughput summary for free.

#![forbid(unsafe_code)]

use grip_service::{proto, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: grip-serve [--tcp ADDR] [--shards N] [--ddg-cache N] [--sched-cache N] \
         [--slow-ms N] [--sample-ms N]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServiceConfig::default();
    let mut tcp: Option<String> = None;
    let mut slow_ms: Option<u64> = None;
    let mut sample_ms: u64 = 1000;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> usize {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("--{what} needs a number");
                usage()
            })
        };
        match a.as_str() {
            "--tcp" => tcp = Some(it.next().cloned().unwrap_or_else(|| usage())),
            "--shards" => cfg.shards = num("shards"),
            "--ddg-cache" => cfg.engine.ddg_cache_cap = num("ddg-cache"),
            "--sched-cache" => cfg.engine.sched_cache_cap = num("sched-cache"),
            "--slow-ms" => slow_ms = Some(num("slow-ms") as u64),
            "--sample-ms" => sample_ms = (num("sample-ms") as u64).max(10),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }

    // Touch the flight recorder now so its monotonic epoch predates every
    // request — journal timestamps then never saturate at zero.
    let recorder = grip_obs::events::global();
    if let Some(ms) = slow_ms {
        recorder.set_slow_threshold_ns(ms.saturating_mul(1_000_000));
        eprintln!("[grip-serve] slow-request capture at >= {ms} ms");
    }
    // Seed the rolling window with a boot baseline, then keep sampling in
    // the background: `{"cmd":"stats"}` diffs against the oldest retained
    // snapshot, so the window is live from the first request.
    grip_obs::window::global().tick_registry(grip_obs::global());
    std::thread::Builder::new()
        .name("grip-obs-sampler".to_string())
        .spawn(move || loop {
            std::thread::sleep(Duration::from_millis(sample_ms));
            grip_obs::window::global().tick_registry(grip_obs::global());
        })
        .expect("spawn sampler thread");

    let service = Service::new(cfg);
    eprintln!("[grip-serve] {} shards", service.shards());

    match tcp {
        Some(addr) => {
            let listener = std::net::TcpListener::bind(&addr).unwrap_or_else(|e| {
                eprintln!("[grip-serve] cannot bind {addr}: {e}");
                std::process::exit(1);
            });
            eprintln!("[grip-serve] listening on {}", listener.local_addr().unwrap());
            if let Err(e) = proto::serve_tcp(Arc::new(service), listener) {
                eprintln!("[grip-serve] accept loop failed: {e}");
                std::process::exit(1);
            }
        }
        None => {
            let stdin = std::io::stdin();
            // The writer moves to the server's ordered-output thread, so
            // hand it the (Send) handle rather than a lock guard.
            let stdout = std::io::BufWriter::new(std::io::stdout());
            let summary = proto::serve_lines(&service, stdin.lock(), stdout).unwrap_or_else(|e| {
                eprintln!("[grip-serve] stream error: {e}");
                std::process::exit(1);
            });
            let stats = service.stats();
            eprintln!(
                "[grip-serve] served {} (rejected {}): {}",
                summary.served,
                summary.rejected,
                stats.to_json().line()
            );
        }
    }
}
