//! The per-shard scheduling engine: resolve → (cache) → prepare →
//! schedule → verify.
//!
//! One `Engine` lives on each worker shard and owns that shard's two
//! content-addressed caches:
//!
//! * the **DDG cache**, keyed by `(kernel hash, unwind, fold_inductions)`
//!   — the machine-independent prepared window (unwound graph, window
//!   bookkeeping, dependence graph), reused across machine descriptions
//!   and option sets;
//! * the **schedule cache**, keyed by `(kernel hash, machine fingerprint,
//!   unwind, option bits)` — the full verified response.
//!
//! The correctness invariant: a cache hit is **bit-identical** to a cold
//! run — same schedule length, same cycles, same scheduler counters, same
//! VM final-state digest, same verified flag. It holds because every
//! stage is deterministic and the cached prepared graph is cloned (ids
//! preserved) before scheduling mutates it; the property tests in
//! `tests/cache_props.rs` check it against fresh engines.

use crate::cache::Lru;
use crate::fingerprint::{graph_fingerprint, Fnv};
use crate::pool::JobMeta;
use crate::types::{CacheStatus, ScheduleRequest, ScheduleResponse};
use grip_core::Resources;
use grip_ir::Graph;
use grip_kernels::Kernel;
use grip_machine::MachineDesc;
use grip_obs::{FlightRecord, SlowCapture};
use grip_pipeline::{prepare, schedule_window, PipelineOptions, PreparedWindow};
use grip_vm::{EquivReport, Machine};
use std::rc::Rc;

/// The unwind factor used when a request does not pin one: enough
/// iterations to fill a machine of the given width (§1's argument for
/// resource-aware pipelining), same policy as the Table 1 harness.
pub fn default_unwind(width: usize) -> usize {
    (3 * width.min(8)).clamp(10, 20)
}

/// Cache sizing for one engine/shard.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Prepared-window entries per shard (graphs + DDGs; the heavy cache).
    pub ddg_cache_cap: usize,
    /// Schedule-response entries per shard.
    pub sched_cache_cap: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig { ddg_cache_cap: 64, sched_cache_cap: 512 }
    }
}

/// Cache counter snapshot (one shard, or summed across shards).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Requests processed.
    pub processed: u64,
    /// Schedule-cache hits.
    pub sched_hits: u64,
    /// Schedule-cache misses.
    pub sched_misses: u64,
    /// Schedule-cache evictions.
    pub sched_evictions: u64,
    /// DDG-cache hits.
    pub ddg_hits: u64,
    /// DDG-cache misses.
    pub ddg_misses: u64,
    /// DDG-cache evictions.
    pub ddg_evictions: u64,
}

impl CacheCounters {
    /// Schedule-cache hit rate over all processed requests.
    pub fn hit_rate(&self) -> f64 {
        if self.processed == 0 {
            0.0
        } else {
            self.sched_hits as f64 / self.processed as f64
        }
    }

    /// Field-wise sum.
    pub fn add(&mut self, o: &CacheCounters) {
        self.processed += o.processed;
        self.sched_hits += o.sched_hits;
        self.sched_misses += o.sched_misses;
        self.sched_evictions += o.sched_evictions;
        self.ddg_hits += o.ddg_hits;
        self.ddg_misses += o.ddg_misses;
        self.ddg_evictions += o.ddg_evictions;
    }
}

type DdgKey = (u64, usize, bool);
type SchedKey = (u64, u64, usize, u8);

struct PreparedEntry {
    /// Graph snapshot after unwind + simplify (pre-scheduling form).
    graph: Graph,
    prep: PreparedWindow,
}

/// Largest trip count the service accepts: kernels allocate `n + 64`
/// cells per array in the VM, so an unbounded wire value could demand
/// arbitrary memory from one JSON line. 100k is ~10 MB of arrays for the
/// heaviest kernel — two orders of magnitude above the bench defaults.
pub const MAX_TRIP_COUNT: i64 = 100_000;

/// One shard's scheduling engine.
pub struct Engine {
    ddg_cache: Lru<DdgKey, Rc<PreparedEntry>>,
    sched_cache: Lru<SchedKey, ScheduleResponse>,
    /// `(kernel name, n) → kernel content hash`: builders are pure, so
    /// the hash of their output is reusable — a schedule-cache hit then
    /// never builds or dumps a graph at all.
    hash_memo: Lru<(String, i64), u64>,
    processed: u64,
}

impl Engine {
    /// A cold engine.
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine {
            ddg_cache: Lru::new(cfg.ddg_cache_cap),
            sched_cache: Lru::new(cfg.sched_cache_cap),
            hash_memo: Lru::new(cfg.sched_cache_cap.max(256)),
            processed: 0,
        }
    }

    /// Current counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            processed: self.processed,
            sched_hits: self.sched_cache.hits,
            sched_misses: self.sched_cache.misses,
            sched_evictions: self.sched_cache.evictions,
            ddg_hits: self.ddg_cache.hits,
            ddg_misses: self.ddg_cache.misses,
            ddg_evictions: self.ddg_cache.evictions,
        }
    }

    /// Serve one request. Infallible at this level: failures come back as
    /// `ok == false` responses. `meta` carries the pool's queue stamps;
    /// direct callers (tests, single-threaded tools) pass
    /// [`JobMeta::immediate`].
    pub fn process(
        &mut self,
        shard: usize,
        req: &ScheduleRequest,
        meta: &JobMeta,
    ) -> ScheduleResponse {
        self.processed += 1;
        grip_obs::counter!("grip_requests_total").inc();
        grip_obs::gauge!("grip_requests_inflight").add(1);
        // The stage collector gathers prepare/schedule/hazards/verify
        // self times from the spans the pipeline and core crates open;
        // its total is the request wall time (same clock, same interval,
        // so the per-stage sum is comparable against it).
        let (mut resp, timings) = grip_obs::collect(|| self.process_inner(req));
        grip_obs::gauge!("grip_requests_inflight").add(-1);
        grip_obs::histogram!("grip_request_wall_ns").record(timings.total_ns);
        match resp.cache {
            CacheStatus::Hit => grip_obs::counter!("grip_cache_sched_hits_total").inc(),
            CacheStatus::DdgHit => grip_obs::counter!("grip_cache_ddg_hits_total").inc(),
            CacheStatus::Miss => grip_obs::counter!("grip_cache_misses_total").inc(),
        }
        resp.shard = shard;
        resp.wall_ns = timings.total_ns;
        resp.trace_id = match &req.trace {
            Some(t) => t.clone(),
            None => format!("s{shard}-{}", self.processed),
        };
        // Journal the completion into the flight recorder before the
        // opt-in delivery gates below strip the audit/bounds content the
        // record summarizes. Observation-only: the response is not
        // touched.
        self.record_flight(&resp, meta, &timings);
        // Per-delivery observability fields: a cache hit must report
        // *this* request's timings and trace, not the cold run's. The
        // breakdown is opt-in (`want_timings`) so the default wire
        // response does not grow.
        resp.timings = req.want_timings.then(|| grip_obs::StageBreakdown::from_timings(&timings));
        // The audit report and bound certificate are content (cached with
        // the response), but their delivery is opt-in, same as the
        // timings breakdown.
        if !req.want_audit {
            resp.audit = None;
        }
        if !req.want_bounds {
            resp.bounds = None;
        }
        resp
    }

    /// Build one [`FlightRecord`] for a finished response and push it into
    /// the global recorder. Requests whose wall time crosses the
    /// recorder's slow threshold additionally retain the full span list
    /// and the scheduler's pass counters.
    fn record_flight(
        &self,
        resp: &ScheduleResponse,
        meta: &JobMeta,
        timings: &grip_obs::StageTimings,
    ) {
        let rec = grip_obs::events::global();
        let slow = (timings.total_ns >= rec.slow_threshold_ns()).then(|| {
            let s = &resp.stats;
            SlowCapture {
                spans: timings.stages.iter().map(|&(n, ns)| (n.to_string(), ns)).collect(),
                counters: vec![
                    ("picks".to_string(), s.picks),
                    ("hops".to_string(), s.hops),
                    ("arrivals".to_string(), s.arrivals),
                    ("renames".to_string(), s.renames),
                    ("splits".to_string(), s.splits),
                    ("suspensions".to_string(), s.suspensions),
                    ("gap_rejections".to_string(), s.gap_rejections),
                    ("resource_blocks".to_string(), s.resource_blocks),
                    ("latency_blocks".to_string(), s.latency_blocks),
                    ("dce_removed".to_string(), s.dce_removed),
                    ("nodes_deleted".to_string(), s.nodes_deleted),
                ],
            }
        });
        rec.record(FlightRecord {
            trace_id: resp.trace_id.clone(),
            kernel: resp.kernel.clone(),
            machine: resp.machine.clone(),
            shard: resp.shard as u64,
            ok: resp.ok,
            verified: resp.verified,
            cache: resp.cache.as_str().to_string(),
            enqueue_ns: rec.ns_of(meta.enqueued_at),
            dequeue_ns: rec.ns_of(meta.dequeued_at),
            finish_ns: rec.now_ns(),
            queue_wait_ns: meta.queue_wait_ns(),
            wall_ns: timings.total_ns,
            stages: grip_obs::StageBreakdown::from_timings(timings),
            audit_diagnostics: resp.audit.as_ref().map_or(0, |a| a.diagnostics.len() as u64),
            bound_cycles: resp.bounds.map_or(0, |b| b.bound_cycles),
            at_bound: resp.bounds.is_some_and(|b| b.at_bound),
            result_digest: resp.state_digest,
            slow,
        });
    }

    fn process_inner(&mut self, req: &ScheduleRequest) -> ScheduleResponse {
        let Some(kernel) = grip_kernels::kernels().iter().find(|k| k.name == req.kernel) else {
            return ScheduleResponse::failure(req, format!("unknown kernel '{}'", req.kernel));
        };
        if req.n < 1 {
            return ScheduleResponse::failure(
                req,
                format!("trip count must be >= 1, got {}", req.n),
            );
        }
        if req.n > MAX_TRIP_COUNT {
            return ScheduleResponse::failure(
                req,
                format!("trip count {} exceeds the cap of {MAX_TRIP_COUNT}", req.n),
            );
        }
        let desc = match req.machine.resolve() {
            Ok(d) => d,
            Err(e) => return ScheduleResponse::failure(req, e),
        };
        let unwind = match req.unwind {
            Some(0) => return ScheduleResponse::failure(req, "unwind must be >= 1".to_string()),
            Some(u) if u > 64 => {
                return ScheduleResponse::failure(req, format!("unwind {u} exceeds the cap of 64"))
            }
            Some(u) => u,
            None => default_unwind(desc.width),
        };

        // Kernel content hash, memoized on (name, n): builders are pure,
        // so a schedule-cache hit needs neither the graph nor its dump.
        let hkey = (req.kernel.clone(), req.n);
        let mut g0: Option<Graph> = None;
        let kernel_hash = match self.hash_memo.get(&hkey).copied() {
            Some(h) => h,
            None => {
                let _span = grip_obs::span!("build");
                let g = (kernel.build)(req.n);
                let h = graph_fingerprint(&g);
                self.hash_memo.insert(hkey, h);
                g0 = Some(g);
                h
            }
        };
        let machine_fp = desc.fingerprint();
        let skey: SchedKey = (kernel_hash, machine_fp, unwind, req.options.bits());
        if let Some(cached) = self.sched_cache.get(&skey) {
            let mut resp = cached.clone();
            resp.id = req.id;
            // The machine label is request-echo, not content: an inline
            // spelling of a preset shares the preset's cache line (same
            // fingerprint), so a hit must re-label for *this* request to
            // stay bit-identical to what a cold run of it would say.
            resp.machine = req.machine.label();
            resp.cache = CacheStatus::Hit;
            return resp;
        }
        let g0 = g0.unwrap_or_else(|| {
            let _span = grip_obs::span!("build");
            (kernel.build)(req.n)
        });

        // Prepared-window (DDG) cache: machine-independent, so a request
        // for a new machine at a known (kernel, unwind) skips unwinding,
        // induction folding, and DDG construction entirely.
        let dkey: DdgKey = (kernel_hash, unwind, req.options.fold_inductions);
        let (entry, ddg_hit) = match self.ddg_cache.get(&dkey) {
            Some(e) => (Rc::clone(e), true),
            None => {
                let mut g = g0.clone();
                let prep = prepare(&mut g, unwind, req.options.fold_inductions);
                let e = Rc::new(PreparedEntry { graph: g, prep });
                self.ddg_cache.insert(dkey, Rc::clone(&e));
                (e, false)
            }
        };

        let mut g = entry.graph.clone();
        let rep = schedule_window(
            &mut g,
            entry.prep.window.clone(),
            &entry.prep.ddg,
            PipelineOptions {
                unwind,
                resources: Resources::machine(desc),
                fold_inductions: req.options.fold_inductions,
                gap_prevention: req.options.gap_prevention,
                dce: req.options.dce,
                try_roll: req.options.try_roll,
                // Always audit cold runs: the report is cached with the
                // response, so the static check costs nothing on hits and
                // `want_audit` only gates delivery.
                audit: true,
            },
        );
        grip_obs::counter!("grip_audit_runs_total").inc();
        let audit = rep.audit.clone();
        if let Some(a) = &audit {
            grip_obs::counter!("grip_audit_diagnostics_total").add(a.diagnostics.len() as u64);
        }
        // The bound certificate is cached with the response like the audit
        // report; `want_bounds` only gates delivery.
        let bounds = Some(rep.bounds);
        if rep.bounds.at_bound {
            grip_obs::counter!("grip_at_bound_total").inc();
        }

        let (verified, seq_cycles, sched_cycles, sched_stalls, template_violations, state_digest) = {
            let _span = grip_obs::span!("verify");
            grip_obs::counter!("grip_verify_runs_total").inc();
            verify(kernel, &g0, &g, req.n, &desc)
        };

        let resp = ScheduleResponse {
            id: req.id,
            ok: true,
            error: None,
            kernel: req.kernel.clone(),
            machine: req.machine.label(),
            n: req.n,
            unwind,
            kernel_hash,
            machine_fp,
            schedule_rows: rep.steady.len(),
            seq_cycles,
            sched_cycles,
            sched_stalls,
            template_violations,
            speedup: if sched_cycles > 0 {
                seq_cycles as f64 / sched_cycles as f64
            } else {
                f64::NAN
            },
            body_speedup: rep.speedup().unwrap_or(f64::NAN),
            stats: rep.stats,
            verified,
            state_digest,
            cache: if ddg_hit { CacheStatus::DdgHit } else { CacheStatus::Miss },
            wall_ns: 0,
            shard: 0,
            trace_id: String::new(),
            timings: None,
            audit,
            bounds,
        };
        self.sched_cache.insert(skey, resp.clone());
        resp
    }
}

/// Model-run both programs on `desc`, compare observable state bitwise,
/// and digest the scheduled run's final state.
fn verify(
    kernel: &Kernel,
    g0: &Graph,
    g: &Graph,
    n: i64,
    desc: &MachineDesc,
) -> (bool, u64, u64, u64, u64, u64) {
    let mut m0 = Machine::for_graph(g0);
    (kernel.init)(g0, &mut m0, n);
    let seq = m0.run_model(g0, desc);
    let mut m1 = Machine::for_graph(g);
    (kernel.init)(g, &mut m1, n);
    let sched = m1.run_model(g, desc);
    let verified = match (&seq, &sched) {
        (Ok(_), Ok(_)) => EquivReport::compare(g0, &m0, &m1).is_equal(),
        _ => false,
    };
    let seq_cycles = seq.map(|s| s.total_cycles()).unwrap_or(0);
    let (sched_cycles, stalls, tv) = sched
        .map(|s| (s.total_cycles(), s.stall_cycles, s.template_violations))
        .unwrap_or((0, 0, 0));
    (verified, seq_cycles, sched_cycles, stalls, tv, state_digest(g, &m1))
}

/// FNV-1a digest of a machine's observable final state: every cell of
/// every array plus the `live_out` registers, all by bit pattern.
pub fn state_digest(g: &Graph, m: &Machine) -> u64 {
    let mut h = Fnv::new();
    for (ai, info) in g.arrays().iter().enumerate() {
        for i in 0..info.len {
            h.word(value_bits(m.array_cell(grip_ir::ArrayId::new(ai), i)));
        }
    }
    for &r in &g.live_out {
        match m.reg(r) {
            Some(v) => h.word(1).word(value_bits(v)),
            None => h.word(0),
        };
    }
    h.finish()
}

fn value_bits(v: grip_ir::Value) -> u64 {
    match v {
        grip_ir::Value::F(x) => x.to_bits(),
        // Tag the variants apart so I(0) and F(+0.0) cannot collide.
        grip_ir::Value::I(i) => (i as u64).rotate_left(1) ^ 0x9e37_79b9_7f4a_7c15,
        grip_ir::Value::B(b) => 0x517c_c1b7_2722_0a95 ^ u64::from(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MachineSpec;

    fn req(kernel: &str, n: i64, machine: &str) -> ScheduleRequest {
        ScheduleRequest::new(kernel, n, MachineSpec::Preset(machine.to_string()))
    }

    #[test]
    fn cold_engine_serves_and_verifies() {
        let mut e = Engine::new(EngineConfig::default());
        let r = e.process(0, &req("LL12", 24, "clustered"), &JobMeta::immediate());
        assert!(r.ok, "{:?}", r.error);
        assert!(r.verified);
        assert_eq!(r.sched_stalls, 0);
        assert_eq!(r.template_violations, 0);
        assert_eq!(r.cache, CacheStatus::Miss);
        assert!(r.speedup > 1.0);
        assert!(r.schedule_rows > 0);
        assert_ne!(r.state_digest, 0);
    }

    #[test]
    fn second_identical_request_hits_and_is_bit_identical() {
        let mut e = Engine::new(EngineConfig::default());
        let q = req("LL5", 16, "epic8");
        let cold = e.process(0, &q, &JobMeta::immediate());
        let hot = e.process(0, &q, &JobMeta::immediate());
        assert_eq!(hot.cache, CacheStatus::Hit);
        assert!(hot.bits_eq(&cold), "hit must be bit-identical:\n{cold:?}\n{hot:?}");
        let c = e.counters();
        assert_eq!((c.sched_hits, c.sched_misses), (1, 1));
    }

    #[test]
    fn new_machine_at_known_unwind_reuses_the_ddg() {
        let mut e = Engine::new(EngineConfig::default());
        // Same kernel/n; epic8 and mem_bound share width 8, hence the
        // same default unwind — the second request should DDG-hit.
        let a = e.process(0, &req("LL3", 16, "epic8"), &JobMeta::immediate());
        let b = e.process(0, &req("LL3", 16, "mem_bound"), &JobMeta::immediate());
        assert_eq!(a.cache, CacheStatus::Miss);
        assert_eq!(b.cache, CacheStatus::DdgHit);
        assert!(a.verified && b.verified);
        assert_eq!(a.kernel_hash, b.kernel_hash);
        assert_ne!(a.machine_fp, b.machine_fp);
        let c = e.counters();
        assert_eq!((c.ddg_hits, c.ddg_misses), (1, 1));
    }

    #[test]
    fn cross_spelling_hits_stay_bit_identical_to_their_own_cold_runs() {
        // An inline spelling of epic8 shares the preset's cache line…
        let inline_epic8 = ScheduleRequest::new(
            "LL12",
            16,
            crate::types::MachineSpec::Inline(crate::types::inline_machine(
                8,
                None,
                [Some(4), Some(4), Some(2)],
                grip_machine::LatencyTable { alu: 1, fpu: 4, fpu_long: 16, mem: 2, branch: 1 },
            )),
        );
        let mut warm = Engine::new(EngineConfig::default());
        let preset = warm.process(0, &req("LL12", 16, "epic8"), &JobMeta::immediate());
        let hit = warm.process(0, &inline_epic8, &JobMeta::immediate());
        assert_eq!(preset.cache, CacheStatus::Miss);
        assert_eq!(hit.cache, CacheStatus::Hit, "content-addressed across spellings");
        // …but the hit must match what a cold run of *this* request says,
        // including the request's own machine label.
        let cold =
            Engine::new(EngineConfig::default()).process(0, &inline_epic8, &JobMeta::immediate());
        assert_eq!(hit.machine, "inline");
        assert!(hit.bits_eq(&cold));
    }

    #[test]
    fn failures_are_responses_not_panics() {
        let mut e = Engine::new(EngineConfig::default());
        assert!(!e.process(0, &req("LL99", 16, "epic8"), &JobMeta::immediate()).ok);
        assert!(!e.process(0, &req("LL1", 0, "epic8"), &JobMeta::immediate()).ok);
        assert!(!e.process(0, &req("LL1", 16, "nonsense"), &JobMeta::immediate()).ok);
        let mut q = req("LL1", 16, "epic8");
        q.unwind = Some(0);
        assert!(!e.process(0, &q, &JobMeta::immediate()).ok);
    }

    #[test]
    fn default_unwind_matches_the_table1_policy() {
        assert_eq!(default_unwind(2), 10);
        assert_eq!(default_unwind(4), 12);
        assert_eq!(default_unwind(8), 20);
        assert_eq!(default_unwind(usize::MAX), 20, "unbounded widths clamp");
    }
}
