//! # grip-service — the sharded scheduling service
//!
//! The scheduler as a long-lived engine rather than a one-shot compiler
//! pass: clients submit [`ScheduleRequest`]s (kernel × machine × unwind ×
//! options) and get back [`ScheduleResponse`]s carrying the full verified
//! measurement — schedule length, model cycles, stalls (always zero, by
//! the stall-free invariant), scheduler counters, VM state digest, cache
//! status, and wall time.
//!
//! Three layers:
//!
//! * **Library** — [`Service::submit`] / [`Service::submit_batch`] on a
//!   [`pool::ShardedPool`] of worker threads, sharded by content
//!   fingerprint of (kernel, trip count, machine) so each shard's caches
//!   stay hot for its slice of the request space.
//! * **Caches** — per shard, two levels, both content-addressed: a DDG
//!   cache keyed by `(kernel hash, unwind, fold)` holding the
//!   machine-independent prepared window, and a schedule cache keyed by
//!   `(kernel hash, machine fingerprint, unwind, options)` holding whole
//!   responses. Invariant: a cache hit is **bit-identical** to a cold
//!   run, VM-verified both ways.
//! * **Protocol** — JSON lines over stdin/stdout or TCP
//!   ([`proto::serve_lines`] / [`proto::serve_tcp`]), spoken by the
//!   `grip-serve` server and `grip-client` load-driver binaries, built on
//!   [`grip_json`] (no crates.io dependencies).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
mod engine;
pub mod fingerprint;
pub mod pool;
pub mod proto;
mod service;
mod types;
pub mod workload;

pub use engine::{default_unwind, state_digest, CacheCounters, Engine, EngineConfig};
pub use fingerprint::graph_fingerprint;
pub use pool::{JobMeta, ShardedPool};
pub use service::{Service, ServiceConfig, ServiceStats};
pub use types::{
    inline_machine, CacheStatus, EngineOptions, MachineSpec, ScheduleRequest, ScheduleResponse,
};
