//! End-to-end smoke test of the `grip-serve` binary over the
//! stdin/stdout JSON-lines protocol — the same path CI exercises with
//! `grip-client --emit | grip-serve | grip-client --check`.

use grip_json::Json;
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

/// Drive the real binary: a preset×kernel batch with repeats, asserting
/// verified stall-free responses, nonzero cache hits on the repeats, and
/// bit-identical repeat responses.
#[test]
fn grip_serve_speaks_the_protocol() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_grip-serve"))
        .args(["--shards", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn grip-serve");

    let mut stdin = child.stdin.take().expect("stdin");
    let kernels = ["LL1", "LL5", "LL12"];
    let presets = ["uniform4", "epic8"];
    let mut id = 0u64;
    let mut sent = Vec::new();
    for _round in 0..2 {
        for k in kernels {
            for p in presets {
                id += 1;
                let line =
                    format!("{{\"id\":{id},\"kernel\":\"{k}\",\"n\":12,\"machine\":\"{p}\"}}");
                writeln!(stdin, "{line}").expect("write request");
                sent.push((id, k.to_string(), p.to_string()));
            }
        }
    }
    writeln!(stdin, "{{\"cmd\":\"stats\"}}").expect("write stats cmd");
    drop(stdin); // EOF ends the session

    let out = BufReader::new(child.stdout.take().expect("stdout"));
    let mut responses: Vec<Json> = Vec::new();
    let mut stats: Option<Json> = None;
    for line in out.lines() {
        let line = line.expect("read response");
        let j = Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        if j.get("cmd").is_some() {
            stats = Some(j);
        } else {
            responses.push(j);
        }
    }
    assert!(child.wait().expect("wait").success());

    assert_eq!(responses.len(), sent.len());
    let mut hits = 0;
    let mut first: std::collections::HashMap<(String, String), String> =
        std::collections::HashMap::new();
    for (resp, (id, kernel, preset)) in responses.iter().zip(&sent) {
        assert_eq!(resp.get("id").and_then(Json::as_i64), Some(*id as i64), "order preserved");
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("verified").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("sched_stalls").and_then(Json::as_i64), Some(0));
        assert_eq!(resp.get("template_violations").and_then(Json::as_i64), Some(0));
        assert_eq!(resp.get("kernel").and_then(Json::as_str), Some(kernel.as_str()));
        if resp.get("cache").and_then(Json::as_str) == Some("hit") {
            hits += 1;
        }
        // Canonical content line: the response minus per-delivery fields
        // must be identical between a repeat and its cold first serving.
        let canon = match resp {
            Json::Obj(fields) => Json::Obj(
                fields
                    .iter()
                    .filter(|(k, _)| {
                        !matches!(
                            k.as_str(),
                            "id" | "cache" | "wall_ns" | "wall_us" | "shard" | "trace" | "timings"
                        )
                    })
                    .cloned()
                    .collect(),
            )
            .line(),
            _ => unreachable!("responses are objects"),
        };
        match first.entry((kernel.clone(), preset.clone())) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(canon);
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                assert_eq!(o.get(), &canon, "{kernel}/{preset}: repeat diverged from cold run");
            }
        }
    }
    assert_eq!(hits, kernels.len() * presets.len(), "second round must be all cache hits");

    let stats = stats.expect("stats frame");
    let s = stats.get("stats").expect("stats payload");
    assert_eq!(s.get("processed").and_then(Json::as_i64), Some(sent.len() as i64));
    assert_eq!(s.get("sched_hits").and_then(Json::as_i64), Some(hits as i64));
}

/// Observability surface over the same binary: a client-supplied trace id
/// comes back on the matching response, opting into `timings` yields a
/// per-stage breakdown that sums into the wall time, and the `metrics`
/// command answers with a grip-json-parseable snapshot carrying nonzero
/// scheduler counters (plus a lintable Prometheus form).
#[test]
fn grip_serve_answers_traces_timings_and_metrics() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_grip-serve"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn grip-serve");

    let mut stdin = child.stdin.take().expect("stdin");
    writeln!(
        stdin,
        "{{\"id\":1,\"kernel\":\"LL5\",\"n\":12,\"machine\":\"epic8\",\
         \"trace\":\"req-abc-123\",\"timings\":true}}"
    )
    .expect("write traced request");
    writeln!(stdin, "{{\"id\":2,\"kernel\":\"LL1\",\"n\":12,\"machine\":\"uniform4\"}}")
        .expect("write untraced request");
    writeln!(stdin, "{{\"cmd\":\"metrics\"}}").expect("write metrics cmd");
    writeln!(stdin, "{{\"cmd\":\"metrics\",\"format\":\"prometheus\"}}")
        .expect("write prometheus cmd");
    drop(stdin);

    let out = BufReader::new(child.stdout.take().expect("stdout"));
    let mut responses: Vec<Json> = Vec::new();
    let mut metrics: Vec<Json> = Vec::new();
    for line in out.lines() {
        let line = line.expect("read response");
        let j = Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        if j.get("cmd").is_some() {
            metrics.push(j);
        } else {
            responses.push(j);
        }
    }
    assert!(child.wait().expect("wait").success());
    assert_eq!(responses.len(), 2);
    assert_eq!(metrics.len(), 2);

    // Trace id: the client-supplied one comes back verbatim; the
    // untraced request gets a shard-assigned id.
    assert_eq!(responses[0].get("trace").and_then(Json::as_str), Some("req-abc-123"));
    let assigned = responses[1].get("trace").and_then(Json::as_str).expect("assigned trace id");
    assert!(!assigned.is_empty() && assigned != "req-abc-123");

    // Timings: present only where requested, decompose the wall time.
    let t = responses[0].get("timings").expect("timings on opted-in response");
    let stage = |k: &str| t.get(k).and_then(Json::as_i64).expect(k);
    let sum = stage("prepare_ns")
        + stage("schedule_ns")
        + stage("hazards_ns")
        + stage("verify_ns")
        + stage("audit_ns");
    let total = stage("total_ns");
    assert!(total > 0 && sum <= total, "stage sum {sum} must fit in total {total}");
    let wall_ns = responses[0].get("wall_ns").and_then(Json::as_i64).expect("wall_ns");
    assert_eq!(wall_ns, total, "wall_ns is the collected total");
    assert!(responses[1].get("timings").is_none(), "timings are opt-in");

    // Metrics: JSON snapshot parses (it already did, via grip-json) and
    // carries nonzero scheduler counters; Prometheus text form returns.
    let snap = metrics[0].get("metrics").expect("metrics snapshot");
    for name in ["grip_requests_total", "grip_schedules_total", "grip_iterations_total"] {
        let v = snap.get(name).and_then(Json::as_i64).unwrap_or(0);
        assert!(v > 0, "{name} should be nonzero after two requests, got {v}");
    }
    let text = metrics[1].get("text").and_then(Json::as_str).expect("prometheus text");
    grip_obs::metrics::prometheus_lint(text).expect("prometheus lint");
    assert!(text.contains("grip_requests_total 2"));
}
