//! End-to-end smoke test of the `grip-serve` binary over the
//! stdin/stdout JSON-lines protocol — the same path CI exercises with
//! `grip-client --emit | grip-serve | grip-client --check`.

use grip_json::Json;
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};

/// Drive the real binary: a preset×kernel batch with repeats, asserting
/// verified stall-free responses, nonzero cache hits on the repeats, and
/// bit-identical repeat responses.
#[test]
fn grip_serve_speaks_the_protocol() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_grip-serve"))
        .args(["--shards", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn grip-serve");

    let mut stdin = child.stdin.take().expect("stdin");
    let kernels = ["LL1", "LL5", "LL12"];
    let presets = ["uniform4", "epic8"];
    let mut id = 0u64;
    let mut sent = Vec::new();
    for _round in 0..2 {
        for k in kernels {
            for p in presets {
                id += 1;
                let line =
                    format!("{{\"id\":{id},\"kernel\":\"{k}\",\"n\":12,\"machine\":\"{p}\"}}");
                writeln!(stdin, "{line}").expect("write request");
                sent.push((id, k.to_string(), p.to_string()));
            }
        }
    }
    writeln!(stdin, "{{\"cmd\":\"stats\"}}").expect("write stats cmd");
    drop(stdin); // EOF ends the session

    let out = BufReader::new(child.stdout.take().expect("stdout"));
    let mut responses: Vec<Json> = Vec::new();
    let mut stats: Option<Json> = None;
    for line in out.lines() {
        let line = line.expect("read response");
        let j = Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        if j.get("cmd").is_some() {
            stats = Some(j);
        } else {
            responses.push(j);
        }
    }
    assert!(child.wait().expect("wait").success());

    assert_eq!(responses.len(), sent.len());
    let mut hits = 0;
    let mut first: std::collections::HashMap<(String, String), String> =
        std::collections::HashMap::new();
    for (resp, (id, kernel, preset)) in responses.iter().zip(&sent) {
        assert_eq!(resp.get("id").and_then(Json::as_i64), Some(*id as i64), "order preserved");
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("verified").and_then(Json::as_bool), Some(true));
        assert_eq!(resp.get("sched_stalls").and_then(Json::as_i64), Some(0));
        assert_eq!(resp.get("template_violations").and_then(Json::as_i64), Some(0));
        assert_eq!(resp.get("kernel").and_then(Json::as_str), Some(kernel.as_str()));
        if resp.get("cache").and_then(Json::as_str) == Some("hit") {
            hits += 1;
        }
        // Canonical content line: the response minus per-delivery fields
        // must be identical between a repeat and its cold first serving.
        let canon = match resp {
            Json::Obj(fields) => Json::Obj(
                fields
                    .iter()
                    .filter(|(k, _)| !matches!(k.as_str(), "id" | "cache" | "wall_us" | "shard"))
                    .cloned()
                    .collect(),
            )
            .line(),
            _ => unreachable!("responses are objects"),
        };
        match first.entry((kernel.clone(), preset.clone())) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(canon);
            }
            std::collections::hash_map::Entry::Occupied(o) => {
                assert_eq!(o.get(), &canon, "{kernel}/{preset}: repeat diverged from cold run");
            }
        }
    }
    assert_eq!(hits, kernels.len() * presets.len(), "second round must be all cache hits");

    let stats = stats.expect("stats frame");
    let s = stats.get("stats").expect("stats payload");
    assert_eq!(s.get("processed").and_then(Json::as_i64), Some(sent.len() as i64));
    assert_eq!(s.get("sched_hits").and_then(Json::as_i64), Some(hits as i64));
}
