//! Cache-correctness properties: every cache-hit response is
//! bit-identical (schedule + stats + VM final-state digest) to a cold
//! run, and the sharded service is deterministic under concurrency.

use grip_machine::LatencyTable;
use grip_service::workload::splitmix64;
use grip_service::{
    inline_machine, CacheStatus, Engine, EngineConfig, EngineOptions, JobMeta, MachineSpec,
    ScheduleRequest, Service, ServiceConfig,
};

/// A random request over a small but diverse space: 6 kernels, presets +
/// inline machines, two trip counts, assorted unwinds and option sets.
fn random_request(state: &mut u64, id: u64) -> ScheduleRequest {
    let kernels = ["LL1", "LL3", "LL5", "LL9", "LL12", "LL14"];
    let kernel = kernels[(splitmix64(state) % kernels.len() as u64) as usize];
    let machine = match splitmix64(state) % 6 {
        0 => MachineSpec::Preset("uniform4".into()),
        1 => MachineSpec::Preset("clustered".into()),
        2 => MachineSpec::Preset("mem_bound".into()),
        3 => MachineSpec::Preset("epic8".into()),
        4 => MachineSpec::Inline(inline_machine(
            4,
            None,
            [Some(2), Some(2), Some(1)],
            LatencyTable { alu: 1, fpu: 3, fpu_long: 12, mem: 2, branch: 1 },
        )),
        _ => MachineSpec::Inline(inline_machine(
            6,
            None,
            [None, Some(3), Some(2)],
            LatencyTable { alu: 1, fpu: 2, fpu_long: 6, mem: 4, branch: 1 },
        )),
    };
    let n = [8i64, 16][(splitmix64(state) % 2) as usize];
    let unwind = match splitmix64(state) % 3 {
        0 => None,
        _ => Some(4 + (splitmix64(state) % 6) as usize),
    };
    let mut options = EngineOptions::default();
    if splitmix64(state) % 4 == 0 {
        options.fold_inductions = false;
    }
    ScheduleRequest {
        id,
        kernel: kernel.to_string(),
        n,
        machine,
        unwind,
        options,
        trace: None,
        want_timings: false,
        // Mix audited and certified deliveries into the stream:
        // bit-identity must hold whether or not the reports ride along.
        // Keyed off `id` rather than the PRNG so the request sequence
        // (and thus the cache-hit pattern) is unchanged from a bare
        // stream.
        want_audit: id % 2 == 0,
        want_bounds: id % 3 == 0,
    }
}

/// Property: for a seeded random request stream served by one warm
/// engine, every response — hit or miss — is bit-identical to what a
/// completely cold engine computes for the same request.
#[test]
fn warm_responses_are_bit_identical_to_cold_runs() {
    let mut state = 0xfeed_5eed_u64;
    let mut warm = Engine::new(EngineConfig::default());
    let mut hits = 0;
    let mut ddg_hits = 0;
    for id in 0..40 {
        let req = random_request(&mut state, id);
        let served = warm.process(0, &req, &JobMeta::immediate());
        let cold = Engine::new(EngineConfig::default()).process(0, &req, &JobMeta::immediate());
        assert_eq!(cold.cache, CacheStatus::Miss);
        assert!(
            served.bits_eq(&cold),
            "response diverged from cold run (cache={:?})\nreq:  {req:?}\nwarm: {served:?}\ncold: {cold:?}",
            served.cache
        );
        assert!(served.ok, "{}: {:?}", req.kernel, served.error);
        assert!(served.verified);
        assert_eq!(served.sched_stalls, 0, "stall-free invariant through the service");
        assert_eq!(served.template_violations, 0);
        match served.cache {
            CacheStatus::Hit => hits += 1,
            CacheStatus::DdgHit => ddg_hits += 1,
            CacheStatus::Miss => {}
        }
    }
    // The stream is small over a bounded key space: both cache levels
    // must actually fire for the property to mean anything.
    assert!(hits > 0, "stream never hit the schedule cache");
    assert!(ddg_hits > 0, "stream never hit the DDG cache");
}

/// Property: cache evictions never corrupt responses — with pathologically
/// tiny caches, re-computed responses still match the originals bit for
/// bit.
#[test]
fn evictions_preserve_bit_identity() {
    let tiny = EngineConfig { ddg_cache_cap: 2, sched_cache_cap: 3 };
    let mut engine = Engine::new(tiny);
    let mut state = 0x0dd_ba11_u64;
    let reqs: Vec<ScheduleRequest> = (0..10).map(|id| random_request(&mut state, id)).collect();
    let firsts: Vec<_> = reqs.iter().map(|r| engine.process(0, r, &JobMeta::immediate())).collect();
    // Cycle through them again: many were evicted, all must reproduce.
    for (req, first) in reqs.iter().zip(&firsts) {
        let again = engine.process(0, req, &JobMeta::immediate());
        assert!(again.bits_eq(first), "eviction broke determinism for {}", req.kernel);
    }
    assert!(engine.counters().sched_evictions > 0, "tiny cache must have evicted");
}

/// Concurrent hammer: N worker shards × M interleaved requests, submitted
/// twice over a shuffled order, must be deterministic — request-for-
/// request bit-identical with each other and with a single-shard service.
#[test]
fn concurrent_hammer_is_deterministic() {
    let mut state = 0xc0ff_ee00_u64;
    // A workload with deliberate duplicates so shards see interleaved
    // repeats of their own keys while other shards are mid-flight.
    let base: Vec<ScheduleRequest> = (0..12).map(|id| random_request(&mut state, id)).collect();
    let mut hammer: Vec<ScheduleRequest> = Vec::new();
    for round in 0..4u64 {
        for (i, r) in base.iter().enumerate() {
            let mut r = r.clone();
            r.id = round * 100 + i as u64;
            hammer.push(r);
        }
    }
    // Shuffle deterministically so rounds interleave.
    for i in (1..hammer.len()).rev() {
        let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
        hammer.swap(i, j);
    }

    let sharded = Service::new(ServiceConfig { shards: 4, ..Default::default() });
    let first = sharded.submit_batch(hammer.clone());
    let second = sharded.submit_batch(hammer.clone());
    let single = Service::new(ServiceConfig { shards: 1, ..Default::default() });
    let reference = single.submit_batch(hammer.clone());

    for ((a, b), r) in first.iter().zip(&second).zip(&reference) {
        assert!(a.ok, "{}: {:?}", a.kernel, a.error);
        assert!(a.bits_eq(b), "re-submission diverged for {} on {}", a.kernel, a.machine);
        assert!(a.bits_eq(r), "shard count changed the answer for {} on {}", a.kernel, a.machine);
        assert_eq!(a.sched_stalls, 0);
    }
    // Affinity: the same request always lands on the same shard.
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.shard, b.shard);
    }
    // The second pass is 100% schedule-cache hits.
    assert!(second.iter().all(|r| r.cache == CacheStatus::Hit));
    let stats = sharded.stats();
    assert_eq!(stats.counters.processed, 2 * hammer.len() as u64);
    assert!(stats.counters.sched_hits >= hammer.len() as u64);
}
