//! Substrate throughput: the VLIW simulator executing sequential and
//! pipelined kernels (instructions per second of simulated machine).

#[path = "harness.rs"]
mod harness;

use grip_bench::run_grip;
use grip_kernels::{default_init, kernels};
use grip_vm::Machine;

fn main() {
    println!("simulator");
    let k = kernels().iter().find(|k| k.name == "LL1").unwrap();
    let n = 1000i64;

    let g_seq = (k.build)(n);
    let mut m = Machine::for_graph(&g_seq);
    default_init(&g_seq, &mut m, n);
    let cycles = m.run(&g_seq).unwrap().cycles;
    println!("LL1/sequential: {cycles} cycles per run");
    harness::bench(
        "LL1/sequential",
        || (),
        |()| {
            let mut m = Machine::for_graph(&g_seq);
            default_init(&g_seq, &mut m, n);
            (m.run(&g_seq).unwrap(), ())
        },
    );

    let (g_pipe, _) = run_grip(k, n, 8);
    let mut m = Machine::for_graph(&g_pipe);
    default_init(&g_pipe, &mut m, n);
    let cycles = m.run(&g_pipe).unwrap().cycles;
    println!("LL1/pipelined_8fu: {cycles} cycles per run");
    harness::bench(
        "LL1/pipelined_8fu",
        || (),
        |()| {
            let mut m = Machine::for_graph(&g_pipe);
            default_init(&g_pipe, &mut m, n);
            (m.run(&g_pipe).unwrap(), ())
        },
    );
}
