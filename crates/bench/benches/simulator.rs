//! Substrate throughput: the VLIW simulator executing sequential and
//! pipelined kernels (instructions per second of simulated machine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use grip_bench::run_grip;
use grip_kernels::{default_init, kernels};
use grip_vm::Machine;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let k = kernels().iter().find(|k| k.name == "LL1").unwrap();
    let n = 1000i64;

    let g_seq = (k.build)(n);
    let mut m = Machine::for_graph(&g_seq);
    default_init(&g_seq, &mut m, n);
    let cycles = m.run(&g_seq).unwrap().cycles;
    group.throughput(Throughput::Elements(cycles));
    group.bench_with_input(BenchmarkId::new("LL1", "sequential"), &(), |b, _| {
        b.iter(|| {
            let mut m = Machine::for_graph(&g_seq);
            default_init(&g_seq, &mut m, n);
            m.run(&g_seq).unwrap()
        })
    });

    let (g_pipe, _) = run_grip(k, n, 8);
    let mut m = Machine::for_graph(&g_pipe);
    default_init(&g_pipe, &mut m, n);
    let cycles = m.run(&g_pipe).unwrap().cycles;
    group.throughput(Throughput::Elements(cycles));
    group.bench_with_input(BenchmarkId::new("LL1", "pipelined_8fu"), &(), |b, _| {
        b.iter(|| {
            let mut m = Machine::for_graph(&g_pipe);
            default_init(&g_pipe, &mut m, n);
            m.run(&g_pipe).unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator
}
criterion_main!(benches);
