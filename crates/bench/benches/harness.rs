//! A dependency-free micro-benchmark harness (the container is offline,
//! so criterion is unavailable): warm up, run a fixed number of timed
//! iterations, report the mean and min wall-clock time per iteration.

use std::time::{Duration, Instant};

/// Number of timed iterations (override with `GRIP_BENCH_ITERS`; values
/// below 1 are clamped).
pub fn iters() -> u32 {
    std::env::var("GRIP_BENCH_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(10).max(1)
}

/// Time `f` (with per-iteration setup) and print one report line.
pub fn bench<S, T, U>(name: &str, mut setup: impl FnMut() -> S, mut f: impl FnMut(S) -> (T, U)) {
    // Warm-up.
    let s = setup();
    let _ = f(s);
    let n = iters();
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    for _ in 0..n {
        let s = setup();
        let t0 = Instant::now();
        let out = f(s);
        let dt = t0.elapsed();
        std::hint::black_box(out);
        total += dt;
        min = min.min(dt);
    }
    println!("{name:<40} mean {:>12.3?}   min {:>12.3?}   ({n} iters)", total / n, min);
}
