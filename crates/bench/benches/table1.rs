//! End-to-end pipeline cost for Table 1 cells: the full unwind → analyze →
//! GRiP → pattern stack on representative kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grip_bench::{run_grip, run_post};
use grip_kernels::kernels;

fn bench_table1_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_cell");
    for name in ["LL1", "LL5", "LL13"] {
        let k = kernels().iter().find(|k| k.name == name).unwrap();
        for fus in [2usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("grip_{name}"), fus),
                &fus,
                |b, &fus| b.iter(|| run_grip(k, 48, fus)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("post_{name}"), fus),
                &fus,
                |b, &fus| b.iter(|| run_post(k, 48, fus)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1_cells
}
criterion_main!(benches);
