//! End-to-end pipeline cost for Table 1 cells: the full unwind → analyze →
//! GRiP → pattern stack on representative kernels.

#[path = "harness.rs"]
mod harness;

use grip_bench::{run_grip, run_post};
use grip_kernels::kernels;

fn main() {
    println!("table1_cell");
    for name in ["LL1", "LL5", "LL13"] {
        let k = kernels().iter().find(|k| k.name == name).unwrap();
        for fus in [2usize, 8] {
            harness::bench(&format!("grip_{name}/{fus}"), || (), |()| run_grip(k, 48, fus));
            harness::bench(&format!("post_{name}/{fus}"), || (), |()| run_post(k, 48, fus));
        }
    }
}
