//! The paper's efficiency claim (§1, §3.1): GRiP's trivially-maintained
//! Moveable-ops sets vs the Unifiable-ops technique's per-pick membership
//! walks. Measures wall-clock scheduling time on identical inputs.

#[path = "harness.rs"]
mod harness;

use grip_analysis::{Ddg, RankTable};
use grip_baselines::schedule_unifiable;
use grip_core::{schedule_region, GripConfig, Resources};
use grip_ir::Graph;
use grip_kernels::kernels;
use grip_percolate::Ctx;
use grip_pipeline::{simplify_inductions, unwind};

/// Unwound, simplified window for a kernel, ready for scheduling.
fn prep(name: &str, u: usize) -> (Graph, Vec<grip_ir::NodeId>) {
    let k = kernels().iter().find(|k| k.name == name).unwrap();
    let mut g = (k.build)(64);
    let w = unwind(&mut g, u);
    simplify_inductions(&mut g, &w.rows);
    (g, w.rows)
}

fn main() {
    println!("scheduler_cost");
    for (kernel, u) in [("LL1", 6), ("LL7", 4), ("LL12", 8)] {
        harness::bench(
            &format!("grip/{kernel}_u{u}"),
            || prep(kernel, u),
            |(mut g, rows)| {
                let ddg = Ddg::build(&g, g.entry);
                let mut ctx = Ctx::new(&g, &ddg);
                let ranks = RankTable::new(&ddg, true);
                let out = schedule_region(
                    &mut g,
                    &mut ctx,
                    &ranks,
                    GripConfig {
                        resources: Resources::vliw(4),
                        gap_prevention: true,
                        dce: true,
                        speculation: Default::default(),
                        trace: false,
                    },
                    rows,
                );
                (out.stats.hops, g)
            },
        );
        harness::bench(
            &format!("unifiable/{kernel}_u{u}"),
            || prep(kernel, u),
            |(mut g, rows)| {
                let ddg = Ddg::build(&g, g.entry);
                let mut ctx = Ctx::new(&g, &ddg);
                let ranks = RankTable::new(&ddg, true);
                let out = schedule_unifiable(&mut g, &mut ctx, &ranks, Resources::vliw(4), rows);
                (out.0.hops, g)
            },
        );
    }
}
