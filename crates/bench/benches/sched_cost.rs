//! The paper's efficiency claim (§1, §3.1): GRiP's trivially-maintained
//! Moveable-ops sets vs the Unifiable-ops technique's per-pick membership
//! walks. Measures wall-clock scheduling time on identical inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use grip_analysis::{Ddg, RankTable};
use grip_baselines::schedule_unifiable;
use grip_core::{schedule_region, GripConfig, Resources};
use grip_ir::Graph;
use grip_kernels::kernels;
use grip_percolate::Ctx;
use grip_pipeline::{simplify_inductions, unwind};

/// Unwound, simplified window for a kernel, ready for scheduling.
fn prep(name: &str, u: usize) -> (Graph, Vec<grip_ir::NodeId>) {
    let k = kernels().iter().find(|k| k.name == name).unwrap();
    let mut g = (k.build)(64);
    let w = unwind(&mut g, u);
    simplify_inductions(&mut g, &w.rows);
    (g, w.rows)
}

fn bench_sched_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_cost");
    for (kernel, u) in [("LL1", 6), ("LL7", 4), ("LL12", 8)] {
        group.bench_with_input(
            BenchmarkId::new("grip", format!("{kernel}_u{u}")),
            &(kernel, u),
            |b, &(kernel, u)| {
                b.iter_batched(
                    || prep(kernel, u),
                    |(mut g, rows)| {
                        let ddg = Ddg::build(&g, g.entry);
                        let mut ctx = Ctx::new(&g, &ddg);
                        let ranks = RankTable::new(&ddg, true);
                        schedule_region(
                            &mut g,
                            &mut ctx,
                            &ranks,
                            GripConfig {
                                resources: Resources::vliw(4),
                                gap_prevention: true,
                                dce: true,
                                speculation: Default::default(),
                                trace: false,
                            },
                            rows,
                        )
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unifiable", format!("{kernel}_u{u}")),
            &(kernel, u),
            |b, &(kernel, u)| {
                b.iter_batched(
                    || prep(kernel, u),
                    |(mut g, rows)| {
                        let ddg = Ddg::build(&g, g.entry);
                        let mut ctx = Ctx::new(&g, &ddg);
                        let ranks = RankTable::new(&ddg, true);
                        schedule_unifiable(&mut g, &mut ctx, &ranks, Resources::vliw(4), rows)
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sched_cost
}
criterion_main!(benches);
