//! The paper's worked examples, reconstructed.
//!
//! The original drawings (Figures 5–13) give the dependence structure only
//! pictorially; these builders produce loops with the same *phenomena*:
//! the `a..g` running example has one self-recurrent chain (`a→b→c`,
//! `a` loop-carried on itself) plus independent streams (`d→e`, `f→g`)
//! whose unconstrained motion creates the growing gaps of Figure 9, and
//! the `A,B,C` loop of Figures 5/6 is the three-op chain with `a`
//! self-dependent.

use grip_ir::{Graph, OpKind, Operand, ProgramBuilder, RegId, Value};

fn r(reg: RegId) -> Operand {
    Operand::Reg(reg)
}
fn f(v: f64) -> Operand {
    Operand::Imm(Value::F(v))
}

/// The Figures 5/6 loop: `a → b → c` with a loop-carried dependence of
/// `a` on itself (c's result is stored to keep the chain observable).
pub fn abc_loop(n: i64) -> Graph {
    let mut b = ProgramBuilder::new();
    let y = b.array("y", (n + 16) as usize);
    let acc = b.named_reg("acc");
    b.const_f(acc, 1.0);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    let mut a_op = grip_ir::Operation::new(OpKind::Mul, Some(acc), vec![r(acc), f(0.9995)]);
    a_op.name = Some("a".into());
    b.emit(a_op);
    let t = b.binary("b", OpKind::Add, r(acc), f(2.0));
    let u = b.binary("c", OpKind::Mul, r(t), f(3.0));
    b.store(y, r(k), 0, r(u));
    b.iadd_imm(k, k, 1);
    let c = b.binary("cc", OpKind::CmpLt, r(k), Operand::Imm(Value::I(n)));
    b.end_loop(c);
    let mut g = b.finish();
    g.live_out = vec![acc, k];
    g
}

/// The §3 running example (Figures 8, 9, 11, 13): seven ops `a..g` per
/// iteration — chain `a→b→c` with `a` self-recurrent, independent streams
/// `d→e` and `f→g` feeding stores.
pub fn running_example(n: i64) -> Graph {
    let mut b = ProgramBuilder::new();
    let x = b.array("x", (n + 24) as usize);
    let w = b.array("w", (n + 24) as usize);
    let ya = b.array("ya", (n + 24) as usize);
    let za = b.array("za", (n + 24) as usize);
    let acc = b.named_reg("acc");
    b.const_f(acc, 1.0);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    // a: self-recurrent chain head
    let mut a_op = grip_ir::Operation::new(OpKind::Mul, Some(acc), vec![r(acc), f(0.999)]);
    a_op.name = Some("a".into());
    b.emit(a_op);
    // b <- a ; c <- b (stored)
    let tb = b.binary("b", OpKind::Add, r(acc), f(1.0));
    let tc = b.binary("c", OpKind::Mul, r(tb), f(0.5));
    b.store(x, r(k), 0, r(tc));
    // d -> e (independent load stream)
    let td = b.load("d", ya, r(k), 0);
    let te = b.binary("e", OpKind::Mul, r(td), f(2.0));
    b.store(w, r(k), 0, r(te));
    // f -> g (another independent stream)
    let tf = b.load("f", za, r(k), 0);
    let tg = b.binary("g", OpKind::Add, r(tf), f(3.0));
    b.store(za, r(k), 0, r(tg));
    b.iadd_imm(k, k, 1);
    let c = b.binary("cc", OpKind::CmpLt, r(k), Operand::Imm(Value::I(n)));
    b.end_loop(c);
    let mut g = b.finish();
    g.live_out = vec![acc, k];
    g
}

/// The §1 motivating example: a vectorizable loop with five operations for
/// a 4-FU machine ("4 iterations would be let into the final pipelined
/// loop body … 4 operations per instruction" vs the unconstrained
/// techniques' "5 operations every 2 instructions").
pub fn intro_five_op_loop(n: i64) -> Graph {
    let mut b = ProgramBuilder::new();
    let x = b.array("x", (n + 24) as usize);
    let y = b.array("y", (n + 24) as usize);
    let k = b.named_reg("k");
    b.const_i(k, 0);
    b.begin_loop();
    // five "useful" operations per iteration
    let t1 = b.load("o1", y, r(k), 0);
    let t2 = b.binary("o2", OpKind::Mul, r(t1), f(1.5));
    let t3 = b.binary("o3", OpKind::Add, r(t2), f(0.5));
    b.store(x, r(k), 0, r(t3));
    b.iadd_imm(k, k, 1);
    let c = b.binary("cc", OpKind::CmpLt, r(k), Operand::Imm(Value::I(n)));
    b.end_loop(c);
    let mut g = b.finish();
    g.live_out = vec![k];
    g
}
