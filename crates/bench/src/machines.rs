//! The machine-preset sweep: every ready-made [`MachineDesc`] preset over
//! LL1–LL14, with latency-aware simulation of both the sequential and the
//! scheduled program, feeding `BENCH_machines.json`.
//!
//! Unlike Table 1 (loop-body CPI ratios under the paper's unit-latency
//! model), this sweep reports *wall-clock* model cycles: the simulator
//! charges interlock stalls for multi-cycle latencies, so a preset's
//! speedup reflects both the packing the scheduler achieved and the
//! hazards it avoided.

use crate::json::Json;
use crate::unwind_for;
use grip_core::{MachineDesc, PhaseTimes, Resources};
use grip_kernels::Kernel;
use grip_pipeline::{perfect_pipeline, PipelineOptions};
use grip_vm::{EquivReport, Machine};

/// One (machine × kernel) measurement.
#[derive(Clone, Debug)]
pub struct MachineCell {
    /// Preset name (`uniform4`, `clustered`, …).
    pub machine: String,
    /// Kernel name (`LL1`…).
    pub kernel: String,
    /// Model cycles (instructions + stalls) of the sequential program.
    pub seq_cycles: u64,
    /// Model cycles of the scheduled program.
    pub sched_cycles: u64,
    /// Stall cycles charged to the scheduled program.
    pub sched_stalls: u64,
    /// Wall-clock speedup: `seq_cycles / sched_cycles`.
    pub speedup: f64,
    /// Loop-body CPI speedup from the pipeline report (unit-cycle view).
    pub body_speedup: f64,
    /// Steady rows of the scheduled window (the schedule length).
    pub schedule_rows: usize,
    /// Scheduled program matched the sequential program bitwise.
    pub verified: bool,
    /// Issue-template violations observed while simulating the schedule.
    pub template_violations: u64,
    /// Delay rows the hazard post-pass had to insert — the padding the
    /// scheduler's placement left behind (lower is better).
    pub hazard_delay_rows: u64,
    /// Ready ops the post-pass backfilled into that padding.
    pub hazard_backfills: u64,
    /// Per-stage self times for this cell (prepare/schedule/hazards/
    /// verify plus the measured wall), from the grip-obs span collector.
    pub timings: grip_obs::StageBreakdown,
    /// The scheduler's pick-loop phase profile for this cell (candidate
    /// refresh / legality probes / move commits / dead-row sweeps) —
    /// self-times inside the "schedule" stage, observation-only.
    pub phases: PhaseTimes,
    /// The grip-audit static verifier found no diagnostics.
    pub audit_clean: bool,
    /// How many diagnostics it found (0 is the gate).
    pub audit_diagnostics: usize,
    /// The `grip-bounds` certificate for this cell's steady window.
    pub bounds: grip_bounds::BoundCertificate,
    /// The scheduler stopped iterating because the live region matched
    /// the pigeonhole resource bound.
    pub bound_exit: bool,
    /// Candidate-selection rounds the scheduler ran (`stats.picks`) —
    /// what a bound-driven exit reduces.
    pub grip_iterations: u64,
    /// Unwind factor the cell was scheduled with (scales the bound to
    /// whole-program cycles for the soundness gate).
    pub unwind: usize,
}

impl MachineCell {
    /// Serialize for `BENCH_machines.json`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("machine", self.machine.as_str())
            .field("kernel", self.kernel.as_str())
            .field("seq_cycles", self.seq_cycles)
            .field("sched_cycles", self.sched_cycles)
            .field("sched_stalls", self.sched_stalls)
            .field("speedup", self.speedup)
            .field("body_speedup", self.body_speedup)
            .field("schedule_rows", self.schedule_rows)
            .field("verified", self.verified)
            .field("template_violations", self.template_violations)
            .field("hazard_delay_rows", self.hazard_delay_rows)
            .field("hazard_backfills", self.hazard_backfills)
            .field("audit_clean", self.audit_clean)
            .field("audit_diagnostics", self.audit_diagnostics as u64)
            .field("bound_cycles", self.bounds.bound_cycles)
            .field("binding_constraint", self.bounds.binding_constraint.as_str())
            .field("gap_pct", self.bounds.gap_pct)
            .field("at_bound", self.bounds.at_bound)
            .field("bound_exit", self.bound_exit)
            .field("grip_iterations", self.grip_iterations)
            .field("unwind", self.unwind as u64)
            .field("prepare_us", self.timings.prepare_ns as f64 / 1000.0)
            .field("schedule_us", self.timings.schedule_ns as f64 / 1000.0)
            .field("hazards_us", self.timings.hazards_ns as f64 / 1000.0)
            .field("verify_us", self.timings.verify_ns as f64 / 1000.0)
            .field("audit_us", self.timings.audit_ns as f64 / 1000.0)
            .field("bounds_us", self.timings.bounds_ns as f64 / 1000.0)
            .field("wall_us", self.timings.total_ns as f64 / 1000.0)
            .field(
                "sched_phases",
                Json::obj()
                    .field("cand_refresh_us", self.phases.cand_refresh_ns as f64 / 1000.0)
                    .field("legality_us", self.phases.legality_ns as f64 / 1000.0)
                    .field("commit_us", self.phases.commit_ns as f64 / 1000.0)
                    .field("dead_sweep_us", self.phases.dead_sweep_ns as f64 / 1000.0),
            )
    }
}

/// Display name for a preset (`uniform` widths get their width appended).
pub fn preset_label(desc: &MachineDesc) -> String {
    if desc.name == "uniform" {
        format!("uniform{}", desc.width)
    } else {
        desc.name.to_string()
    }
}

/// Measure one kernel on one machine. The whole measurement runs under a
/// grip-obs stage collector, so the cell carries a per-stage breakdown
/// (prepare/schedule/hazards from the pipeline's own spans, verify from
/// the model runs below) that decomposes the cell's wall time.
pub fn measure_machine(k: &Kernel, n: i64, desc: MachineDesc) -> MachineCell {
    let ((rep, verified, seq, sched, unwind), stage_timings) = grip_obs::collect(|| {
        let (g0, mut g) = {
            // Kernel construction folds into the "prepare" bucket of the
            // breakdown, like the engine's build span.
            let _span = grip_obs::span!("build");
            let g0 = (k.build)(n);
            let g = g0.clone();
            (g0, g)
        };
        let width = desc.width.min(8);
        let unwind = unwind_for(width);
        let rep = perfect_pipeline(
            &mut g,
            PipelineOptions {
                unwind,
                resources: Resources::machine(desc),
                fold_inductions: true,
                gap_prevention: true,
                dce: true,
                try_roll: false,
                // Every cell is double-checked: VM simulation below,
                // grip-audit static verification here.
                audit: true,
            },
        );

        let _span = grip_obs::span!("verify");
        let mut m0 = Machine::for_graph(&g0);
        (k.init)(&g0, &mut m0, n);
        let seq = m0.run_model(&g0, &desc);
        let mut m1 = Machine::for_graph(&g);
        (k.init)(&g, &mut m1, n);
        let sched = m1.run_model(&g, &desc);

        let verified = match (&seq, &sched) {
            (Ok(_), Ok(_)) => EquivReport::compare(&g0, &m0, &m1).is_equal(),
            _ => false,
        };
        (rep, verified, seq, sched, unwind)
    });
    let seq_cycles = seq.map(|s| s.total_cycles()).unwrap_or(0);
    // The hazard-resolution post-pass makes stall-freedom a scheduler
    // invariant; the model run is the independent cross-check, and any
    // residue is reported per cell (the `machines` bin exits nonzero on
    // it) rather than aborting the sweep mid-way.
    let (sched_cycles, sched_stalls, template_violations) = sched
        .map(|s| (s.total_cycles(), s.stall_cycles, s.template_violations))
        .unwrap_or((0, 0, 0));
    MachineCell {
        machine: preset_label(&desc),
        kernel: k.name.to_string(),
        seq_cycles,
        sched_cycles,
        sched_stalls,
        speedup: if sched_cycles > 0 { seq_cycles as f64 / sched_cycles as f64 } else { f64::NAN },
        body_speedup: rep.speedup().unwrap_or(f64::NAN),
        schedule_rows: rep.steady.len(),
        verified,
        template_violations,
        hazard_delay_rows: rep.stats.hazard_delay_rows,
        hazard_backfills: rep.stats.hazard_backfills,
        timings: grip_obs::StageBreakdown::from_timings(&stage_timings),
        phases: rep.phases,
        audit_clean: rep.audit.as_ref().is_some_and(|a| a.is_clean()),
        audit_diagnostics: rep.audit.as_ref().map_or(0, |a| a.diagnostics.len()),
        bounds: rep.bounds,
        bound_exit: rep.stats.bound_exits > 0,
        grip_iterations: rep.stats.picks,
        unwind,
    }
}

/// Sweep every preset over every kernel on the service worker pool, one
/// shard per kernel (the same layout the old scoped-thread loop had).
pub fn machine_table(n: i64, parallel: bool) -> Vec<MachineCell> {
    let ks = grip_kernels::kernels();
    let presets = MachineDesc::presets();
    let sweep_kernel = move |k: &'static Kernel| -> Vec<MachineCell> {
        presets.iter().map(|&d| measure_machine(k, n, d)).collect()
    };
    if !parallel {
        return ks.iter().flat_map(sweep_kernel).collect();
    }
    let pool: grip_service::pool::ShardedPool<&'static Kernel, Vec<MachineCell>> =
        grip_service::pool::ShardedPool::new(ks.len(), |_| (), move |_, _, k, _| sweep_kernel(k));
    pool.map_batch(ks.iter().enumerate()).into_iter().flatten().collect()
}

/// Re-measure, serially, any cell whose stage self-times fail to account
/// for `min_cover` of its wall, and keep the re-measurement when it
/// passes. The parallel sweep oversubscribes small machines (14 worker
/// threads; CI runners have 1–2 cores), so one unlucky preemption landing
/// *between* two stage spans parks the thread behind every other worker
/// and shows up as tens of milliseconds of unaccounted wall — pure
/// scheduling noise. A genuinely missing span fails serial re-measurement
/// exactly the same way, so the gate keeps its teeth. Schedules are
/// deterministic, so only the timing fields change; returns how many
/// cells were re-measured.
pub fn remeasure_unaccounted(cells: &mut [MachineCell], n: i64, min_cover: f64) -> usize {
    let ks = grip_kernels::kernels();
    let presets = MachineDesc::presets();
    let mut redone = 0;
    for cell in cells.iter_mut() {
        let covered = |c: &MachineCell| {
            c.timings.total_ns < 1_000_000
                || c.timings.stage_sum_ns() as f64 >= min_cover * c.timings.total_ns as f64
        };
        if covered(cell) {
            continue;
        }
        let (Some(k), Some(&desc)) = (
            ks.iter().find(|k| k.name == cell.kernel),
            presets.iter().find(|d| preset_label(d) == cell.machine),
        ) else {
            continue;
        };
        for _ in 0..2 {
            let fresh = measure_machine(k, n, desc);
            let ok = covered(&fresh);
            *cell = fresh;
            redone += 1;
            if ok {
                break;
            }
        }
    }
    redone
}

/// The whole sweep as one JSON document.
pub fn machines_json(n: i64, cells: &[MachineCell]) -> Json {
    Json::obj()
        .field("bench", "machines")
        .field("trip_count", n)
        .field(
            "machines",
            MachineDesc::presets()
                .iter()
                .map(|d| {
                    Json::obj()
                        .field("name", preset_label(d))
                        .field("width", if d.width == usize::MAX { -1i64 } else { d.width as i64 })
                        .field("alu", slot_json(d, 0))
                        .field("fpu", slot_json(d, 1))
                        .field("mem", slot_json(d, 2))
                        .field("max_latency", u64::from(d.max_latency()))
                })
                .collect::<Vec<_>>(),
        )
        .field("cells", cells.iter().map(MachineCell::to_json).collect::<Vec<_>>())
}

fn slot_json(d: &MachineDesc, idx: usize) -> i64 {
    if d.class_slots[idx] == usize::MAX {
        -1
    } else {
        d.class_slots[idx] as i64
    }
}

/// Human-readable sweep table (one row per machine × kernel).
pub fn render_machines(cells: &[MachineCell]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:<6} {:>10} {:>10} {:>8} {:>8} {:>6}  ok",
        "machine", "loop", "seq cyc", "sched cyc", "stalls", "speedup", "rows"
    );
    for c in cells {
        let _ = writeln!(
            s,
            "{:<10} {:<6} {:>10} {:>10} {:>8} {:>8.2} {:>6}  {}",
            c.machine,
            c.kernel,
            c.seq_cycles,
            c.sched_cycles,
            c.sched_stalls,
            c.speedup,
            c.schedule_rows,
            if c.verified && c.template_violations == 0 && c.sched_stalls == 0 {
                "yes"
            } else {
                "NO"
            },
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cell_measures_and_verifies() {
        let k = grip_kernels::kernels().iter().find(|k| k.name == "LL12").unwrap();
        let cell = measure_machine(k, 24, MachineDesc::clustered());
        assert!(cell.verified, "{cell:?}");
        assert_eq!(cell.template_violations, 0, "{cell:?}");
        assert_eq!(cell.sched_stalls, 0, "schedules must be stall-free: {cell:?}");
        assert!(cell.speedup > 1.0, "{cell:?}");
        assert!(cell.schedule_rows > 0);
        assert!(cell.phases.total_ns() > 0, "pick-loop phase profile is empty: {cell:?}");
        let json = cell.to_json().line();
        assert!(json.contains("\"sched_phases\""), "{json}");
    }

    #[test]
    fn preset_labels_distinguish_uniform_widths() {
        assert_eq!(preset_label(&MachineDesc::uniform(4)), "uniform4");
        assert_eq!(preset_label(&MachineDesc::epic8()), "epic8");
    }
}
