//! A minimal JSON writer (the container has no network, so the harness
//! carries its own serializer instead of depending on `serde`).
//!
//! Only what the bench reports need: objects, arrays, strings, numbers,
//! and booleans, with deterministic field order and stable float
//! formatting (finite floats print with enough digits to round-trip;
//! non-finite values print as `null`, matching JSON's number grammar).

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer.
    Int(i64),
    /// A float (`NaN`/`inf` serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An ordered object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object (panics on non-objects).
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on non-object"),
        }
        self
    }

    /// Render with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, 0);
        s
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(i: u64) -> Json {
        Json::Int(i as i64)
    }
}
impl From<usize> for Json {
    fn from(i: usize) -> Json {
        Json::Int(i as i64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_pretty_json() {
        let j = Json::obj()
            .field("name", "LL1\"x\"")
            .field("ok", true)
            .field("n", 3usize)
            .field("speedup", 3.5f64)
            .field("nan", f64::NAN)
            .field("rows", Json::Arr(vec![Json::Int(1), Json::Int(2)]));
        let s = j.pretty();
        assert!(s.contains("\"name\": \"LL1\\\"x\\\"\""));
        assert!(s.contains("\"speedup\": 3.5"));
        assert!(s.contains("\"nan\": null"));
        assert!(s.starts_with("{\n") && s.ends_with('}'));
        assert!(Json::obj().pretty() == "{}");
    }
}
