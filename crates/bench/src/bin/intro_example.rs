//! Regenerate the **§1 motivating example**: a vectorizable loop with five
//! operations on a 4-FU machine. Separating resource constraints from
//! pipelining (POST) converges to its natural one-iteration shape and then
//! pays ceil(ops/width) instructions per iteration; GRiP lets resource
//! constraints decide how many iterations enter the loop body and packs
//! the machine ("4 operations per instruction").

#![forbid(unsafe_code)]

use grip_baselines::{post_pipeline, PostOptions};
use grip_bench::examples::intro_five_op_loop;
use grip_core::Resources;
use grip_pipeline::{perfect_pipeline, PipelineOptions};

fn main() {
    let n = 80i64;
    let fus = 4usize;

    let mut g_grip = intro_five_op_loop(n);
    let grip = perfect_pipeline(
        &mut g_grip,
        PipelineOptions {
            unwind: 12,
            resources: Resources::vliw(fus),
            fold_inductions: true,
            gap_prevention: true,
            dce: true,
            try_roll: false,
            audit: false,
        },
    );

    let mut g_post = intro_five_op_loop(n);
    let post = post_pipeline(&mut g_post, PostOptions::vliw(12, fus));

    let ops_per_iter = 5.0;
    println!("§1 example: 5-op vectorizable loop on a {fus}-FU machine\n");
    for (name, rep) in [("GRiP", &grip), ("POST", &post)] {
        let cpi = rep.pipelined_cpi().unwrap_or(f64::NAN);
        println!(
            "  {name}: {cpi:.2} instructions/iteration  ->  {:.2} useful ops/instruction (speedup {:.2})",
            ops_per_iter / cpi,
            rep.speedup().unwrap_or(f64::NAN),
        );
    }
    println!(
        "\npaper: unconstrained techniques reach 5 ops every 2 instructions\n\
         (2.5 ops/instr); GRiP fills the machine at ~4 ops/instr."
    );
}
