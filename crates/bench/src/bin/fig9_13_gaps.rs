//! Regenerate **Figures 9 and 13**: the running example scheduled without
//! gap prevention (maximal migration — gaps grow, no convergence) and with
//! the Gapless-move facility (fixed pattern, the new loop body).

#![forbid(unsafe_code)]

use grip_bench::examples::running_example;
use grip_core::Resources;
use grip_pipeline::{perfect_pipeline, PipelineOptions};

fn main() {
    let n = 64i64;
    let iters = 6usize;

    // --- Figure 9: dependence-only scheduling --------------------------
    let mut g = running_example(n);
    let rep = perfect_pipeline(
        &mut g,
        PipelineOptions {
            unwind: iters,
            resources: Resources::UNLIMITED,
            fold_inductions: true, // independent streams race ahead
            gap_prevention: false,
            dce: true,
            try_roll: false,
            audit: false,
        },
    );
    println!("Figure 9: pipelined schedule WITHOUT gap prevention");
    println!("(ops move as far as dependences allow; iteration spans tear open)\n");
    let tab = grip_ir::print::tableau(&g, &rep.steady, iters);
    print!("{}", grip_ir::print::render_tableau(&tab, iters));
    // Quantify the gaps.
    let mut gap_rows = 0usize;
    for it in 0..iters as u32 {
        let touched: Vec<bool> = rep
            .steady
            .iter()
            .map(|&r| g.node_ops(r).iter().any(|&(_, o)| g.op(o).iter == it))
            .collect();
        if let (Some(f), Some(l)) =
            (touched.iter().position(|&b| b), touched.iter().rposition(|&b| b))
        {
            gap_rows += touched[f..=l].iter().filter(|&&b| !b).count();
        }
    }
    println!("gap rows inside iteration spans: {gap_rows}");
    println!("pattern: {:?}  (no convergence expected)\n", rep.pattern);

    // --- Figure 13: GRiP with gap prevention ---------------------------
    let mut g2 = running_example(n);
    let rep2 = perfect_pipeline(
        &mut g2,
        PipelineOptions {
            unwind: iters,
            resources: Resources::UNLIMITED,
            fold_inductions: false,
            gap_prevention: true,
            dce: true,
            try_roll: false,
            audit: false,
        },
    );
    println!("Figure 13: final gapless schedule (GRiP with Gapless-move)");
    println!("(convergence: the repeating rows become the new loop body)\n");
    let tab2 = grip_ir::print::tableau(&g2, &rep2.steady, iters);
    print!("{}", grip_ir::print::render_tableau(&tab2, iters));
    match rep2.pattern {
        Some(p) => println!(
            "pattern: rows {}..{} repeat every {} row(s) advancing {} iteration(s) -> CPI {:.2}, loop-body speedup {:.2}",
            p.start,
            p.start + p.period_rows - 1,
            p.period_rows,
            p.period_iters,
            p.cpi,
            rep2.seq_cpi() / p.cpi
        ),
        None => println!("pattern: none (unexpected)"),
    }
}
