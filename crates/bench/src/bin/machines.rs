//! Sweep the machine-description presets (`uniform2/4/8`, `clustered`,
//! `mem_bound`, `epic8`) over the Livermore Loops and emit
//! `BENCH_machines.json`: latency-aware model cycles, speedup vs the
//! sequential program on the *same* machine, stalls, and schedule length.
//!
//! Every cell is backed by a bitwise simulation equivalence check, the
//! simulator's issue-template validation, the grip-audit static verifier
//! — any diagnostic fails the sweep — and the grip-bounds soundness gate:
//! no cell may achieve fewer steady rows than its proven lower bound, nor
//! fewer VM cycles than the bound scaled by its full-traversal count.
//!
//! Usage: `machines [trip-count] [--seq]` (default n = 100, parallel).

#![forbid(unsafe_code)]

use grip_bench::machines::{machine_table, machines_json, render_machines};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: i64 = args.iter().find_map(|a| a.parse::<i64>().ok()).unwrap_or(100);
    let parallel = !args.iter().any(|a| a == "--seq");

    eprintln!("machine sweep: n = {n}, 14 kernels × 6 presets …");
    let t0 = std::time::Instant::now();
    let cells = machine_table(n, parallel);
    eprintln!("measured in {:.1?}\n", t0.elapsed());

    println!("Machine presets over LL1-LL14 (latency-aware model cycles)");
    println!("==========================================================");
    print!("{}", render_machines(&cells));

    let path = "BENCH_machines.json";
    match std::fs::write(path, machines_json(n, &cells).pretty()) {
        Ok(()) => eprintln!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }

    let bad: Vec<&_> = cells
        .iter()
        .filter(|c| {
            !c.verified || c.template_violations > 0 || c.sched_stalls > 0 || !c.audit_clean
        })
        .collect();

    // Bound-soundness gate: the certificate bounds one full traversal of
    // the steady window, so the achieved rows may never undercut it, and
    // neither may the measured wall clock (trips always exceed the unwind
    // here, so at least one full pass runs). Stronger, the trip count —
    // at least `n - 5`, the deepest kernel induction offset (LL4) —
    // forces `trip/unwind - 2` complete steady traversals (slack for the
    // prologue pass and the final partial one), each costing the bound.
    let unsound: Vec<&_> = cells
        .iter()
        .filter(|c| {
            let trip = (n.max(5) - 5) as u64;
            let traversals = if c.unwind > 0 && trip >= c.unwind as u64 {
                (trip / c.unwind as u64).saturating_sub(2).max(1)
            } else {
                0
            };
            (c.schedule_rows as u64) < c.bounds.bound_cycles
                || c.sched_cycles < traversals * c.bounds.bound_cycles
        })
        .collect();

    // Timing gate: the per-stage self times must decompose each cell's
    // wall time — unaccounted time beyond 5% means a stage span is
    // missing. Cells under 1 ms are skipped (timer noise dominates).
    let unaccounted: Vec<&_> = cells
        .iter()
        .filter(|c| c.timings.total_ns >= 1_000_000)
        .filter(|c| (c.timings.stage_sum_ns() as f64) < 0.95 * c.timings.total_ns as f64)
        .collect();

    if bad.is_empty() && unsound.is_empty() && unaccounted.is_empty() {
        let exits = cells.iter().filter(|c| c.bound_exit).count();
        let at_bound = cells.iter().filter(|c| c.bounds.at_bound).count();
        println!(
            "\nAll cells verified against sequential execution and audit-clean; \
             no template violations, no interlock stalls; every bound certificate \
             sound ({at_bound} cells at their proven bound, {exits} bound-driven exits); \
             stage timings account for every cell's wall time."
        );
    } else {
        println!("\nVIOLATIONS:");
        for c in bad {
            println!(
                "  {} on {}: verified={} template_violations={} sched_stalls={} \
                 audit_diagnostics={}",
                c.kernel,
                c.machine,
                c.verified,
                c.template_violations,
                c.sched_stalls,
                c.audit_diagnostics
            );
        }
        for c in unsound {
            println!(
                "  {} on {}: bound certificate unsound: rows={} sched_cycles={} \
                 bound_cycles={} unwind={}",
                c.kernel,
                c.machine,
                c.schedule_rows,
                c.sched_cycles,
                c.bounds.bound_cycles,
                c.unwind
            );
        }
        for c in unaccounted {
            println!(
                "  {} on {}: stage sum {:.0} us accounts for <95% of wall {:.0} us",
                c.kernel,
                c.machine,
                c.timings.stage_sum_ns() as f64 / 1000.0,
                c.timings.total_ns as f64 / 1000.0
            );
        }
        std::process::exit(1);
    }
}
