//! Sweep the machine-description presets (`uniform2/4/8`, `clustered`,
//! `mem_bound`, `epic8`) over the Livermore Loops and emit
//! `BENCH_machines.json`: latency-aware model cycles, speedup vs the
//! sequential program on the *same* machine, stalls, and schedule length.
//!
//! Every cell is backed by a bitwise simulation equivalence check, the
//! simulator's issue-template validation, the grip-audit static verifier
//! — any diagnostic fails the sweep — and the grip-bounds soundness gate:
//! no cell may achieve fewer steady rows than its proven lower bound, nor
//! fewer VM cycles than the bound scaled by its full-traversal count.
//!
//! Usage: `machines [trip-count] [--seq] [--budget [path]] [--write-budget]`
//! (default n = 100, parallel).
//!
//! `--budget` reads a committed `BENCH_BUDGET.json` (per-cell `wall_us`
//! ceiling plus a total-sweep ceiling, both with headroom baked in at
//! capture time) and exits nonzero if any cell — or the sweep as a whole
//! — breaches it: the CI wall-clock regression gate. Cells under the
//! 1 s noise floor are exempt from the per-cell check (timer and
//! scheduling noise dominates them); the total ceiling still covers
//! them. `--write-budget` captures a fresh budget from this run (3x
//! per-cell, 2x total headroom) for committing after a deliberate perf
//! change.

#![forbid(unsafe_code)]

use grip_bench::json::Json;
use grip_bench::machines::{machine_table, machines_json, render_machines, MachineCell};

/// Headroom multipliers baked into a written budget: wall time on shared
/// CI runners is noisy, so a cell must get ~3x slower (or the sweep 2x)
/// before the gate trips — real algorithmic regressions are far larger.
const CELL_HEADROOM: f64 = 3.0;
const TOTAL_HEADROOM: f64 = 2.0;

/// Per-cell noise floor: cells this cheap are dominated by thread
/// scheduling on a contended runner (a 2 ms cell can take 50 ms by
/// placement luck), so the per-cell gate only fires above it. Real
/// cold-path regressions are orders of magnitude larger; the 2x total
/// ceiling still catches broad slowdowns below the floor.
const CELL_FLOOR_US: f64 = 1_000_000.0;

/// Check every cell (and the sweep total) against the committed budget.
/// Returns human-readable breach descriptions; empty means within budget.
fn check_budget(path: &str, cells: &[MachineCell]) -> Vec<String> {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => return vec![format!("cannot read budget {path}: {e}")],
    };
    let doc = match Json::parse(&src) {
        Ok(d) => d,
        Err(e) => return vec![format!("budget {path}: {e}")],
    };
    let mut breaches = Vec::new();
    let mut ceilings = std::collections::HashMap::new();
    for c in doc.get("cells").and_then(Json::as_arr).unwrap_or(&[]) {
        let m = c.get("machine").and_then(Json::as_str).unwrap_or("");
        let k = c.get("kernel").and_then(Json::as_str).unwrap_or("");
        let w = c.get("wall_us").and_then(Json::as_f64).unwrap_or(f64::INFINITY);
        ceilings.insert((m.to_string(), k.to_string()), w);
    }
    let mut total = 0.0;
    for c in cells {
        let wall = c.timings.total_ns as f64 / 1000.0;
        total += wall;
        match ceilings.get(&(c.machine.clone(), c.kernel.clone())) {
            Some(&ceiling) if wall > ceiling && wall > CELL_FLOOR_US => breaches.push(format!(
                "{}/{}: wall {:.0} us over budget {:.0} us ({:.1}x)",
                c.machine,
                c.kernel,
                wall,
                ceiling,
                wall / ceiling
            )),
            Some(_) => {}
            None => breaches.push(format!(
                "{}/{}: no budget entry — regenerate with --write-budget",
                c.machine, c.kernel
            )),
        }
    }
    let total_ceiling = doc.get("total_wall_us").and_then(Json::as_f64).unwrap_or(f64::INFINITY);
    if total > total_ceiling {
        breaches.push(format!(
            "sweep total: wall {:.0} us over budget {:.0} us ({:.1}x)",
            total,
            total_ceiling,
            total / total_ceiling
        ));
    }
    breaches
}

/// Serialize a fresh budget (with headroom) from this run's walls.
fn budget_json(n: i64, cells: &[MachineCell]) -> Json {
    let total: f64 = cells.iter().map(|c| c.timings.total_ns as f64 / 1000.0).sum();
    Json::obj()
        .field("bench", "machines_budget")
        .field("trip_count", n)
        .field("cell_headroom", CELL_HEADROOM)
        .field("total_headroom", TOTAL_HEADROOM)
        .field("total_wall_us", (total * TOTAL_HEADROOM).ceil())
        .field(
            "cells",
            cells
                .iter()
                .map(|c| {
                    Json::obj()
                        .field("machine", c.machine.as_str())
                        .field("kernel", c.kernel.as_str())
                        .field(
                            "wall_us",
                            (c.timings.total_ns as f64 / 1000.0 * CELL_HEADROOM).ceil(),
                        )
                })
                .collect::<Vec<_>>(),
        )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: i64 = args.iter().find_map(|a| a.parse::<i64>().ok()).unwrap_or(100);
    let parallel = !args.iter().any(|a| a == "--seq");
    let write_budget = args.iter().any(|a| a == "--write-budget");
    let budget_path: Option<String> = args.iter().position(|a| a == "--budget").map(|i| {
        args.get(i + 1)
            .filter(|p| !p.starts_with("--") && p.parse::<i64>().is_err())
            .cloned()
            .unwrap_or_else(|| "BENCH_BUDGET.json".to_string())
    });

    eprintln!("machine sweep: n = {n}, 14 kernels × 6 presets …");
    let t0 = std::time::Instant::now();
    let mut cells = machine_table(n, parallel);
    eprintln!("measured in {:.1?}", t0.elapsed());
    // The parallel sweep oversubscribes small runners; re-measure (once,
    // serially) any cell whose timing decomposition looks preemption-torn
    // before gating on it. See `machines::remeasure_unaccounted`.
    let redone = grip_bench::machines::remeasure_unaccounted(&mut cells, n, 0.95);
    if redone > 0 {
        eprintln!("re-measured {redone} preemption-torn cells serially");
    }
    eprintln!();

    println!("Machine presets over LL1-LL14 (latency-aware model cycles)");
    println!("==========================================================");
    print!("{}", render_machines(&cells));

    let path = "BENCH_machines.json";
    match std::fs::write(path, machines_json(n, &cells).pretty()) {
        Ok(()) => eprintln!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }

    let bad: Vec<&_> = cells
        .iter()
        .filter(|c| {
            !c.verified || c.template_violations > 0 || c.sched_stalls > 0 || !c.audit_clean
        })
        .collect();

    // Bound-soundness gate: the certificate bounds one full traversal of
    // the steady window, so the achieved rows may never undercut it, and
    // neither may the measured wall clock (trips always exceed the unwind
    // here, so at least one full pass runs). Stronger, the trip count —
    // at least `n - 5`, the deepest kernel induction offset (LL4) —
    // forces `trip/unwind - 2` complete steady traversals (slack for the
    // prologue pass and the final partial one), each costing the bound.
    let unsound: Vec<&_> = cells
        .iter()
        .filter(|c| {
            let trip = (n.max(5) - 5) as u64;
            let traversals = if c.unwind > 0 && trip >= c.unwind as u64 {
                (trip / c.unwind as u64).saturating_sub(2).max(1)
            } else {
                0
            };
            (c.schedule_rows as u64) < c.bounds.bound_cycles
                || c.sched_cycles < traversals * c.bounds.bound_cycles
        })
        .collect();

    // Timing gate: the per-stage self times must decompose each cell's
    // wall time — unaccounted time beyond 5% means a stage span is
    // missing. Cells under 1 ms are skipped (timer noise dominates).
    let unaccounted: Vec<&_> = cells
        .iter()
        .filter(|c| c.timings.total_ns >= 1_000_000)
        .filter(|c| (c.timings.stage_sum_ns() as f64) < 0.95 * c.timings.total_ns as f64)
        .collect();

    if write_budget {
        let path = "BENCH_BUDGET.json";
        match std::fs::write(path, budget_json(n, &cells).pretty()) {
            Ok(()) => {
                eprintln!("wrote {path} ({CELL_HEADROOM}x cell / {TOTAL_HEADROOM}x total headroom)")
            }
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    // Wall-clock budget gate: every cell and the sweep total must stay
    // under the committed ceilings. Checked alongside the semantic gates
    // so a breach is reported with full context.
    let breaches = budget_path.as_deref().map(|p| check_budget(p, &cells)).unwrap_or_default();

    if bad.is_empty() && unsound.is_empty() && unaccounted.is_empty() && breaches.is_empty() {
        let exits = cells.iter().filter(|c| c.bound_exit).count();
        let at_bound = cells.iter().filter(|c| c.bounds.at_bound).count();
        println!(
            "\nAll cells verified against sequential execution and audit-clean; \
             no template violations, no interlock stalls; every bound certificate \
             sound ({at_bound} cells at their proven bound, {exits} bound-driven exits); \
             stage timings account for every cell's wall time."
        );
        if budget_path.is_some() {
            println!("All cells (and the sweep total) within the wall-clock budget.");
        }
    } else {
        println!("\nVIOLATIONS:");
        for c in bad {
            println!(
                "  {} on {}: verified={} template_violations={} sched_stalls={} \
                 audit_diagnostics={}",
                c.kernel,
                c.machine,
                c.verified,
                c.template_violations,
                c.sched_stalls,
                c.audit_diagnostics
            );
        }
        for c in unsound {
            println!(
                "  {} on {}: bound certificate unsound: rows={} sched_cycles={} \
                 bound_cycles={} unwind={}",
                c.kernel,
                c.machine,
                c.schedule_rows,
                c.sched_cycles,
                c.bounds.bound_cycles,
                c.unwind
            );
        }
        for c in unaccounted {
            println!(
                "  {} on {}: stage sum {:.0} us accounts for <95% of wall {:.0} us",
                c.kernel,
                c.machine,
                c.timings.stage_sum_ns() as f64 / 1000.0,
                c.timings.total_ns as f64 / 1000.0
            );
        }
        for b in &breaches {
            println!("  budget: {b}");
        }
        std::process::exit(1);
    }
}
