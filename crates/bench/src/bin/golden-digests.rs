//! Regenerate `tests/golden_schedules.json`: the pinned structural
//! digests of every preset × kernel schedule (see `grip_bench::golden`).
//!
//! Run this ONLY when a schedule change is intended and reviewed — the
//! `golden_schedules` test exists precisely to catch unintended drift
//! from scheduler rewrites.
//!
//! Usage: `golden-digests [trip-count] [--seq] [--out PATH]`
//! (default n = 24, parallel, writes `tests/golden_schedules.json`).

#![forbid(unsafe_code)]

use grip_bench::golden::{golden_json, golden_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: i64 = args.iter().find_map(|a| a.parse::<i64>().ok()).unwrap_or(24);
    let parallel = !args.iter().any(|a| a == "--seq");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "tests/golden_schedules.json".to_string());

    eprintln!("golden digests: n = {n}, 14 kernels × 6 presets …");
    let t0 = std::time::Instant::now();
    let cells = golden_table(n, parallel);
    eprintln!("captured {} cells in {:.1?}", cells.len(), t0.elapsed());

    match std::fs::write(&out, golden_json(n, &cells).pretty()) {
        Ok(()) => eprintln!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            std::process::exit(1);
        }
    }
}
