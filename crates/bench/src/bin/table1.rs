//! Regenerate the paper's **Table 1**: observed speed-up of GRiP vs POST
//! on the Livermore Loops at 2, 4 and 8 functional units, with Mean and
//! weighted-harmonic-mean rows, printed beside the paper's numbers.
//!
//! Every cell is backed by a bitwise simulation equivalence check of the
//! transformed program against the sequential original.
//!
//! Usage: `table1 [trip-count] [--seq]` (default n = 100, parallel sweep).

#![forbid(unsafe_code)]

use grip_bench::{render_table1, table1};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: i64 = args.iter().find_map(|a| a.parse::<i64>().ok()).unwrap_or(100);
    let parallel = !args.iter().any(|a| a == "--seq");

    eprintln!("Table 1 sweep: n = {n}, {} kernels × 3 widths × 2 schedulers …", 14);
    let t0 = std::time::Instant::now();
    let rows = table1(n, parallel);
    eprintln!("measured in {:.1?}\n", t0.elapsed());

    println!("Table 1: Observed Speed-up (measured vs paper)");
    println!("==============================================");
    print!("{}", render_table1(&rows));

    // Machine-readable record for EXPERIMENTS.md.
    let json = grip_bench::json::Json::Arr(rows.iter().map(|r| r.to_json()).collect()).pretty();
    let path = "results_table1.json";
    if std::fs::write(path, json).is_ok() {
        eprintln!("\nwrote {path}");
    }

    // Qualitative checks from the paper's prose.
    let mut violations = Vec::new();
    for r in &rows {
        for (i, c) in r.cells.iter().enumerate() {
            if !c.verified {
                violations.push(format!("{} @{}FU: simulation mismatch", r.name, [2, 4, 8][i]));
            }
            if c.grip + 0.45 < c.post {
                violations.push(format!(
                    "{} @{}FU: POST {:.2} > GRiP {:.2}",
                    r.name,
                    [2, 4, 8][i],
                    c.post,
                    c.grip
                ));
            }
        }
    }
    if violations.is_empty() {
        println!("\nAll cells verified; GRiP >= POST (within estimator noise) everywhere.");
    } else {
        println!("\nVIOLATIONS:");
        for v in violations {
            println!("  {v}");
        }
        std::process::exit(1);
    }
}
