//! Compare two `BENCH_machines.json` sweeps cell by cell and gate on
//! regressions: the CI perf layer's semantic diff.
//!
//! The committed sweep is the baseline; a fresh sweep is the candidate.
//! Every (machine × kernel) cell is held to:
//!
//! - **bit-identity fields**: `verified`, `audit_clean`,
//!   `template_violations == 0` and `sched_stalls == 0` may never regress
//!   from a passing baseline;
//! - **schedule quality**: `sched_cycles` and `schedule_rows` may not
//!   exceed the baseline (an optimization PR must not buy wall time with
//!   cycles);
//! - **bound soundness**: a candidate cell may not undercut its own
//!   `bound_cycles` certificate.
//!
//! Wall-clock fields (`*_us`) are *reported* as per-stage deltas but not
//! gated here — timing is machine-dependent; the budget gate
//! (`machines --budget`) owns absolute ceilings.
//!
//! Usage: `bench-diff <baseline.json> <candidate.json>`
//! Exits nonzero on any gate breach, printing a regression table.

#![forbid(unsafe_code)]

use grip_bench::json::Json;
use std::collections::BTreeMap;

/// The per-cell fields the diff consumes.
#[derive(Clone, Debug)]
struct Cell {
    verified: bool,
    audit_clean: bool,
    template_violations: i64,
    sched_stalls: i64,
    sched_cycles: i64,
    schedule_rows: i64,
    bound_cycles: i64,
    hazard_delay_rows: i64,
    hazard_backfills: i64,
    stage_us: BTreeMap<&'static str, f64>,
}

const STAGES: [&str; 7] =
    ["prepare_us", "schedule_us", "hazards_us", "verify_us", "audit_us", "bounds_us", "wall_us"];

fn load(path: &str) -> BTreeMap<(String, String), Cell> {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench-diff: cannot read {path}: {e}"));
    let doc = Json::parse(&src).unwrap_or_else(|e| panic!("bench-diff: {path}: {e}"));
    let cells = doc.get("cells").and_then(Json::as_arr).unwrap_or_else(|| {
        panic!("bench-diff: {path}: no `cells` array — not a BENCH_machines.json?")
    });
    let mut out = BTreeMap::new();
    for c in cells {
        let s = |k: &str| c.get(k).and_then(Json::as_str).unwrap_or("").to_string();
        let i = |k: &str| c.get(k).and_then(Json::as_i64).unwrap_or(0);
        let b = |k: &str| c.get(k).and_then(Json::as_bool).unwrap_or(false);
        let f = |k: &str| c.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        out.insert(
            (s("machine"), s("kernel")),
            Cell {
                verified: b("verified"),
                audit_clean: b("audit_clean"),
                template_violations: i("template_violations"),
                sched_stalls: i("sched_stalls"),
                sched_cycles: i("sched_cycles"),
                schedule_rows: i("schedule_rows"),
                bound_cycles: i("bound_cycles"),
                hazard_delay_rows: i("hazard_delay_rows"),
                hazard_backfills: i("hazard_backfills"),
                stage_us: STAGES.iter().map(|&k| (k, f(k))).collect(),
            },
        );
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let [_, base_path, cand_path] = &args[..] else {
        eprintln!("usage: bench-diff <baseline.json> <candidate.json>");
        std::process::exit(2);
    };
    let base = load(base_path);
    let cand = load(cand_path);

    let mut regressions: Vec<String> = Vec::new();

    for k in base.keys() {
        if !cand.contains_key(k) {
            regressions.push(format!("{}/{}: cell missing from candidate", k.0, k.1));
        }
    }
    for k in cand.keys() {
        if !base.contains_key(k) {
            println!("note: {}/{} is new in the candidate (no baseline)", k.0, k.1);
        }
    }

    // Per-stage totals (reported, not gated).
    let mut tot_base: BTreeMap<&str, f64> = BTreeMap::new();
    let mut tot_cand: BTreeMap<&str, f64> = BTreeMap::new();

    println!(
        "{:<10} {:<6} {:>10} {:>10} {:>6} {:>6}  {:>12} {:>12} {:>7}",
        "machine",
        "loop",
        "cyc base",
        "cyc cand",
        "rows b",
        "rows c",
        "sched_us b",
        "sched_us c",
        "ratio"
    );
    for (k, b) in &base {
        let Some(c) = cand.get(k) else { continue };
        let cell = format!("{}/{}", k.0, k.1);
        // Bit-identity gates: a passing baseline field may never regress.
        if b.verified && !c.verified {
            regressions.push(format!("{cell}: verified regressed (true -> false)"));
        }
        if b.audit_clean && !c.audit_clean {
            regressions.push(format!("{cell}: audit_clean regressed (true -> false)"));
        }
        if b.template_violations == 0 && c.template_violations > 0 {
            regressions
                .push(format!("{cell}: {} template violations (was 0)", c.template_violations));
        }
        if b.sched_stalls == 0 && c.sched_stalls > 0 {
            regressions.push(format!("{cell}: {} interlock stalls (was 0)", c.sched_stalls));
        }
        // Schedule quality gates.
        if c.sched_cycles > b.sched_cycles {
            regressions.push(format!(
                "{cell}: sched_cycles regressed {} -> {}",
                b.sched_cycles, c.sched_cycles
            ));
        }
        if c.schedule_rows > b.schedule_rows {
            regressions.push(format!(
                "{cell}: schedule_rows regressed {} -> {}",
                b.schedule_rows, c.schedule_rows
            ));
        }
        // Bound soundness: the candidate may not undercut its own proof.
        if c.schedule_rows < c.bound_cycles {
            regressions.push(format!(
                "{cell}: bound violation: {} rows below proven bound {}",
                c.schedule_rows, c.bound_cycles
            ));
        }
        for &s in &STAGES {
            *tot_base.entry(s).or_default() += b.stage_us[s];
            *tot_cand.entry(s).or_default() += c.stage_us[s];
        }
        let ratio = if c.stage_us["schedule_us"] > 0.0 {
            b.stage_us["schedule_us"] / c.stage_us["schedule_us"]
        } else {
            f64::NAN
        };
        println!(
            "{:<10} {:<6} {:>10} {:>10} {:>6} {:>6}  {:>12.0} {:>12.0} {:>6.1}x",
            k.0,
            k.1,
            b.sched_cycles,
            c.sched_cycles,
            b.schedule_rows,
            c.schedule_rows,
            b.stage_us["schedule_us"],
            c.stage_us["schedule_us"],
            ratio,
        );
    }

    println!("\nper-stage totals (baseline -> candidate):");
    for &s in &STAGES {
        let (tb, tc) = (tot_base.get(s).copied().unwrap_or(0.0), tot_cand[s]);
        let ratio = if tc > 0.0 { tb / tc } else { f64::NAN };
        println!("  {s:<12} {:>12.1} ms -> {:>12.1} ms   ({ratio:>6.1}x)", tb / 1e3, tc / 1e3);
    }
    let (db, dc) = (
        base.values().map(|c| c.hazard_delay_rows).sum::<i64>(),
        cand.values().map(|c| c.hazard_delay_rows).sum::<i64>(),
    );
    let (bb, bc) = (
        base.values().map(|c| c.hazard_backfills).sum::<i64>(),
        cand.values().map(|c| c.hazard_backfills).sum::<i64>(),
    );
    println!("  delay rows   {db} -> {dc}; backfills {bb} -> {bc}");

    if regressions.is_empty() {
        println!("\nbench-diff: no regressions across {} cells.", base.len());
    } else {
        println!("\nREGRESSIONS:");
        for r in &regressions {
            println!("  {r}");
        }
        std::process::exit(1);
    }
}
