//! Compare two benchmark documents and gate on regressions: the CI perf
//! layer's semantic diff.
//!
//! The committed sweep is the baseline; a fresh sweep is the candidate.
//! The diff dispatches on the document's top-level `bench` field:
//!
//! **`machines`** (`BENCH_machines.json`) — every (machine × kernel)
//! cell is held to:
//!
//! - **bit-identity fields**: `verified`, `audit_clean`,
//!   `template_violations == 0` and `sched_stalls == 0` may never regress
//!   from a passing baseline;
//! - **schedule quality**: `sched_cycles` and `schedule_rows` may not
//!   exceed the baseline (an optimization PR must not buy wall time with
//!   cycles);
//! - **bound soundness**: a candidate cell may not undercut its own
//!   `bound_cycles` certificate.
//!
//! **`service`** (`BENCH_service.json`) — the service-path gates:
//!
//! - the candidate must report `verification_failures == 0`;
//! - the cache hit rate may not drop below the baseline (beyond a 1%
//!   absolute tolerance — the sweep's shuffle order is seeded, so the
//!   hit/miss split is deterministic for matching parameters).
//!
//! Wall-clock fields (`*_us`, `requests_per_sec`, cold-stage p50/p99) are
//! *reported* as deltas but not gated here — timing is machine-dependent;
//! the budget gate (`machines --budget`) owns absolute ceilings.
//!
//! Usage: `bench-diff <baseline.json> <candidate.json>`
//! Exits nonzero on any gate breach, printing a regression table.

#![forbid(unsafe_code)]

use grip_bench::json::Json;
use std::collections::BTreeMap;

/// The per-cell fields the machines diff consumes.
#[derive(Clone, Debug)]
struct Cell {
    verified: bool,
    audit_clean: bool,
    template_violations: i64,
    sched_stalls: i64,
    sched_cycles: i64,
    schedule_rows: i64,
    bound_cycles: i64,
    hazard_delay_rows: i64,
    hazard_backfills: i64,
    stage_us: BTreeMap<&'static str, f64>,
}

const STAGES: [&str; 7] =
    ["prepare_us", "schedule_us", "hazards_us", "verify_us", "audit_us", "bounds_us", "wall_us"];

/// The cold-path stages `BENCH_service.json` reports p50/p99 for.
const SERVICE_STAGES: [&str; 6] = ["prepare", "schedule", "hazards", "verify", "audit", "bounds"];

fn load_doc(path: &str) -> Json {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench-diff: cannot read {path}: {e}"));
    Json::parse(&src).unwrap_or_else(|e| panic!("bench-diff: {path}: {e}"))
}

fn load_cells(path: &str, doc: &Json) -> BTreeMap<(String, String), Cell> {
    let cells = doc.get("cells").and_then(Json::as_arr).unwrap_or_else(|| {
        panic!("bench-diff: {path}: no `cells` array — not a BENCH_machines.json?")
    });
    let mut out = BTreeMap::new();
    for c in cells {
        let s = |k: &str| c.get(k).and_then(Json::as_str).unwrap_or("").to_string();
        let i = |k: &str| c.get(k).and_then(Json::as_i64).unwrap_or(0);
        let b = |k: &str| c.get(k).and_then(Json::as_bool).unwrap_or(false);
        let f = |k: &str| c.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        out.insert(
            (s("machine"), s("kernel")),
            Cell {
                verified: b("verified"),
                audit_clean: b("audit_clean"),
                template_violations: i("template_violations"),
                sched_stalls: i("sched_stalls"),
                sched_cycles: i("sched_cycles"),
                schedule_rows: i("schedule_rows"),
                bound_cycles: i("bound_cycles"),
                hazard_delay_rows: i("hazard_delay_rows"),
                hazard_backfills: i("hazard_backfills"),
                stage_us: STAGES.iter().map(|&k| (k, f(k))).collect(),
            },
        );
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let [_, base_path, cand_path] = &args[..] else {
        eprintln!("usage: bench-diff <baseline.json> <candidate.json>");
        std::process::exit(2);
    };
    let base_doc = load_doc(base_path);
    let cand_doc = load_doc(cand_path);
    let kind = |doc: &Json| doc.get("bench").and_then(Json::as_str).map(str::to_string);
    let (bk, ck) = (kind(&base_doc), kind(&cand_doc));
    if bk != ck {
        eprintln!(
            "bench-diff: document kinds differ: {base_path} is {bk:?}, {cand_path} is {ck:?}"
        );
        std::process::exit(2);
    }
    match bk.as_deref() {
        Some("service") => diff_service(&base_doc, &cand_doc),
        // `machines` documents predate the `bench` tag; anything with a
        // `cells` array takes the machines path.
        _ => diff_machines(base_path, &base_doc, cand_path, &cand_doc),
    }
}

/// Diff two `BENCH_service.json` documents: gate verification failures
/// and the cache hit rate, report throughput and per-stage latency drift.
fn diff_service(base: &Json, cand: &Json) {
    let f = |doc: &Json, k: &str| doc.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let i = |doc: &Json, k: &str| doc.get(k).and_then(Json::as_i64).unwrap_or(0);

    let mut regressions: Vec<String> = Vec::new();

    let failures = i(cand, "verification_failures");
    if failures != 0 {
        regressions.push(format!("candidate reports {failures} verification failures (want 0)"));
    }
    // The hit rate is a function of the sweep shape (repeat - 1 of every
    // `repeat` requests per cell hit), so the no-drop gate is only
    // like-for-like when the parameters match; otherwise it degrades to
    // a reported delta.
    let same_params =
        i(base, "trip_count") == i(cand, "trip_count") && i(base, "repeat") == i(cand, "repeat");
    let (hr_b, hr_c) = (f(base, "cache_hit_rate"), f(cand, "cache_hit_rate"));
    if same_params && hr_c + 0.01 < hr_b {
        regressions.push(format!(
            "cache hit rate dropped {:.1}% -> {:.1}% (caches stopped converging?)",
            100.0 * hr_b,
            100.0 * hr_c
        ));
    }
    if !same_params {
        println!(
            "note: sweep parameters differ (n {} repeat {} -> n {} repeat {}); \
             hit-rate gate skipped, drift below is not like-for-like",
            i(base, "trip_count"),
            i(base, "repeat"),
            i(cand, "trip_count"),
            i(cand, "repeat"),
        );
    }

    let rps = (f(base, "requests_per_sec"), f(cand, "requests_per_sec"));
    let ratio = if rps.0 > 0.0 { rps.1 / rps.0 } else { f64::NAN };
    println!(
        "requests/s   {:>10.1} -> {:>10.1}   ({ratio:>5.2}x)   hit rate {:>5.1}% -> {:>5.1}%",
        rps.0,
        rps.1,
        100.0 * hr_b,
        100.0 * hr_c
    );
    println!(
        "overall p50  {:>10.1} us -> {:>10.1} us; p99 {:>12.1} us -> {:>12.1} us",
        f(base, "p50_us"),
        f(cand, "p50_us"),
        f(base, "p99_us"),
        f(cand, "p99_us"),
    );
    println!("\ncold-stage latency drift (baseline -> candidate, not gated):");
    println!(
        "  {:<10} {:>12} {:>12} {:>7}   {:>14} {:>14} {:>7}",
        "stage", "p50 b", "p50 c", "", "p99 b", "p99 c", ""
    );
    for stage in SERVICE_STAGES {
        let pick = |doc: &Json, q: &str| {
            doc.get("stages_cold")
                .and_then(|s| s.get(stage))
                .and_then(|s| s.get(q))
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        };
        let (p50b, p50c) = (pick(base, "p50_us"), pick(cand, "p50_us"));
        let (p99b, p99c) = (pick(base, "p99_us"), pick(cand, "p99_us"));
        let r = |b: f64, c: f64| if c > 0.0 { b / c } else { f64::NAN };
        println!(
            "  {stage:<10} {p50b:>12.1} {p50c:>12.1} {:>6.1}x   {p99b:>14.1} {p99c:>14.1} {:>6.1}x",
            r(p50b, p50c),
            r(p99b, p99c),
        );
    }

    report(regressions, "service document");
}

fn diff_machines(base_path: &str, base_doc: &Json, cand_path: &str, cand_doc: &Json) {
    let base = load_cells(base_path, base_doc);
    let cand = load_cells(cand_path, cand_doc);

    let mut regressions: Vec<String> = Vec::new();

    for k in base.keys() {
        if !cand.contains_key(k) {
            regressions.push(format!("{}/{}: cell missing from candidate", k.0, k.1));
        }
    }
    for k in cand.keys() {
        if !base.contains_key(k) {
            println!("note: {}/{} is new in the candidate (no baseline)", k.0, k.1);
        }
    }

    // Per-stage totals (reported, not gated).
    let mut tot_base: BTreeMap<&str, f64> = BTreeMap::new();
    let mut tot_cand: BTreeMap<&str, f64> = BTreeMap::new();

    println!(
        "{:<10} {:<6} {:>10} {:>10} {:>6} {:>6}  {:>12} {:>12} {:>7}",
        "machine",
        "loop",
        "cyc base",
        "cyc cand",
        "rows b",
        "rows c",
        "sched_us b",
        "sched_us c",
        "ratio"
    );
    for (k, b) in &base {
        let Some(c) = cand.get(k) else { continue };
        let cell = format!("{}/{}", k.0, k.1);
        // Bit-identity gates: a passing baseline field may never regress.
        if b.verified && !c.verified {
            regressions.push(format!("{cell}: verified regressed (true -> false)"));
        }
        if b.audit_clean && !c.audit_clean {
            regressions.push(format!("{cell}: audit_clean regressed (true -> false)"));
        }
        if b.template_violations == 0 && c.template_violations > 0 {
            regressions
                .push(format!("{cell}: {} template violations (was 0)", c.template_violations));
        }
        if b.sched_stalls == 0 && c.sched_stalls > 0 {
            regressions.push(format!("{cell}: {} interlock stalls (was 0)", c.sched_stalls));
        }
        // Schedule quality gates.
        if c.sched_cycles > b.sched_cycles {
            regressions.push(format!(
                "{cell}: sched_cycles regressed {} -> {}",
                b.sched_cycles, c.sched_cycles
            ));
        }
        if c.schedule_rows > b.schedule_rows {
            regressions.push(format!(
                "{cell}: schedule_rows regressed {} -> {}",
                b.schedule_rows, c.schedule_rows
            ));
        }
        // Bound soundness: the candidate may not undercut its own proof.
        if c.schedule_rows < c.bound_cycles {
            regressions.push(format!(
                "{cell}: bound violation: {} rows below proven bound {}",
                c.schedule_rows, c.bound_cycles
            ));
        }
        for &s in &STAGES {
            *tot_base.entry(s).or_default() += b.stage_us[s];
            *tot_cand.entry(s).or_default() += c.stage_us[s];
        }
        let ratio = if c.stage_us["schedule_us"] > 0.0 {
            b.stage_us["schedule_us"] / c.stage_us["schedule_us"]
        } else {
            f64::NAN
        };
        println!(
            "{:<10} {:<6} {:>10} {:>10} {:>6} {:>6}  {:>12.0} {:>12.0} {:>6.1}x",
            k.0,
            k.1,
            b.sched_cycles,
            c.sched_cycles,
            b.schedule_rows,
            c.schedule_rows,
            b.stage_us["schedule_us"],
            c.stage_us["schedule_us"],
            ratio,
        );
    }

    println!("\nper-stage totals (baseline -> candidate):");
    for &s in &STAGES {
        let (tb, tc) = (tot_base.get(s).copied().unwrap_or(0.0), tot_cand[s]);
        let ratio = if tc > 0.0 { tb / tc } else { f64::NAN };
        println!("  {s:<12} {:>12.1} ms -> {:>12.1} ms   ({ratio:>6.1}x)", tb / 1e3, tc / 1e3);
    }
    let (db, dc) = (
        base.values().map(|c| c.hazard_delay_rows).sum::<i64>(),
        cand.values().map(|c| c.hazard_delay_rows).sum::<i64>(),
    );
    let (bb, bc) = (
        base.values().map(|c| c.hazard_backfills).sum::<i64>(),
        cand.values().map(|c| c.hazard_backfills).sum::<i64>(),
    );
    println!("  delay rows   {db} -> {dc}; backfills {bb} -> {bc}");

    report(regressions, &format!("{} cells", base.len()));
}

fn report(regressions: Vec<String>, what: &str) {
    if regressions.is_empty() {
        println!("\nbench-diff: no regressions across {what}.");
    } else {
        println!("\nREGRESSIONS:");
        for r in &regressions {
            println!("  {r}");
        }
        std::process::exit(1);
    }
}
