//! Regenerate **Figure 1**: a single IBM-model VLIW instruction as a tree
//! of conditional jumps with operations on its paths and three possible
//! successors n1, n2, n3 — then execute it under all condition outcomes to
//! demonstrate the commit-along-selected-path semantics.

#![forbid(unsafe_code)]

use grip_ir::{Graph, OpKind, Operand, Operation, Tree, TreePath, Value};
use grip_vm::Machine;

fn main() {
    let mut g = Graph::new();
    let c1 = g.named_reg("c1");
    let c2 = g.named_reg("c2");
    let r1 = g.named_reg("r1");
    let r2 = g.named_reg("r2");
    let r3 = g.named_reg("r3");

    // Successor instructions n1..n3 (empty exits for the demo).
    let n1 = g.add_node(Tree::leaf(None));
    let n2 = g.add_node(Tree::leaf(None));
    let n3 = g.add_node(Tree::leaf(None));

    // One instruction: root op always commits; cj1 picks between the n1
    // path (with its own op) and a second branch cj2 selecting n2/n3.
    let root_op =
        g.add_op(Operation::new(OpKind::Copy, Some(r1), vec![Operand::Imm(Value::I(10))]));
    let t_op = g.add_op(Operation::new(OpKind::Copy, Some(r2), vec![Operand::Imm(Value::I(20))]));
    let f_op = g.add_op(Operation::new(OpKind::Copy, Some(r3), vec![Operand::Imm(Value::I(30))]));
    let cj1 = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(c1)]));
    let cj2 = g.add_op(Operation::new(OpKind::CondJump, None, vec![Operand::Reg(c2)]));
    let instr = g.add_node(Tree::Branch {
        ops: vec![root_op],
        cj: cj1,
        on_true: Box::new(Tree::Leaf { ops: vec![t_op], succ: Some(n1) }),
        on_false: Box::new(Tree::Branch {
            ops: vec![f_op],
            cj: cj2,
            on_true: Box::new(Tree::leaf(Some(n2))),
            on_false: Box::new(Tree::leaf(Some(n3))),
        }),
    });
    g.set_succ(g.entry, TreePath::ROOT, Some(instr));
    g.live_out = vec![r1, r2, r3];
    g.validate().expect("valid instruction tree");

    println!("Figure 1: a VLIW instruction (tree of conditional jumps,");
    println!("ops on paths, successors n1/n2/n3)\n");
    print!("{}", grip_ir::print::dump(&g));

    println!("\nExecution semantics (IBM model -- only the selected path commits):");
    for (v1, v2) in [(true, true), (false, true), (false, false)] {
        let mut m = Machine::for_graph(&g);
        m.set_reg(c1, Value::B(v1));
        m.set_reg(c2, Value::B(v2));
        m.run(&g).expect("runs");
        println!(
            "  c1={v1:<5} c2={v2:<5} -> r1={:?} r2={:?} r3={:?}",
            m.reg(r1),
            m.reg(r2),
            m.reg(r3)
        );
    }
}
