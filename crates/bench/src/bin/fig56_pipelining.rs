//! Regenerate **Figures 5 and 6**: overlapping iterations of the A,B,C
//! loop; simple pipelining vs Perfect Pipelining.
//!
//! Figure 5 shows four overlapped iterations; Figure 6 contrasts simple
//! pipelining (fixed unwinding, back edge retained) with Perfect
//! Pipelining (the repeating pattern becomes the new loop body). We print
//! the scheduled tableau, the detected pattern, and both speedups —
//! including a simulated run of the re-rolled loop.

#![forbid(unsafe_code)]

use grip_bench::examples::abc_loop;
use grip_core::Resources;
use grip_pipeline::{perfect_pipeline, PipelineOptions};
use grip_vm::{EquivReport, Machine};

fn main() {
    let n = 96i64;

    // --- Figure 5: four iterations overlapped -------------------------
    let mut g = abc_loop(n);
    let rep = perfect_pipeline(
        &mut g,
        PipelineOptions {
            unwind: 4,
            resources: Resources::UNLIMITED,
            fold_inductions: false,
            gap_prevention: true,
            dce: true,
            try_roll: false,
            audit: false,
        },
    );
    println!("Figure 5: overlapping 4 iterations of the a->b->c loop");
    println!("(a depends on itself across iterations)\n");
    let tab = grip_ir::print::tableau(&g, &rep.steady, 4);
    print!("{}", grip_ir::print::render_tableau(&tab, 4));

    // --- Figure 6: simple vs perfect pipelining ------------------------
    // Simple pipelining: the unwound window with its back edge, measured
    // by full simulation.
    let g0 = abc_loop(n);
    let mut m0 = Machine::for_graph(&g0);
    let seq = m0.run(&g0).expect("sequential runs");

    let mut m1 = Machine::for_graph(&g);
    let simple = m1.run(&g).expect("windowed runs");
    assert!(EquivReport::compare(&g0, &m0, &m1).is_equal());

    // Perfect pipelining: converged pattern + re-rolled loop.
    let mut g2 = abc_loop(n);
    let rep2 = perfect_pipeline(
        &mut g2,
        PipelineOptions {
            unwind: 6,
            resources: Resources::UNLIMITED,
            fold_inductions: false,
            gap_prevention: true,
            dce: true,
            try_roll: true,
            audit: false,
        },
    );
    let pat = rep2.pattern.expect("perfect pipelining converges");
    let rolled = rep2.rolled.clone().expect("requested").expect("rolls");
    let mut m2 = Machine::for_graph(&g2);
    let perfect = m2.run(&g2).expect("rolled runs");
    assert!(EquivReport::compare(&g0, &m0, &m2).is_equal(), "rolled loop must be exact");

    println!("\nFigure 6: pipelining comparison (trip count {n})");
    println!("  sequential           : {:>6} cycles", seq.cycles);
    println!(
        "  simple pipelining    : {:>6} cycles  (speedup {:.2}; 4-unwound window, back edge kept)",
        simple.cycles,
        seq.cycles as f64 / simple.cycles as f64
    );
    println!(
        "  perfect pipelining   : {:>6} cycles  (speedup {:.2}; rolled pattern of {} row(s)/{} iteration(s) + {} rotation row(s))",
        perfect.cycles,
        seq.cycles as f64 / perfect.cycles as f64,
        pat.period_rows,
        pat.period_iters,
        rolled.rotation_rows,
    );
    println!(
        "  steady-state CPI     : {:.2} rows/iteration (loop-body speedup {:.2} -- the paper's metric)",
        pat.cpi,
        rep2.seq_cpi() / pat.cpi
    );
}
