//! Throughput bench for the scheduling service: drive a ~1000-request
//! mixed sweep (all machine presets × LL1–LL14, repeated and shuffled)
//! through an in-process [`grip_service::Service`] and emit
//! `BENCH_service.json` — requests/sec, cache hit rate, p50/p99 request
//! latency, plus the aggregate cache counters.
//!
//! Gates (exit nonzero on violation):
//! * every response `ok`, VM-verified, with 0 stall cycles, 0 template
//!   violations, an attached grip-audit report with zero diagnostics,
//!   and a sound grip-bounds certificate (no response beats its proven
//!   lower bound) — the stall-free invariant, the static audit, and the
//!   bound soundness gate through the service path;
//! * every cache-hit response bit-identical to the first (cold) response
//!   for the same work;
//! * with repeats, a nonzero schedule-cache hit count;
//! * per-stage times (prepare/schedule/hazards/verify/audit) summing to
//!   within
//!   5% of each cold response's wall time (≥ 1 ms walls only — below
//!   that, timer noise dominates).
//!
//! Usage: `service [trip-count] [--repeat K] [--shards N] [--seed S]`
//! (defaults: n = 48, repeat = 12 → 1008 requests).

#![forbid(unsafe_code)]

use grip_bench::json::Json;
use grip_service::workload::{mixed_workload, percentile};
use grip_service::{CacheStatus, ScheduleResponse, Service, ServiceConfig};
use std::collections::HashMap;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n: i64 = 48;
    let mut repeat: usize = 12;
    let mut shards: usize = 0;
    let mut seed: u64 = 0x9fb3;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--repeat" => repeat = it.next().and_then(|v| v.parse().ok()).expect("--repeat K"),
            "--shards" => shards = it.next().and_then(|v| v.parse().ok()).expect("--shards N"),
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).expect("--seed S"),
            v => n = v.parse().expect("usage: service [n] [--repeat K] [--shards N] [--seed S]"),
        }
    }

    let service = Service::new(ServiceConfig { shards, ..Default::default() });
    // Every request opts into the per-stage breakdown, the static audit
    // report, and the bound certificate; all three ride outside bits_eq,
    // so the bit-identity gate below is unaffected.
    let reqs: Vec<_> = mixed_workload(n, repeat, seed)
        .into_iter()
        .map(|mut r| {
            r.want_timings = true;
            r.want_audit = true;
            r.want_bounds = true;
            r
        })
        .collect();
    let total = reqs.len();
    eprintln!(
        "service sweep: {} requests ({} unique cells × {repeat}), n = {n}, {} shards …",
        total,
        total / repeat.max(1),
        service.shards()
    );

    let t0 = std::time::Instant::now();
    let responses = service.submit_batch(reqs.clone());
    let wall = t0.elapsed();

    // Gate 1: verified, stall-free, template-clean, audit-clean,
    // everywhere. Every request opted in, so a missing report is itself
    // a violation.
    let mut violations: Vec<String> = Vec::new();
    for r in &responses {
        let audit_clean = r.audit.as_ref().is_some_and(|a| a.is_clean());
        // Certificate soundness: the bound covers one full traversal of
        // the steady window; a trip of at least `n - 5` iterations (the
        // deepest kernel induction offset) forces `trip/unwind - 2`
        // complete traversals. A missing certificate is itself a
        // violation (every request opted in), as is one the schedule
        // beat.
        let bound_sound = r.bounds.as_ref().is_some_and(|b| {
            let trip = (r.n.max(5) - 5) as u64;
            let traversals = if r.unwind > 0 && trip >= r.unwind as u64 {
                (trip / r.unwind as u64).saturating_sub(2).max(1)
            } else {
                0
            };
            (r.schedule_rows as u64) >= b.bound_cycles
                && r.sched_cycles >= traversals * b.bound_cycles
        });
        if !r.ok
            || !r.verified
            || r.sched_stalls != 0
            || r.template_violations != 0
            || !audit_clean
            || !bound_sound
        {
            violations.push(format!(
                "{} on {}: ok={} verified={} stalls={} templates={} audit={} bounds={} {}",
                r.kernel,
                r.machine,
                r.ok,
                r.verified,
                r.sched_stalls,
                r.template_violations,
                r.audit.as_ref().map_or("missing".to_string(), |a| a.summary()),
                r.bounds.as_ref().map_or("missing".to_string(), |b| b.summary()),
                r.error.as_deref().unwrap_or("")
            ));
        }
    }
    // Gate 2: every hit bit-identical to the first response for its cell
    // (cell = the engine's schedule-cache key, option bits included, so a
    // future options-varying workload cannot cross-compare cells).
    let mut first: HashMap<(u64, u64, usize, u8), &ScheduleResponse> = HashMap::new();
    for (req, r) in reqs.iter().zip(&responses) {
        let key = (r.kernel_hash, r.machine_fp, r.unwind, req.options.bits());
        match first.get(&key) {
            None => {
                first.insert(key, r);
            }
            Some(f) => {
                if !r.bits_eq(f) {
                    violations.push(format!(
                        "{} on {}: cached response diverged from cold run",
                        r.kernel, r.machine
                    ));
                }
            }
        }
    }
    let hits = responses.iter().filter(|r| r.cache == CacheStatus::Hit).count();
    let ddg_hits = responses.iter().filter(|r| r.cache == CacheStatus::DdgHit).count();
    if repeat > 1 && hits == 0 {
        violations.push("repeated sweep produced no schedule-cache hits".to_string());
    }

    // Gate 3: per-stage times must decompose each cold response's wall
    // time (unaccounted > 5% means a missing span). Hits are skipped —
    // a cache hit does no stage work — as are sub-millisecond walls,
    // where timer noise dominates.
    let mut stage_ns: HashMap<&str, Vec<u64>> = HashMap::new();
    for r in &responses {
        let Some(t) = &r.timings else {
            violations.push(format!("{} on {}: response missing timings", r.kernel, r.machine));
            continue;
        };
        if r.cache == CacheStatus::Hit {
            continue;
        }
        for (stage, ns) in [
            ("prepare", t.prepare_ns),
            ("schedule", t.schedule_ns),
            ("hazards", t.hazards_ns),
            ("verify", t.verify_ns),
            ("audit", t.audit_ns),
            ("bounds", t.bounds_ns),
        ] {
            stage_ns.entry(stage).or_default().push(ns);
        }
        if r.wall_ns >= 1_000_000 && (t.stage_sum_ns() as f64) < 0.95 * r.wall_ns as f64 {
            violations.push(format!(
                "{} on {}: stage sum {} ns accounts for <95% of wall {} ns",
                r.kernel,
                r.machine,
                t.stage_sum_ns(),
                r.wall_ns
            ));
        }
    }
    let us = |ns: u64| ns as f64 / 1000.0;
    let stage_pcts = |stage: &str| {
        let mut v = stage_ns.get(stage).cloned().unwrap_or_default();
        v.sort_unstable();
        (us(percentile(&v, 0.50)), us(percentile(&v, 0.99)))
    };

    let mut lat: Vec<u64> = responses.iter().map(|r| r.wall_ns).collect();
    lat.sort_unstable();
    let hit_rate = hits as f64 / total.max(1) as f64;
    let rps = total as f64 / wall.as_secs_f64().max(1e-9);
    let stats = service.stats();

    println!("service throughput over the mixed sweep");
    println!("=======================================");
    println!("requests:        {total} ({} unique cells)", first.len());
    println!("wall time:       {:.2?}", wall);
    println!("requests/sec:    {rps:.1}");
    println!("cache hit rate:  {:.1}% ({hits} hits, {ddg_hits} ddg hits)", 100.0 * hit_rate);
    println!(
        "latency:         p50 {:.1} us, p99 {:.1} us, max {:.1} us",
        us(percentile(&lat, 0.50)),
        us(percentile(&lat, 0.99)),
        us(lat.last().copied().unwrap_or(0))
    );
    println!("cold stage p50s: {}", {
        let mut parts = Vec::new();
        for stage in ["prepare", "schedule", "hazards", "verify", "audit", "bounds"] {
            parts.push(format!("{stage} {:.1} us", stage_pcts(stage).0));
        }
        parts.join(", ")
    });

    let stages_json = ["prepare", "schedule", "hazards", "verify", "audit", "bounds"]
        .into_iter()
        .fold(Json::obj(), |acc, stage| {
            let (p50, p99) = stage_pcts(stage);
            acc.field(stage, Json::obj().field("p50_us", p50).field("p99_us", p99))
        });
    let json = Json::obj()
        .field("bench", "service")
        .field("trip_count", n as u64)
        .field("repeat", repeat)
        .field("requests", total)
        .field("unique_cells", first.len())
        .field("shards", service.shards())
        .field("wall_s", wall.as_secs_f64())
        .field("requests_per_sec", rps)
        .field("cache_hits", hits)
        .field("ddg_hits", ddg_hits)
        .field("cache_hit_rate", hit_rate)
        .field("p50_us", us(percentile(&lat, 0.50)))
        .field("p90_us", us(percentile(&lat, 0.90)))
        .field("p99_us", us(percentile(&lat, 0.99)))
        .field("max_us", us(lat.last().copied().unwrap_or(0)))
        .field("stages_cold", stages_json)
        .field("verification_failures", violations.len())
        .field("service_stats", stats.to_json());
    let path = "BENCH_service.json";
    match std::fs::write(path, json.pretty()) {
        Ok(()) => eprintln!("\nwrote {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }

    if violations.is_empty() {
        println!(
            "\nAll {total} responses verified, stall-free, template-clean, \
             audit-clean, bound-sound; every cache hit bit-identical to its \
             cold run."
        );
    } else {
        println!("\nVIOLATIONS:");
        for v in &violations {
            println!("  {v}");
        }
        std::process::exit(1);
    }
}
